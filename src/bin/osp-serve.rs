//! `osp-serve` — the long-running replay server: the
//! [`ServeServer`] front door over the full
//! workspace registry ([`NetResolver`]), executing submitted batches on
//! any dispatcher backend.
//!
//! ```text
//! osp-serve --listen <addr>      # host:port, [ipv6]:port, or uds:/path
//! ```
//!
//! Prints `serving on <addr> via <backend>` on stdout once accepting
//! (the resolved address, for harness scripts that block on the banner),
//! then serves framed submit/status/fetch/cancel requests until a client
//! sends `shutdown` — at which point the server stops accepting, finishes
//! the running batch, and exits 0.
//!
//! Environment:
//!
//! * `OSP_DISPATCH` — `threads` (default) / `processes` / `socket`.
//!   Unlike the bench harness, a junk value here is **fatal** (exit 64):
//!   a long-running service silently falling back to the wrong backend is
//!   a misconfiguration nobody notices until it matters.
//! * `OSP_WORKERS` / `OSP_WORKER_ADDRS` — sizing/fleet for the chosen
//!   backend, exactly as the dispatch layer reads them.
//! * `OSP_SERVE_QUEUE` / `OSP_SERVE_CHUNK` — submission-queue capacity
//!   and per-dispatch chunk size ([`ServiceConfig`]); junk is fatal.
//!
//! Determinism: outcomes fetched from this server are bit-identical to
//! sequential `run_spec` over the same specs, whatever backend executes
//! them (pinned by `tests/replay_service.rs` and the `serve-smoke` CI
//! job).

use std::io::{stdout, Write};
use std::process::ExitCode;
use std::time::Duration;

use osp::core::engine::batch::ReplayPool;
use osp::core::serve::{ReplayService, ServeServer, ServiceConfig};
use osp::core::wire::socket::WorkerAddr;
use osp::core::{Dispatcher, ProcessPool, SocketPool, SpecPool};
use osp::net::NetResolver;

/// Exit code for a misconfigured environment or command line (the
/// conventional `EX_USAGE`) — same discipline as `osp-worker`'s fatal
/// `OSP_FAULT` handling.
const USAGE_EXIT: u8 = 64;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr = match args.first().map(String::as_str) {
        Some("--listen") => match args.get(1) {
            Some(text) => match WorkerAddr::parse(text) {
                Ok(addr) => addr,
                Err(e) => {
                    eprintln!("osp-serve: {e}");
                    return ExitCode::from(USAGE_EXIT);
                }
            },
            None => {
                eprintln!("osp-serve: --listen needs an address (host:port or uds:/path)");
                return ExitCode::from(USAGE_EXIT);
            }
        },
        _ => {
            eprintln!("osp-serve: usage: osp-serve --listen <addr>");
            return ExitCode::from(USAGE_EXIT);
        }
    };

    let dispatcher = match build_dispatcher() {
        Ok(dispatcher) => dispatcher,
        Err(e) => {
            eprintln!("osp-serve: {e}");
            return ExitCode::from(USAGE_EXIT);
        }
    };
    let config = match build_config() {
        Ok(config) => config,
        Err(e) => {
            eprintln!("osp-serve: {e}");
            return ExitCode::from(USAGE_EXIT);
        }
    };

    let service = ReplayService::new(dispatcher, config);
    let backend = service.backend();
    let lanes = service.lanes();
    let server = match ServeServer::bind(&addr, service) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("osp-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The resolved address (the OS-assigned port, for TCP `:0`), for the
    // harness that launched us. Flushed now: scripts block on this line.
    println!(
        "serving on {} via {backend} ({lanes} lane{})",
        server.local_addr(),
        if lanes == 1 { "" } else { "s" }
    );
    let _ = stdout().flush();

    while !server.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("osp-serve: shutdown requested, draining");
    server.stop();
    ExitCode::SUCCESS
}

/// Builds the backend named by `OSP_DISPATCH`. Junk is an error — the
/// caller exits 64 — never a silent fallback.
fn build_dispatcher() -> Result<Box<dyn Dispatcher + Send>, String> {
    let choice = std::env::var("OSP_DISPATCH").unwrap_or_else(|_| "threads".to_string());
    match choice.trim().to_ascii_lowercase().as_str() {
        "" | "threads" | "thread" => {
            Ok(Box::new(SpecPool::new(ReplayPool::from_env(), NetResolver)))
        }
        "processes" | "process" | "procs" => ProcessPool::from_env()
            .map(|p| Box::new(p) as Box<dyn Dispatcher + Send>)
            .map_err(|e| e.to_string()),
        "socket" | "sockets" => SocketPool::from_env()
            .map(|p| Box::new(p) as Box<dyn Dispatcher + Send>)
            .map_err(|e| e.to_string()),
        other => Err(format!(
            "OSP_DISPATCH=`{other}` is not a backend (want threads, processes, or socket)"
        )),
    }
}

/// Service tuning from `OSP_SERVE_QUEUE` / `OSP_SERVE_CHUNK`; unset keeps
/// the defaults, junk is an error.
fn build_config() -> Result<ServiceConfig, String> {
    let mut config = ServiceConfig::default();
    if let Ok(raw) = std::env::var("OSP_SERVE_QUEUE") {
        config.queue_capacity = raw
            .trim()
            .parse()
            .map_err(|e| format!("OSP_SERVE_QUEUE=`{raw}`: {e}"))?;
    }
    if let Ok(raw) = std::env::var("OSP_SERVE_CHUNK") {
        config.chunk = raw
            .trim()
            .parse()
            .map_err(|e| format!("OSP_SERVE_CHUNK=`{raw}`: {e}"))?;
    }
    Ok(config)
}
