//! `osp-serve` — the long-running replay server: the
//! [`ServeServer`] front door over the full
//! workspace registry ([`NetResolver`]), executing submitted batches on
//! any dispatcher backend.
//!
//! ```text
//! osp-serve --listen <addr> [--state-dir <dir>]
//! ```
//!
//! `--listen` takes `host:port`, `[ipv6]:port`, or `uds:/path`. `--state-dir`
//! turns on crash safety: computed outcomes are journaled under `<dir>`
//! and batch manifests are checkpointed at every chunk boundary, so a
//! server killed mid-batch (`kill -9` included) resumes interrupted
//! batches on restart, re-serving journaled results bit-identically and
//! recomputing only the jobs that never made it to disk.
//!
//! Prints `serving on <addr> via <backend>` on stdout once accepting
//! (the resolved address, for harness scripts that block on the banner),
//! then serves framed submit/status/fetch/cancel/fleet requests until a
//! client sends `shutdown` — at which point the server stops accepting,
//! finishes the running batch, and exits 0.
//!
//! Environment:
//!
//! * `OSP_DISPATCH` — `threads` (default) / `processes` / `socket`.
//!   Unlike the bench harness, a junk value here is **fatal** (exit 64):
//!   a long-running service silently falling back to the wrong backend is
//!   a misconfiguration nobody notices until it matters.
//! * `OSP_WORKERS` / `OSP_WORKER_ADDRS` — sizing/fleet for the chosen
//!   backend, exactly as the dispatch layer reads them.
//! * `OSP_SERVE_QUEUE` / `OSP_SERVE_CHUNK` — submission-queue capacity
//!   and per-dispatch chunk size ([`ServiceConfig`]); junk is fatal.
//! * `OSP_SERVE_CACHE_ENTRIES` / `OSP_SERVE_CACHE_BYTES` — results-cache
//!   caps (`0` = unlimited); junk is fatal.
//! * `OSP_FAULT=die-after-chunk:<n>` — crash drill: exit 86 after `n`
//!   dispatched chunks, *after* their results are journaled. Only this
//!   clause is accepted here (`die:`/`stall:` are worker-side; fatal).
//!
//! Determinism: outcomes fetched from this server are bit-identical to
//! sequential `run_spec` over the same specs, whatever backend executes
//! them (pinned by `tests/replay_service.rs`, `tests/crash_recovery.rs`,
//! and the `serve-smoke` / `chaos-recovery` CI jobs).

use std::io::{stdout, Write};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use osp::core::engine::batch::ReplayPool;
use osp::core::serve::{ReplayService, ServeServer, ServiceConfig};
use osp::core::wire::socket::WorkerAddr;
use osp::core::wire::FaultPlan;
use osp::core::{Dispatcher, ProcessPool, SocketPool, SpecPool};
use osp::net::NetResolver;

/// Exit code for a misconfigured environment or command line (the
/// conventional `EX_USAGE`) — same discipline as `osp-worker`'s fatal
/// `OSP_FAULT` handling.
const USAGE_EXIT: u8 = 64;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = None;
    let mut state_dir = None;
    let mut cursor = args.iter();
    while let Some(flag) = cursor.next() {
        match flag.as_str() {
            "--listen" => match cursor.next() {
                Some(text) => match WorkerAddr::parse(text) {
                    Ok(parsed) => addr = Some(parsed),
                    Err(e) => {
                        eprintln!("osp-serve: {e}");
                        return ExitCode::from(USAGE_EXIT);
                    }
                },
                None => {
                    eprintln!("osp-serve: --listen needs an address (host:port or uds:/path)");
                    return ExitCode::from(USAGE_EXIT);
                }
            },
            "--state-dir" => match cursor.next() {
                Some(dir) => state_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("osp-serve: --state-dir needs a directory");
                    return ExitCode::from(USAGE_EXIT);
                }
            },
            other => {
                eprintln!("osp-serve: unknown argument `{other}`");
                eprintln!("osp-serve: usage: osp-serve --listen <addr> [--state-dir <dir>]");
                return ExitCode::from(USAGE_EXIT);
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("osp-serve: usage: osp-serve --listen <addr> [--state-dir <dir>]");
        return ExitCode::from(USAGE_EXIT);
    };

    let dispatcher = match build_dispatcher() {
        Ok(dispatcher) => dispatcher,
        Err(e) => {
            eprintln!("osp-serve: {e}");
            return ExitCode::from(USAGE_EXIT);
        }
    };
    let config = match build_config(state_dir) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("osp-serve: {e}");
            return ExitCode::from(USAGE_EXIT);
        }
    };

    let service = match ReplayService::new(dispatcher, config) {
        Ok(service) => service,
        Err(e) => {
            eprintln!("osp-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let backend = service.backend();
    let lanes = service.lanes();
    let server = match ServeServer::bind(&addr, service) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("osp-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The resolved address (the OS-assigned port, for TCP `:0`), for the
    // harness that launched us. Flushed now: scripts block on this line.
    println!(
        "serving on {} via {backend} ({lanes} lane{})",
        server.local_addr(),
        if lanes == 1 { "" } else { "s" }
    );
    let _ = stdout().flush();

    while !server.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("osp-serve: shutdown requested, draining");
    server.stop();
    ExitCode::SUCCESS
}

/// Builds the backend named by `OSP_DISPATCH`. Junk is an error — the
/// caller exits 64 — never a silent fallback.
fn build_dispatcher() -> Result<Box<dyn Dispatcher + Send>, String> {
    let choice = std::env::var("OSP_DISPATCH").unwrap_or_else(|_| "threads".to_string());
    match choice.trim().to_ascii_lowercase().as_str() {
        "" | "threads" | "thread" => {
            Ok(Box::new(SpecPool::new(ReplayPool::from_env(), NetResolver)))
        }
        "processes" | "process" | "procs" => ProcessPool::from_env()
            .map(|p| Box::new(p) as Box<dyn Dispatcher + Send>)
            .map_err(|e| e.to_string()),
        "socket" | "sockets" => SocketPool::from_env()
            .map(|p| Box::new(p) as Box<dyn Dispatcher + Send>)
            .map_err(|e| e.to_string()),
        other => Err(format!(
            "OSP_DISPATCH=`{other}` is not a backend (want threads, processes, or socket)"
        )),
    }
}

/// Service tuning from `OSP_SERVE_QUEUE` / `OSP_SERVE_CHUNK` /
/// `OSP_SERVE_CACHE_ENTRIES` / `OSP_SERVE_CACHE_BYTES` / `OSP_FAULT`;
/// unset keeps the defaults, junk is an error.
fn build_config(state_dir: Option<PathBuf>) -> Result<ServiceConfig, String> {
    let mut config = ServiceConfig {
        state_dir,
        ..ServiceConfig::default()
    };
    if let Ok(raw) = std::env::var("OSP_SERVE_QUEUE") {
        config.queue_capacity = raw
            .trim()
            .parse()
            .map_err(|e| format!("OSP_SERVE_QUEUE=`{raw}`: {e}"))?;
    }
    if let Ok(raw) = std::env::var("OSP_SERVE_CHUNK") {
        config.chunk = raw
            .trim()
            .parse()
            .map_err(|e| format!("OSP_SERVE_CHUNK=`{raw}`: {e}"))?;
    }
    if let Ok(raw) = std::env::var("OSP_SERVE_CACHE_ENTRIES") {
        config.cache_entries = raw
            .trim()
            .parse()
            .map_err(|e| format!("OSP_SERVE_CACHE_ENTRIES=`{raw}`: {e}"))?;
    }
    if let Ok(raw) = std::env::var("OSP_SERVE_CACHE_BYTES") {
        config.cache_bytes = raw
            .trim()
            .parse()
            .map_err(|e| format!("OSP_SERVE_CACHE_BYTES=`{raw}`: {e}"))?;
    }
    if let Ok(raw) = std::env::var("OSP_FAULT") {
        let plan = FaultPlan::parse(&raw).map_err(|e| format!("OSP_FAULT: {e}"))?;
        if plan.die_after.is_some() || plan.stall.is_some() {
            return Err(format!(
                "OSP_FAULT=`{raw}`: only die-after-chunk:<n> is a serve-side fault \
                 (die:/stall: belong to osp-worker)"
            ));
        }
        config.die_after_chunk = plan.die_after_chunk;
    }
    Ok(config)
}
