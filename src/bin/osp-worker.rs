//! `osp-worker` — the replay worker process behind
//! [`ProcessPool`](osp_core::ProcessPool) and, in `--listen` mode, the
//! fleet member behind [`SocketPool`](osp_core::SocketPool).
//!
//! Three modes:
//!
//! * **pipe worker** (no arguments, the PR 5 contract): the parent
//!   writes length-prefixed [`JobSpec`](osp_core::JobSpec) frames to
//!   stdin; each job is replayed through the full workspace registry
//!   ([`NetResolver`]: all five core algorithms, both router baselines,
//!   every generator family and the video-trace scenario) and answered
//!   with one framed outcome on stdout, in order. Clean end-of-stream on
//!   stdin is the shutdown signal.
//! * **socket worker** (`--listen <addr>`): binds `addr` — `host:port`
//!   TCP (port `0` for an OS-assigned port) or `uds:/path` — prints
//!   `listening on <addr>` on stdout (the resolved address, for harness
//!   scripts), and serves framed socket sessions: a
//!   [`Hello`](osp_core::wire::Hello) handshake,
//!   then job/ping requests. The `OSP_FAULT` environment variable loads
//!   a deterministic [`FaultPlan`]
//!   (`die:<n>`, `stall:<job>:<ms>`); a fault kill exits with code 86 so
//!   harnesses can tell an injected death from a crash, and a malformed
//!   plan is fatal at startup with code 64 (`EX_USAGE`) — never silently
//!   ignored.
//! * **probe** (`--ping <addr>`): one connect + handshake + heartbeat
//!   round trip against a listening worker; exits 0 and prints the
//!   worker's roster on success — what CI polls during fleet bring-up.
//!
//! ```text
//! cargo build --release --bin osp-worker
//! osp-worker --listen 127.0.0.1:7401 &
//! osp-worker --ping 127.0.0.1:7401
//! OSP_WORKER_ADDRS=127.0.0.1:7401 OSP_DISPATCH=socket ...
//! ```
//!
//! Determinism: a job spec carries everything — scenario, algorithm,
//! seed — so any worker anywhere produces the same outcome bit for bit
//! (pinned by `tests/process_pool_conformance.rs` and
//! `tests/socket_pool_conformance.rs`).

use std::io::{stdin, stdout, BufReader, BufWriter, Write};
use std::process::ExitCode;
use std::time::Duration;

use osp::core::wire::serve;
use osp::core::wire::socket::{ping, SocketServer, WorkerAddr};
use osp::core::FaultPlan;
use osp::net::NetResolver;

/// Exit code of a worker killed by its own [`FaultPlan`] — distinct from
/// success (0) and crash (1) so fleet harnesses can assert the kill was
/// the injected one. Shared with `osp-serve`'s `die-after-chunk` drill.
const FAULT_EXIT: u8 = osp::core::wire::FAULT_EXIT;

/// Exit code for a malformed `OSP_FAULT` value (the conventional
/// `EX_USAGE`). A typo'd plan must kill the worker at startup, loudly —
/// silently running a fault-*free* "fault test" would let the harness
/// believe its injected faults happened.
const USAGE_EXIT: u8 = 64;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => pipe_worker(),
        Some("--listen") => match parse_addr(args.get(1), "--listen") {
            Ok(addr) => socket_worker(&addr),
            Err(code) => code,
        },
        Some("--ping") => match parse_addr(args.get(1), "--ping") {
            Ok(addr) => probe(&addr),
            Err(code) => code,
        },
        Some(other) => {
            eprintln!(
                "osp-worker: unknown argument `{other}` (want --listen <addr> or --ping <addr>)"
            );
            ExitCode::FAILURE
        }
    }
}

fn parse_addr(arg: Option<&String>, flag: &str) -> Result<WorkerAddr, ExitCode> {
    let Some(text) = arg else {
        eprintln!("osp-worker: {flag} needs an address (host:port or uds:/path)");
        return Err(ExitCode::FAILURE);
    };
    WorkerAddr::parse(text).map_err(|e| {
        eprintln!("osp-worker: {e}");
        ExitCode::FAILURE
    })
}

fn pipe_worker() -> ExitCode {
    let mut reader = BufReader::new(stdin().lock());
    let mut writer = BufWriter::new(stdout().lock());
    match serve(&NetResolver, &mut reader, &mut writer) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("osp-worker: {e}");
            ExitCode::FAILURE
        }
    }
}

fn socket_worker(addr: &WorkerAddr) -> ExitCode {
    let fault = match FaultPlan::from_env() {
        Ok(fault) => fault,
        Err(e) => {
            eprintln!("osp-worker: {e}");
            return ExitCode::from(USAGE_EXIT);
        }
    };
    if fault.die_after_chunk.is_some() {
        // Same discipline as a malformed plan: a serve-side clause in a
        // worker's environment means the harness wired its faults to the
        // wrong process — refuse to run rather than silently ignore it.
        eprintln!("osp-worker: OSP_FAULT die-after-chunk is a serve-side fault (use osp-serve)");
        return ExitCode::from(USAGE_EXIT);
    }
    let server = match SocketServer::bind(addr, NetResolver, fault) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("osp-worker: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The resolved address (the OS-assigned port, for TCP `:0`), for the
    // harness that launched us. Flushed now: scripts block on this line.
    println!("listening on {}", server.local_addr());
    let _ = stdout().flush();
    // Park until the fault plan kills the worker (process death is the
    // point of `die:<n>` — the dispatcher must see connections refused),
    // or forever: the fleet harness owns this process's lifetime.
    loop {
        std::thread::sleep(Duration::from_millis(50));
        if server.fault_killed() {
            eprintln!(
                "osp-worker: fault plan kill after {} job(s)",
                server.jobs_answered()
            );
            return ExitCode::from(FAULT_EXIT);
        }
    }
}

fn probe(addr: &WorkerAddr) -> ExitCode {
    match ping(addr, Duration::from_secs(5)) {
        Ok(hello) => {
            println!(
                "worker at {addr} speaks v{} ({})",
                hello.version,
                hello.roster.join(",")
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("osp-worker: {e}");
            ExitCode::FAILURE
        }
    }
}
