//! `osp-worker` — the replay worker process behind
//! [`ProcessPool`](osp_core::ProcessPool).
//!
//! Protocol (see [`osp_core::wire`]): the parent writes length-prefixed
//! [`JobSpec`](osp_core::JobSpec) frames to this process's stdin; for
//! each job the worker replays the spec through the full workspace
//! registry ([`NetResolver`]: all five core algorithms, both router
//! baselines, every generator family and the video-trace scenario) and
//! answers one framed outcome on stdout, in order. A clean
//! end-of-stream on stdin is the shutdown signal.
//!
//! ```text
//! cargo build --release --bin osp-worker
//! OSP_WORKERS=4 ... # the pool locates the binary next to the caller,
//!                   # or via OSP_WORKER_BIN
//! ```
//!
//! Determinism: a job spec carries everything — scenario, algorithm,
//! seed — so any worker anywhere produces the same outcome bit for bit
//! (pinned by `tests/process_pool_conformance.rs`).

use std::io::{stdin, stdout, BufReader, BufWriter};
use std::process::ExitCode;

use osp::core::wire::serve;
use osp::net::NetResolver;

fn main() -> ExitCode {
    let mut reader = BufReader::new(stdin().lock());
    let mut writer = BufWriter::new(stdout().lock());
    match serve(&NetResolver, &mut reader, &mut writer) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("osp-worker: {e}");
            ExitCode::FAILURE
        }
    }
}
