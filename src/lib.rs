//! # osp — Online Set Packing and Competitive Scheduling of Multi-Part Tasks
//!
//! A from-scratch Rust implementation of the system described in
//! *"Online Set Packing and Competitive Scheduling of Multi-Part Tasks"*
//! (Emek, Halldórsson, Mansour, Patt-Shamir, Radhakrishnan, Rawitz —
//! PODC 2010).
//!
//! In online set packing (OSP), elements arrive one at a time; each element
//! announces the sets that contain it and a capacity, and the algorithm must
//! immediately assign the element to at most that many of those sets. A set
//! pays off only if it was chosen for *every one* of its elements. The paper's
//! algorithm, [`RandPr`](osp_core::algorithms::RandPr), draws one random
//! priority per set from the distribution `R_w` (`Pr[X < x] = x^w`) and always
//! keeps the highest-priority sets; it is `k_max·sqrt(σ_max)`-competitive, and
//! no randomized algorithm can do substantially better.
//!
//! This umbrella crate re-exports all sub-crates:
//!
//! * [`mod@core`] — problem model, online engine, `randPr` and baselines.
//! * [`opt`] — offline optimum solvers (exact B&B, greedy, LP bounds).
//! * [`adversary`] — the paper's lower-bound constructions.
//! * [`design`] — (M,N)-gadget combinatorial designs.
//! * [`gf`] — finite fields and universal hashing.
//! * [`net`] — bottleneck-router and multi-hop network scenarios.
//! * [`stats`] — statistics utilities for experiments.
//!
//! # Quickstart
//!
//! ```
//! use osp::core::prelude::*;
//!
//! // Three data frames, two packets each; weight 1.0 apiece.
//! let mut b = InstanceBuilder::new();
//! let s0 = b.add_set(1.0, 2);
//! let s1 = b.add_set(1.0, 2);
//! let s2 = b.add_set(1.0, 2);
//! // Time slots: a burst of {s0, s1}, then {s1, s2}, then singletons.
//! b.add_element(1, &[s0, s1]);
//! b.add_element(1, &[s1, s2]);
//! b.add_element(1, &[s0]);
//! b.add_element(1, &[s2]);
//! let instance = b.build()?;
//!
//! let mut alg = RandPr::from_seed(7);
//! let outcome = run(&instance, &mut alg)?;
//! assert!(outcome.benefit() <= 2.0); // s0 and s2 can both complete; s1 conflicts with both
//! # Ok::<(), osp::core::Error>(())
//! ```

pub use osp_adversary as adversary;
pub use osp_core as core;
pub use osp_design as design;
pub use osp_gf as gf;
pub use osp_net as net;
pub use osp_opt as opt;
pub use osp_stats as stats;

/// Convenience prelude re-exporting the most commonly used items of the
/// whole workspace.
pub mod prelude {
    pub use osp_core::prelude::*;
    pub use osp_opt::prelude::*;
}
