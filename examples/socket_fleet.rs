//! Cluster replay: fan a spec work-list across a socket worker fleet —
//! and survive losing a worker mid-batch.
//!
//! ```text
//! cargo run --release --example socket_fleet
//! OSP_WORKER_ADDRS=127.0.0.1:7401,127.0.0.1:7402 \
//!     cargo run --release --example socket_fleet
//! ```
//!
//! Without `OSP_WORKER_ADDRS` the example self-hosts: it binds three
//! in-process [`SocketServer`] workers on loopback — the same
//! `serve_session` loop `osp-worker --listen` runs — and plants a
//! deterministic [`FaultPlan`] (`die:5`) on the first, so it dies after
//! answering five jobs with its chunk half done. With `OSP_WORKER_ADDRS`
//! set it dispatches to your already-running fleet instead (CI's
//! `socket-fleet` job drives it this way, killing one worker externally).
//!
//! Either way the claim being demonstrated is the tentpole contract of
//! the socket backend: a [`JobSpec`] is *all* the state a job has, so
//! connect retries, heartbeats, timeouts and mid-batch re-dispatch can
//! shuffle jobs between workers freely while every outcome stays
//! **bit-identical** to sequential [`run_spec`] — the fault changes the
//! wall clock, never a bit of the results.

use std::time::{Duration, Instant};

use osp::core::gen::RandomInstanceConfig;
use osp::core::prelude::*;
use osp::core::spec::run_spec;
use osp::core::wire::socket::{ping, SocketServer, WorkerAddr};
use osp::core::{FaultPlan, SocketPool};
use osp::net::NetResolver;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The fleet: ambient (OSP_WORKER_ADDRS) or self-hosted on loopback.
    let mut servers: Vec<SocketServer> = Vec::new();
    let addrs: Vec<WorkerAddr> = match std::env::var("OSP_WORKER_ADDRS") {
        Ok(raw) => {
            let addrs = WorkerAddr::parse_list(&raw)?;
            println!("fleet: {} worker(s) from OSP_WORKER_ADDRS", addrs.len());
            addrs
        }
        Err(_) => {
            let loopback = WorkerAddr::parse("127.0.0.1:0")?;
            // Worker 0 carries the seeded fault: five answers, then death
            // mid-chunk. Workers 1 and 2 inherit its unanswered jobs.
            let doomed = SocketServer::bind(&loopback, NetResolver, FaultPlan::parse("die:5")?)?;
            println!(
                "fleet: self-hosted on loopback, fault plan die:5 on {}",
                doomed.local_addr()
            );
            servers.push(doomed);
            for _ in 0..2 {
                servers.push(SocketServer::bind(
                    &loopback,
                    NetResolver,
                    FaultPlan::default(),
                )?);
            }
            servers.iter().map(|s| s.local_addr().clone()).collect()
        }
    };

    // Fleet bring-up probe: one connect + handshake + heartbeat per
    // worker — what `osp-worker --ping` does, what CI polls on.
    for addr in &addrs {
        let hello = ping(addr, Duration::from_secs(5))?;
        println!(
            "probe: {addr} speaks wire v{} and resolves {} spec variants",
            hello.version,
            hello.roster.len()
        );
    }

    // One mixed work-list: generator scenarios and the video trace, core
    // algorithms and both router baselines, seeds from the shared
    // SplitMix64 stream.
    let uniform = ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(200, 2_000, 6));
    let video = ScenarioSpec::VideoTrace {
        sources: 8,
        frames_per_source: 30,
        frame_interval: 8,
        capacity: 4,
        jitter: 2,
    };
    let mut jobs: Vec<JobSpec> = Vec::new();
    for trial in 0..6u64 {
        let seed = derive_seed(71, trial);
        for (scenario, algorithm) in [
            (&uniform, AlgorithmSpec::RandPr),
            (&uniform, AlgorithmSpec::HashRandPr { independence: 8 }),
            (
                &uniform,
                AlgorithmSpec::Greedy {
                    tie_break: TieBreak::ByWeight,
                },
            ),
            (&video, AlgorithmSpec::TailDrop),
            (&video, AlgorithmSpec::RandomDrop),
        ] {
            jobs.push(JobSpec {
                scenario: scenario.clone(),
                algorithm,
                seed,
            });
        }
    }

    // Sequential reference first: the bits every worker must reproduce.
    let t = Instant::now();
    let sequential: Vec<Outcome> = jobs
        .iter()
        .map(|j| run_spec(j, &NetResolver))
        .collect::<Result<_, _>>()?;
    let t_seq = t.elapsed().as_secs_f64();

    let pool = SocketPool::new(addrs);
    let t = Instant::now();
    let distributed = pool.run_specs(&jobs);
    let t_fleet = t.elapsed().as_secs_f64();

    let mut completed = 0usize;
    for (i, (want, got)) in sequential.iter().zip(&distributed).enumerate() {
        let got = got.as_ref().map_err(|e| format!("job {i}: {e}"))?;
        assert_eq!(want, got, "job {i} diverged across the socket boundary");
        completed += got.completed().len();
    }
    println!(
        "jobs:        {} specs (5 algorithm families × 6 trials), answered in order",
        jobs.len()
    );
    println!("identity:    fleet ≡ sequential bit-for-bit ✓ (Outcome, DecisionLog, died_at)");
    println!("completed:   {completed} sets across the work-list");
    println!(
        "wall clock:  sequential {t_seq:.2}s, fleet {t_fleet:.2}s over {} lane(s)",
        pool.lanes()
    );

    if let Some(doomed) = servers.first() {
        println!(
            "fault:       worker 0 killed by its plan after {} job(s) — survivors absorbed the rest{}",
            doomed.jobs_answered(),
            if doomed.fault_killed() { " ✓" } else { " (did not fire: batch too small)" },
        );
    }
    for server in servers.into_iter().skip(1) {
        server.stop();
    }
    Ok(())
}
