//! The offline-optimum solver ladder, end to end.
//!
//! Competitive analysis needs `w(opt)`. This example shows how the crate
//! brackets it on instances of growing size: exact branch-and-bound while
//! affordable, then certified `[lower, upper]` brackets from greedy +
//! local search below and dual/LP bounds above.
//!
//! ```text
//! cargo run --release --example solver_ladder
//! ```

use osp::core::gen::{random_instance, RandomInstanceConfig};
use osp::opt::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("  m |    n | greedy | +local |   exact (nodes)   | density dual | LP dual");
    println!("----|------|--------|--------|-------------------|--------------|--------");
    for (m, n, sigma) in [
        (20usize, 40usize, 3u32),
        (60, 140, 4),
        (200, 500, 6),
        (600, 1500, 8),
    ] {
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = RandomInstanceConfig::unweighted(m, n, sigma);
        let inst = random_instance(&cfg, &mut rng)?;

        let (greedy, gsets) = best_greedy(&inst);
        let (improved, _) = improve_packing(&inst, &gsets, 20);
        let dual = density_dual_bound(&inst);
        let lp = fractional_packing(&inst, 0.1);

        // Exact search with a budget; prints "—" when the proof times out.
        let sol = branch_and_bound(&inst, &BnbConfig { max_nodes: 500_000 });
        let exact = if sol.optimal {
            format!("{:7.1} ({:>6})", sol.value, sol.nodes)
        } else {
            format!("    —   ({:>6})", sol.nodes)
        };

        println!(
            "{m:3} | {n:4} | {greedy:6.1} | {improved:6.1} | {exact} | {dual:12.1} | {:7.1}",
            lp.dual
        );

        // The ladder is always ordered: every lower bound below every upper.
        assert!(greedy <= improved + 1e-9);
        assert!(improved <= sol.upper_bound + 1e-9);
        assert!(sol.value <= dual + 1e-9);
        assert!(sol.value <= lp.dual + 1e-6);
    }
    println!(
        "\nEvery row is a certified bracket: feasible packings below, dual-feasible\n\
         bounds above. The experiment harness reports competitive ratios against\n\
         these brackets, never against guesses."
    );
    Ok(())
}
