//! Intra-replay parallelism on one huge streamed instance: a producer
//! thread generates arrivals into a recycled chunk ring while the
//! consumer thread replays them, with outcomes bit-identical to the
//! sequential path.
//!
//! ```text
//! cargo run --release --example parallel_replay [-- <arrivals>]
//! ```
//!
//! Defaults to 2 × 10⁶ arrivals. The replay runs three times — plain
//! sequential `run_source`, pipelined at 1 thread (the exact serial
//! fallback `OSP_REPLAY_THREADS=1` selects), and pipelined at 2+
//! threads — and asserts all three outcomes equal bit-for-bit:
//! completed sets, benefit bits, the full `DecisionLog` and every
//! `died_at`. The thread count only moves the wall clock (and on a
//! 1-core box not even that); `tests/parallel_replay.rs` pins the same
//! invariance across the whole algorithm × generator grid.

use std::time::Instant;

use osp::core::engine::parallel::run_source_parallel_with;
use osp::core::gen::{RandomInstanceConfig, UniformSource};
use osp::core::prelude::*;
use osp::core::ReplayScratch;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arrivals: usize = std::env::args()
        .nth(1)
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(2_000_000);
    let (m, sigma, seed) = (1_000usize, 4u32, 42u64);
    let cfg = RandomInstanceConfig::unweighted(m, arrivals, sigma);

    // Leg 1: the sequential reference.
    let t = Instant::now();
    let sequential = run_source(
        &mut UniformSource::new(&cfg, seed)?,
        &mut RandPr::from_seed(7),
    )?;
    let t_seq = t.elapsed().as_secs_f64();

    // Leg 2: one thread — the pipelined entry point degenerates to the
    // exact serial replay loop (no producer thread, no chunk ring).
    let mut scratch = ReplayScratch::new();
    let t = Instant::now();
    let serial_fallback = run_source_parallel_with(
        &mut UniformSource::new(&cfg, seed)?,
        &mut RandPr::from_seed(7),
        &ParallelConfig::with_threads(1),
        &mut scratch,
    )?;
    let t_one = t.elapsed().as_secs_f64();

    // Leg 3: the pipelined session proper — generation and replay
    // overlap, chunk arenas recycle through a bounded ring.
    let threads = osp::core::engine::parallel::threads_from_env().max(2);
    let t = Instant::now();
    let pipelined = run_source_parallel_with(
        &mut UniformSource::new(&cfg, seed)?,
        &mut RandPr::from_seed(7),
        &ParallelConfig::with_threads(threads),
        &mut scratch,
    )?;
    let t_pipe = t.elapsed().as_secs_f64();

    // The contract: bit-identical outcomes, thread count be damned.
    assert_eq!(sequential, serial_fallback, "1-thread fallback diverged");
    assert_eq!(sequential, pipelined, "pipelined replay diverged");
    println!("conformance: pipelined ≡ serial at n={arrivals} ✓");

    let rate = |t: f64| arrivals as f64 / t.max(1e-9) / 1e6;
    println!("arrivals:            {arrivals}");
    println!(
        "sequential:          {t_seq:.2}s  ({:.1}M arrivals/s)",
        rate(t_seq)
    );
    println!(
        "pipelined @1 thread: {t_one:.2}s  ({:.1}M arrivals/s, exact serial fallback)",
        rate(t_one)
    );
    println!(
        "pipelined @{threads} threads: {t_pipe:.2}s  ({:.1}M arrivals/s)",
        rate(t_pipe)
    );
    println!(
        "randPr benefit:      {:.0} of {m} sets completed",
        sequential.benefit()
    );
    Ok(())
}
