//! Distributed replay: fan a seed sweep across `osp-worker` processes.
//!
//! ```text
//! cargo run --release --example distributed_replay [-- <arrivals> [workers]]
//! ```
//!
//! Defaults to 10⁶ arrivals per job across 2 workers. The example is
//! self-contained: it re-executes *itself* with `--worker` as the worker
//! command, so no separately built binary is needed — each child runs
//! [`osp::core::wire::serve`] over the full workspace registry
//! ([`NetResolver`]), exactly what the real `osp-worker` binary does.
//!
//! What crosses the process boundary is **data only**: each job is a
//! framed `(ScenarioSpec, AlgorithmSpec, seed)` triple; each answer is a
//! framed [`Outcome`]. Workers rebuild the fused `UniformSource` stream
//! from the spec locally (constant memory, see
//! `examples/streaming_replay.rs`), so the parent never materializes —
//! or even holds — a single instance. Outcomes are bit-identical to
//! sequential replay of the same specs (spot-checked below; pinned in
//! full by `tests/process_pool_conformance.rs`).

use std::time::Instant;

use osp::core::gen::RandomInstanceConfig;
use osp::core::prelude::*;
use osp::core::wire::serve;
use osp::net::NetResolver;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--worker") {
        // Child mode: speak the frame protocol on stdin/stdout until EOF.
        let mut reader = std::io::BufReader::new(std::io::stdin().lock());
        let mut writer = std::io::BufWriter::new(std::io::stdout().lock());
        serve(&NetResolver, &mut reader, &mut writer)?;
        return Ok(());
    }
    let arrivals: usize = args
        .first()
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(1_000_000);
    let workers: usize = args.get(1).map(|v| v.parse()).transpose()?.unwrap_or(2);

    let me = std::env::current_exe()?;
    let pool = ProcessPool::with_command(
        workers,
        vec![me.to_string_lossy().into_owned(), "--worker".into()],
    );

    // The work-list: one scenario family, per-job seeds derived with the
    // same SplitMix64 discipline every in-process lane uses.
    let scenario = ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(1_000, arrivals, 4));
    let trials = 8u64;
    let jobs = derived_jobs(&scenario, &AlgorithmSpec::RandPr, 42, trials);

    // Conformance spot check at a cheap size: the worker processes must
    // answer exactly what sequential run_spec computes.
    let small_jobs = derived_jobs(
        &ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(1_000, 10_000, 4)),
        &AlgorithmSpec::RandPr,
        42,
        4,
    );
    let sequential: Vec<Outcome> = small_jobs
        .iter()
        .map(|j| run_spec(j, &NetResolver))
        .collect::<Result<_, _>>()?;
    let distributed: Vec<Outcome> = pool
        .run_specs(&small_jobs)
        .into_iter()
        .collect::<Result<_, _>>()?;
    assert_eq!(sequential, distributed, "workers must agree bit-for-bit");
    println!("conformance: {workers} worker processes ≡ sequential at n=10,000 ✓");

    // The big fan-out: streams are generated inside the workers.
    let t = Instant::now();
    let outcomes = pool.run_specs(&jobs);
    let elapsed = t.elapsed().as_secs_f64();
    let total_arrivals = arrivals as f64 * trials as f64;
    let mut completed = 0usize;
    for (i, outcome) in outcomes.iter().enumerate() {
        let outcome = outcome.as_ref().map_err(|e| format!("job {i}: {e}"))?;
        completed += outcome.completed().len();
    }
    println!(
        "jobs:              {trials} × {arrivals} arrivals (randPr, seeds from derive_seed(42, ·))"
    );
    println!(
        "workers:           {workers} processes ({})",
        pool.backend()
    );
    println!(
        "distributed run:   {elapsed:.2}s  ({:.1}M arrivals/s aggregate)",
        total_arrivals / elapsed.max(1e-9) / 1e6
    );
    println!(
        "completed sets:    {completed} across {trials} jobs (outcomes returned in submission order)"
    );
    println!("wire traffic:      {trials} JobSpec frames out, {trials} Outcome frames back — no instance ever left a worker");
    Ok(())
}
