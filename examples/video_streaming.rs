//! The paper's motivating scenario: GOP video over a bottleneck router.
//!
//! Multiplexes several video sources onto one link, then compares
//! frame-oblivious router policies (tail-drop, random-drop) against the
//! frame-aware `randPr` on *complete-frame* goodput.
//!
//! ```text
//! cargo run --release --example video_streaming
//! ```

use osp::core::prelude::*;
use osp::net::metrics::goodput;
use osp::net::policy::{RandomDrop, TailDrop};
use osp::net::{trace_to_instance, video_trace, GopConfig, VideoTraceConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("sources | policy        | frame rate | weight rate | packet rate");
    println!("--------|---------------|------------|-------------|------------");
    for sources in [4, 8, 12] {
        let config = VideoTraceConfig {
            sources,
            frames_per_source: 40,
            gop: GopConfig::standard(),
            frame_interval: 8,
            capacity: 4,
            jitter: 0,
        };
        let mut rng = StdRng::seed_from_u64(7);
        let trace = video_trace(&config, &mut rng);
        let mapped = trace_to_instance(&trace);

        let mut policies: Vec<Box<dyn OnlineAlgorithm>> = vec![
            Box::new(TailDrop::new()),
            Box::new(RandomDrop::from_seed(1)),
            Box::new(GreedyOnline::new(TieBreak::ByFewestRemaining)),
            Box::new(RandPr::from_seed(1)),
        ];
        for alg in policies.iter_mut() {
            let outcome = run(&mapped.instance, alg.as_mut())?;
            let report = goodput(&trace, &mapped.instance, &outcome);
            println!(
                "{sources:7} | {:13} | {:10.3} | {:11.3} | {:10.3}",
                alg.name(),
                report.frame_rate(),
                report.weight_rate(),
                report.packet_rate()
            );
        }
        println!("--------|---------------|------------|-------------|------------");
    }
    println!(
        "\nNote the trade: tail-drop maximizes the packet rate but wastes service on\n\
         frames that already lost a packet; randPr concentrates losses on few frames\n\
         and wins where it matters — complete frames delivered."
    );
    Ok(())
}
