//! Crash safety, end to end in one process: journal a batch of outcomes,
//! tear the journal the way a power cut would, flip a bit the way a bad
//! disk would — and watch recovery salvage every intact record, then a
//! restarted replay service answer the whole batch from disk without
//! recomputing a job.
//!
//! ```text
//! cargo run --release --example chaos_recovery
//! ```
//!
//! Four acts:
//!
//! 1. **Journal** — a [`ReplayService`] with a `state_dir` computes a
//!    batch; every outcome lands in `journal.osp` as it is produced.
//! 2. **Corrupt** — with the service gone, the journal's tail is
//!    truncated mid-record (a torn write) and one byte of an intact
//!    record is flipped (rot). Both are different failures: a torn tail
//!    is expected on crash and silently healed; a checksum mismatch is
//!    damage and reported.
//! 3. **Recover** — a fresh service on the same directory salvages every
//!    record that still checks out and resubmits the batch: the salvaged
//!    outcomes are cache hits, bit-identical to sequential [`run_spec`];
//!    only the torn/rotten ones recompute.
//! 4. **Bound** — the same store under a tiny entry cap, to show the LRU
//!    keeping a long-running server's memory flat (watch `evictions`).
//!
//! The real crash drills — `kill -9` on `osp-serve` mid-batch, a worker
//! fleet losing and re-admitting a member — run against the actual
//! binaries in `tests/crash_recovery.rs` and the CI `chaos-recovery`
//! job; this example is the same machinery at arm's length.

use std::fs::OpenOptions;
use std::time::Duration;

use osp::core::engine::batch::ReplayPool;
use osp::core::gen::RandomInstanceConfig;
use osp::core::prelude::*;
use osp::core::serve::{BatchStatus, JobResult, ReplayService, ServiceConfig};
use osp::core::spec::run_spec;
use osp::core::SpecPool;
use osp::net::NetResolver;

fn service(dir: &std::path::Path, cache_entries: usize) -> Result<ReplayService, Error> {
    ReplayService::new(
        Box::new(SpecPool::new(ReplayPool::new(2), NetResolver)),
        ServiceConfig {
            queue_capacity: 8,
            chunk: 4,
            cache_entries,
            state_dir: Some(dir.to_path_buf()),
            ..ServiceConfig::default()
        },
    )
}

fn wait_done(service: &ReplayService, id: u64) -> BatchStatus {
    loop {
        let status = service.status(id).expect("batch exists");
        if matches!(status.state.as_str(), "done" | "failed" | "cancelled") {
            return status;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("osp-chaos-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // The work-list and its sequential reference.
    let jobs = osp::core::derived_jobs(
        &ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(60, 400, 4)),
        &AlgorithmSpec::RandPr,
        4242,
        12,
    );
    let want: Vec<Outcome> = jobs
        .iter()
        .map(|j| run_spec(j, &NetResolver))
        .collect::<Result<_, _>>()?;

    // Act 1: compute once, journaling every outcome.
    {
        let service = service(&dir, 0)?;
        let id = service.submit(jobs.clone())?;
        let status = wait_done(&service, id);
        println!(
            "act 1  journaled: batch {} {} ({} jobs, {} cache misses)",
            id, status.state, status.total, status.cache_misses
        );
        service.shutdown();
    }
    let journal = dir.join("journal.osp");
    let healthy_len = std::fs::metadata(&journal)?.len();
    println!("        journal.osp is {healthy_len} bytes");

    // Act 2: hurt the journal. Tear the tail mid-record, then flip one
    // byte deep inside an earlier record's payload.
    let torn_len = healthy_len - 7;
    OpenOptions::new()
        .write(true)
        .open(&journal)?
        .set_len(torn_len)?;
    let mut bytes = std::fs::read(&journal)?;
    let victim = bytes.len() / 2;
    bytes[victim] ^= 0x40;
    std::fs::write(&journal, &bytes)?;
    println!("act 2  corrupted: tail torn to {torn_len} bytes, bit flipped at offset {victim}");

    // Act 3: recover and resubmit. The torn record and the rotten record
    // are gone; everything else is served from disk, bit for bit.
    {
        let service = service(&dir, 0)?;
        let id = service.submit(jobs.clone())?;
        let status = wait_done(&service, id);
        println!(
            "act 3  recovered: {} of {} jobs from the journal, {} recomputed",
            status.cached, status.total, status.cache_misses
        );
        assert!(status.cached > 0, "recovery salvaged nothing");
        assert!(
            status.cached < status.total,
            "corruption went unnoticed — the drill proved nothing"
        );
        let results = service.fetch(id).expect("batch exists");
        for (index, (want, got)) in want.iter().zip(&results).enumerate() {
            match got {
                JobResult::Ok(got) => assert_eq!(want, got, "job {index} diverged"),
                other => panic!("job {index}: expected an outcome, got {other:?}"),
            }
        }
        println!(
            "        all {} outcomes bit-identical to sequential run_spec",
            results.len()
        );
        service.shutdown();
    }

    // Act 4: the same batch through a 3-entry cache — the LRU evicts to
    // stay bounded, and the counter says so.
    let _ = std::fs::remove_dir_all(&dir);
    {
        let service = service(&dir, 3)?;
        let id = service.submit(jobs)?;
        let status = wait_done(&service, id);
        println!(
            "act 4  bounded: {} jobs through a 3-entry cache, {} evictions",
            status.total, status.cache_evictions
        );
        assert!(status.cache_evictions > 0, "a 3-entry cache must evict");
        service.shutdown();
    }

    let _ = std::fs::remove_dir_all(&dir);
    println!("chaos recovery example: OK");
    Ok(())
}
