//! Quickstart: build a small OSP instance by hand, run the paper's
//! algorithm and the baselines, and compare against the exact offline
//! optimum.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use osp::core::prelude::*;
use osp::opt::prelude::*;
use osp::stats::Summary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three "data frames" (sets) broken into packets (elements).
    // Frame A: 2 packets, weight 1. Frame B: 2 packets, weight 5 — but it
    // collides with both others. Frame C: 1 packet, weight 2.
    let mut builder = InstanceBuilder::new();
    let a = builder.add_set(1.0, 2);
    let b = builder.add_set(5.0, 2);
    let c = builder.add_set(2.0, 1);
    builder.add_element(1, &[a, b]); // burst: A and B collide
    builder.add_element(1, &[a]); // A alone
    builder.add_element(1, &[b, c]); // burst: B and C collide
    let instance = builder.build()?;

    println!(
        "instance: {} sets, {} elements",
        instance.num_sets(),
        instance.num_elements()
    );

    // The exact offline optimum, for reference.
    let solution = branch_and_bound(&instance, &BnbConfig::default());
    println!(
        "offline optimum: value {} using sets {:?} (proven: {})",
        solution.value, solution.chosen, solution.optimal
    );

    // The paper's randomized algorithm, averaged over seeds.
    let trials = 10_000;
    let mut benefit = Summary::new();
    for seed in 0..trials {
        let outcome = run(&instance, &mut RandPr::from_seed(seed))?;
        benefit.add(outcome.benefit());
    }
    println!(
        "randPr: E[benefit] = {:.3} (95% CI {}) over {trials} seeds",
        benefit.mean(),
        benefit.confidence_interval(0.95),
    );
    println!(
        "        competitive ratio vs exact opt: {:.3}",
        solution.value / benefit.mean()
    );

    // Deterministic baselines run once (they are deterministic).
    for policy in TieBreak::all() {
        let mut alg = GreedyOnline::new(policy);
        let outcome = run(&instance, &mut alg)?;
        println!("{:24} benefit = {}", alg.name(), outcome.benefit());
    }

    // The distributed variant: two replicas with the same seed agree.
    let first = run(&instance, &mut HashRandPr::new(8, 7))?;
    let second = run(&instance, &mut HashRandPr::new(8, 7))?;
    assert_eq!(first.completed(), second.completed());
    println!(
        "hashPr replicas agree: completed {:?} with no communication",
        first.completed()
    );

    // The same engine also runs on *streams*: a materialized instance is
    // just one ArrivalSource, and replaying it through the source-generic
    // entry point changes nothing (generators and packet traces plug into
    // the same hole without materializing — see examples/streaming_replay).
    let via_instance = run(&instance, &mut RandPr::from_seed(11))?;
    let via_source = run_source(&mut instance.source(), &mut RandPr::from_seed(11))?;
    assert_eq!(via_instance, via_source);
    println!(
        "streamed replay agrees: benefit {} on both entry points",
        via_source.benefit()
    );
    Ok(())
}
