//! Batch replay: measure an algorithm over thousands of seeds in parallel
//! — and prove the parallelism changes nothing.
//!
//! ```text
//! cargo run --release --example batch_replay
//! ```
//!
//! Generates one random workload, replays `randPr` under 2000 seeds three
//! ways — sequentially, on a 1-shard pool and on an all-cores pool — and
//! shows that all three produce bit-identical outcomes while the parallel
//! run finishes fastest. A fourth leg replays the same trials through the
//! pool's *streamed* lane (`run_sources`), where every shard regenerates
//! its jobs' scenarios on the fly instead of sharing a materialized
//! instance — same outcomes again. Shard count can be pinned with
//! `OSP_REPLAY_SHARDS=n`.

use std::time::Instant;

use osp::core::gen::{random_instance, RandomInstanceConfig, UniformSource};
use osp::core::prelude::*;
use osp::stats::Summary;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const GEN_SEED: u64 = 42;
    let config = RandomInstanceConfig::unweighted(200, 2_000, 6);
    let mut rng = StdRng::seed_from_u64(GEN_SEED);
    let instance = random_instance(&config, &mut rng)?;
    println!(
        "workload: {} sets, {} elements",
        instance.num_sets(),
        instance.num_elements()
    );

    // Fix every trial's seed up front: this is what makes the batch
    // deterministic no matter how it is sharded.
    const TRIALS: u64 = 2_000;
    let seeds: Vec<u64> = (0..TRIALS).map(|i| derive_seed(7, i)).collect();
    let factory = |s: u64| -> Box<dyn OnlineAlgorithm> { Box::new(RandPr::from_seed(s)) };

    let t = Instant::now();
    let sequential: Vec<Outcome> = seeds
        .iter()
        .map(|&s| run(&instance, &mut RandPr::from_seed(s)))
        .collect::<Result<_, _>>()?;
    let t_seq = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let one_shard = ReplayPool::new(1).run_seeds(&instance, &seeds, &factory);
    let t_one = t.elapsed().as_secs_f64();

    let pool = ReplayPool::from_env();
    let t = Instant::now();
    let parallel = pool.run_seeds(&instance, &seeds, &factory);
    let t_par = t.elapsed().as_secs_f64();

    // The streamed lane: no shared instance at all — each shard rebuilds
    // its jobs' scenario from (config, GEN_SEED) as it replays. Sources
    // are deterministic in their construction inputs, so this too is
    // bit-identical to the sequential reference.
    let t = Instant::now();
    let streamed = pool.run_source_seeds(
        &seeds,
        &|_| Box::new(UniformSource::new(&config, GEN_SEED).expect("feasible config")),
        &factory,
    );
    let t_stream = t.elapsed().as_secs_f64();

    assert_eq!(sequential, one_shard, "1-shard pool must match sequential");
    assert_eq!(sequential, parallel, "parallel pool must match sequential");
    assert_eq!(sequential, streamed, "streamed lane must match sequential");

    let benefits: Summary = parallel.iter().map(Outcome::benefit).collect();
    println!("trials:            {TRIALS} (identical outcomes on all paths)");
    println!(
        "mean benefit:      {:.2} ± {:.2}",
        benefits.mean(),
        benefits.confidence_interval(0.95).width() / 2.0
    );
    println!("sequential:        {t_seq:.3}s");
    println!("pool, 1 shard:     {t_one:.3}s");
    println!(
        "pool, {:2} shards:   {t_par:.3}s  ({:.1}× vs sequential)",
        pool.shards(),
        t_seq / t_par.max(1e-9)
    );
    println!("streamed lane:     {t_stream:.3}s  (regenerates per job, no shared instance)");
    Ok(())
}
