//! Open problem 2: what do buffers change?
//!
//! Sweeps the FIFO buffer size in front of the bottleneck link and charts
//! complete-frame goodput for drop-tail vs priority eviction (the buffered
//! adaptation of randPr).
//!
//! ```text
//! cargo run --release --example buffered_router
//! ```

use osp::net::buffer::{simulate_buffered, BufferPolicy};
use osp::net::{video_trace, GopConfig, VideoTraceConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let config = VideoTraceConfig {
        sources: 8,
        frames_per_source: 40,
        gop: GopConfig::standard(),
        frame_interval: 8,
        capacity: 3,
        jitter: 0,
    };
    let mut rng = StdRng::seed_from_u64(21);
    let trace = video_trace(&config, &mut rng);
    println!(
        "trace: {} frames, {} packets, max burst {} vs capacity {}",
        trace.frames().len(),
        trace.total_packets(),
        trace.max_burst(),
        trace.capacity()
    );
    println!("\nbuffer B | drop-tail frames | priority-evict frames | dropped (dt)");
    println!("---------|------------------|-----------------------|-------------");
    for b in [0usize, 1, 2, 4, 8, 16, 32, 64] {
        let dt = simulate_buffered(&trace, b, BufferPolicy::DropTail);
        let pe = simulate_buffered(&trace, b, BufferPolicy::PriorityEvict { seed: 5 });
        println!(
            "{b:8} | {:16} | {:21} | {:12}",
            dt.frames_delivered, pe.frames_delivered, dt.packets_dropped
        );
    }
    println!(
        "\nGoodput rises with B and saturates once the buffer covers the burst scale —\n\
         buffering substitutes for clever dropping, at the cost of queueing delay.\n\
         (The paper's open problem 2 asks exactly this question.)"
    );
}
