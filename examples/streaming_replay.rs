//! Streaming replay at beyond-materialization scale: run the paper's
//! algorithm over tens of millions of arrivals in constant memory.
//!
//! ```text
//! cargo run --release --example streaming_replay [-- <arrivals>]
//! ```
//!
//! Defaults to 10⁷ arrivals; pass `100000000` for the 10⁸ run (a couple
//! of gigabytes *if materialized* — the stream never holds more than the
//! set table either way). The fused `UniformSource` generates each
//! arrival as the engine consumes it: resident state is O(m) — the set
//! metadata, a remap table and one σ-sized member buffer — no matter how
//! long the stream runs, and the outcome is bit-identical to
//! materializing the same seed's instance and replaying it (spot-checked
//! below at a small n; pinned in full by `tests/source_conformance.rs`).

use std::time::Instant;

use osp::core::gen::{random_instance, RandomInstanceConfig, UniformSource};
use osp::core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arrivals: usize = std::env::args()
        .nth(1)
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(10_000_000);
    let (m, sigma, seed) = (1_000usize, 4u32, 42u64);

    // Conformance spot check first, at a size that is cheap to
    // materialize: same seed, both pipelines, bit-identical outcome.
    let small = RandomInstanceConfig::unweighted(m, 10_000, sigma);
    let materialized = {
        let inst = random_instance(&small, &mut StdRng::seed_from_u64(seed))?;
        run(&inst, &mut RandPr::from_seed(7))?
    };
    let streamed = run_source(
        &mut UniformSource::new(&small, seed)?,
        &mut RandPr::from_seed(7),
    )?;
    assert_eq!(materialized, streamed, "pipelines must agree bit-for-bit");
    println!("conformance: streaming ≡ materialized at n=10,000 ✓");

    // The big run: never materialized anywhere.
    let cfg = RandomInstanceConfig::unweighted(m, arrivals, sigma);
    let t = Instant::now();
    let mut source = UniformSource::new(&cfg, seed)?;
    let t_gen = t.elapsed().as_secs_f64();
    let resident = source.state_bytes();

    let t = Instant::now();
    let outcome = run_source(&mut source, &mut RandPr::from_seed(7))?;
    let t_replay = t.elapsed().as_secs_f64();

    // What the materializing pipeline would have had to hold: the CSR
    // arena alone, before the decision log on top.
    let would_be = m * 16 + arrivals * (4 + 4 + sigma as usize * 4);
    println!("arrivals:          {arrivals}");
    println!(
        "source setup:      {t_gen:.2}s (survivor scan over the membership stream, O(m) state)"
    );
    println!(
        "streamed replay:   {t_replay:.2}s  ({:.1}M arrivals/s)",
        arrivals as f64 / t_replay.max(1e-9) / 1e6
    );
    println!(
        "resident source:   {:.1} KiB (constant in n)",
        resident as f64 / 1024.0
    );
    println!(
        "materialized CSR:  {:.2} GiB would have been required",
        would_be as f64 / (1024.0 * 1024.0 * 1024.0)
    );
    println!(
        "randPr benefit:    {:.0} of {} sets completed",
        outcome.benefit(),
        m
    );
    Ok(())
}
