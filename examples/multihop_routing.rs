//! Multi-hop scheduling with the distributed hash-priority implementation.
//!
//! Demonstrates the paper's §3.1 claim: replacing randPr's private
//! randomness with a shared hash of the packet identifier lets every hop
//! decide *locally* — and the global behavior is identical to the
//! centralized algorithm, decision for decision.
//!
//! ```text
//! cargo run --release --example multihop_routing
//! ```

use osp::core::prelude::*;
use osp::net::multihop::{federated_run, multihop_instance, MultihopConfig};
use osp::net::policy::TailDrop;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for hops in [2, 4, 6] {
        let config = MultihopConfig {
            hops,
            packets: 80,
            launch_window: 40,
            capacity: 1,
        };
        let mut rng = StdRng::seed_from_u64(11);
        let mh = multihop_instance(&config, &mut rng)?;

        // Every hop runs its own replica sharing only the hash seed.
        let federated = federated_run(&mh, 8, 99)?;
        // The centralized reference: one algorithm sees everything.
        let centralized = run(&mh.instance, &mut HashRandPr::new(8, 99))?;
        assert_eq!(federated.decisions(), centralized.decisions());

        let tail = run(&mh.instance, &mut TailDrop::new())?;
        println!(
            "{hops} hops: {} (time,hop) elements; federated == centralized: {} | \
             delivered — hashPr: {:2}, tail-drop: {:2} (of {})",
            mh.instance.num_elements(),
            federated.decisions() == centralized.decisions(),
            federated.completed().len(),
            tail.completed().len(),
            config.packets,
        );
    }
    println!(
        "\nEach router computed the same priorities from the packet ids alone —\n\
         zero coordination messages, exactly as §3.1 of the paper promises."
    );
    Ok(())
}
