//! The lower-bound machinery, run live.
//!
//! Part 1 replays Theorem 3's adaptive adversary against every
//! deterministic baseline. Part 2 samples the Lemma 9 / Figure 1
//! four-stage gadget construction, verifies its combinatorial invariants
//! (Propositions 1–2 via `osp-design`), and massacres the baselines on it.
//!
//! ```text
//! cargo run --release --example adversarial_gadget
//! ```

use osp::adversary::deterministic::run_deterministic_adversary;
use osp::adversary::gadget_lb::gadget_lower_bound;
use osp::core::prelude::*;
use osp::design::{verify, Gadget};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Part 1: Theorem 3, adaptively. -------------------------------
    let (sigma, k) = (3u32, 3u32);
    println!(
        "Theorem 3 adversary (σ={sigma}, k={k}; bound σ^(k-1) = {}):",
        sigma.pow(k - 1)
    );
    for policy in TieBreak::all() {
        let mut alg = GreedyOnline::new(policy);
        let name = alg.name();
        let res = run_deterministic_adversary(sigma, k, &mut alg)?;
        println!(
            "  {name:26} completed {:1}, certified opt {:2} → ratio ≥ {:.0}",
            res.outcome.benefit(),
            res.certified_opt.len(),
            res.witnessed_ratio()
        );
    }

    // --- Part 2: the (M,N)-gadget and the Lemma 9 instance. ----------
    let gadget = Gadget::new(4, 5)?;
    verify::check_proposition_1(&gadget).map_err(std::io::Error::other)?;
    verify::check_proposition_2(&gadget).map_err(std::io::Error::other)?;
    println!("\n{gadget}: Propositions 1 and 2 verified exhaustively.");

    let ell = 5u64;
    let mut rng = StdRng::seed_from_u64(3);
    let g = gadget_lower_bound(ell, &mut rng)?;
    println!(
        "Lemma 9 construction (ℓ={ell}): {} sets of size {}, {} elements, planted opt = {}",
        g.instance.num_sets(),
        g.set_size(),
        g.instance.num_elements(),
        g.planted.len()
    );
    for policy in [
        TieBreak::ByIndex,
        TieBreak::ByWeight,
        TieBreak::ByFewestRemaining,
    ] {
        let mut alg = GreedyOnline::new(policy);
        let name = alg.name();
        let out = run(&g.instance, &mut alg)?;
        println!(
            "  {name:26} completed {:3} of a plantable {}",
            out.completed().len(),
            g.planted.len()
        );
    }
    let out = run(&g.instance, &mut RandPr::from_seed(0))?;
    println!(
        "  {:26} completed {:3} — randomization doesn't escape this distribution",
        "randPr",
        out.completed().len()
    );
    Ok(())
}
