//! Replay as a service: submit a batch to a long-running replay server,
//! poll it, fetch bit-identical outcomes — then resubmit and watch the
//! results cache answer without recomputing.
//!
//! ```text
//! cargo run --release --example replay_service
//! OSP_SERVE_ADDR=127.0.0.1:7400 \
//!     cargo run --release --example replay_service
//! ```
//!
//! Without `OSP_SERVE_ADDR` the example self-hosts: it binds an
//! in-process [`ServeServer`] on loopback — the same front door
//! `osp-serve --listen` runs — backed by a three-worker self-hosted
//! socket fleet whose first member carries a `die:5` [`FaultPlan`], so
//! the service rides a mid-batch worker death while serving. With
//! `OSP_SERVE_ADDR` set it talks to your already-running `osp-serve`
//! instead (CI's `serve-smoke` job drives it this way), and
//! `OSP_EXAMPLE_SEED` swaps the work-list's seed base so a rerun can
//! submit jobs the server has never cached (CI's `chaos-recovery` job
//! leans on this to force fresh dispatch after a fleet change).
//!
//! Either way the claim being demonstrated is the serve contract: the
//! submit → status → fetch flow returns outcomes **bit-identical** to
//! sequential [`run_spec`] over the same [`JobSpec`]s, whatever backend
//! executes them — and an identical resubmission is answered from the
//! content-addressed results cache (watch `cache hits` move) without a
//! single job recomputed.

use std::time::{Duration, Instant};

use osp::core::gen::RandomInstanceConfig;
use osp::core::prelude::*;
use osp::core::serve::{JobResult, ReplayService, ServeClient, ServeServer, ServiceConfig};
use osp::core::spec::run_spec;
use osp::core::wire::socket::{SocketServer, WorkerAddr};
use osp::core::{FaultPlan, SocketPool};
use osp::net::NetResolver;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The server: ambient (OSP_SERVE_ADDR) or self-hosted on loopback
    // over a socket fleet with one doomed worker.
    let mut workers: Vec<SocketServer> = Vec::new();
    let mut hosted: Option<ServeServer> = None;
    let serve_addr: WorkerAddr = match std::env::var("OSP_SERVE_ADDR") {
        Ok(raw) => {
            let addr = WorkerAddr::parse(&raw)?;
            println!("server: external osp-serve at {addr}");
            addr
        }
        Err(_) => {
            let loopback = WorkerAddr::parse("127.0.0.1:0")?;
            workers.push(SocketServer::bind(
                &loopback,
                NetResolver,
                FaultPlan::parse("die:5")?,
            )?);
            for _ in 0..2 {
                workers.push(SocketServer::bind(
                    &loopback,
                    NetResolver,
                    FaultPlan::default(),
                )?);
            }
            let addrs = workers.iter().map(|w| w.local_addr().clone()).collect();
            let service =
                ReplayService::new(Box::new(SocketPool::new(addrs)), ServiceConfig::default())?;
            let server = ServeServer::bind(&loopback, service)?;
            let addr = server.local_addr().clone();
            println!(
                "server: self-hosted on {addr} over a 3-worker socket fleet \
                 (fault plan die:5 on worker 0)"
            );
            hosted = Some(server);
            addr
        }
    };

    // One mixed work-list, and the sequential bits it must reproduce.
    // `OSP_EXAMPLE_SEED` swaps the seed base so repeated runs against a
    // long-lived server can submit *fresh* jobs (the CI chaos-recovery
    // job uses this to force real dispatch rounds after a fleet change
    // instead of pure cache hits).
    let seed_base: u64 = std::env::var("OSP_EXAMPLE_SEED")
        .ok()
        .and_then(|raw| raw.parse().ok())
        .unwrap_or(73);
    let uniform = ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(120, 1_200, 5));
    let mut jobs: Vec<JobSpec> = Vec::new();
    for trial in 0..6u64 {
        let seed = derive_seed(seed_base, trial);
        for algorithm in [
            AlgorithmSpec::RandPr,
            AlgorithmSpec::HashRandPr { independence: 8 },
            AlgorithmSpec::Greedy {
                tie_break: TieBreak::ByWeight,
            },
        ] {
            jobs.push(JobSpec {
                scenario: uniform.clone(),
                algorithm,
                seed,
            });
        }
    }
    let sequential: Vec<Outcome> = jobs
        .iter()
        .map(|j| run_spec(j, &NetResolver))
        .collect::<Result<_, _>>()?;

    let mut client = ServeClient::connect(&serve_addr, Duration::from_secs(10))?;

    // First pass: everything computed on the backend.
    let t = Instant::now();
    let first = client.submit(&jobs)?;
    let status = client.wait(first, Duration::from_millis(25), Duration::from_secs(300))?;
    let t_first = t.elapsed().as_secs_f64();
    println!(
        "batch {first}: state {}, {}/{} answered ({} from cache) in {t_first:.2}s",
        status.state, status.answered, status.total, status.cached
    );
    let results = client.fetch(first)?;
    verify(&sequential, &results)?;
    println!("identity:    served ≡ sequential bit-for-bit ✓ (Outcome, DecisionLog, died_at)");
    if !status.excluded.is_empty() {
        println!(
            "fleet:       excluded mid-batch: {}",
            status.excluded.join("; ")
        );
    }

    // Second pass: the same bytes, so the same digests — every job is a
    // cache hit, no backend dispatch at all.
    let t = Instant::now();
    let second = client.submit(&jobs)?;
    let status = client.wait(second, Duration::from_millis(25), Duration::from_secs(300))?;
    let t_second = t.elapsed().as_secs_f64();
    let results = client.fetch(second)?;
    verify(&sequential, &results)?;
    assert_eq!(
        status.cached, status.total,
        "identical resubmission must be answered entirely from the cache"
    );
    println!(
        "batch {second}: {} of {} jobs served from cache in {t_second:.2}s \
         (service lifetime: {} hits / {} misses)",
        status.cached, status.total, status.cache_hits, status.cache_misses
    );

    // `OSP_SERVE_SHUTDOWN=1` (CI's serve-smoke teardown): ask the server
    // to drain and exit instead of leaving it running.
    if std::env::var("OSP_SERVE_SHUTDOWN").is_ok() {
        client.shutdown()?;
        println!("server:      shutdown acknowledged, draining");
    }

    if let Some(server) = hosted {
        server.stop();
    }
    for worker in workers {
        worker.stop();
    }
    Ok(())
}

/// Every served result must be an outcome, bit-identical to the
/// sequential reference at the same index.
fn verify(want: &[Outcome], got: &[JobResult]) -> Result<(), Box<dyn std::error::Error>> {
    assert_eq!(want.len(), got.len(), "result count diverged");
    for (i, (want, got)) in want.iter().zip(got).enumerate() {
        match got {
            JobResult::Ok(got) => {
                assert_eq!(want, got, "job {i} diverged across the serve boundary")
            }
            other => return Err(format!("job {i}: expected an outcome, got {other:?}").into()),
        }
    }
    Ok(())
}
