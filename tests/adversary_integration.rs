//! Integration: the lower-bound constructions against every algorithm.

use osp::adversary::deterministic::run_deterministic_adversary;
use osp::adversary::gadget_lb::gadget_lower_bound;
use osp::adversary::weak::weak_lower_bound;
use osp::core::bounds::theorem_3_lower;
use osp::core::prelude::*;
use osp::net::policy::TailDrop;
use osp::opt::conflict::is_feasible;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn theorem_3_holds_for_every_deterministic_baseline() {
    for (sigma, k) in [(2u32, 3u32), (3, 3), (4, 2)] {
        let bound = theorem_3_lower(sigma, k);
        let mut algs: Vec<Box<dyn OnlineAlgorithm>> = vec![Box::new(TailDrop::new())];
        for policy in TieBreak::all() {
            algs.push(Box::new(GreedyOnline::new(policy)));
        }
        for mut alg in algs {
            let name = alg.name();
            let res = run_deterministic_adversary(sigma, k, alg.as_mut()).unwrap();
            assert!(
                res.outcome.benefit() <= 1.0,
                "{name} completed more than one set"
            );
            assert!(
                res.witnessed_ratio() >= bound,
                "{name}: σ={sigma} k={k} ratio {} < {bound}",
                res.witnessed_ratio()
            );
            assert!(is_feasible(&res.instance, &res.certified_opt));
        }
    }
}

#[test]
fn gadget_instance_starves_all_algorithms() {
    let mut rng = StdRng::seed_from_u64(0);
    let g = gadget_lower_bound(4, &mut rng).unwrap();
    let opt = g.planted.len() as f64; // 64
    assert!(is_feasible(&g.instance, &g.planted));

    let mut algs: Vec<Box<dyn OnlineAlgorithm>> = vec![
        Box::new(TailDrop::new()),
        Box::new(RandPr::from_seed(1)),
        Box::new(RandPr::with_active_filter(2)),
        Box::new(HashRandPr::new(8, 3)),
        Box::new(RandomAssign::from_seed(4)),
    ];
    for policy in TieBreak::all() {
        algs.push(Box::new(GreedyOnline::new(policy)));
    }
    for mut alg in algs {
        let name = alg.name();
        let out = run(&g.instance, alg.as_mut()).unwrap();
        assert!(
            out.benefit() < opt / 2.0,
            "{name} completed {} of {opt} on the Lemma 9 instance",
            out.benefit()
        );
    }
}

#[test]
fn weak_construction_is_consistent_across_algorithms() {
    let mut rng = StdRng::seed_from_u64(5);
    let w = weak_lower_bound(12, &mut rng).unwrap();
    assert!(is_feasible(&w.instance, &w.planted));
    assert_eq!(w.planted.len(), 12);
    // No algorithm may complete more than the optimum.
    for seed in 0..5 {
        let out = run(&w.instance, &mut RandPr::from_seed(seed)).unwrap();
        assert!(out.benefit() <= 12.0);
    }
}

#[test]
fn adversary_scales_with_parameters() {
    // Larger k is strictly worse for the algorithm (ratio grows as σ^(k−1)).
    let mut ratios = Vec::new();
    for k in [2u32, 3, 4] {
        let mut alg = GreedyOnline::new(TieBreak::ByIndex);
        let res = run_deterministic_adversary(3, k, &mut alg).unwrap();
        ratios.push(res.witnessed_ratio());
    }
    assert!(ratios.windows(2).all(|w| w[0] < w[1]), "ratios {ratios:?}");
}
