//! Conformance layer for the socket-backed worker fleet.
//!
//! The tentpole claim extends `tests/process_pool_conformance.rs` across
//! the network boundary: replaying a [`JobSpec`] work-list through a
//! fleet of socket workers ([`SocketPool`] over `osp-worker --listen`
//! endpoints, here hosted in-process by [`SocketServer`]) produces
//! **bit-identical** [`Outcome`]s — completed sets, benefit, per-arrival
//! [`DecisionLog`] and `died_at` — to sequential [`run_spec`], at fleet
//! sizes 1, 2 and 4. And the failure half of the contract: a worker
//! killed mid-batch by a seeded [`FaultPlan`] changes *nothing* in the
//! results (its unanswered jobs are re-dispatched to the survivors), a
//! handshake-version mismatch excludes the impostor without poisoning
//! the fleet, a stalled worker is timed out and routed around, and a
//! fully dead fleet fails every job with a clean, typed
//! [`Error::Worker`] — never a panic, never a hang.

use std::io::BufWriter;
use std::net::TcpListener;
use std::sync::Mutex;
use std::time::Duration;

use osp::core::gen::{CapacityModel, LoadModel, RandomInstanceConfig, UniformSource, WeightModel};
use osp::core::prelude::*;
use osp::core::spec::{run_spec, AlgorithmSpec, JobSpec, ScenarioSpec};
use osp::core::wire::socket::{ping, SocketServer, WorkerAddr};
use osp::core::wire::{read_message, reply, write_message, Hello, Pong, Request, Stall};
use osp::core::{
    derived_jobs, run_source, DispatchEvent, Dispatcher, EventSink, FaultPlan, RetryPolicy,
    SocketConfig, SocketPool, SocketSource, WorkerError,
};
use osp::net::NetResolver;

const FLEET_SIZES: [usize; 3] = [1, 2, 4];

/// Binds one in-process worker on a loopback port of the OS's choosing —
/// the same `serve_session` loop `osp-worker --listen` runs, minus the
/// process boundary, so the suite needs no spawned binaries.
fn worker(fault: FaultPlan) -> SocketServer {
    let addr = WorkerAddr::parse("127.0.0.1:0").expect("loopback address parses");
    SocketServer::bind(&addr, NetResolver, fault).expect("loopback bind")
}

/// A healthy fleet of `n` workers.
fn fleet(n: usize) -> Vec<SocketServer> {
    (0..n).map(|_| worker(FaultPlan::default())).collect()
}

/// A pool over `servers` with test-friendly deadlines: loopback connects
/// either succeed instantly or never, so short timeouts keep the failure
/// tests fast without ever firing on the healthy path.
fn pool_over(servers: &[SocketServer]) -> SocketPool {
    let addrs = servers.iter().map(|s| s.local_addr().clone()).collect();
    SocketPool::with_config(
        addrs,
        SocketConfig {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(10),
            retry: RetryPolicy {
                attempts: 2,
                base_delay: Duration::from_millis(10),
                max_delay: Duration::from_millis(50),
            },
            ..SocketConfig::default()
        },
    )
}

/// The four generator models of the conformance grid (same roster as
/// `tests/process_pool_conformance.rs`).
fn model_grid() -> Vec<(&'static str, ScenarioSpec)> {
    vec![
        (
            "uniform unweighted (m=30, n=80, σ=4)",
            ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(30, 80, 4)),
        ),
        (
            "zipf weights, variable loads and capacities",
            ScenarioSpec::Uniform(RandomInstanceConfig {
                num_sets: 40,
                num_elements: 100,
                load: LoadModel::Uniform { lo: 1, hi: 6 },
                weights: WeightModel::Zipf { exponent: 1.0 },
                capacities: CapacityModel::Uniform { lo: 1, hi: 3 },
            }),
        ),
        (
            "bi-regular (m=24, k=3, σ=6)",
            ScenarioSpec::Biregular {
                num_sets: 24,
                set_size: 3,
                load: 6,
            },
        ),
        (
            "fixed size, skewed loads (m=40, k=4, skew=1.2)",
            ScenarioSpec::FixedSize {
                num_sets: 40,
                set_size: 4,
                num_elements: 90,
                skew: 1.2,
            },
        ),
    ]
}

/// The five core algorithm families (oracle targeting whatever greedy
/// completes — a pure function of the scenario spec, as in the process
/// suite).
fn algorithm_roster(scenario: &ScenarioSpec, seed: u64) -> Vec<(&'static str, AlgorithmSpec)> {
    let greedy = AlgorithmSpec::Greedy {
        tie_break: TieBreak::ByWeight,
    };
    let target = run_spec(
        &JobSpec {
            scenario: scenario.clone(),
            algorithm: greedy.clone(),
            seed,
        },
        &NetResolver,
    )
    .expect("greedy replays every grid scenario")
    .completed()
    .to_vec();
    vec![
        ("greedy", greedy),
        ("randPr", AlgorithmSpec::RandPr),
        ("hashPr8", AlgorithmSpec::HashRandPr { independence: 8 }),
        ("random_assign", AlgorithmSpec::RandomAssign),
        ("oracle", AlgorithmSpec::Oracle { target }),
    ]
}

/// Full field-by-field comparison through the public accessors, so an
/// assertion failure names the diverging field.
fn assert_outcomes_identical(label: &str, want: &Outcome, got: &Outcome) {
    assert_eq!(want.completed(), got.completed(), "{label}: completed sets");
    assert!(
        want.benefit().to_bits() == got.benefit().to_bits(),
        "{label}: benefit diverged ({} vs {})",
        want.benefit(),
        got.benefit()
    );
    assert_eq!(want.decisions(), got.decisions(), "{label}: decision log");
    for i in 0..1024u32 {
        let s = SetId(i);
        assert_eq!(want.died_at(s), got.died_at(s), "{label}: died_at({s:?})");
    }
    assert_eq!(want, got, "{label}: outcome diverged");
}

#[test]
fn socket_pool_is_bit_identical_to_sequential_at_fleet_sizes_1_2_4() {
    // 5 algorithms × 4 generator models, 3 seeds each, one big mixed
    // work-list through real framed TCP connections. The sequential
    // reference and the socket fleet at every size must agree bit for
    // bit — which worker answers a job is invisible in the results.
    let mut jobs: Vec<JobSpec> = Vec::new();
    let mut labels: Vec<String> = Vec::new();
    for (model, scenario) in model_grid() {
        for trial in 0..3u64 {
            let seed = derive_seed(811, trial);
            for (family, algorithm) in algorithm_roster(&scenario, seed) {
                jobs.push(JobSpec {
                    scenario: scenario.clone(),
                    algorithm,
                    seed,
                });
                labels.push(format!("{model} / {family} / trial {trial}"));
            }
        }
    }
    let sequential: Vec<Outcome> = jobs
        .iter()
        .map(|j| run_spec(j, &NetResolver).unwrap())
        .collect();

    for size in FLEET_SIZES {
        let servers = fleet(size);
        let pool = pool_over(&servers);
        assert_eq!(pool.backend(), "sockets");
        assert_eq!(pool.lanes(), size);
        let distributed = pool.run_specs(&jobs);
        assert_eq!(distributed.len(), jobs.len());
        for ((want, got), label) in sequential.iter().zip(&distributed).zip(&labels) {
            let got = got
                .as_ref()
                .unwrap_or_else(|e| panic!("fleet of {size} / {label}: {e}"));
            assert_outcomes_identical(&format!("fleet of {size} / {label}"), want, got);
        }
        for server in servers {
            server.stop();
        }
    }
}

#[test]
fn injected_mid_batch_kill_re_dispatches_bit_identically() {
    // The acceptance scenario: 3 workers, one carrying a seeded
    // FaultPlan that kills it after 5 answered jobs — mid-batch, with
    // its chunk half done. The pool must notice the disconnect,
    // re-dispatch the unanswered jobs to the two survivors, and produce
    // results bit-identical to sequential replay for all 7 algorithm
    // families. The fault is part of the plan, so this failure path is
    // replayable bit for bit.
    let uniform = ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(30, 80, 4));
    let video = ScenarioSpec::VideoTrace {
        sources: 4,
        frames_per_source: 12,
        frame_interval: 8,
        capacity: 4,
        jitter: 2,
    };
    let mut jobs: Vec<JobSpec> = Vec::new();
    let mut labels: Vec<String> = Vec::new();
    for trial in 0..4u64 {
        // One seed drives both scenario and algorithm, so the oracle's
        // greedy-derived target must be recomputed per trial seed.
        let seed = derive_seed(812, trial);
        let mut families: Vec<(&str, AlgorithmSpec, &ScenarioSpec)> =
            algorithm_roster(&uniform, seed)
                .into_iter()
                .map(|(name, alg)| (name, alg, &uniform))
                .collect();
        families.push(("tail_drop", AlgorithmSpec::TailDrop, &video));
        families.push(("random_drop", AlgorithmSpec::RandomDrop, &video));
        assert_eq!(families.len(), 7, "the full 7-algorithm roster");
        for (family, algorithm, scenario) in families {
            jobs.push(JobSpec {
                scenario: scenario.clone(),
                algorithm,
                seed,
            });
            labels.push(format!("{family} / trial {trial}"));
        }
    }
    let sequential: Vec<Outcome> = jobs
        .iter()
        .map(|j| run_spec(j, &NetResolver).unwrap())
        .collect();

    let doomed = worker(FaultPlan {
        die_after: Some(5),
        ..FaultPlan::NONE
    });
    let survivors = fleet(2);
    let mut servers = vec![doomed];
    servers.extend(survivors);
    let pool = pool_over(&servers);
    let distributed = pool.run_specs(&jobs);

    for ((want, got), label) in sequential.iter().zip(&distributed).zip(&labels) {
        let got = got
            .as_ref()
            .unwrap_or_else(|e| panic!("kill fleet / {label}: {e}"));
        assert_outcomes_identical(&format!("kill fleet / {label}"), want, got);
    }
    // The kill actually fired where the plan said: 5 answers, then death.
    assert!(servers[0].fault_killed(), "the fault plan must have fired");
    assert_eq!(servers[0].jobs_answered(), 5);
    for server in servers.into_iter().skip(1) {
        server.stop();
    }
}

#[test]
fn handshake_version_mismatch_is_a_typed_error_and_fleet_recovers() {
    // An impostor speaking the wrong wire version: accepts connections
    // and greets with version 999. Probing it yields the typed
    // handshake error; a fleet containing it excludes it and answers
    // every job through the conforming worker, bit-identically.
    let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
    let impostor = WorkerAddr::parse(&listener.local_addr().unwrap().to_string()).unwrap();
    std::thread::spawn(move || {
        while let Ok((stream, _)) = listener.accept() {
            let mut writer = BufWriter::new(stream);
            let _ = write_message(
                &mut writer,
                &Hello {
                    version: 999,
                    roster: vec![],
                },
            );
        }
    });

    let probe = ping(&impostor, Duration::from_secs(5));
    match probe {
        Err(Error::Worker(WorkerError::Handshake { .. })) => {}
        other => panic!("want a typed handshake error, got {other:?}"),
    }

    let genuine = worker(FaultPlan::default());
    let addrs = vec![impostor, genuine.local_addr().clone()];
    let pool = SocketPool::with_config(
        addrs,
        SocketConfig {
            retry: RetryPolicy {
                attempts: 1,
                base_delay: Duration::from_millis(10),
                max_delay: Duration::from_millis(10),
            },
            ..SocketConfig::default()
        },
    );
    let scenario = ScenarioSpec::Biregular {
        num_sets: 24,
        set_size: 3,
        load: 6,
    };
    let jobs = derived_jobs(&scenario, &AlgorithmSpec::RandPr, 813, 6);
    let out = pool.run_specs(&jobs);
    for (i, (job, got)) in jobs.iter().zip(&out).enumerate() {
        let want = run_spec(job, &NetResolver).unwrap();
        assert_outcomes_identical(
            &format!("job {i} despite the impostor"),
            &want,
            got.as_ref().unwrap_or_else(|e| panic!("job {i}: {e}")),
        );
    }
    genuine.stop();
}

#[test]
fn stalled_worker_times_out_and_survivor_finishes_the_batch() {
    // One worker stalls 2 s before its first answer; the pool's read
    // deadline is 200 ms. The stalled lane must be timed out and its
    // chunk re-dispatched — every job still answered, bit-identically,
    // well before the stall resolves.
    let stalled = worker(FaultPlan {
        stall: Some(Stall {
            job: 0,
            millis: 2_000,
        }),
        ..FaultPlan::NONE
    });
    let healthy = worker(FaultPlan::default());
    let addrs = vec![stalled.local_addr().clone(), healthy.local_addr().clone()];
    let pool = SocketPool::with_config(
        addrs,
        SocketConfig {
            read_timeout: Duration::from_millis(200),
            retry: RetryPolicy {
                attempts: 1,
                base_delay: Duration::from_millis(10),
                max_delay: Duration::from_millis(10),
            },
            ..SocketConfig::default()
        },
    );
    let scenario = ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(20, 50, 3));
    let jobs = derived_jobs(&scenario, &AlgorithmSpec::RandPr, 814, 8);
    let out = pool.run_specs(&jobs);
    for (i, (job, got)) in jobs.iter().zip(&out).enumerate() {
        let want = run_spec(job, &NetResolver).unwrap();
        let got = got
            .as_ref()
            .unwrap_or_else(|e| panic!("job {i} around the stall: {e}"));
        assert_outcomes_identical(&format!("job {i} around the stall"), &want, got);
    }
    // A stall is not a fault kill: the worker is slow, not dead.
    assert!(!stalled.fault_killed());
    stalled.stop();
    healthy.stop();
}

#[test]
fn all_workers_dead_fails_every_job_with_a_clean_worker_error() {
    // A fleet whose only worker has already stopped: every job must come
    // back as a typed Error::Worker(AllWorkersDead) — in order, with no
    // panic and no hang.
    let server = worker(FaultPlan::default());
    let addr = server.local_addr().clone();
    server.stop();

    let pool = SocketPool::with_config(
        vec![addr],
        SocketConfig {
            connect_timeout: Duration::from_millis(250),
            retry: RetryPolicy {
                attempts: 2,
                base_delay: Duration::from_millis(5),
                max_delay: Duration::from_millis(10),
            },
            ..SocketConfig::default()
        },
    );
    let scenario = ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(20, 50, 3));
    let jobs = derived_jobs(&scenario, &AlgorithmSpec::RandPr, 815, 5);
    let out = pool.run_specs(&jobs);
    assert_eq!(out.len(), jobs.len());
    for (i, got) in out.iter().enumerate() {
        match got {
            Err(Error::Worker(WorkerError::AllWorkersDead { pending })) => {
                assert_eq!(*pending, jobs.len(), "job {i}: pending count");
            }
            other => panic!("job {i}: want AllWorkersDead, got {other:?}"),
        }
        let text = got.as_ref().unwrap_err().to_string();
        assert!(text.contains("worker error"), "job {i}: {text}");
    }
}

/// Records every dispatch event for post-run assertions.
#[derive(Default)]
struct Recorder(Mutex<Vec<DispatchEvent>>);

impl EventSink for Recorder {
    fn event(&self, event: DispatchEvent) {
        self.0.lock().unwrap().push(event);
    }
}

/// Which frame a [`rogue_worker`] answers *every* request with.
enum RogueFrame {
    /// Always a job reply — wrong where a pong is due.
    Reply,
    /// Always a pong — wrong where a job reply is due.
    Pong,
}

/// A protocol-conforming handshake followed by systematically wrong
/// answers: speaks a valid [`Hello`], decodes every [`Request`], and
/// answers each with the same fixed frame type regardless of what was
/// asked.
fn rogue_worker(frame: RogueFrame) -> WorkerAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
    let addr = WorkerAddr::parse(&listener.local_addr().unwrap().to_string()).unwrap();
    std::thread::spawn(move || {
        while let Ok((stream, _)) = listener.accept() {
            let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
            let mut writer = BufWriter::new(stream);
            if write_message(&mut writer, &Hello::for_resolver(&NetResolver)).is_err() {
                continue;
            }
            use std::io::Write;
            let _ = writer.flush();
            while let Ok(Some(_)) = read_message::<_, Request>(&mut reader) {
                let sent = match frame {
                    RogueFrame::Reply => write_message(
                        &mut writer,
                        &reply::Reply {
                            ok: None,
                            err: Some("rogue".to_string()),
                        },
                    ),
                    RogueFrame::Pong => write_message(&mut writer, &Pong { pong: 0 }),
                };
                if sent.is_err() || writer.flush().is_err() {
                    break;
                }
            }
        }
    });
    addr
}

#[test]
fn wrong_frame_type_is_a_typed_frame_order_error() {
    // A pong where a job reply is due: the very first answer is the
    // wrong frame type. The pool must surface a typed FrameOrder error
    // naming both sides — not a generic decode failure — and exclude the
    // worker (single-worker fleet, so the jobs then fail AllWorkersDead).
    let pool = SocketPool::with_config(
        vec![rogue_worker(RogueFrame::Pong)],
        SocketConfig {
            retry: RetryPolicy {
                attempts: 1,
                base_delay: Duration::from_millis(5),
                max_delay: Duration::from_millis(5),
            },
            ..SocketConfig::default()
        },
    );
    let scenario = ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(20, 50, 3));
    let jobs = derived_jobs(&scenario, &AlgorithmSpec::RandPr, 817, 3);
    let recorder = Recorder::default();
    let out = pool.run_specs_with_events(&jobs, &recorder);
    assert!(out.iter().all(|r| r.is_err()), "no real worker answered");
    let events = recorder.0.lock().unwrap();
    let excluded: Vec<&WorkerError> = events
        .iter()
        .filter_map(|e| match e {
            DispatchEvent::WorkerExcluded { error, .. } => Some(error),
            _ => None,
        })
        .collect();
    assert_eq!(excluded.len(), 1, "exactly one exclusion: {events:?}");
    match excluded[0] {
        WorkerError::FrameOrder { expected, got, .. } => {
            assert_eq!(*expected, "job reply");
            assert_eq!(*got, "pong");
        }
        other => panic!("want FrameOrder, got {other:?}"),
    }
    let text = excluded[0].to_string();
    assert!(
        text.contains("answered out of order")
            && text.contains("job reply")
            && text.contains("pong"),
        "message must name both frame types: {text}"
    );
}

#[test]
fn job_reply_where_pong_is_due_is_a_typed_frame_order_error() {
    // The other direction: heartbeats every job, and the rogue answers
    // the ping with a job reply. The job answers themselves decode fine
    // (remote errors), so the violation is pinned precisely to the
    // heartbeat slot.
    let pool = SocketPool::with_config(
        vec![rogue_worker(RogueFrame::Reply)],
        SocketConfig {
            heartbeat_every: 1,
            retry: RetryPolicy {
                attempts: 1,
                base_delay: Duration::from_millis(5),
                max_delay: Duration::from_millis(5),
            },
            ..SocketConfig::default()
        },
    );
    let scenario = ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(20, 50, 3));
    let jobs = derived_jobs(&scenario, &AlgorithmSpec::RandPr, 818, 4);
    let recorder = Recorder::default();
    let _ = pool.run_specs_with_events(&jobs, &recorder);
    let events = recorder.0.lock().unwrap();
    let frame_orders: Vec<(&str, &str)> = events
        .iter()
        .filter_map(|e| match e {
            DispatchEvent::WorkerExcluded {
                error: WorkerError::FrameOrder { expected, got, .. },
                ..
            } => Some((*expected, *got)),
            _ => None,
        })
        .collect();
    assert_eq!(
        frame_orders,
        vec![("pong", "job reply")],
        "events: {events:?}"
    );
}

#[test]
fn malformed_fault_plan_is_fatal_at_worker_startup() {
    // A typo'd OSP_FAULT must kill `osp-worker --listen` with the usage
    // exit (64) before it binds — never a silently fault-free "fault
    // test". Asserted against the real binary.
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_osp-worker"))
        .args(["--listen", "127.0.0.1:0"])
        .env("OSP_FAULT", "explode:now")
        .output()
        .expect("spawn osp-worker");
    assert_eq!(out.status.code(), Some(64), "status: {:?}", out.status);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("OSP_FAULT") && stderr.contains("explode:now"),
        "stderr must name the bad plan: {stderr}"
    );
    assert!(
        !String::from_utf8_lossy(&out.stdout).contains("listening"),
        "the worker must die before binding"
    );

    // A well-formed plan still comes up (and an unset one, trivially).
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_osp-worker"))
        .args(["--listen", "127.0.0.1:0"])
        .env("OSP_FAULT", "die:3")
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn osp-worker");
    let mut banner = String::new();
    use std::io::BufRead;
    std::io::BufReader::new(child.stdout.take().expect("stdout piped"))
        .read_line(&mut banner)
        .expect("read banner");
    assert!(banner.starts_with("listening on "), "banner: {banner}");
    child.kill().expect("kill worker");
    let _ = child.wait();
}

#[test]
fn socket_source_streams_arrivals_bit_identically() {
    // The streaming half of the wire: a server pushing a generator
    // through `wire::tap::send_source`, a client replaying straight off
    // the socket via SocketSource — outcome bit-identical to running
    // the same seeded source in-process.
    let config = RandomInstanceConfig::unweighted(30, 80, 4);
    let seed = 816u64;
    let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
    let addr = WorkerAddr::parse(&listener.local_addr().unwrap().to_string()).unwrap();
    let server_config = config;
    let feeder = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("one client");
        let mut writer = BufWriter::new(stream);
        let mut source = UniformSource::new(&server_config, seed).expect("feasible source");
        osp::core::wire::tap::send_source(&mut source, &mut writer, 16).expect("tap stream")
    });

    let mut remote = SocketSource::connect(&addr, Duration::from_secs(5)).expect("connect");
    let streamed = run_source(&mut remote, &mut RandPr::from_seed(seed)).unwrap();
    assert!(remote.error().is_none(), "{:?}", remote.error());
    let sent = feeder.join().expect("feeder thread");
    assert_eq!(sent, 80, "every element crossed the wire");

    let mut local = UniformSource::new(&config, seed).unwrap();
    let direct = run_source(&mut local, &mut RandPr::from_seed(seed)).unwrap();
    assert_outcomes_identical("socket-streamed source", &direct, &streamed);
}
