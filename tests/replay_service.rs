//! Conformance layer for the replay service (`osp-serve`'s core).
//!
//! The acceptance claim: the **submit → status → fetch** flow through a
//! [`ServeServer`]/[`ServeClient`] pair is bit-identical to sequential
//! [`run_spec`] over the same [`JobSpec`]s, whichever [`Dispatcher`]
//! backend executes the batches — threads, `osp-worker` child processes,
//! or a socket fleet, including a fleet with an injected mid-batch worker
//! kill. And the service semantics around it: an identical resubmission
//! is answered from the content-addressed results cache (hit counters
//! observed, outcomes still bit-identical), the bounded submission queue
//! answers [`Error::Unavailable`] under back-pressure instead of growing,
//! and cancellation stops a batch at a chunk boundary while keeping the
//! answers already computed fetchable.

use std::time::Duration;

use osp::core::gen::RandomInstanceConfig;
use osp::core::prelude::*;
use osp::core::serve::{JobResult, ReplayService, ServeClient, ServeServer, ServiceConfig};
use osp::core::spec::{run_spec, AlgorithmSpec, JobSpec, ScenarioSpec};
use osp::core::wire::socket::{SocketServer, WorkerAddr};
use osp::core::{
    derived_jobs, Dispatcher, Error, EventSink, FaultPlan, ProcessPool, ReplayPool, RetryPolicy,
    SocketConfig, SocketPool, SpecPool,
};
use osp::net::NetResolver;

/// A mixed work-list: two scenario families × three algorithm families,
/// two trials each — small enough to run on every backend, varied enough
/// that a merge-order or cache-keying bug cannot hide.
fn grid_jobs() -> Vec<JobSpec> {
    let uniform = ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(24, 60, 3));
    let biregular = ScenarioSpec::Biregular {
        num_sets: 24,
        set_size: 3,
        load: 6,
    };
    let mut jobs = Vec::new();
    for scenario in [&uniform, &biregular] {
        for algorithm in [
            AlgorithmSpec::RandPr,
            AlgorithmSpec::Greedy {
                tie_break: TieBreak::ByWeight,
            },
            AlgorithmSpec::HashRandPr { independence: 8 },
        ] {
            for trial in 0..2u64 {
                jobs.push(JobSpec {
                    scenario: scenario.clone(),
                    algorithm: algorithm.clone(),
                    seed: derive_seed(901, trial),
                });
            }
        }
    }
    jobs
}

fn sequential(jobs: &[JobSpec]) -> Vec<Outcome> {
    jobs.iter()
        .map(|j| run_spec(j, &NetResolver).expect("sequential reference"))
        .collect()
}

fn assert_bit_identical(label: &str, want: &Outcome, got: &Outcome) {
    assert_eq!(want.completed(), got.completed(), "{label}: completed sets");
    assert!(
        want.benefit().to_bits() == got.benefit().to_bits(),
        "{label}: benefit diverged ({} vs {})",
        want.benefit(),
        got.benefit()
    );
    assert_eq!(want.decisions(), got.decisions(), "{label}: decision log");
    assert_eq!(want, got, "{label}: outcome diverged");
}

/// The full acceptance flow over the wire: submit the batch twice through
/// a served front door, assert bit-identity with the sequential reference
/// both times, and assert the second pass was answered from the cache.
fn assert_serve_conformance(label: &str, dispatcher: Box<dyn Dispatcher + Send>) {
    let jobs = grid_jobs();
    let want = sequential(&jobs);
    let service = ReplayService::new(
        dispatcher,
        ServiceConfig {
            queue_capacity: 8,
            chunk: 5,
            ..ServiceConfig::default()
        },
    )
    .expect("service starts");
    let server =
        ServeServer::bind(&WorkerAddr::parse("127.0.0.1:0").unwrap(), service).expect("serve bind");
    let mut client =
        ServeClient::connect(server.local_addr(), Duration::from_secs(10)).expect("serve dial");

    // First submission: everything computed, nothing cached.
    let first = client.submit(&jobs).expect("submit");
    let status = client
        .wait(first, Duration::from_millis(10), Duration::from_secs(120))
        .expect("wait");
    assert_eq!(status.state, "done", "{label}: first batch");
    assert_eq!(status.answered, jobs.len() as u64, "{label}: answered");
    assert_eq!(status.cached, 0, "{label}: a fresh service has no hits");
    assert_eq!(status.cache_misses, jobs.len() as u64, "{label}: misses");
    let results = client.fetch(first).expect("fetch");
    assert_eq!(results.len(), jobs.len());
    for (i, (result, want)) in results.iter().zip(&want).enumerate() {
        match result {
            JobResult::Ok(got) => assert_bit_identical(&format!("{label} / job {i}"), want, got),
            other => panic!("{label} / job {i}: expected an outcome, got {other:?}"),
        }
    }

    // Identical resubmission: served from the cache — hit counter moves,
    // no job recomputed, outcomes still bit-identical.
    let second = client.submit(&jobs).expect("resubmit");
    let status = client
        .wait(second, Duration::from_millis(10), Duration::from_secs(120))
        .expect("wait");
    assert_eq!(status.state, "done", "{label}: resubmission");
    assert_eq!(
        status.cached,
        jobs.len() as u64,
        "{label}: every job must hit the cache"
    );
    assert_eq!(status.cache_hits, jobs.len() as u64, "{label}: hit counter");
    assert!(
        status.jobs.iter().all(|s| s == "cached"),
        "{label}: per-job states: {:?}",
        status.jobs
    );
    let results = client.fetch(second).expect("fetch cached");
    for (i, (result, want)) in results.iter().zip(&want).enumerate() {
        match result {
            JobResult::Ok(got) => {
                assert_bit_identical(&format!("{label} / cached job {i}"), want, got)
            }
            other => panic!("{label} / cached job {i}: expected an outcome, got {other:?}"),
        }
    }
    server.stop();
}

#[test]
fn served_batches_match_sequential_on_the_thread_backend() {
    assert_serve_conformance(
        "threads",
        Box::new(SpecPool::new(ReplayPool::new(2), NetResolver)),
    );
}

#[test]
fn served_batches_match_sequential_on_the_process_backend() {
    let pool = ProcessPool::with_command(2, vec![env!("CARGO_BIN_EXE_osp-worker").to_string()]);
    assert_serve_conformance("processes", Box::new(pool));
}

#[test]
fn served_batches_match_sequential_on_the_socket_backend() {
    let servers: Vec<SocketServer> = (0..2)
        .map(|_| {
            SocketServer::bind(
                &WorkerAddr::parse("127.0.0.1:0").unwrap(),
                NetResolver,
                FaultPlan::NONE,
            )
            .expect("worker bind")
        })
        .collect();
    let addrs = servers.iter().map(|s| s.local_addr().clone()).collect();
    assert_serve_conformance("sockets", Box::new(SocketPool::new(addrs)));
    for server in servers {
        server.stop();
    }
}

#[test]
fn served_batches_match_sequential_on_a_fault_injected_socket_fleet() {
    // One of three fleet members dies after 4 answered jobs (the
    // OSP_FAULT=die:n discipline, in-process). The service must ride the
    // re-dispatch: results still bit-identical, batch still `done`.
    let doomed = SocketServer::bind(
        &WorkerAddr::parse("127.0.0.1:0").unwrap(),
        NetResolver,
        FaultPlan::parse("die:4").unwrap(),
    )
    .expect("doomed bind");
    let survivors: Vec<SocketServer> = (0..2)
        .map(|_| {
            SocketServer::bind(
                &WorkerAddr::parse("127.0.0.1:0").unwrap(),
                NetResolver,
                FaultPlan::NONE,
            )
            .expect("worker bind")
        })
        .collect();
    let mut addrs = vec![doomed.local_addr().clone()];
    addrs.extend(survivors.iter().map(|s| s.local_addr().clone()));
    let pool = SocketPool::with_config(
        addrs,
        SocketConfig {
            retry: RetryPolicy {
                attempts: 2,
                base_delay: Duration::from_millis(10),
                max_delay: Duration::from_millis(50),
            },
            ..SocketConfig::default()
        },
    );
    assert_serve_conformance("fault-injected sockets", Box::new(pool));
    assert!(doomed.fault_killed(), "the fault plan must have fired");
    for server in survivors {
        server.stop();
    }
}

/// A deliberately slow single-lane backend, so queue and cancellation
/// timing is controllable: each dispatch call sleeps, then resolves
/// in-process.
struct SlowPool {
    delay: Duration,
}

impl Dispatcher for SlowPool {
    fn run_specs_with_events(
        &self,
        jobs: &[JobSpec],
        _sink: &dyn EventSink,
    ) -> Vec<Result<Outcome, Error>> {
        std::thread::sleep(self.delay);
        jobs.iter().map(|j| run_spec(j, &NetResolver)).collect()
    }

    fn lanes(&self) -> usize {
        1
    }

    fn backend(&self) -> &'static str {
        "slow-test"
    }
}

#[test]
fn full_submission_queue_answers_unavailable_without_enqueueing() {
    let service = ReplayService::new(
        Box::new(SlowPool {
            delay: Duration::from_millis(700),
        }),
        ServiceConfig {
            queue_capacity: 1,
            chunk: 64,
            ..ServiceConfig::default()
        },
    )
    .expect("service starts");
    let jobs = derived_jobs(
        &ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(15, 40, 3)),
        &AlgorithmSpec::RandPr,
        902,
        2,
    );
    // First batch: dequeued by the executor, now sleeping in dispatch.
    let running = service.submit(jobs.clone()).expect("first submit");
    // Give the executor a beat to claim it, freeing the queue slot.
    std::thread::sleep(Duration::from_millis(150));
    // Second batch: sits in the queue slot.
    let queued = service.submit(jobs.clone()).expect("second submit");
    // Third: the queue is full — typed back-pressure, nothing enqueued.
    let err = service.submit(jobs.clone()).unwrap_err();
    assert!(matches!(err, Error::Unavailable(_)), "got {err:?}");
    assert!(err.to_string().contains("queue is full"), "{err}");

    // Both accepted batches still complete; the refused one left no record.
    for id in [running, queued] {
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        loop {
            let status = service.status(id).expect("accepted batch exists");
            if status.state == "done" {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "batch {id} stuck");
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    assert!(
        service.status(queued + 1).is_none(),
        "refused id has no record"
    );
    service.shutdown();
}

#[test]
fn cancel_stops_at_a_chunk_boundary_and_keeps_computed_answers() {
    // chunk=1 against a 300 ms-per-chunk backend: cancel lands while the
    // batch is mid-run, so it must stop early — some jobs answered (and
    // fetchable), the rest reported `cancelled`, state `cancelled`.
    let service = ReplayService::new(
        Box::new(SlowPool {
            delay: Duration::from_millis(300),
        }),
        ServiceConfig {
            queue_capacity: 4,
            chunk: 1,
            ..ServiceConfig::default()
        },
    )
    .expect("service starts");
    let jobs = derived_jobs(
        &ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(15, 40, 3)),
        &AlgorithmSpec::RandPr,
        903,
        8,
    );
    let id = service.submit(jobs.clone()).expect("submit");
    // Let roughly one chunk land, then cancel.
    std::thread::sleep(Duration::from_millis(450));
    assert!(service.cancel(id), "a running batch accepts cancellation");
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let status = loop {
        let status = service.status(id).expect("batch exists");
        if status.state == "cancelled" {
            break status;
        }
        assert!(std::time::Instant::now() < deadline, "cancel never landed");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(
        status.answered < jobs.len() as u64,
        "cancellation must stop the batch early (answered {})",
        status.answered
    );
    // Whatever was answered before the cancel is real and bit-identical.
    let results = service.fetch(id).expect("fetch");
    let mut answered = 0;
    for (i, result) in results.iter().enumerate() {
        match result {
            JobResult::Ok(got) => {
                answered += 1;
                let want = run_spec(&jobs[i], &NetResolver).unwrap();
                assert_bit_identical(&format!("cancelled batch job {i}"), &want, got);
                assert_eq!(status.jobs[i], "done");
            }
            JobResult::Pending => assert_eq!(status.jobs[i], "cancelled"),
            other => panic!("job {i}: unexpected {other:?}"),
        }
    }
    assert_eq!(answered as u64, status.answered);
    service.shutdown();
}
