//! Integration: the distributed implementation is exact — replicas agree
//! with each other and with the centralized run, across scenarios.

use osp::core::prelude::*;
use osp::net::multihop::{federated_run, multihop_instance, MultihopConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn federated_equals_centralized_across_topologies_and_seeds() {
    for hops in [1u32, 2, 3, 5] {
        let cfg = MultihopConfig {
            hops,
            packets: 50,
            launch_window: 25,
            capacity: 1,
        };
        let mut rng = StdRng::seed_from_u64(u64::from(hops));
        let mh = multihop_instance(&cfg, &mut rng).unwrap();
        for seed in 0..8u64 {
            let fed = federated_run(&mh, 8, seed).unwrap();
            let central = run(&mh.instance, &mut HashRandPr::new(8, seed)).unwrap();
            assert_eq!(
                fed.decisions(),
                central.decisions(),
                "hops {hops} seed {seed}"
            );
            assert_eq!(fed.completed(), central.completed());
            assert_eq!(fed.benefit(), central.benefit());
        }
    }
}

#[test]
fn replicas_agree_regardless_of_instantiation_order() {
    // Build the same algorithm twice in different orders and interleave —
    // the priorities depend only on (independence, seed, set id).
    let mut b = InstanceBuilder::new();
    let ids: Vec<SetId> = (0..20)
        .map(|i| b.add_set(1.0 + f64::from(i % 3), 1))
        .collect();
    b.add_element(2, &ids);
    let inst = b.build().unwrap();

    let out1 = run(&inst, &mut HashRandPr::new(16, 42)).unwrap();
    let mut second = HashRandPr::new(16, 42);
    // Unrelated instantiations in between must not disturb anything.
    let _ = HashRandPr::new(16, 1);
    let _ = HashRandPr::new(4, 42);
    let out2 = run(&inst, &mut second).unwrap();
    assert_eq!(out1.completed(), out2.completed());
}

#[test]
fn capacity_above_one_stays_consistent() {
    let cfg = MultihopConfig {
        hops: 3,
        packets: 70,
        launch_window: 20,
        capacity: 2,
    };
    let mut rng = StdRng::seed_from_u64(9);
    let mh = multihop_instance(&cfg, &mut rng).unwrap();
    for seed in 0..5u64 {
        let fed = federated_run(&mh, 8, seed).unwrap();
        let central = run(&mh.instance, &mut HashRandPr::new(8, seed)).unwrap();
        assert_eq!(fed.decisions(), central.decisions());
    }
}

#[test]
fn independence_level_changes_decisions_but_not_validity() {
    let cfg = MultihopConfig {
        hops: 2,
        packets: 40,
        launch_window: 15,
        capacity: 1,
    };
    let mut rng = StdRng::seed_from_u64(3);
    let mh = multihop_instance(&cfg, &mut rng).unwrap();
    for independence in [1usize, 2, 4, 64] {
        let out = federated_run(&mh, independence, 5).unwrap();
        // Every decision respects capacity by engine validation; benefit
        // is bounded by the number of packets.
        assert!(out.benefit() <= 40.0);
    }
}
