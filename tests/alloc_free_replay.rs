//! The flat-memory hot-path contract: a **warm** replay performs zero heap
//! allocations per arrival.
//!
//! A counting global allocator wraps `System`; after one warm-up replay has
//! grown the [`ReplayScratch`] buffers (and the algorithm's own state) to
//! the instance's footprint, replaying the instance's whole arrival loop
//! again must not touch the allocator at all — for every built-in
//! algorithm. This pins the tentpole claim of the CSR arena +
//! `decide_into` pipeline: arrivals are slices into one contiguous pool,
//! decisions go into recycled buffers, and the decision log grows in a
//! warm CSR arena.
//!
//! The target is built with `harness = false` (see `Cargo.toml`) so the
//! process has exactly one thread: the default libtest harness keeps its
//! main thread alive next to the test thread, and under load its
//! bookkeeping allocations can land inside the measured window of the
//! process-global counter — observed as a rare 1–2-allocation flake.

use osp_core::algorithms::{
    GreedyOnline, HashRandPr, OracleOnline, RandPr, RandomAssign, TieBreak,
};
use osp_core::gen::{random_instance, CapacityModel, LoadModel, RandomInstanceConfig, WeightModel};
use osp_core::{run, OnlineAlgorithm, ReplayScratch, Session, SetId};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[path = "support/counting_alloc.rs"]
mod counting_alloc;
use counting_alloc::{allocations, CountingAllocator};

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn main() {
    // A non-trivial workload: variable loads and capacities so decisions
    // have mixed sizes, enough arrivals that any per-arrival allocation
    // would show up hundreds of times over.
    let mut rng = StdRng::seed_from_u64(99);
    let instance = random_instance(
        &RandomInstanceConfig {
            num_sets: 80,
            num_elements: 400,
            load: LoadModel::Uniform { lo: 1, hi: 6 },
            weights: WeightModel::Uniform { lo: 0.5, hi: 4.0 },
            capacities: CapacityModel::Uniform { lo: 1, hi: 3 },
        },
        &mut rng,
    )
    .unwrap();
    let oracle_target: Vec<SetId> = run(&instance, &mut GreedyOnline::new(TieBreak::ByWeight))
        .unwrap()
        .completed()
        .to_vec();

    let algorithms: Vec<(&str, Box<dyn OnlineAlgorithm>)> = vec![
        ("randPr", Box::new(RandPr::from_seed(7))),
        ("randPr+active", Box::new(RandPr::with_active_filter(7))),
        ("hashPr", Box::new(HashRandPr::new(8, 7))),
        // The table-free variant scores every arrival's candidates on the
        // fly through `eval_batch`; its chunk buffers live on the stack
        // and its scored-pairs scratch is recycled, so the batched
        // scoring path must be exactly as allocation-free as the table
        // lookup it replaces.
        ("hashPr-lazy", Box::new(HashRandPr::new_lazy(8, 7))),
        ("greedy", Box::new(GreedyOnline::new(TieBreak::ByWeight))),
        ("random_assign", Box::new(RandomAssign::from_seed(7))),
        ("oracle", Box::new(OracleOnline::new(oracle_target))),
    ];

    for (name, mut alg) in algorithms {
        let mut scratch = ReplayScratch::new();
        // Warm-up: grows every scratch buffer (and any begin-time state of
        // the algorithm) to this instance's footprint.
        let mut session = Session::with_scratch(instance.sets(), alg.as_mut(), &mut scratch);
        for arrival in instance.arrivals() {
            session.step(&arrival, alg.as_mut()).unwrap();
        }
        let warm = session.finish_into(&mut scratch);

        // Warm shard: the entire arrival loop must not allocate. `begin`
        // happens inside `with_scratch` — per-job state (e.g. randPr's
        // priority table) is allowed to allocate; arrivals are not.
        let mut session = Session::with_scratch(instance.sets(), alg.as_mut(), &mut scratch);
        let before = allocations();
        for arrival in instance.arrivals() {
            session.step(&arrival, alg.as_mut()).unwrap();
        }
        let after = allocations();
        assert_eq!(
            after - before,
            0,
            "{name}: {} allocation(s) during {} warm arrivals",
            after - before,
            instance.num_elements()
        );

        // And the replay is still a faithful one (same decisions as the
        // warm-up run of the same deterministic state machine, where the
        // algorithm is deterministic per `begin`).
        let out = session.finish_into(&mut scratch);
        if !matches!(name, "randPr" | "randPr+active" | "random_assign") {
            assert_eq!(out, warm, "{name}: warm replay diverged");
        }
    }
}
