//! Golden-outcome regression fixtures.
//!
//! A small committed table of `(generator spec, gen seed, algorithm,
//! algorithm seed) → (benefit, completed sets)` tuples, replayed on every
//! test run — both sequentially and through the batch [`ReplayPool`] — so
//! future engine/algorithm refactors cannot silently change results.
//!
//! **Regenerating** (only when a change *intentionally* alters outcomes,
//! e.g. a generator rework; say so in the commit message):
//!
//! ```sh
//! OSP_PRINT_GOLDENS=1 cargo test --test golden_outcomes -- --nocapture
//! ```
//!
//! and paste the printed rows over the `GOLDENS` table below. Benefits are
//! written with Rust's shortest-roundtrip float formatting, so `==`
//! comparison is exact.

use osp_core::algorithms::{GreedyOnline, HashRandPr, RandPr, TieBreak};
use osp_core::gen::{
    biregular_instance, fixed_size_instance, random_instance, CapacityModel, LoadModel,
    RandomInstanceConfig, WeightModel,
};
use osp_core::{run, Instance, OnlineAlgorithm, ReplayPool, SetId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One pinned replay.
struct Golden {
    /// Generator spec id (see [`build_instance`]).
    spec: &'static str,
    /// Seed for the instance generator's RNG.
    gen_seed: u64,
    /// Algorithm id (see [`build_algorithm`]).
    alg: &'static str,
    /// Seed for the algorithm's randomness (ignored by `greedy`).
    alg_seed: u64,
    /// Expected `Outcome::benefit()`, exact.
    benefit: f64,
    /// Expected `Outcome::completed()`, ascending.
    completed: &'static [u32],
}

fn build_instance(spec: &str, gen_seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(gen_seed);
    match spec {
        "uniform" => {
            random_instance(&RandomInstanceConfig::unweighted(25, 60, 4), &mut rng).unwrap()
        }
        "weighted" => random_instance(
            &RandomInstanceConfig {
                num_sets: 30,
                num_elements: 70,
                load: LoadModel::Uniform { lo: 1, hi: 5 },
                weights: WeightModel::Uniform { lo: 0.5, hi: 4.0 },
                capacities: CapacityModel::Uniform { lo: 1, hi: 2 },
            },
            &mut rng,
        )
        .unwrap(),
        "biregular" => biregular_instance(24, 3, 4, &mut rng).unwrap(),
        "skewed" => fixed_size_instance(30, 3, 80, 1.2, &mut rng).unwrap(),
        other => panic!("unknown spec {other}"),
    }
}

fn build_algorithm(alg: &str, alg_seed: u64) -> Box<dyn OnlineAlgorithm> {
    match alg {
        "randPr" => Box::new(RandPr::from_seed(alg_seed)),
        "hashPr8" => Box::new(HashRandPr::new(8, alg_seed)),
        "greedy" => Box::new(GreedyOnline::new(TieBreak::ByWeight)),
        other => panic!("unknown algorithm {other}"),
    }
}

/// The pinned fixtures. Paste regenerated rows here (see module docs).
#[rustfmt::skip]
const GOLDENS: &[Golden] = &[
    Golden { spec: "uniform", gen_seed: 100, alg: "randPr", alg_seed: 9000, benefit: 1.0, completed: &[6] },
    Golden { spec: "uniform", gen_seed: 101, alg: "randPr", alg_seed: 9001, benefit: 1.0, completed: &[5] },
    Golden { spec: "uniform", gen_seed: 100, alg: "hashPr8", alg_seed: 9010, benefit: 2.0, completed: &[2, 10] },
    Golden { spec: "uniform", gen_seed: 101, alg: "hashPr8", alg_seed: 9011, benefit: 1.0, completed: &[1] },
    Golden { spec: "uniform", gen_seed: 100, alg: "greedy", alg_seed: 9020, benefit: 2.0, completed: &[0, 11] },
    Golden { spec: "uniform", gen_seed: 101, alg: "greedy", alg_seed: 9021, benefit: 2.0, completed: &[0, 2] },
    Golden { spec: "weighted", gen_seed: 100, alg: "randPr", alg_seed: 9000, benefit: 11.62168313700127, completed: &[5, 6, 7, 18, 21] },
    Golden { spec: "weighted", gen_seed: 101, alg: "randPr", alg_seed: 9001, benefit: 14.768165245427099, completed: &[1, 5, 12, 24, 29] },
    Golden { spec: "weighted", gen_seed: 100, alg: "hashPr8", alg_seed: 9010, benefit: 5.747643522427261, completed: &[2, 10] },
    Golden { spec: "weighted", gen_seed: 101, alg: "hashPr8", alg_seed: 9011, benefit: 12.493650850853037, completed: &[1, 4, 7, 12, 24] },
    Golden { spec: "weighted", gen_seed: 100, alg: "greedy", alg_seed: 9020, benefit: 20.77844938896644, completed: &[5, 18, 21, 26, 27, 29] },
    Golden { spec: "weighted", gen_seed: 101, alg: "greedy", alg_seed: 9021, benefit: 20.990402248860846, completed: &[1, 12, 19, 21, 22, 24, 28] },
    Golden { spec: "biregular", gen_seed: 100, alg: "randPr", alg_seed: 9000, benefit: 3.0, completed: &[6, 7, 18] },
    Golden { spec: "biregular", gen_seed: 101, alg: "randPr", alg_seed: 9001, benefit: 2.0, completed: &[2, 5] },
    Golden { spec: "biregular", gen_seed: 100, alg: "hashPr8", alg_seed: 9010, benefit: 3.0, completed: &[2, 10, 21] },
    Golden { spec: "biregular", gen_seed: 101, alg: "hashPr8", alg_seed: 9011, benefit: 3.0, completed: &[1, 4, 21] },
    Golden { spec: "biregular", gen_seed: 100, alg: "greedy", alg_seed: 9020, benefit: 3.0, completed: &[0, 4, 5] },
    Golden { spec: "biregular", gen_seed: 101, alg: "greedy", alg_seed: 9021, benefit: 4.0, completed: &[0, 1, 2, 6] },
    Golden { spec: "skewed", gen_seed: 100, alg: "randPr", alg_seed: 9000, benefit: 2.0, completed: &[6, 18] },
    Golden { spec: "skewed", gen_seed: 101, alg: "randPr", alg_seed: 9001, benefit: 1.0, completed: &[5] },
    Golden { spec: "skewed", gen_seed: 100, alg: "hashPr8", alg_seed: 9010, benefit: 1.0, completed: &[10] },
    Golden { spec: "skewed", gen_seed: 101, alg: "hashPr8", alg_seed: 9011, benefit: 1.0, completed: &[1] },
    Golden { spec: "skewed", gen_seed: 100, alg: "greedy", alg_seed: 9020, benefit: 2.0, completed: &[0, 18] },
    Golden { spec: "skewed", gen_seed: 101, alg: "greedy", alg_seed: 9021, benefit: 3.0, completed: &[0, 1, 10] },
];

const SPECS: [&str; 4] = ["uniform", "weighted", "biregular", "skewed"];
const ALGS: [&str; 3] = ["randPr", "hashPr8", "greedy"];

#[test]
fn golden_outcomes_are_stable() {
    if std::env::var("OSP_PRINT_GOLDENS").is_ok() {
        print_goldens();
        return;
    }
    assert!(
        !GOLDENS.is_empty(),
        "golden table is empty — regenerate it (see module docs)"
    );
    let pool = ReplayPool::new(2);
    for g in GOLDENS {
        let instance = build_instance(g.spec, g.gen_seed);
        let label = format!("{}/{}/{}/{}", g.spec, g.gen_seed, g.alg, g.alg_seed);

        let sequential = run(&instance, build_algorithm(g.alg, g.alg_seed).as_mut()).unwrap();
        let expected: Vec<SetId> = g.completed.iter().map(|&i| SetId(i)).collect();
        assert_eq!(sequential.completed(), expected, "{label}: completed");
        assert!(
            sequential.benefit() == g.benefit,
            "{label}: benefit {} != pinned {}",
            sequential.benefit(),
            g.benefit
        );

        // The batch path must reproduce the same golden.
        let batched = pool.run_seeds(&instance, &[g.alg_seed], &|s| build_algorithm(g.alg, s));
        assert_eq!(batched[0], sequential, "{label}: batch diverged");
    }
}

/// Prints the full golden table in source form.
fn print_goldens() {
    println!("const GOLDENS: &[Golden] = &[");
    for spec in SPECS {
        for (ai, alg) in ALGS.iter().enumerate() {
            for trial in 0..2u64 {
                let gen_seed = 100 + trial;
                let alg_seed = 9000 + ai as u64 * 10 + trial;
                let instance = build_instance(spec, gen_seed);
                let out = run(&instance, build_algorithm(alg, alg_seed).as_mut()).unwrap();
                let completed: Vec<String> =
                    out.completed().iter().map(|s| s.0.to_string()).collect();
                println!(
                    "    Golden {{ spec: \"{spec}\", gen_seed: {gen_seed}, alg: \"{alg}\", \
                     alg_seed: {alg_seed}, benefit: {:?}, completed: &[{}] }},",
                    out.benefit(),
                    completed.join(", ")
                );
            }
        }
    }
    println!("];");
}
