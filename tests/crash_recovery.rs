//! Crash-recovery conformance for `osp-serve --state-dir`.
//!
//! The acceptance claim of the journaled store: a server killed without
//! warning mid-batch — deterministically via the serve-side
//! `OSP_FAULT=die-after-chunk:<n>` drill, or with a real `SIGKILL` — and
//! restarted on the same state directory **resumes the interrupted
//! batch**, re-serving every journaled outcome bit-identically (observed
//! as cache hits, i.e. zero recomputation of checkpointed jobs) and
//! recomputing only the jobs that never reached the journal. Both tests
//! drive the real `osp-serve` binary, exactly as the CI `chaos-recovery`
//! job does with a socket fleet.

use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use osp::core::gen::RandomInstanceConfig;
use osp::core::serve::{FleetCommand, JobResult, ServeClient};
use osp::core::spec::{run_spec, AlgorithmSpec, CoreResolver, ScenarioSpec};
use osp::core::wire::socket::WorkerAddr;
use osp::core::{derived_jobs, Outcome};

/// Exit status of a `FaultPlan`-injected death (`wire::FAULT_EXIT`).
const FAULT_EXIT: i32 = 86;

fn temp_state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("osp-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Spawns the real `osp-serve` on an ephemeral port over the given state
/// directory, blocks on its banner, and returns the child plus the
/// resolved address. `envs` layers test-specific knobs (fault plans,
/// chunk sizes) over a clean threads-backend baseline.
fn spawn_serve(dir: &Path, envs: &[(&str, &str)]) -> (Child, WorkerAddr) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_osp-serve"));
    cmd.args(["--listen", "127.0.0.1:0", "--state-dir"])
        .arg(dir)
        .env_remove("OSP_FAULT")
        .env("OSP_DISPATCH", "threads")
        .stdout(Stdio::piped());
    for (key, value) in envs {
        cmd.env(key, value);
    }
    let mut child = cmd.spawn().expect("spawn osp-serve");
    let mut banner = String::new();
    std::io::BufReader::new(child.stdout.take().expect("stdout piped"))
        .read_line(&mut banner)
        .expect("read banner");
    assert!(banner.starts_with("serving on "), "banner: {banner}");
    let addr = banner
        .split_whitespace()
        .nth(2)
        .expect("address in banner")
        .to_string();
    (
        child,
        WorkerAddr::parse(&addr).expect("banner address parses"),
    )
}

fn connect(addr: &WorkerAddr) -> ServeClient {
    ServeClient::connect(addr, Duration::from_secs(30)).expect("connect to osp-serve")
}

fn assert_bit_identical(label: &str, want: &[Outcome], results: &[JobResult]) {
    assert_eq!(want.len(), results.len(), "{label}: result count");
    for (index, (want, got)) in want.iter().zip(results).enumerate() {
        match got {
            JobResult::Ok(got) => {
                assert_eq!(
                    want.completed(),
                    got.completed(),
                    "{label}[{index}]: completed"
                );
                assert!(
                    want.benefit().to_bits() == got.benefit().to_bits(),
                    "{label}[{index}]: benefit diverged"
                );
                assert_eq!(want, got, "{label}[{index}]: outcome diverged");
            }
            other => panic!("{label}[{index}]: expected an outcome, got {other:?}"),
        }
    }
}

#[test]
fn die_after_chunk_drill_resumes_with_exactly_the_journaled_jobs_cached() {
    let dir = temp_state_dir("drill");
    let jobs = derived_jobs(
        &ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(18, 45, 3)),
        &AlgorithmSpec::RandPr,
        5100,
        10,
    );
    let want: Vec<Outcome> = jobs
        .iter()
        .map(|j| run_spec(j, &CoreResolver).expect("sequential reference"))
        .collect();

    // Chunk size 2 and a kill after chunk 2: exactly jobs 0..4 reach the
    // journal before the process dies, deterministically.
    let (mut child, addr) = spawn_serve(
        &dir,
        &[("OSP_SERVE_CHUNK", "2"), ("OSP_FAULT", "die-after-chunk:2")],
    );
    let mut client = connect(&addr);
    let id = client.submit(&jobs).expect("submit before the drill kills");
    assert_eq!(id, 1);
    let status = child.wait().expect("await the injected death");
    assert_eq!(status.code(), Some(FAULT_EXIT), "exit: {status:?}");

    // Restart on the same directory, no fault: the batch resumes, the
    // four journaled outcomes are cache hits, the six others recompute.
    let (child, addr) = spawn_serve(&dir, &[("OSP_SERVE_CHUNK", "2")]);
    let mut client = connect(&addr);
    let status = client
        .wait(id, Duration::from_millis(20), Duration::from_secs(120))
        .expect("resumed batch finishes");
    assert_eq!(status.state, "done");
    assert_eq!(status.total, 10);
    assert_eq!(
        status.cached, 4,
        "exactly the journaled chunk pair: {status:?}"
    );
    assert_eq!(status.cache_hits, 4);
    assert_eq!(status.cache_misses, 6);
    let results = client.fetch(id).expect("fetch resumed batch");
    assert_bit_identical("resume", &want, &results);

    // The whole batch is journaled now: a resubmission never computes.
    let again = client.submit(&jobs).expect("resubmit");
    let status = client
        .wait(again, Duration::from_millis(20), Duration::from_secs(120))
        .expect("resubmission finishes");
    assert_eq!(
        status.cached, 10,
        "everything cached after resume: {status:?}"
    );
    assert_bit_identical(
        "resubmit",
        &want,
        &client.fetch(again).expect("fetch resubmission"),
    );

    client.shutdown().expect("clean shutdown");
    let mut child = child;
    let status = child.wait().expect("server exits");
    assert!(status.success(), "clean exit after shutdown: {status:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Spawns the real `osp-worker --listen` on a Unix socket path and
/// blocks on its banner.
fn spawn_worker(path: &Path, fault: Option<&str>) -> Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_osp-worker"));
    cmd.arg("--listen")
        .arg(format!("uds:{}", path.display()))
        .env_remove("OSP_FAULT")
        .stdout(Stdio::piped());
    if let Some(plan) = fault {
        cmd.env("OSP_FAULT", plan);
    }
    let mut child = cmd.spawn().expect("spawn osp-worker");
    let mut banner = String::new();
    std::io::BufReader::new(child.stdout.take().expect("stdout piped"))
        .read_line(&mut banner)
        .expect("read worker banner");
    assert!(banner.starts_with("listening on "), "banner: {banner}");
    child
}

#[test]
fn excluded_worker_rejoins_after_a_restart_on_the_same_address() {
    let dir = temp_state_dir("rejoin");
    std::fs::create_dir_all(&dir).expect("state dir");
    let w0_path = dir.join("w0.sock");
    let w1_path = dir.join("w1.sock");
    // Worker 0 dies (exit 86) after answering two jobs; worker 1 is
    // healthy. The fleet excludes the dead lane and finishes on the
    // survivor.
    let mut doomed = spawn_worker(&w0_path, Some("die:2"));
    let mut healthy = spawn_worker(&w1_path, None);
    let (mut server, addr) = spawn_serve(
        &dir,
        &[
            ("OSP_DISPATCH", "socket"),
            (
                "OSP_WORKER_ADDRS",
                &format!("uds:{},uds:{}", w0_path.display(), w1_path.display()),
            ),
            ("OSP_SERVE_CHUNK", "4"),
        ],
    );
    let mut client = connect(&addr);

    let jobs = derived_jobs(
        &ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(18, 45, 3)),
        &AlgorithmSpec::RandPr,
        5300,
        8,
    );
    let want: Vec<Outcome> = jobs
        .iter()
        .map(|j| run_spec(j, &CoreResolver).expect("sequential reference"))
        .collect();
    let id = client.submit(&jobs).expect("submit");
    let status = client
        .wait(id, Duration::from_millis(20), Duration::from_secs(120))
        .expect("batch survives the worker death");
    assert_eq!(status.state, "done");
    assert!(
        !status.excluded.is_empty(),
        "the dead worker must be excluded: {status:?}"
    );
    assert_bit_identical(
        "fleet with a death",
        &want,
        &client.fetch(id).expect("fetch"),
    );
    assert_eq!(
        doomed.wait().expect("doomed exits").code(),
        Some(FAULT_EXIT)
    );

    let report = client.fleet(FleetCommand::Status).expect("fleet status");
    assert_eq!(report.up(), 1, "one lane down: {report:?}");

    // Bring a fresh worker up on the dead lane's address (the stale
    // socket path is cleared on rebind) and force a probe: the lane must
    // be re-admitted without a server restart.
    let mut replacement = spawn_worker(&w0_path, None);
    let report = client.fleet(FleetCommand::Probe).expect("fleet probe");
    assert_eq!(report.up(), 2, "probe must re-admit the lane: {report:?}");
    assert!(report.rejoined >= 1, "rejoin counter: {report:?}");

    // The re-admitted fleet still computes bit-identically.
    let jobs = derived_jobs(
        &ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(18, 45, 3)),
        &AlgorithmSpec::RandPr,
        5400,
        6,
    );
    let want: Vec<Outcome> = jobs
        .iter()
        .map(|j| run_spec(j, &CoreResolver).expect("sequential reference"))
        .collect();
    let id = client.submit(&jobs).expect("submit after rejoin");
    let status = client
        .wait(id, Duration::from_millis(20), Duration::from_secs(120))
        .expect("post-rejoin batch finishes");
    assert_eq!(status.state, "done");
    assert!(status.workers_rejoined >= 1, "status counters: {status:?}");
    assert_bit_identical("post-rejoin", &want, &client.fetch(id).expect("fetch"));

    client.shutdown().expect("clean shutdown");
    let status = server.wait().expect("server exits");
    assert!(status.success(), "clean exit: {status:?}");
    replacement.kill().expect("kill replacement");
    let _ = replacement.wait();
    healthy.kill().expect("kill healthy worker");
    let _ = healthy.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigkill_mid_batch_resumes_without_recomputing_journaled_jobs() {
    let dir = temp_state_dir("sigkill");
    // Heavy jobs, one lane, chunk 1: the batch takes long enough that a
    // kill lands mid-flight with journaled work on both sides of it.
    let jobs = derived_jobs(
        &ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(200, 3_000, 5)),
        &AlgorithmSpec::RandPr,
        5200,
        24,
    );
    let want: Vec<Outcome> = jobs
        .iter()
        .map(|j| run_spec(j, &CoreResolver).expect("sequential reference"))
        .collect();

    let (mut child, addr) = spawn_serve(&dir, &[("OSP_SERVE_CHUNK", "1"), ("OSP_WORKERS", "1")]);
    let mut client = connect(&addr);
    let id = client.submit(&jobs).expect("submit");

    // Let some (not all) jobs land, then kill -9.
    let started = Instant::now();
    let progress = loop {
        let status = client.status(id).expect("status while running");
        if status.answered >= 2 {
            break status;
        }
        assert!(
            started.elapsed() < Duration::from_secs(60),
            "no progress before kill: {status:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    assert!(
        progress.answered < progress.total,
        "batch finished before the kill — scenario too light to drill: {progress:?}"
    );
    child.kill().expect("SIGKILL osp-serve");
    let _ = child.wait();

    // Restart: everything journaled before the kill is a cache hit.
    let (child, addr) = spawn_serve(&dir, &[("OSP_SERVE_CHUNK", "1"), ("OSP_WORKERS", "1")]);
    let mut client = connect(&addr);
    let status = client
        .wait(id, Duration::from_millis(50), Duration::from_secs(300))
        .expect("resumed batch finishes");
    assert_eq!(status.state, "done");
    assert_eq!(status.total, 24);
    assert!(
        status.cached >= progress.answered,
        "journaled jobs must not recompute (saw {} answered pre-kill): {status:?}",
        progress.answered
    );
    assert_eq!(status.cache_hits, status.cached, "hits all from this batch");
    assert_bit_identical("sigkill resume", &want, &client.fetch(id).expect("fetch"));

    client.shutdown().expect("clean shutdown");
    let mut child = child;
    let status = child.wait().expect("server exits");
    assert!(status.success(), "clean exit after shutdown: {status:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
