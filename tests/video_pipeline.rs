//! Integration: the video scenario end to end — trace generation, OSP
//! mapping, engine run, goodput extraction, buffered extension.

use osp::core::prelude::*;
use osp::net::buffer::{simulate_buffered, BufferPolicy};
use osp::net::metrics::goodput;
use osp::net::policy::{RandomDrop, TailDrop};
use osp::net::{trace_to_instance, video_trace, GopConfig, VideoTraceConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn config(sources: usize) -> VideoTraceConfig {
    VideoTraceConfig {
        sources,
        frames_per_source: 25,
        gop: GopConfig::standard(),
        frame_interval: 8,
        capacity: 4,
        jitter: 0,
    }
}

#[test]
fn mapping_preserves_traffic_structure() {
    let mut rng = StdRng::seed_from_u64(0);
    let trace = video_trace(&config(6), &mut rng);
    let mapped = trace_to_instance(&trace);
    // One set per frame, sizes = packet counts, loads = burst sizes.
    assert_eq!(mapped.instance.num_sets(), trace.frames().len());
    let st = InstanceStats::compute(&mapped.instance);
    assert_eq!(st.sigma_max as usize, trace.max_burst());
    let packets: u32 = trace.frames().iter().map(|f| f.packets).sum();
    let incidences: u32 = mapped.instance.arrivals().iter().map(|a| a.load()).sum();
    assert_eq!(packets, incidences);
}

#[test]
fn all_policies_produce_valid_outcomes_and_randpr_wins_where_it_should() {
    let mut rng = StdRng::seed_from_u64(1);
    let trace = video_trace(&config(10), &mut rng);
    let mapped = trace_to_instance(&trace);

    // Deterministic tail-drop: one run.
    let tail_out = run(&mapped.instance, &mut TailDrop::new()).unwrap();
    let tail = goodput(&trace, &mapped.instance, &tail_out);
    assert_eq!(tail.weight_delivered, tail_out.benefit());

    // Randomized policies: average over seeds.
    let trials = 30u64;
    let (mut rp_weight, mut rp_iframes) = (0.0, 0.0);
    let (mut rd_weight, mut rd_iframes) = (0.0, 0.0);
    for seed in 0..trials {
        let out = run(&mapped.instance, &mut RandPr::from_seed(seed)).unwrap();
        let g = goodput(&trace, &mapped.instance, &out);
        assert!((0.0..=1.0).contains(&g.frame_rate()));
        assert!((0.0..=1.0).contains(&g.packet_rate()));
        rp_weight += g.weight_rate();
        rp_iframes += g.per_class_delivered[0] as f64;
        let out = run(&mapped.instance, &mut RandomDrop::from_seed(seed)).unwrap();
        let g = goodput(&trace, &mapped.instance, &out);
        rd_weight += g.weight_rate();
        rd_iframes += g.per_class_delivered[0] as f64;
    }
    let n = trials as f64;
    // The weighted algorithm must clearly beat the frame-oblivious random
    // policy on weighted goodput, and deliver more heavy I-frames than
    // tail-drop (which serves frames regardless of their value).
    assert!(
        rp_weight / n > rd_weight / n,
        "randPr weight rate {} not above random-drop {}",
        rp_weight / n,
        rd_weight / n
    );
    assert!(
        rp_iframes / n >= tail.per_class_delivered[0] as f64,
        "randPr mean I-frames {} below tail-drop {}",
        rp_iframes / n,
        tail.per_class_delivered[0]
    );
    assert!(
        rp_iframes > rd_iframes,
        "randPr I-frames {rp_iframes} not above random-drop {rd_iframes}"
    );
}

#[test]
fn goodput_classes_sum_to_totals() {
    let mut rng = StdRng::seed_from_u64(2);
    let trace = video_trace(&config(5), &mut rng);
    let mapped = trace_to_instance(&trace);
    let out = run(&mapped.instance, &mut RandPr::from_seed(0)).unwrap();
    let g = goodput(&trace, &mapped.instance, &out);
    assert_eq!(g.per_class_offered.iter().sum::<usize>(), g.frames_offered);
    assert_eq!(
        g.per_class_delivered.iter().sum::<usize>(),
        g.frames_delivered
    );
}

#[test]
fn buffered_router_dominates_bufferless_and_saturates() {
    let mut rng = StdRng::seed_from_u64(3);
    let trace = video_trace(&config(10), &mut rng);
    let no_buffer = simulate_buffered(&trace, 0, BufferPolicy::DropTail);
    let some = simulate_buffered(&trace, 8, BufferPolicy::DropTail);
    let huge = simulate_buffered(&trace, 10_000, BufferPolicy::DropTail);
    assert!(some.frames_delivered >= no_buffer.frames_delivered);
    assert!(huge.frames_delivered >= some.frames_delivered);
    // An unbounded buffer never drops and eventually delivers everything.
    assert_eq!(huge.packets_dropped, 0);
    assert_eq!(huge.frames_delivered, trace.frames().len());
}

#[test]
fn partial_credit_is_monotone_in_theta() {
    use osp::net::partial::partial_benefit;
    let mut rng = StdRng::seed_from_u64(4);
    let trace = video_trace(&config(10), &mut rng);
    let mapped = trace_to_instance(&trace);
    let out = run(&mapped.instance, &mut TailDrop::new()).unwrap();
    let mut last = f64::INFINITY;
    for theta in [0.25, 0.5, 0.75, 1.0] {
        let b = partial_benefit(&mapped.instance, &out, theta);
        assert!(b <= last, "benefit must fall as θ rises");
        last = b;
    }
    // θ=1 equals the strict benefit.
    assert_eq!(partial_benefit(&mapped.instance, &out, 1.0), out.benefit());
}
