//! Integration: every upper-bound theorem holds on sampled instances with
//! exactly solved optima.

use osp::core::bounds;
use osp::core::gen::{
    biregular_instance, fixed_size_instance, random_instance, CapacityModel, LoadModel,
    RandomInstanceConfig, WeightModel,
};
use osp::core::prelude::*;
use osp::opt::prelude::*;
use osp::stats::Summary;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Average randPr benefit over `trials` seeds.
fn mean_benefit(inst: &Instance, trials: u64) -> f64 {
    let mut s = Summary::new();
    for seed in 0..trials {
        s.add(run(inst, &mut RandPr::from_seed(seed)).unwrap().benefit());
    }
    s.mean()
}

/// Exact optimum (instances here are small enough for proof).
fn exact_opt(inst: &Instance) -> f64 {
    let sol = branch_and_bound(inst, &BnbConfig::default());
    assert!(sol.optimal, "instance too large for exact proof");
    sol.value
}

#[test]
fn theorem_1_and_corollary_6_on_random_instances() {
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = RandomInstanceConfig {
            num_sets: 25,
            num_elements: 50,
            load: LoadModel::Uniform { lo: 1, hi: 5 },
            weights: WeightModel::Uniform { lo: 0.5, hi: 3.0 },
            capacities: CapacityModel::Unit,
        };
        let inst = random_instance(&cfg, &mut rng).unwrap();
        let st = InstanceStats::compute(&inst);
        let ratio = exact_opt(&inst) / mean_benefit(&inst, 300);
        let b1 = bounds::theorem_1(&st);
        let b6 = bounds::corollary_6(&st);
        assert!(
            ratio <= b1 * 1.05,
            "seed {seed}: ratio {ratio} vs thm1 {b1}"
        );
        assert!(
            b1 <= b6 + 1e-9,
            "refined bound must not exceed coarse bound"
        );
    }
}

#[test]
fn theorem_4_on_variable_capacities() {
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let cfg = RandomInstanceConfig {
            num_sets: 25,
            num_elements: 60,
            load: LoadModel::Uniform { lo: 2, hi: 6 },
            weights: WeightModel::Unit,
            capacities: CapacityModel::Uniform { lo: 1, hi: 3 },
        };
        let inst = random_instance(&cfg, &mut rng).unwrap();
        let st = InstanceStats::compute(&inst);
        let ratio = exact_opt(&inst) / mean_benefit(&inst, 300);
        let b4 = bounds::theorem_4(&st);
        assert!(ratio <= b4, "seed {seed}: ratio {ratio} vs thm4 {b4}");
    }
}

#[test]
fn corollary_7_on_biregular_instances() {
    for (m, k, sigma) in [(18usize, 3u32, 2u32), (24, 4, 3), (20, 5, 4)] {
        let mut rng = StdRng::seed_from_u64(7);
        let inst = biregular_instance(m, k, sigma, &mut rng).unwrap();
        let st = InstanceStats::compute(&inst);
        let bound = bounds::corollary_7(&st).expect("doubly uniform");
        let ratio = exact_opt(&inst) / mean_benefit(&inst, 400);
        assert!(
            ratio <= bound * 1.05,
            "m={m} k={k} σ={sigma}: ratio {ratio} vs k {bound}"
        );
    }
}

#[test]
fn theorem_5_on_skewed_fixed_size_instances() {
    for skew in [0.0, 1.0, 1.8] {
        let mut rng = StdRng::seed_from_u64(9);
        let inst = fixed_size_instance(24, 3, 50, skew, &mut rng).unwrap();
        let st = InstanceStats::compute(&inst);
        let bound = bounds::theorem_5(&st).expect("uniform size");
        let ratio = exact_opt(&inst) / mean_benefit(&inst, 400);
        assert!(
            ratio <= bound * 1.05,
            "skew {skew}: ratio {ratio} vs {bound}"
        );
    }
}

#[test]
fn theorem_6_on_uniform_load_instances() {
    for sigma in [2u32, 4, 6] {
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = RandomInstanceConfig::unweighted(25, 50, sigma);
        let inst = random_instance(&cfg, &mut rng).unwrap();
        let st = InstanceStats::compute(&inst);
        let bound = bounds::theorem_6(&st).expect("uniform load");
        let ratio = exact_opt(&inst) / mean_benefit(&inst, 400);
        assert!(ratio <= bound * 1.05, "σ={sigma}: ratio {ratio} vs {bound}");
    }
}

#[test]
fn opt_bracket_always_contains_exact_value() {
    // Cross-check the solver ladder: greedy ≤ exact ≤ dual bounds.
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(200 + seed);
        let cfg = RandomInstanceConfig::unweighted(18, 35, 3);
        let inst = random_instance(&cfg, &mut rng).unwrap();
        let exact = exact_opt(&inst);
        let (greedy, _) = best_greedy(&inst);
        let dual = density_dual_bound(&inst);
        let mwu = fractional_packing(&inst, 0.1);
        assert!(greedy <= exact + 1e-9);
        assert!(exact <= dual + 1e-9);
        assert!(exact <= mwu.dual + 1e-6);
        assert!(mwu.primal <= mwu.dual + 1e-9);
    }
}
