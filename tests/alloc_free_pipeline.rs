//! Warm-steady-state allocation lane for the **pipelined session**
//! (`run_source_parallel_with`).
//!
//! The serial lanes (`tests/alloc_free_replay.rs`,
//! `tests/alloc_free_streaming.rs`) assert *zero* allocations per warm
//! arrival. The pipeline cannot hit literal zero per run — each run
//! spawns one producer thread, opens two bounded rendezvous channels,
//! rebuilds the priority table and snapshots an [`Outcome`] — but all of
//! that is **per-run** cost, not per-arrival cost: the chunk arenas are
//! recycled through the ring and the session buffers come from a warm
//! [`ReplayScratch`], so the arrival loop itself stays allocation-free
//! once warm. This lane pins exactly that shape: after warm-up, tripling
//! the stream length changes the run's total allocation count by at most
//! a handful (the `completed` collect's doubling schedule may differ by
//! a couple of grows between outcomes), and the whole budget stays under
//! a loose absolute bound.
//!
//! Built with `harness = false` like its siblings; the producer thread
//! is *ours* (its allocations are part of the measured budget and must
//! also be length-independent), and no libtest thread can race extra
//! allocations into the window.

use osp::core::algorithms::RandPr;
use osp::core::engine::parallel::run_source_parallel_with;
use osp::core::gen::{RandomInstanceConfig, UniformSource};
use osp::core::prelude::*;
use osp::core::ReplayScratch;

#[path = "support/counting_alloc.rs"]
mod counting_alloc;
use counting_alloc::{allocations, CountingAllocator};

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// One pipelined replay of `n` streamed arrivals; returns the allocator
/// calls across the whole run (thread spawn + channels + priority table +
/// replay + outcome snapshot — source construction excluded, as in the
/// serial lanes).
fn measured_pipelined_run(
    cfg: &RandomInstanceConfig,
    n: usize,
    alg: &mut RandPr,
    scratch: &mut ReplayScratch,
) -> (u64, Outcome) {
    let cfg = RandomInstanceConfig {
        num_elements: n,
        ..*cfg
    };
    let mut source = UniformSource::new(&cfg, 31).unwrap();
    let config = ParallelConfig::with_threads(2);
    let before = allocations();
    let outcome = run_source_parallel_with(&mut source, alg, &config, scratch).unwrap();
    let after = allocations();
    (after - before, outcome)
}

fn main() {
    let cfg = RandomInstanceConfig::unweighted(60, 0, 4);
    let mut alg = RandPr::from_seed(7);
    let mut scratch = ReplayScratch::new();

    // Warm-up at the LARGER length first: grows the scratch buffers and
    // the chunk arenas to their steady-state footprint, so neither
    // measured run below sees a first-touch grow.
    let (_, warm) = measured_pipelined_run(&cfg, 6000, &mut alg, &mut scratch);
    assert_eq!(warm.decisions().len(), 6000, "warm-up stream length");

    let (allocs_small, out_small) = measured_pipelined_run(&cfg, 2000, &mut alg, &mut scratch);
    let (allocs_large, out_large) = measured_pipelined_run(&cfg, 6000, &mut alg, &mut scratch);
    assert_eq!(out_small.decisions().len(), 2000);
    assert_eq!(out_large.decisions().len(), 6000);

    // Steady state: the per-run overhead (thread, channels, table,
    // snapshot) is constant — tripling the stream adds no per-arrival
    // allocations, only (at most) a couple of snapshot-side grows.
    let spread = allocs_large.abs_diff(allocs_small);
    assert!(
        spread <= 8,
        "warm pipelined run allocates per arrival \
         ({allocs_small} allocs @ n=2000 vs {allocs_large} @ n=6000)"
    );
    // And the constant itself is small: a thread spawn, two channels, a
    // priority table and an outcome snapshot, not an arena rebuild.
    assert!(
        allocs_large <= 160,
        "warm pipelined run cost too high: {allocs_large} allocations"
    );

    // The measured configuration is still a faithful replay: fresh
    // algorithms on both sides (RandPr's RNG advances across replays, so
    // reusing the warm one would change the draw).
    let check_cfg = RandomInstanceConfig {
        num_elements: 6000,
        ..cfg
    };
    let want = osp::core::run_source(
        &mut UniformSource::new(&check_cfg, 31).unwrap(),
        &mut RandPr::from_seed(7),
    )
    .unwrap();
    let mut fresh_scratch = ReplayScratch::new();
    let got = run_source_parallel_with(
        &mut UniformSource::new(&check_cfg, 31).unwrap(),
        &mut RandPr::from_seed(7),
        &ParallelConfig::with_threads(2),
        &mut fresh_scratch,
    )
    .unwrap();
    assert_eq!(want, got, "pipelined outcome diverged from serial");
}
