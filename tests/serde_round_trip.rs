//! Integration: instances serialize and deserialize losslessly (the serde
//! derives that make experiment artifacts reproducible).

use osp::core::gen::{random_instance, RandomInstanceConfig};
use osp::core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn instance_json_round_trip() {
    let mut rng = StdRng::seed_from_u64(0);
    let cfg = RandomInstanceConfig::unweighted(15, 30, 3);
    let inst = random_instance(&cfg, &mut rng).unwrap();

    let json = serde_json::to_string(&inst).unwrap();
    let back: Instance = serde_json::from_str(&json).unwrap();
    assert_eq!(back, inst);

    // The deserialized instance behaves identically.
    let a = run(&inst, &mut RandPr::from_seed(5)).unwrap();
    let b = run(&back, &mut RandPr::from_seed(5)).unwrap();
    assert_eq!(a.completed(), b.completed());
    assert_eq!(a.benefit(), b.benefit());
}

#[test]
fn ids_and_metadata_round_trip() {
    let id = SetId(42);
    let json = serde_json::to_string(&id).unwrap();
    assert_eq!(serde_json::from_str::<SetId>(&json).unwrap(), id);

    let meta = SetMeta::new(2.5, 3);
    let json = serde_json::to_string(&meta).unwrap();
    let back: SetMeta = serde_json::from_str(&json).unwrap();
    assert_eq!(back.weight(), 2.5);
    assert_eq!(back.size(), 3);
}
