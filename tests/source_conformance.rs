//! Conformance layer for streaming arrival sources.
//!
//! The tentpole claim of the source-based engine is that *streaming
//! changes nothing*: for every built-in algorithm over every generator
//! model, replaying the fused generate-as-you-stream source
//! ([`UniformSource`], [`BiregularSource`], [`FixedSizeSource`]) produces
//! **bit-identical** [`Outcome`]s — completed sets, benefit, per-arrival
//! decision log and `died_at` — to `engine::run` on the instance the
//! materializing generator builds from the same seed. Likewise for a
//! materialized instance streamed back through [`Instance::source`], for
//! a packet trace streamed through [`TraceSource`] vs the mapped
//! instance, and for the pool's streamed lane
//! ([`ReplayPool::run_sources`]) at shard counts 1, 2 and 8.

use osp::core::algorithms::{
    GreedyOnline, HashRandPr, OracleOnline, RandPr, RandomAssign, TieBreak,
};
use osp::core::gen::{
    random_instance, BiregularSource, CapacityModel, FixedSizeSource, LoadModel,
    RandomInstanceConfig, UniformSource, WeightModel,
};
use osp::core::prelude::*;
use osp::core::source::ArrivalSource;
use osp::net::{trace_to_instance, video_trace, TraceSource, VideoTraceConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SHARD_COUNTS: [usize; 3] = [1, 2, 8];
const TRIALS: u64 = 5;

/// The uniform-family configs of the generator-model grid.
fn uniform_cfg() -> RandomInstanceConfig {
    RandomInstanceConfig::unweighted(30, 80, 4)
}

fn zipf_cfg() -> RandomInstanceConfig {
    RandomInstanceConfig {
        num_sets: 40,
        num_elements: 100,
        load: LoadModel::Uniform { lo: 1, hi: 6 },
        weights: WeightModel::Zipf { exponent: 1.0 },
        capacities: CapacityModel::Uniform { lo: 1, hi: 3 },
    }
}

/// The generator-model grid: for each model, a materialized instance and
/// the fused source built from the same seed.
fn model_grid(seed: u64) -> Vec<(&'static str, Instance, Box<dyn ArrivalSource>)> {
    let mut grid: Vec<(&'static str, Instance, Box<dyn ArrivalSource>)> = Vec::new();

    let cfg = uniform_cfg();
    grid.push((
        "uniform unweighted (m=30, n=80, σ=4)",
        random_instance(&cfg, &mut StdRng::seed_from_u64(seed)).unwrap(),
        Box::new(UniformSource::new(&cfg, seed).unwrap()),
    ));

    let cfg = zipf_cfg();
    grid.push((
        "zipf weights, variable loads and capacities",
        random_instance(&cfg, &mut StdRng::seed_from_u64(seed)).unwrap(),
        Box::new(UniformSource::new(&cfg, seed).unwrap()),
    ));

    grid.push((
        "bi-regular (m=24, k=3, σ=6)",
        osp::core::gen::biregular_instance(24, 3, 6, &mut StdRng::seed_from_u64(seed)).unwrap(),
        Box::new(BiregularSource::new(24, 3, 6, seed).unwrap()),
    ));

    grid.push((
        "fixed size, skewed loads (m=40, k=4, skew=1.2)",
        osp::core::gen::fixed_size_instance(40, 4, 90, 1.2, &mut StdRng::seed_from_u64(seed))
            .unwrap(),
        Box::new(FixedSizeSource::new(40, 4, 90, 1.2, seed).unwrap()),
    ));

    grid
}

/// A feasible oracle target: whatever deterministic greedy completed.
fn oracle_target(instance: &Instance) -> Vec<SetId> {
    run(instance, &mut GreedyOnline::new(TieBreak::ByWeight))
        .unwrap()
        .completed()
        .to_vec()
}

/// The five algorithm families under test (same roster as
/// `tests/batch_equivalence.rs`).
fn algorithm(family: usize, seed: u64, target: &[SetId]) -> Box<dyn OnlineAlgorithm> {
    match family {
        0 => Box::new(GreedyOnline::new(TieBreak::ByWeight)),
        1 => Box::new(RandPr::from_seed(seed)),
        2 => Box::new(HashRandPr::new(8, seed)),
        3 => Box::new(RandomAssign::from_seed(seed)),
        _ => Box::new(OracleOnline::new(target.to_vec())),
    }
}

const FAMILY_NAMES: [&str; 5] = ["greedy", "randPr", "hashPr", "random_assign", "oracle"];

/// Full field-by-field comparison, through the public accessors so an
/// assertion failure names the diverging field.
fn assert_outcomes_identical(label: &str, want: &Outcome, got: &Outcome, sets: usize) {
    assert_eq!(want.completed(), got.completed(), "{label}: completed sets");
    assert!(
        want.benefit().to_bits() == got.benefit().to_bits(),
        "{label}: benefit diverged ({} vs {})",
        want.benefit(),
        got.benefit()
    );
    assert_eq!(want.decisions(), got.decisions(), "{label}: decisions");
    for i in 0..sets {
        let s = SetId(i as u32);
        assert_eq!(want.died_at(s), got.died_at(s), "{label}: died_at({s:?})");
    }
    assert_eq!(want, got, "{label}: outcome diverged");
}

#[test]
fn streamed_generators_are_bit_identical_to_materialized_replay() {
    // 5 algorithms × 4 generator models × TRIALS seeds: `run` on the
    // materialized instance vs `run_source` on a fresh fused source.
    for trial in 0..TRIALS {
        let gen_seed = derive_seed(400, trial);
        for (model, instance, _) in model_grid(gen_seed) {
            let target = oracle_target(&instance);
            for (family, family_name) in FAMILY_NAMES.iter().enumerate() {
                let alg_seed = derive_seed(500 + family as u64, trial);
                let want = run(&instance, algorithm(family, alg_seed, &target).as_mut()).unwrap();
                // Rebuild the source per run — streaming is single-pass.
                let (_, _, mut source) = model_grid(gen_seed)
                    .into_iter()
                    .find(|(name, _, _)| *name == model)
                    .unwrap();
                let got =
                    run_source(&mut source, algorithm(family, alg_seed, &target).as_mut()).unwrap();
                let label = format!("{model} / {family_name} / trial {trial}");
                assert_outcomes_identical(&label, &want, &got, instance.num_sets());
            }
        }
    }
}

#[test]
fn instance_source_round_trips_through_the_engine() {
    let instance = random_instance(&zipf_cfg(), &mut StdRng::seed_from_u64(3)).unwrap();
    for (family, family_name) in FAMILY_NAMES.iter().enumerate() {
        let target = oracle_target(&instance);
        let seed = derive_seed(600 + family as u64, 0);
        let want = run(&instance, algorithm(family, seed, &target).as_mut()).unwrap();
        let got = run_source(
            &mut instance.source(),
            algorithm(family, seed, &target).as_mut(),
        )
        .unwrap();
        assert_outcomes_identical(family_name, &want, &got, instance.num_sets());
    }
}

#[test]
fn session_drain_source_matches_stepwise_replay() {
    let instance = random_instance(&uniform_cfg(), &mut StdRng::seed_from_u64(8)).unwrap();
    let mut alg = RandPr::from_seed(77);
    let mut session = Session::new(instance.sets(), &mut alg);
    session
        .drain_source(&mut instance.source(), &mut alg)
        .unwrap();
    let drained = session.finish();
    let stepped = run(&instance, &mut RandPr::from_seed(77)).unwrap();
    assert_eq!(drained, stepped);
}

#[test]
fn pool_run_sources_is_shard_count_invariant() {
    // A heterogeneous streamed work-list — every fused source family ×
    // the seeded algorithms — through the pool's streamed lane. The
    // sequential reference is run_source on identically-built jobs; the
    // pool must match it bit-for-bit at every shard count.
    let uniform = uniform_cfg();
    let source_factory = move |selector: usize, seed: u64| -> Box<dyn ArrivalSource> {
        match selector {
            0 => Box::new(UniformSource::new(&uniform, seed).unwrap()),
            1 => Box::new(BiregularSource::new(24, 3, 6, seed).unwrap()),
            _ => Box::new(FixedSizeSource::new(40, 4, 90, 1.2, seed).unwrap()),
        }
    };
    let alg_factory =
        |family: usize, seed: u64| -> Box<dyn OnlineAlgorithm> { algorithm(family, seed, &[]) };
    let mut jobs = Vec::new();
    for source in 0..3usize {
        for family in 0..4usize {
            for trial in 0..3u64 {
                jobs.push(SourceJob {
                    source,
                    algorithm: family,
                    seed: derive_seed(900 + source as u64 * 10 + family as u64, trial),
                });
            }
        }
    }
    let reference: Vec<Outcome> = jobs
        .iter()
        .map(|job| {
            let mut source = source_factory(job.source, job.seed);
            run_source(&mut source, alg_factory(job.algorithm, job.seed).as_mut()).unwrap()
        })
        .collect();
    for shards in SHARD_COUNTS {
        let pooled = ReplayPool::new(shards).run_sources(&jobs, &source_factory, &alg_factory);
        assert_eq!(pooled.len(), reference.len());
        for (i, (want, got)) in reference.iter().zip(&pooled).enumerate() {
            let got = got.as_ref().unwrap_or_else(|e| panic!("job {i}: {e}"));
            assert_eq!(want, got, "job {i} diverged at {shards} shards");
        }
    }
}

#[test]
fn pool_run_source_seeds_matches_materialized_run_seeds() {
    // The two convenience lanes agree: run_seeds over the materialized
    // instance vs run_source_seeds over fused sources of the same
    // generator seed.
    let cfg = uniform_cfg();
    let gen_seed = 42u64;
    let instance = random_instance(&cfg, &mut StdRng::seed_from_u64(gen_seed)).unwrap();
    let seeds: Vec<u64> = (0..12).map(|i| derive_seed(7, i)).collect();
    let pool = ReplayPool::new(4);
    let materialized = pool.run_seeds(&instance, &seeds, &|s| Box::new(RandPr::from_seed(s)));
    let streamed = pool.run_source_seeds(
        &seeds,
        &|_| Box::new(UniformSource::new(&cfg, gen_seed).unwrap()),
        &|s| Box::new(RandPr::from_seed(s)),
    );
    assert_eq!(materialized, streamed);
}

#[test]
fn trace_source_is_bit_identical_to_mapped_replay() {
    let mut rng = StdRng::seed_from_u64(5);
    let trace = video_trace(&VideoTraceConfig::small(), &mut rng);
    let mapped = trace_to_instance(&trace);
    let target = oracle_target(&mapped.instance);
    for (family, family_name) in FAMILY_NAMES.iter().enumerate() {
        let seed = derive_seed(700 + family as u64, 0);
        let want = run(&mapped.instance, algorithm(family, seed, &target).as_mut()).unwrap();
        let mut source = TraceSource::new(&trace).unwrap();
        let got = run_source(&mut source, algorithm(family, seed, &target).as_mut()).unwrap();
        assert_outcomes_identical(family_name, &want, &got, mapped.instance.num_sets());
    }
}

#[test]
fn try_new_guards_the_untrusted_boundary() {
    let s = [SetId(0), SetId(2), SetId(1)];
    assert!(matches!(
        Arrival::try_new(ElementId(0), 1, &s),
        Err(Error::UnsortedMembers { .. })
    ));
    let s = [SetId(1), SetId(1)];
    assert!(matches!(
        Arrival::try_new(ElementId(0), 1, &s),
        Err(Error::DuplicateMember { .. })
    ));
    let s = [SetId(0)];
    assert!(matches!(
        Arrival::try_new(ElementId(0), 0, &s),
        Err(Error::ZeroCapacity(_))
    ));
    let a = Arrival::try_new(ElementId(3), 2, &s).unwrap();
    assert_eq!(a.element(), ElementId(3));
    assert_eq!(a.capacity(), 2);
    assert_eq!(a.members(), &s);
}
