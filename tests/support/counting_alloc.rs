//! Shared counting-allocator harness for the alloc-free test binaries
//! (`alloc_free_replay`, `alloc_free_streaming`) — one implementation so
//! the counting rules cannot drift between the two. Each binary includes
//! this file via `#[path]` and declares its own `#[global_allocator]`
//! static of [`CountingAllocator`] (the attribute must live in the crate
//! that owns the allocator).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// `System`, with every allocator entry point counted.
pub struct CountingAllocator;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Allocator calls observed so far (monotonic).
pub fn allocations() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}
