//! Conformance layer for the sharded batch-replay engine.
//!
//! The headline risk of parallel replay is *silent nondeterminism*: a
//! shard-count-dependent seed, a racy buffer, a second engine code path
//! drifting from the first. This suite pins the contract: for every
//! built-in algorithm (`greedy`, `randPr`, `hashPr`, `random_assign`,
//! `oracle`) over a grid of generator models, [`ReplayPool`] outcomes are
//! **bit-identical** to sequential [`engine::run`] — completed sets,
//! benefit, per-arrival decisions and `died_at` — at shard counts 1, 2
//! and 8.

use osp_core::algorithms::{
    GreedyOnline, HashRandPr, OracleOnline, RandPr, RandomAssign, TieBreak,
};
use osp_core::gen::{
    biregular_instance, fixed_size_instance, random_instance, CapacityModel, LoadModel,
    RandomInstanceConfig, WeightModel,
};
use osp_core::{
    derive_seed, run, Instance, OnlineAlgorithm, Outcome, ReplayJob, ReplayPool, SetId,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SHARD_COUNTS: [usize; 3] = [1, 2, 8];
const TRIALS: u64 = 6;

/// The generator-model grid: one instance per model family.
fn instance_grid() -> Vec<(&'static str, Instance)> {
    let mut grid = Vec::new();

    let mut rng = StdRng::seed_from_u64(11);
    grid.push((
        "uniform unweighted (m=30, n=80, σ=4)",
        random_instance(&RandomInstanceConfig::unweighted(30, 80, 4), &mut rng).unwrap(),
    ));

    let mut rng = StdRng::seed_from_u64(12);
    grid.push((
        "zipf weights, variable loads and capacities",
        random_instance(
            &RandomInstanceConfig {
                num_sets: 40,
                num_elements: 100,
                load: LoadModel::Uniform { lo: 1, hi: 6 },
                weights: WeightModel::Zipf { exponent: 1.0 },
                capacities: CapacityModel::Uniform { lo: 1, hi: 3 },
            },
            &mut rng,
        )
        .unwrap(),
    ));

    let mut rng = StdRng::seed_from_u64(13);
    grid.push((
        "bi-regular (m=24, k=3, σ=6)",
        biregular_instance(24, 3, 6, &mut rng).unwrap(),
    ));

    let mut rng = StdRng::seed_from_u64(14);
    grid.push((
        "fixed size, skewed loads (m=40, k=4, skew=1.2)",
        fixed_size_instance(40, 4, 90, 1.2, &mut rng).unwrap(),
    ));

    grid
}

/// A feasible oracle target: whatever deterministic greedy completed.
fn oracle_target(instance: &Instance) -> Vec<SetId> {
    run(instance, &mut GreedyOnline::new(TieBreak::ByWeight))
        .unwrap()
        .completed()
        .to_vec()
}

/// The five algorithm families under test. The oracle's target depends on
/// the instance, so the factory receives it.
fn algorithm(family: usize, seed: u64, target: &[SetId]) -> Box<dyn OnlineAlgorithm> {
    match family {
        0 => Box::new(GreedyOnline::new(TieBreak::ByWeight)),
        1 => Box::new(RandPr::from_seed(seed)),
        2 => Box::new(HashRandPr::new(8, seed)),
        3 => Box::new(RandomAssign::from_seed(seed)),
        _ => Box::new(OracleOnline::new(target.to_vec())),
    }
}

const FAMILY_NAMES: [&str; 5] = ["greedy", "randPr", "hashPr", "random_assign", "oracle"];

/// Full field-by-field comparison, through the public accessors so the
/// assertion failure names the diverging field.
fn assert_outcomes_identical(label: &str, sequential: &Outcome, batched: &Outcome, sets: usize) {
    assert_eq!(
        sequential.completed(),
        batched.completed(),
        "{label}: completed sets diverged"
    );
    assert!(
        sequential.benefit().to_bits() == batched.benefit().to_bits(),
        "{label}: benefit diverged ({} vs {})",
        sequential.benefit(),
        batched.benefit()
    );
    assert_eq!(
        sequential.decisions(),
        batched.decisions(),
        "{label}: decisions diverged"
    );
    for i in 0..sets {
        let s = SetId(i as u32);
        assert_eq!(
            sequential.died_at(s),
            batched.died_at(s),
            "{label}: died_at({s:?}) diverged"
        );
    }
    // And the blanket structural equality, in case fields are added later.
    assert_eq!(sequential, batched, "{label}: outcome diverged");
}

#[test]
fn batch_replay_is_bit_identical_to_sequential() {
    for (model, instance) in instance_grid() {
        let target = oracle_target(&instance);
        for (family, family_name) in FAMILY_NAMES.iter().enumerate() {
            // Sequential reference, one run per trial seed.
            let seeds: Vec<u64> = (0..TRIALS).map(|i| derive_seed(family as u64, i)).collect();
            let sequential: Vec<Outcome> = seeds
                .iter()
                .map(|&s| run(&instance, algorithm(family, s, &target).as_mut()).unwrap())
                .collect();
            for shards in SHARD_COUNTS {
                let pool = ReplayPool::new(shards);
                let jobs: Vec<ReplayJob<'_>> = seeds
                    .iter()
                    .map(|&seed| ReplayJob {
                        instance: &instance,
                        algorithm: family,
                        seed,
                    })
                    .collect();
                let batched = pool.run_jobs(&jobs, &|fam, s| algorithm(fam, s, &target));
                assert_eq!(batched.len(), sequential.len());
                for (trial, (seq, bat)) in sequential.iter().zip(&batched).enumerate() {
                    let bat = bat
                        .as_ref()
                        .unwrap_or_else(|e| panic!("{model}/{family_name}: job failed: {e:?}"));
                    let label =
                        format!("{model} / {family_name} / trial {trial} / {shards} shards");
                    assert_outcomes_identical(&label, seq, bat, instance.num_sets());
                }
            }
        }
    }
}

#[test]
fn mixed_worklist_is_order_stable_across_shard_counts() {
    // One big heterogeneous work-list — every instance crossed with the
    // seed-driven families — replayed through a SINGLE run_jobs call per
    // shard count. Results must land in job order and agree with the
    // sequential reference job-for-job. (The oracle family needs per-
    // instance context and is covered by the per-family test above.)
    let grid = instance_grid();
    let mut jobs = Vec::new();
    for (gi, (_, instance)) in grid.iter().enumerate() {
        for family in 0..4 {
            for trial in 0..3u64 {
                jobs.push(ReplayJob {
                    instance,
                    algorithm: family,
                    seed: derive_seed(1000 + gi as u64, trial),
                });
            }
        }
    }
    let factory =
        |family: usize, seed: u64| -> Box<dyn OnlineAlgorithm> { algorithm(family, seed, &[]) };
    let reference: Vec<Outcome> = jobs
        .iter()
        .map(|job| run(job.instance, factory(job.algorithm, job.seed).as_mut()).unwrap())
        .collect();
    for shards in SHARD_COUNTS {
        let batched = ReplayPool::new(shards).run_jobs(&jobs, &factory);
        assert_eq!(batched.len(), reference.len());
        for (i, (seq, bat)) in reference.iter().zip(&batched).enumerate() {
            assert_eq!(
                seq,
                bat.as_ref().unwrap(),
                "job {i} diverged at {shards} shards"
            );
        }
    }
}

#[test]
fn decision_log_equivalence() {
    // The flat CSR [`DecisionLog`] must record exactly what the legacy
    // per-arrival path produces: for every algorithm family and generator
    // model, drive a session "by hand" through the allocating `decide`
    // shim (one `Vec<SetId>` per arrival, applied via `apply_external`)
    // and compare it slice-for-slice against the engine's flat log.
    for (model, instance) in instance_grid() {
        let target = oracle_target(&instance);
        for (family, family_name) in FAMILY_NAMES.iter().enumerate() {
            let seed = derive_seed(7000 + family as u64, 0);
            let engine_out = run(&instance, algorithm(family, seed, &target).as_mut()).unwrap();

            let mut alg = algorithm(family, seed, &target);
            let mut session = osp_core::Session::new(instance.sets(), alg.as_mut());
            let mut legacy: Vec<Vec<SetId>> = Vec::new();
            for arrival in instance.arrivals() {
                let decision = {
                    let view = session.view();
                    alg.decide(&arrival, &view)
                };
                let applied = session.apply_external(&arrival, decision).unwrap();
                legacy.push(applied);
            }
            let manual_out = session.finish();

            let label = format!("{model} / {family_name}");
            let log = engine_out.decisions();
            assert_eq!(log.len(), legacy.len(), "{label}: log length diverged");
            for (i, want) in legacy.iter().enumerate() {
                assert_eq!(
                    log.get(i),
                    Some(want.as_slice()),
                    "{label}: decision {i} diverged"
                );
            }
            // The iterator view agrees with indexed access, and the two
            // paths agree on the whole outcome.
            assert!(log.iter().map(<[SetId]>::to_vec).eq(legacy.iter().cloned()));
            assert_eq!(engine_out, manual_out, "{label}: outcomes diverged");
        }
    }
}

#[test]
fn prologue_shard_counts_build_bit_identical_tables() {
    // The parallel table-build prologue must write the same bytes at
    // every shard count: each priority slot is a pure function of
    // `(seed, index)` (hashPr evaluates a shared polynomial; randPr
    // jumps a counter-based stream to the slot's draw offset). Pin the
    // contract over the whole generator-model grid at the canonical
    // shard counts, through the explicit-thread-count entry points so no
    // test mutates the process environment.
    for (model, instance) in instance_grid() {
        let sets = instance.sets();
        let ids: Vec<SetId> = (0..sets.len()).map(|i| SetId(i as u32)).collect();

        let mut hash_reference = HashRandPr::new(8, 21);
        hash_reference.begin_with_threads(sets, SHARD_COUNTS[0]);
        let mut rand_reference = RandPr::from_seed(21);
        rand_reference.begin_with_threads(sets, SHARD_COUNTS[0]);

        for &shards in &SHARD_COUNTS[1..] {
            let mut hash_sharded = HashRandPr::new(8, 21);
            hash_sharded.begin_with_threads(sets, shards);
            let mut rand_sharded = RandPr::from_seed(21);
            rand_sharded.begin_with_threads(sets, shards);
            for &s in &ids {
                assert_eq!(
                    hash_sharded.priority(s),
                    hash_reference.priority(s),
                    "{model}: hashPr priority({s:?}) diverged at {shards} shards"
                );
                assert_eq!(
                    rand_sharded.priority(s),
                    rand_reference.priority(s),
                    "{model}: randPr priority({s:?}) diverged at {shards} shards"
                );
            }
        }
    }
}

#[test]
fn lazy_hash_pr_matches_eager_on_the_grid() {
    // The table-free hashPr variant scores candidates per arrival with
    // the batched kernel; its decisions must be bit-identical to the
    // table-building mode on every generator model.
    for (model, instance) in instance_grid() {
        for trial in 0..TRIALS {
            let seed = derive_seed(42, trial);
            let eager = run(&instance, &mut HashRandPr::new(8, seed)).unwrap();
            let lazy = run(&instance, &mut HashRandPr::new_lazy(8, seed)).unwrap();
            assert_outcomes_identical(
                &format!("{model} / lazy hashPr / trial {trial}"),
                &eager,
                &lazy,
                instance.num_sets(),
            );
        }
    }
}

#[test]
fn empty_instance_and_single_job_edge_cases() {
    let empty = osp_core::InstanceBuilder::new().build().unwrap();
    for shards in SHARD_COUNTS {
        let out =
            ReplayPool::new(shards).run_seeds(&empty, &[7], &|s| Box::new(RandPr::from_seed(s)));
        assert_eq!(out.len(), 1);
        assert!(out[0].completed().is_empty());
        assert_eq!(out[0].benefit(), 0.0);
    }
}
