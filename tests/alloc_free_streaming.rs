//! The streaming-path twin of `tests/alloc_free_replay.rs`: pulling
//! arrivals out of a **warm** source and stepping them through a warm
//! [`Session`] performs zero heap allocations per arrival — for every
//! fused generator source, the instance-backed source and the osp-net
//! trace source.
//!
//! Source *construction* may allocate (it is per-job state: the uniform
//! source's O(m) tables, the biregular pairing, the trace validation
//! pass); the arrival loop may not. A counting global allocator wraps
//! `System`; after one warm-up replay has grown the [`ReplayScratch`]
//! buffers and the algorithm's begin-time state, a second replay's entire
//! arrival loop must not touch the allocator.
//!
//! The target is built with `harness = false` (see `Cargo.toml`) so the
//! process has exactly one thread and nothing can race allocations into
//! the measured window of the process-global counter.

use osp::core::algorithms::RandPr;
use osp::core::gen::{
    BiregularSource, CapacityModel, FixedSizeSource, LoadModel, RandomInstanceConfig,
    UniformSource, WeightModel,
};
use osp::core::prelude::*;
use osp::core::source::ArrivalSource;
use osp::core::ReplayScratch;
use osp::net::{video_trace, TraceSource, VideoTraceConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[path = "support/counting_alloc.rs"]
mod counting_alloc;
use counting_alloc::{allocations, CountingAllocator};

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Replays `source` through a scratch-backed session, measuring allocator
/// calls across the arrival loop only (construction, `begin` and the
/// job-level outcome snapshot are per-job costs and excluded by design).
/// Returns `(allocations_in_loop, arrivals, outcome)`.
fn measured_replay(
    mut source: impl ArrivalSource,
    alg: &mut dyn OnlineAlgorithm,
    scratch: &mut ReplayScratch,
    metas: &mut Vec<SetMeta>,
) -> (u64, usize, Outcome) {
    metas.clear();
    metas.extend_from_slice(source.sets());
    let mut session = Session::with_scratch(metas, alg, scratch);
    let before = allocations();
    let mut arrivals = 0usize;
    while let Some(arrival) = source.next_arrival() {
        session.step(&arrival, alg).unwrap();
        arrivals += 1;
    }
    let after = allocations();
    (after - before, arrivals, session.finish_into(scratch))
}

fn main() {
    let uniform_cfg = RandomInstanceConfig {
        num_sets: 60,
        num_elements: 300,
        load: LoadModel::Uniform { lo: 1, hi: 5 },
        weights: WeightModel::Uniform { lo: 0.5, hi: 4.0 },
        capacities: CapacityModel::Uniform { lo: 1, hi: 3 },
    };
    let materialized =
        osp::core::gen::random_instance(&uniform_cfg, &mut StdRng::seed_from_u64(31)).unwrap();
    let trace = video_trace(&VideoTraceConfig::small(), &mut StdRng::seed_from_u64(31));

    // Streaming is single-pass, so warm-up and measured runs each rebuild
    // the source (construction allocates; the arrival loop must not).
    fn check<S: ArrivalSource>(name: &str, build: impl Fn() -> S) {
        let mut alg = RandPr::from_seed(7);
        let mut scratch = ReplayScratch::new();
        let mut metas: Vec<SetMeta> = Vec::new();
        // Warm-up: grows the scratch buffers, the metas copy and the
        // algorithm's begin-time state to this stream's footprint.
        let (_, warm_arrivals, _) = measured_replay(build(), &mut alg, &mut scratch, &mut metas);
        assert!(warm_arrivals > 0, "{name}: empty stream");
        // Warm run: the arrival loop must not allocate at all.
        let (allocs, arrivals, outcome) =
            measured_replay(build(), &mut alg, &mut scratch, &mut metas);
        assert_eq!(arrivals, warm_arrivals, "{name}: stream length changed");
        assert_eq!(
            allocs, 0,
            "{name}: {allocs} allocation(s) during {arrivals} warm streamed arrivals"
        );
        // And the replay is still a faithful one.
        assert_eq!(outcome.decisions().len(), arrivals, "{name}: log length");
    }

    check("uniform", || UniformSource::new(&uniform_cfg, 31).unwrap());
    check("biregular", || BiregularSource::new(40, 5, 4, 31).unwrap());
    check("fixed_size", || {
        FixedSizeSource::new(50, 4, 120, 1.2, 31).unwrap()
    });
    check("instance", || materialized.source());
    check("trace", || TraceSource::new(&trace).unwrap());
}
