//! Property-based integration tests: engine invariants under arbitrary
//! instances and arbitrary (valid) algorithm behavior.

use proptest::prelude::*;

use osp::core::prelude::*;
use osp::opt::prelude::*;

/// Strategy: a random valid instance description.
/// `(num_sets, elements: Vec<(capacity, member_mask)>)` with masks kept
/// non-empty and within range.
fn instance_strategy() -> impl Strategy<Value = Instance> {
    (2usize..10).prop_flat_map(|m| {
        let element = (1u32..3, 1u32..(1 << m) as u32);
        proptest::collection::vec(element, 1..20).prop_map(move |elems| {
            let mut b = InstanceBuilder::new();
            let ids: Vec<SetId> = (0..m).map(|_| b.add_set_unsized(1.0)).collect();
            let mut used = vec![false; m];
            for (cap, mask) in &elems {
                let members: Vec<SetId> = (0..m)
                    .filter(|&i| mask & (1 << i) != 0)
                    .map(|i| {
                        used[i] = true;
                        ids[i]
                    })
                    .collect();
                b.add_element(*cap, &members);
            }
            // Give never-used sets one private element so the builder
            // accepts the instance.
            for (i, &u) in used.iter().enumerate() {
                if !u {
                    b.add_element(1, &[ids[i]]);
                }
            }
            b.build().expect("constructed to be valid")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engine_invariants_hold_for_all_algorithms(inst in instance_strategy(), seed in 0u64..1000) {
        let mut algs: Vec<Box<dyn OnlineAlgorithm>> = vec![
            Box::new(RandPr::from_seed(seed)),
            Box::new(RandPr::with_active_filter(seed)),
            Box::new(HashRandPr::new(4, seed)),
            Box::new(RandomAssign::from_seed(seed)),
            Box::new(GreedyOnline::new(TieBreak::ByWeight)),
            Box::new(GreedyOnline::new(TieBreak::ByFewestRemaining)),
        ];
        for alg in algs.iter_mut() {
            let out = run(&inst, alg.as_mut()).unwrap();

            // Decisions respect capacity and membership.
            for (arrival, decision) in inst.arrivals().iter().zip(out.decisions()) {
                prop_assert!(decision.len() <= arrival.capacity() as usize);
                for s in decision {
                    prop_assert!(arrival.contains(*s));
                }
            }

            // Completed <=> assigned at every element.
            let mut assigned = vec![0u32; inst.num_sets()];
            for d in out.decisions() {
                for s in d {
                    assigned[s.index()] += 1;
                }
            }
            for (i, &got) in assigned.iter().enumerate() {
                let sid = SetId(i as u32);
                if out.is_completed(sid) {
                    prop_assert_eq!(got, inst.set(sid).size());
                    prop_assert!(out.died_at(sid).is_none());
                } else {
                    prop_assert!(out.died_at(sid).is_some());
                }
            }

            // Benefit equals the completed sets' weight; the completed
            // family is a feasible packing.
            let w: f64 = out.completed().iter().map(|&s| inst.set(s).weight()).sum();
            prop_assert!((w - out.benefit()).abs() < 1e-9);
            prop_assert!(is_feasible(&inst, out.completed()));
        }
    }

    #[test]
    fn solver_ladder_is_ordered(inst in instance_strategy()) {
        let (greedy, gsets) = best_greedy(&inst);
        prop_assert!(is_feasible(&inst, &gsets));
        let sol = branch_and_bound(&inst, &BnbConfig::default());
        prop_assert!(sol.optimal);
        prop_assert!(is_feasible(&inst, &sol.chosen));
        let dual = density_dual_bound(&inst);
        let mwu = fractional_packing(&inst, 0.15);
        prop_assert!(greedy <= sol.value + 1e-9);
        prop_assert!(sol.value <= dual + 1e-9);
        prop_assert!(sol.value <= mwu.dual + 1e-6);
        // Brute force agrees when tiny.
        if inst.num_sets() <= 10 {
            let (bv, _) = brute_force(&inst);
            prop_assert!((bv - sol.value).abs() < 1e-9);
        }
    }

    #[test]
    fn no_algorithm_beats_opt(inst in instance_strategy(), seed in 0u64..500) {
        let sol = branch_and_bound(&inst, &BnbConfig::default());
        let out = run(&inst, &mut RandPr::from_seed(seed)).unwrap();
        prop_assert!(out.benefit() <= sol.value + 1e-9);
    }
}
