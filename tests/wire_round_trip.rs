//! Property tests for the wire layer: every message type round-trips
//! encode→decode to identity, and the frame protocol answers truncation
//! and garbage with a clean [`Error`], never a panic.

use std::io::Cursor;

use proptest::prelude::*;

use osp::core::gen::{CapacityModel, LoadModel, RandomInstanceConfig, WeightModel};
use osp::core::prelude::*;
use osp::core::wire::{read_frame, read_message, write_frame, write_message};
use osp::core::ElementId;

// --- Strategies -----------------------------------------------------------

fn algorithm_spec() -> impl Strategy<Value = AlgorithmSpec> {
    (
        0usize..6,
        1usize..64,
        proptest::any::<u8>(),
        proptest::collection::vec(0u32..512, 0..8),
    )
        .prop_map(|(pick, independence, tie, target)| match pick {
            0 => AlgorithmSpec::RandPr,
            1 => AlgorithmSpec::HashRandPr { independence },
            2 => {
                let all = TieBreak::all();
                AlgorithmSpec::Greedy {
                    tie_break: all[tie as usize % all.len()],
                }
            }
            3 => AlgorithmSpec::RandomAssign,
            4 => {
                let mut ids: Vec<SetId> = target.into_iter().map(SetId).collect();
                ids.sort_unstable();
                ids.dedup();
                AlgorithmSpec::Oracle { target: ids }
            }
            5 => AlgorithmSpec::TailDrop,
            _ => AlgorithmSpec::RandomDrop,
        })
}

fn scenario_spec() -> impl Strategy<Value = ScenarioSpec> {
    (
        0usize..4,
        1usize..500,
        1usize..2000,
        1u32..8,
        0.1f64..3.0,
        1u32..16,
    )
        .prop_map(|(pick, m, n, k, skew, interval)| match pick {
            0 => ScenarioSpec::Uniform(RandomInstanceConfig {
                num_sets: m,
                num_elements: n,
                load: LoadModel::Uniform { lo: 1, hi: k },
                weights: WeightModel::Zipf { exponent: skew },
                capacities: CapacityModel::Uniform { lo: 1, hi: k },
            }),
            1 => ScenarioSpec::Biregular {
                num_sets: m,
                set_size: k,
                load: interval,
            },
            2 => ScenarioSpec::FixedSize {
                num_sets: m,
                set_size: k,
                num_elements: n,
                skew,
            },
            _ => ScenarioSpec::VideoTrace {
                sources: m,
                frames_per_source: n,
                frame_interval: interval,
                capacity: k,
                jitter: interval - 1,
            },
        })
}

fn job_spec() -> impl Strategy<Value = JobSpec> {
    (scenario_spec(), algorithm_spec(), proptest::any::<u64>()).prop_map(
        |(scenario, algorithm, seed)| JobSpec {
            scenario,
            algorithm,
            seed,
        },
    )
}

/// A structurally valid decision log built from per-arrival slices.
fn decision_log() -> impl Strategy<Value = DecisionLog> {
    proptest::collection::vec(proptest::collection::vec(0u32..256, 0..5), 0..32).prop_map(
        |decisions| {
            let mut offsets = vec![0u32];
            let mut data: Vec<SetId> = Vec::new();
            for d in &decisions {
                data.extend(d.iter().copied().map(SetId));
                offsets.push(data.len() as u32);
            }
            DecisionLog::from_parts(offsets, data).expect("constructed valid")
        },
    )
}

fn outcome() -> impl Strategy<Value = Outcome> {
    (
        proptest::collection::vec(0u32..1024, 0..24),
        -1e12f64..1e12,
        decision_log(),
        proptest::collection::vec(proptest::arbitrary::any::<bool>(), 0..64),
    )
        .prop_map(|(completed, benefit, log, deaths)| {
            let mut ids: Vec<SetId> = completed.into_iter().map(SetId).collect();
            ids.sort_unstable();
            ids.dedup();
            let died_at: Vec<Option<ElementId>> = deaths
                .into_iter()
                .enumerate()
                .map(|(i, dead)| dead.then_some(ElementId(i as u32)))
                .collect();
            Outcome::from_parts(ids, benefit, log, died_at).expect("constructed valid")
        })
}

// --- Properties -----------------------------------------------------------

proptest! {
    #[test]
    fn job_specs_round_trip(job in job_spec()) {
        let json = serde_json::to_string(&job).unwrap();
        let back: JobSpec = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, job);
    }

    #[test]
    fn outcomes_round_trip_bit_for_bit(want in outcome()) {
        let json = serde_json::to_string(&want).unwrap();
        let back: Outcome = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back.completed(), want.completed());
        prop_assert_eq!(back.benefit().to_bits(), want.benefit().to_bits());
        prop_assert_eq!(back.decisions(), want.decisions());
        prop_assert_eq!(&back, &want);
    }

    #[test]
    fn decision_logs_round_trip(want in decision_log()) {
        let json = serde_json::to_string(&want).unwrap();
        let back: DecisionLog = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &want);
        // The CSR views agree slice by slice.
        for (a, b) in want.iter().zip(back.iter()) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn framed_messages_round_trip_through_a_stream(jobs in proptest::collection::vec(job_spec(), 0..8)) {
        let mut buf = Vec::new();
        for job in &jobs {
            write_message(&mut buf, job).unwrap();
        }
        let mut cursor = Cursor::new(buf);
        for want in &jobs {
            let got: JobSpec = read_message(&mut cursor).unwrap().expect("frame per job");
            prop_assert_eq!(&got, want);
        }
        prop_assert!(read_message::<_, JobSpec>(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn truncated_frames_error_cleanly(job in job_spec(), cut in 0usize..2048) {
        let mut buf = Vec::new();
        write_message(&mut buf, &job).unwrap();
        let cut = cut % buf.len().max(1);
        buf.truncate(cut);
        let mut cursor = Cursor::new(buf);
        match read_frame(&mut cursor) {
            // Nothing left at a frame boundary: clean end of stream.
            Ok(None) => prop_assert_eq!(cut, 0),
            // Any partial frame must be a protocol error, never a panic.
            Err(Error::Protocol(_)) => {}
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    #[test]
    fn garbage_bytes_never_panic_the_reader(bytes in proptest::collection::vec(proptest::any::<u8>(), 0..512)) {
        // Whatever the bytes, the read path must answer with Ok or a
        // clean protocol error — and must not read past a declared
        // frame into unbounded memory (the length cap).
        let mut cursor = Cursor::new(bytes);
        loop {
            match read_message::<_, JobSpec>(&mut cursor) {
                Ok(Some(_)) => continue, // astronomically unlikely, but legal
                Ok(None) => break,
                Err(Error::Protocol(_)) => break,
                Err(other) => prop_assert!(false, "unexpected {:?}", other),
            }
        }
    }

    #[test]
    fn malformed_decision_log_parts_are_rejected(
        offsets in proptest::collection::vec(0u32..64, 0..8),
        data_len in 0usize..64,
    ) {
        let data: Vec<SetId> = (0..data_len as u32).map(SetId).collect();
        let valid = offsets.first() == Some(&0)
            && offsets.windows(2).all(|w| w[0] <= w[1])
            && offsets.last() == Some(&(data_len as u32));
        let result = DecisionLog::from_parts(offsets, data);
        prop_assert_eq!(result.is_ok(), valid);
        if let Err(e) = result {
            prop_assert!(matches!(e, Error::Protocol(_)));
        }
    }
}

#[test]
fn oversized_frame_declaration_is_rejected_without_allocating() {
    // A garbage length prefix claiming 4 GiB must fail fast.
    let mut bytes = 0xFFFF_FF00u32.to_le_bytes().to_vec();
    bytes.extend_from_slice(b"tiny");
    assert!(matches!(
        read_frame(&mut Cursor::new(bytes)),
        Err(Error::Protocol(_))
    ));
    // And the writer refuses to produce such a frame in the first place.
    let huge = vec![0u8; osp::core::wire::MAX_FRAME_LEN + 1];
    let mut sink = Vec::new();
    assert!(matches!(
        write_frame(&mut sink, &huge),
        Err(Error::Protocol(_))
    ));
    assert!(sink.is_empty());
}
