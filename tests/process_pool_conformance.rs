//! Conformance layer for the distributed (multi-process) replay pool.
//!
//! The tentpole claim of the spec-driven dispatch layer is that
//! *distribution changes nothing*: for every algorithm family over every
//! generator model, replaying a [`JobSpec`] work-list through `osp-worker`
//! child processes ([`ProcessPool`]) produces **bit-identical**
//! [`Outcome`]s — completed sets, benefit, per-arrival [`DecisionLog`]
//! and `died_at` — to the thread pool ([`ReplayPool::run_specs`] /
//! [`SpecPool`]) and to sequential [`run_spec`], at worker counts 1, 2
//! and 4. The osp-net roster (video-trace scenario, tail-drop and
//! random-drop) rides the same contract.

use osp::core::gen::{CapacityModel, LoadModel, RandomInstanceConfig, WeightModel};
use osp::core::prelude::*;
use osp::core::spec::{run_spec, AlgorithmSpec, JobSpec, ScenarioSpec};
use osp::core::{derived_jobs, Dispatcher, ProcessPool, SpecPool};
use osp::net::NetResolver;

const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

/// The `osp-worker` binary cargo built for this package.
fn worker_pool(workers: usize) -> ProcessPool {
    ProcessPool::with_command(workers, vec![env!("CARGO_BIN_EXE_osp-worker").to_string()])
}

/// The four generator models of the conformance grid (same roster as
/// `tests/source_conformance.rs`, as specs).
fn model_grid() -> Vec<(&'static str, ScenarioSpec)> {
    vec![
        (
            "uniform unweighted (m=30, n=80, σ=4)",
            ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(30, 80, 4)),
        ),
        (
            "zipf weights, variable loads and capacities",
            ScenarioSpec::Uniform(RandomInstanceConfig {
                num_sets: 40,
                num_elements: 100,
                load: LoadModel::Uniform { lo: 1, hi: 6 },
                weights: WeightModel::Zipf { exponent: 1.0 },
                capacities: CapacityModel::Uniform { lo: 1, hi: 3 },
            }),
        ),
        (
            "bi-regular (m=24, k=3, σ=6)",
            ScenarioSpec::Biregular {
                num_sets: 24,
                set_size: 3,
                load: 6,
            },
        ),
        (
            "fixed size, skewed loads (m=40, k=4, skew=1.2)",
            ScenarioSpec::FixedSize {
                num_sets: 40,
                set_size: 4,
                num_elements: 90,
                skew: 1.2,
            },
        ),
    ]
}

/// The five algorithm families under test (same roster as
/// `tests/batch_equivalence.rs` / `tests/source_conformance.rs`). The
/// oracle's target is whatever deterministic greedy completes on the
/// scenario — computed via the spec layer itself, so the target is a pure
/// function of the scenario spec.
fn algorithm_roster(scenario: &ScenarioSpec, seed: u64) -> Vec<(&'static str, AlgorithmSpec)> {
    let greedy = AlgorithmSpec::Greedy {
        tie_break: TieBreak::ByWeight,
    };
    let target = run_spec(
        &JobSpec {
            scenario: scenario.clone(),
            algorithm: greedy.clone(),
            seed,
        },
        &NetResolver,
    )
    .expect("greedy replays every grid scenario")
    .completed()
    .to_vec();
    vec![
        ("greedy", greedy),
        ("randPr", AlgorithmSpec::RandPr),
        ("hashPr8", AlgorithmSpec::HashRandPr { independence: 8 }),
        ("random_assign", AlgorithmSpec::RandomAssign),
        ("oracle", AlgorithmSpec::Oracle { target }),
    ]
}

/// Full field-by-field comparison through the public accessors, so an
/// assertion failure names the diverging field.
fn assert_outcomes_identical(label: &str, want: &Outcome, got: &Outcome) {
    assert_eq!(want.completed(), got.completed(), "{label}: completed sets");
    assert!(
        want.benefit().to_bits() == got.benefit().to_bits(),
        "{label}: benefit diverged ({} vs {})",
        want.benefit(),
        got.benefit()
    );
    assert_eq!(want.decisions(), got.decisions(), "{label}: decision log");
    for i in 0..1024u32 {
        // died_at is total (None beyond the instance), so probing a fixed
        // id range covers every set of every grid scenario.
        let s = SetId(i);
        assert_eq!(want.died_at(s), got.died_at(s), "{label}: died_at({s:?})");
    }
    assert_eq!(want, got, "{label}: outcome diverged");
}

#[test]
fn process_pool_is_bit_identical_to_threads_and_sequential() {
    // 5 algorithms × 4 generator models, 3 seeds each, one big mixed
    // work-list — exactly what a distributed experiment submits. The
    // sequential reference, the thread pool and the process pool at
    // every worker count must agree bit for bit.
    let mut jobs: Vec<JobSpec> = Vec::new();
    let mut labels: Vec<String> = Vec::new();
    for (model, scenario) in model_grid() {
        for trial in 0..3u64 {
            // One seed drives both the scenario and the algorithm of a
            // job, so the oracle's target must be derived for this
            // trial's scenario seed.
            let seed = derive_seed(801, trial);
            for (family, algorithm) in algorithm_roster(&scenario, seed) {
                jobs.push(JobSpec {
                    scenario: scenario.clone(),
                    algorithm,
                    seed,
                });
                labels.push(format!("{model} / {family} / trial {trial}"));
            }
        }
    }

    let sequential: Vec<Outcome> = jobs
        .iter()
        .map(|j| run_spec(j, &NetResolver).unwrap())
        .collect();

    let threads = SpecPool::new(ReplayPool::new(2), NetResolver);
    let threaded = threads.run_specs(&jobs);
    assert_eq!(threads.backend(), "threads");
    for ((want, got), label) in sequential.iter().zip(&threaded).zip(&labels) {
        assert_outcomes_identical(&format!("threads / {label}"), want, got.as_ref().unwrap());
    }

    for workers in WORKER_COUNTS {
        let pool = worker_pool(workers);
        assert_eq!(pool.backend(), "processes");
        assert_eq!(pool.lanes(), workers);
        let distributed = pool.run_specs(&jobs);
        assert_eq!(distributed.len(), jobs.len());
        for ((want, got), label) in sequential.iter().zip(&distributed).zip(&labels) {
            let got = got
                .as_ref()
                .unwrap_or_else(|e| panic!("{workers} workers / {label}: {e}"));
            assert_outcomes_identical(&format!("{workers} workers / {label}"), want, got);
        }
    }
}

#[test]
fn net_roster_crosses_the_process_boundary() {
    // The osp-net specs — video-trace scenario, tail-drop and random-drop
    // policies — through real worker processes.
    let scenario = ScenarioSpec::VideoTrace {
        sources: 4,
        frames_per_source: 12,
        frame_interval: 8,
        capacity: 4,
        jitter: 2,
    };
    let mut jobs = Vec::new();
    for algorithm in [
        AlgorithmSpec::TailDrop,
        AlgorithmSpec::RandomDrop,
        AlgorithmSpec::RandPr,
    ] {
        jobs.extend(derived_jobs(&scenario, &algorithm, 802, 3));
    }
    let sequential: Vec<Outcome> = jobs
        .iter()
        .map(|j| run_spec(j, &NetResolver).unwrap())
        .collect();
    for workers in [1usize, 2] {
        let distributed = worker_pool(workers).run_specs(&jobs);
        for (i, (want, got)) in sequential.iter().zip(&distributed).enumerate() {
            let got = got
                .as_ref()
                .unwrap_or_else(|e| panic!("job {i} at {workers} workers: {e}"));
            assert_outcomes_identical(&format!("net job {i} at {workers} workers"), want, got);
        }
    }
}

#[test]
fn per_job_failures_are_isolated_and_ordered() {
    // A work-list mixing good jobs with an infeasible scenario: every
    // lane must answer the good jobs bit-identically and fail exactly
    // the bad one, in position.
    let good = ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(20, 50, 3));
    let bad = ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(2, 5, 4));
    let jobs: Vec<JobSpec> = [&good, &bad, &good]
        .iter()
        .enumerate()
        .map(|(i, scenario)| JobSpec {
            scenario: (*scenario).clone(),
            algorithm: AlgorithmSpec::RandPr,
            seed: derive_seed(803, i as u64),
        })
        .collect();
    let pool = worker_pool(2);
    let out = pool.run_specs(&jobs);
    assert_eq!(out.len(), 3);
    assert!(out[0].is_ok());
    let err = out[1].as_ref().unwrap_err();
    assert!(
        matches!(err, Error::Worker(_)),
        "spec failure should cross the boundary as a worker error, got {err:?}"
    );
    assert!(err.to_string().contains("invalid spec"), "got: {err}");
    assert!(out[2].is_ok());
    // The surviving outcomes equal their sequential references.
    for i in [0usize, 2] {
        let want = run_spec(&jobs[i], &NetResolver).unwrap();
        assert_eq!(out[i].as_ref().unwrap(), &want);
    }
}

#[test]
fn worker_count_does_not_leak_into_seed_derivation() {
    // Same jobs, shuffled across different worker counts: outcomes are a
    // pure function of the spec. (Guards the contract that chunking is
    // deterministic and seeds never depend on lane assignment.)
    let scenario = ScenarioSpec::Biregular {
        num_sets: 24,
        set_size: 3,
        load: 6,
    };
    let jobs = derived_jobs(&scenario, &AlgorithmSpec::RandPr, 804, 8);
    let reference = worker_pool(1).run_specs(&jobs);
    for workers in [2usize, 3, 8] {
        let got =
            ProcessPool::with_command(workers, vec![env!("CARGO_BIN_EXE_osp-worker").to_string()])
                .run_specs(&jobs);
        for (i, (want, got)) in reference.iter().zip(&got).enumerate() {
            assert_eq!(
                want.as_ref().unwrap(),
                got.as_ref().unwrap(),
                "job {i} diverged at {workers} workers"
            );
        }
    }
}
