//! Conformance layer for intra-replay parallelism: the pipelined session
//! and the sharded decision kernel.
//!
//! The headline risk is the same silent nondeterminism the batch suite
//! guards against, now *inside* one replay: a chunk boundary dropping or
//! reordering arrivals, a sharded score fill perturbing the selection
//! order, a thread count leaking into decisions. This suite pins the
//! contract: for every built-in algorithm over the generator-model grid,
//! [`run_source_parallel`] outcomes are **bit-identical** to sequential
//! [`run`] — completed sets, benefit, per-arrival decisions and
//! `died_at` — at thread counts 1, 2 and 8, and the sharded decision
//! kernel agrees with serial scoring on arrivals wide enough to
//! trigger it.

use osp_core::algorithms::{
    GreedyOnline, HashRandPr, OracleOnline, RandPr, RandomAssign, TieBreak,
};
use osp_core::engine::batch::SourceJob;
use osp_core::engine::parallel::{run_source_parallel_with, SHARDED_DECIDE_MIN};
use osp_core::gen::{
    biregular_instance, fixed_size_instance, random_instance, BiregularSource, CapacityModel,
    FixedSizeSource, LoadModel, RandomInstanceConfig, UniformSource, WeightModel,
};
use osp_core::source::ArrivalSource;
use osp_core::{
    derive_seed, run, run_source, Instance, OnlineAlgorithm, Outcome, ParallelConfig, ReplayPool,
    ReplayScratch, SetId,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const TRIALS: u64 = 6;

/// A named, seeded constructor for a boxed streamed source.
type SourceBuilder = (
    &'static str,
    Box<dyn Fn(u64) -> Box<dyn ArrivalSource + Send>>,
);

/// A named, seeded constructor for a boxed algorithm.
type SeededAlgorithm = (&'static str, Box<dyn Fn(u64) -> Box<dyn OnlineAlgorithm>>);

/// A named constructor for a boxed algorithm with a fixed seed.
type FixedAlgorithm = (&'static str, Box<dyn Fn() -> Box<dyn OnlineAlgorithm>>);

/// The generator-model grid (same models as `tests/batch_equivalence.rs`).
fn instance_grid() -> Vec<(&'static str, Instance)> {
    let mut grid = Vec::new();

    let mut rng = StdRng::seed_from_u64(11);
    grid.push((
        "uniform unweighted (m=30, n=80, σ=4)",
        random_instance(&RandomInstanceConfig::unweighted(30, 80, 4), &mut rng).unwrap(),
    ));

    let mut rng = StdRng::seed_from_u64(12);
    grid.push((
        "zipf weights, variable loads and capacities",
        random_instance(
            &RandomInstanceConfig {
                num_sets: 40,
                num_elements: 100,
                load: LoadModel::Uniform { lo: 1, hi: 6 },
                weights: WeightModel::Zipf { exponent: 1.0 },
                capacities: CapacityModel::Uniform { lo: 1, hi: 3 },
            },
            &mut rng,
        )
        .unwrap(),
    ));

    let mut rng = StdRng::seed_from_u64(13);
    grid.push((
        "bi-regular (m=24, k=3, σ=6)",
        biregular_instance(24, 3, 6, &mut rng).unwrap(),
    ));

    let mut rng = StdRng::seed_from_u64(14);
    grid.push((
        "fixed size, skewed loads (m=40, k=4, skew=1.2)",
        fixed_size_instance(40, 4, 90, 1.2, &mut rng).unwrap(),
    ));

    grid
}

/// A feasible oracle target: whatever deterministic greedy completed.
fn oracle_target(instance: &Instance) -> Vec<SetId> {
    run(instance, &mut GreedyOnline::new(TieBreak::ByWeight))
        .unwrap()
        .completed()
        .to_vec()
}

/// The five algorithm families under test.
fn algorithm(family: usize, seed: u64, target: &[SetId]) -> Box<dyn OnlineAlgorithm> {
    match family {
        0 => Box::new(GreedyOnline::new(TieBreak::ByWeight)),
        1 => Box::new(RandPr::from_seed(seed)),
        2 => Box::new(HashRandPr::new(8, seed)),
        3 => Box::new(RandomAssign::from_seed(seed)),
        _ => Box::new(OracleOnline::new(target.to_vec())),
    }
}

const FAMILY_NAMES: [&str; 5] = ["greedy", "randPr", "hashPr", "random_assign", "oracle"];

/// Full field-by-field comparison, through the public accessors so the
/// assertion failure names the diverging field.
fn assert_outcomes_identical(label: &str, sequential: &Outcome, parallel: &Outcome, sets: usize) {
    assert_eq!(
        sequential.completed(),
        parallel.completed(),
        "{label}: completed sets diverged"
    );
    assert!(
        sequential.benefit().to_bits() == parallel.benefit().to_bits(),
        "{label}: benefit diverged ({} vs {})",
        sequential.benefit(),
        parallel.benefit()
    );
    assert_eq!(
        sequential.decisions(),
        parallel.decisions(),
        "{label}: decisions diverged"
    );
    for i in 0..sets {
        let s = SetId(i as u32);
        assert_eq!(
            sequential.died_at(s),
            parallel.died_at(s),
            "{label}: died_at({s:?}) diverged"
        );
    }
    assert_eq!(sequential, parallel, "{label}: outcome diverged");
}

#[test]
fn parallel_replay_is_bit_identical_to_sequential_run() {
    // The acceptance grid: every algorithm family × generator model ×
    // thread count, against the sequential `run` reference.
    for (model, instance) in instance_grid() {
        let target = oracle_target(&instance);
        for (family, family_name) in FAMILY_NAMES.iter().enumerate() {
            for trial in 0..TRIALS {
                let seed = derive_seed(family as u64, trial);
                let sequential = run(&instance, algorithm(family, seed, &target).as_mut()).unwrap();
                for threads in THREAD_COUNTS {
                    let mut scratch = ReplayScratch::new();
                    // A small chunk forces several chunk hand-offs even on
                    // these ~100-arrival streams.
                    let config = ParallelConfig { threads, chunk: 16 };
                    let parallel = run_source_parallel_with(
                        &mut instance.source(),
                        algorithm(family, seed, &target).as_mut(),
                        &config,
                        &mut scratch,
                    )
                    .unwrap();
                    let label =
                        format!("{model} / {family_name} / trial {trial} / {threads} threads");
                    assert_outcomes_identical(&label, &sequential, &parallel, instance.num_sets());
                }
            }
        }
    }
}

#[test]
fn pipelined_streamed_sources_match_sequential_run_source() {
    // The fused generator sources (the pipeline's raison d'être) at every
    // thread count, including lazy hashPr whose scoring rides eval_batch.
    let uniform_cfg = RandomInstanceConfig::unweighted(50, 400, 4);
    let zipf_cfg = RandomInstanceConfig {
        num_sets: 40,
        num_elements: 300,
        load: LoadModel::Uniform { lo: 1, hi: 6 },
        weights: WeightModel::Zipf { exponent: 1.0 },
        capacities: CapacityModel::Uniform { lo: 1, hi: 3 },
    };
    let builders: Vec<SourceBuilder> = vec![
        (
            "uniform",
            Box::new(move |seed| Box::new(UniformSource::new(&uniform_cfg, seed).unwrap())),
        ),
        (
            "zipf",
            Box::new(move |seed| Box::new(UniformSource::new(&zipf_cfg, seed).unwrap())),
        ),
        (
            "bi-regular",
            Box::new(|seed| Box::new(BiregularSource::new(36, 3, 6, seed).unwrap())),
        ),
        (
            "fixed-size",
            Box::new(|seed| Box::new(FixedSizeSource::new(48, 4, 200, 1.2, seed).unwrap())),
        ),
    ];
    let algorithms: Vec<SeededAlgorithm> = vec![
        (
            "greedy",
            Box::new(|_| Box::new(GreedyOnline::new(TieBreak::ByWeight))),
        ),
        ("randPr", Box::new(|s| Box::new(RandPr::from_seed(s)))),
        ("hashPr", Box::new(|s| Box::new(HashRandPr::new(8, s)))),
        (
            "hashPr-lazy",
            Box::new(|s| Box::new(HashRandPr::new_lazy(8, s))),
        ),
        (
            "random_assign",
            Box::new(|s| Box::new(RandomAssign::from_seed(s))),
        ),
    ];
    for (source_name, source) in &builders {
        for (alg_name, alg) in &algorithms {
            let seed = derive_seed(77, 0);
            let sequential = run_source(&mut source(seed), alg(seed).as_mut()).unwrap();
            for threads in THREAD_COUNTS {
                let mut scratch = ReplayScratch::new();
                let config = ParallelConfig { threads, chunk: 64 };
                let parallel = run_source_parallel_with(
                    &mut source(seed),
                    alg(seed).as_mut(),
                    &config,
                    &mut scratch,
                )
                .unwrap();
                assert_eq!(
                    sequential, parallel,
                    "{source_name} / {alg_name} / {threads} threads diverged"
                );
            }
        }
    }
}

/// A star instance wide enough to cross [`SHARDED_DECIDE_MIN`]: every
/// arrival lists all `m` sets, so the sharded decision kernel actually
/// runs (the conformance grids above stay below the threshold and pin
/// the dispatch's *serial* side).
fn wide_star(m: usize) -> Instance {
    let mut b = osp_core::InstanceBuilder::new();
    let ids: Vec<SetId> = (0..m)
        .map(|i| {
            // Varied weights (with zero-weight sets sprinkled in to hit
            // the Priority::zero() lane) and three elements per set.
            let w = if i % 11 == 0 {
                0.0
            } else {
                0.5 + (i % 7) as f64 * 0.3
            };
            b.add_set(w, 3)
        })
        .collect();
    for _ in 0..3 {
        b.add_element(2, &ids);
    }
    b.build().unwrap()
}

#[test]
fn sharded_decision_kernel_matches_serial_on_wide_arrivals() {
    let inst = wide_star(SHARDED_DECIDE_MIN + 501);
    let algorithms: Vec<FixedAlgorithm> = vec![
        (
            "greedy",
            Box::new(|| Box::new(GreedyOnline::new(TieBreak::ByWeight))),
        ),
        ("randPr", Box::new(|| Box::new(RandPr::from_seed(3)))),
        ("hashPr", Box::new(|| Box::new(HashRandPr::new(8, 3)))),
        (
            "hashPr-lazy",
            Box::new(|| Box::new(HashRandPr::new_lazy(8, 3))),
        ),
    ];
    for (alg_name, alg) in &algorithms {
        let sequential = run(&inst, alg().as_mut()).unwrap();
        for threads in THREAD_COUNTS {
            let mut scratch = ReplayScratch::new();
            let parallel = run_source_parallel_with(
                &mut inst.source(),
                alg().as_mut(),
                &ParallelConfig::with_threads(threads),
                &mut scratch,
            )
            .unwrap();
            assert_outcomes_identical(
                &format!("wide star / {alg_name} / {threads} threads"),
                &sequential,
                &parallel,
                inst.num_sets(),
            );
        }
    }
}

#[test]
fn batch_and_intra_replay_parallelism_compose() {
    // The pool's pipelined lane: OSP_REPLAY_SHARDS-style job fan-out ×
    // per-job pipeline threads, against plain sequential run_source.
    let cfg = RandomInstanceConfig::unweighted(30, 200, 4);
    let jobs: Vec<SourceJob> = (0..10)
        .map(|i| SourceJob {
            source: 0,
            algorithm: 0,
            seed: derive_seed(5, i),
        })
        .collect();
    let reference: Vec<Outcome> = jobs
        .iter()
        .map(|job| {
            run_source(
                &mut UniformSource::new(&cfg, job.seed).unwrap(),
                &mut RandPr::from_seed(job.seed),
            )
            .unwrap()
        })
        .collect();
    for shards in [1usize, 2, 4] {
        for threads in THREAD_COUNTS {
            let got = ReplayPool::new(shards).run_sources_pipelined(
                &jobs,
                &|_, seed| Box::new(UniformSource::new(&cfg, seed).unwrap()),
                &|_, seed| Box::new(RandPr::from_seed(seed)),
                &ParallelConfig { threads, chunk: 32 },
            );
            assert_eq!(got.len(), reference.len());
            for (i, (want, got)) in reference.iter().zip(&got).enumerate() {
                assert_eq!(
                    want,
                    got.as_ref().unwrap(),
                    "job {i} diverged at {shards} shards × {threads} threads"
                );
            }
        }
    }
}

#[test]
fn run_parallel_and_run_source_parallel_agree_with_run() {
    // The env-driven entry points themselves (whatever OSP_REPLAY_THREADS
    // happens to be in this test process — the policy maps every value,
    // including unset, to some thread count, and all of them must be
    // bit-identical).
    let (_, instance) = instance_grid().swap_remove(1);
    let want = run(&instance, &mut RandPr::from_seed(9)).unwrap();
    let via_instance = osp_core::run_parallel(&instance, &mut RandPr::from_seed(9)).unwrap();
    assert_eq!(want, via_instance);
    let via_source =
        osp_core::run_source_parallel(&mut instance.source(), &mut RandPr::from_seed(9)).unwrap();
    assert_eq!(want, via_source);
}
