//! # osp-opt — offline optimum solvers for set packing
//!
//! Competitive analysis needs `w(opt)`, the best offline packing value. The
//! paper's constructions come with analytically known optima, but the random
//! workloads of the upper-bound experiments do not — so this crate provides
//! a ladder of solvers:
//!
//! * [`brute::brute_force`] — exhaustive search, the test oracle (≤ ~22 sets);
//! * [`exact::branch_and_bound`] — provably optimal solutions with
//!   dual-bound pruning and a node budget, practical to a few hundred sets;
//! * [`greedy::greedy_offline`] — fast feasible packings (lower bounds on
//!   `opt`), the classical `k`-approximation in the unweighted case;
//! * [`dual::density_dual_bound`] — a dual-feasible *upper* bound on `opt`
//!   computable in one pass;
//! * [`mwu::fractional_packing`] — a Garg–Könemann-style multiplicative
//!   weights solver for the LP relaxation, returning a *certified* bracket
//!   `[primal, dual]` around the LP optimum (`dual ≥ LP ≥ opt`).
//!
//! Together these bracket `opt` tightly enough to report competitive ratios
//! with certainty even when exact search is out of reach.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brute;
pub mod conflict;
pub mod dual;
pub mod exact;
pub mod greedy;
pub mod local_search;
pub mod mwu;
pub mod prelude;

pub use exact::{branch_and_bound, BnbConfig, Solution};
pub use greedy::{greedy_offline, GreedyOrder};
