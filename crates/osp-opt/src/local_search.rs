//! Local-search improvement of feasible packings.
//!
//! Takes any feasible packing and applies `(1, ≤2)`-swaps: remove one
//! chosen set (or none) and insert up to two non-chosen sets, whenever
//! that strictly improves the value while staying feasible. This is the
//! classical improvement step behind the `k/2 + ε` approximation of
//! Hurkens–Schrijver (ref. 10) in the paper's related work; here it serves to
//! tighten the lower end of the `opt` bracket on instances too large for
//! exact search.

use osp_core::{Instance, SetId};

/// Improves `initial` by `(1, ≤2)`-swaps until a local optimum or the
/// iteration budget is reached. Returns `(value, packing)` with the
/// packing sorted ascending; the result is always feasible and never
/// worse than the input.
///
/// # Panics
///
/// Panics if `initial` is infeasible for `instance`.
pub fn improve_packing(
    instance: &Instance,
    initial: &[SetId],
    max_rounds: usize,
) -> (f64, Vec<SetId>) {
    let m = instance.num_sets();
    let members_by_set = instance.members_by_set();
    let mut residual: Vec<i64> = instance
        .arrivals()
        .iter()
        .map(|a| i64::from(a.capacity()))
        .collect();
    let mut chosen = vec![false; m];
    for &s in initial {
        chosen[s.index()] = true;
        for e in &members_by_set[s.index()] {
            residual[e.index()] -= 1;
        }
    }
    assert!(
        residual.iter().all(|&r| r >= 0),
        "initial packing is infeasible"
    );
    let weight = |s: usize| instance.sets()[s].weight();

    let fits = |s: usize, residual: &[i64]| -> bool {
        members_by_set[s].iter().all(|e| residual[e.index()] > 0)
    };

    for _ in 0..max_rounds {
        let mut improved = false;

        // Pure insertions first (removing nothing).
        for s in 0..m {
            if !chosen[s] && weight(s) > 0.0 && fits(s, &residual) {
                chosen[s] = true;
                for e in &members_by_set[s] {
                    residual[e.index()] -= 1;
                }
                improved = true;
            }
        }

        // (1, ≤2)-swaps: drop one chosen set, try to fit a better pair.
        'outer: for out in 0..m {
            if !chosen[out] {
                continue;
            }
            // Tentatively remove `out`.
            for e in &members_by_set[out] {
                residual[e.index()] += 1;
            }
            chosen[out] = false;
            let out_w = weight(out);

            // Single replacement with higher weight.
            for a in 0..m {
                if chosen[a] || a == out || weight(a) <= out_w || !fits(a, &residual) {
                    continue;
                }
                chosen[a] = true;
                for e in &members_by_set[a] {
                    residual[e.index()] -= 1;
                }
                improved = true;
                continue 'outer;
            }
            // Pair replacement: a then b, combined weight must beat out.
            for a in 0..m {
                if chosen[a] || a == out || !fits(a, &residual) {
                    continue;
                }
                for e in &members_by_set[a] {
                    residual[e.index()] -= 1;
                }
                for b in (a + 1)..m {
                    if chosen[b] || b == out || !fits(b, &residual) {
                        continue;
                    }
                    if weight(a) + weight(b) > out_w {
                        chosen[a] = true;
                        chosen[b] = true;
                        for e in &members_by_set[b] {
                            residual[e.index()] -= 1;
                        }
                        improved = true;
                        continue 'outer;
                    }
                }
                for e in &members_by_set[a] {
                    residual[e.index()] += 1;
                }
            }
            // No improvement: restore `out`.
            chosen[out] = true;
            for e in &members_by_set[out] {
                residual[e.index()] -= 1;
            }
        }

        if !improved {
            break;
        }
    }

    let packing: Vec<SetId> = (0..m)
        .filter(|&s| chosen[s])
        .map(|s| SetId(s as u32))
        .collect();
    let value = packing.iter().map(|&s| instance.set(s).weight()).sum();
    (value, packing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force;
    use crate::conflict::is_feasible;
    use crate::greedy::{greedy_offline, GreedyOrder};
    use osp_core::gen::{random_instance, RandomInstanceConfig};
    use osp_core::InstanceBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn never_worse_than_input_and_always_feasible() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            let cfg = RandomInstanceConfig::unweighted(25, 50, 4);
            let inst = random_instance(&cfg, &mut rng).unwrap();
            let (g, gs) = greedy_offline(&inst, GreedyOrder::ByWeight);
            let (v, packing) = improve_packing(&inst, &gs, 20);
            assert!(v >= g - 1e-12);
            assert!(is_feasible(&inst, &packing));
        }
    }

    #[test]
    fn escapes_a_bad_greedy_choice() {
        // Heavy big set blocks two singletons whose total is higher.
        let mut b = InstanceBuilder::new();
        let big = b.add_set(3.0, 2);
        let s0 = b.add_set(2.0, 1);
        let s1 = b.add_set(2.0, 1);
        b.add_element(1, &[big, s0]);
        b.add_element(1, &[big, s1]);
        let inst = b.build().unwrap();
        let (g, gs) = greedy_offline(&inst, GreedyOrder::ByWeight);
        assert_eq!(g, 3.0); // greedy takes `big`
        let (v, packing) = improve_packing(&inst, &gs, 10);
        assert_eq!(v, 4.0);
        assert_eq!(packing, vec![s0, s1]);
    }

    #[test]
    fn reaches_brute_force_often_on_tiny_instances() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut matched = 0;
        let trials = 20;
        for _ in 0..trials {
            let cfg = RandomInstanceConfig::unweighted(12, 20, 3);
            let inst = random_instance(&cfg, &mut rng).unwrap();
            let (_, gs) = greedy_offline(&inst, GreedyOrder::ByWeight);
            let (v, _) = improve_packing(&inst, &gs, 50);
            let (bv, _) = brute_force(&inst);
            assert!(v <= bv + 1e-9);
            if (v - bv).abs() < 1e-9 {
                matched += 1;
            }
        }
        assert!(
            matched >= trials / 2,
            "local search matched opt only {matched}/{trials}"
        );
    }

    #[test]
    fn empty_initial_fills_greedily() {
        let mut b = InstanceBuilder::new();
        let s = b.add_set(1.0, 1);
        b.add_element(1, &[s]);
        let inst = b.build().unwrap();
        let (v, packing) = improve_packing(&inst, &[], 5);
        assert_eq!(v, 1.0);
        assert_eq!(packing, vec![s]);
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn infeasible_input_rejected() {
        let mut b = InstanceBuilder::new();
        let s0 = b.add_set(1.0, 1);
        let s1 = b.add_set(1.0, 1);
        b.add_element(1, &[s0, s1]);
        let inst = b.build().unwrap();
        let _ = improve_packing(&inst, &[s0, s1], 5);
    }
}
