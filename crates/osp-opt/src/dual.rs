//! Cheap dual-feasible upper bounds on `w(opt)`.
//!
//! The LP dual of the packing program (1) asks for element prices
//! `y_u ≥ 0` with `Σ_{u∈S} y_u ≥ w(S)` for every set `S`; any such `y`
//! certifies `w(opt) ≤ Σ_u b(u)·y_u`. Pricing every element at the best
//! weight *density* among its sets is always feasible:
//! `Σ_{u∈S} max_{S'∋u} w(S')/|S'| ≥ Σ_{u∈S} w(S)/|S| = w(S)`.

use osp_core::{Instance, SetId};

/// The density dual bound: `Σ_u b(u) · max_{S∋u} w(S)/|S|`.
///
/// Always an upper bound on `w(opt)`; tight when an optimal packing uses
/// every element at its densest set.
pub fn density_dual_bound(instance: &Instance) -> f64 {
    instance
        .arrivals()
        .iter()
        .map(|a| {
            let y = a
                .members()
                .iter()
                .map(|&s| density(instance, s))
                .fold(0.0f64, f64::max);
            f64::from(a.capacity()) * y
        })
        .sum()
}

/// Density dual bound restricted to a sub-collection of candidate sets,
/// with per-element residual capacities — the pruning bound used inside
/// branch-and-bound. `candidate[s]` marks sets still available; `residual`
/// holds the remaining capacity of each element (by arrival index).
pub fn residual_density_bound(instance: &Instance, candidate: &[bool], residual: &[u32]) -> f64 {
    instance
        .arrivals()
        .iter()
        .enumerate()
        .map(|(j, a)| {
            if residual[j] == 0 {
                return 0.0;
            }
            let y = a
                .members()
                .iter()
                .filter(|s| candidate[s.index()])
                .map(|&s| density(instance, s))
                .fold(0.0f64, f64::max);
            f64::from(residual[j]) * y
        })
        .sum()
}

fn density(instance: &Instance, s: SetId) -> f64 {
    let meta = instance.set(s);
    meta.weight() / f64::from(meta.size())
}

#[cfg(test)]
mod tests {
    use super::*;
    use osp_core::InstanceBuilder;

    #[test]
    fn bound_dominates_any_feasible_packing() {
        // Star: σ singletons on one element; opt = max weight.
        let mut b = InstanceBuilder::new();
        let ids: Vec<SetId> = (0..4).map(|i| b.add_set(1.0 + i as f64, 1)).collect();
        b.add_element(1, &ids);
        let inst = b.build().unwrap();
        let bound = density_dual_bound(&inst);
        assert!(bound >= 4.0); // opt = 4
        assert_eq!(bound, 4.0); // densest set prices the single element
    }

    #[test]
    fn disjoint_sets_bound_is_total_weight() {
        let mut b = InstanceBuilder::new();
        let s0 = b.add_set(2.0, 1);
        let s1 = b.add_set(3.0, 1);
        b.add_element(1, &[s0]);
        b.add_element(1, &[s1]);
        let inst = b.build().unwrap();
        assert_eq!(density_dual_bound(&inst), 5.0);
    }

    #[test]
    fn capacity_scales_the_bound() {
        let mut b = InstanceBuilder::new();
        let ids: Vec<SetId> = (0..3).map(|_| b.add_set(1.0, 1)).collect();
        b.add_element(2, &ids);
        let inst = b.build().unwrap();
        // opt = 2 (capacity two), bound = 2 * 1.0.
        assert_eq!(density_dual_bound(&inst), 2.0);
    }

    #[test]
    fn residual_bound_shrinks_with_exclusions() {
        let mut b = InstanceBuilder::new();
        let s0 = b.add_set(4.0, 2);
        let s1 = b.add_set(1.0, 1);
        b.add_element(1, &[s0, s1]);
        b.add_element(1, &[s0]);
        let inst = b.build().unwrap();
        let full = residual_density_bound(&inst, &[true, true], &[1, 1]);
        let without_s0 = residual_density_bound(&inst, &[false, true], &[1, 1]);
        assert!(without_s0 < full);
        assert_eq!(without_s0, 1.0);
        let no_capacity = residual_density_bound(&inst, &[true, true], &[0, 0]);
        assert_eq!(no_capacity, 0.0);
    }

    #[test]
    fn multi_element_sets_priced_by_density() {
        // One set of weight 6 with 3 elements: density 2, bound = 3*2 = 6.
        let mut b = InstanceBuilder::new();
        let s = b.add_set(6.0, 3);
        for _ in 0..3 {
            b.add_element(1, &[s]);
        }
        let inst = b.build().unwrap();
        assert_eq!(density_dual_bound(&inst), 6.0);
    }
}
