//! Convenience re-exports.
//!
//! ```
//! use osp_opt::prelude::*;
//! let _ = BnbConfig::default();
//! ```

pub use crate::brute::brute_force;
pub use crate::conflict::{closed_neighborhoods, is_feasible, neighborhood_weights};
pub use crate::dual::density_dual_bound;
pub use crate::exact::{branch_and_bound, BnbConfig, Solution};
pub use crate::greedy::{best_greedy, greedy_offline, GreedyOrder};
pub use crate::local_search::improve_packing;
pub use crate::mwu::{fractional_packing, FractionalSolution};
