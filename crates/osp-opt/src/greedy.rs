//! Offline greedy packings — fast feasible solutions, i.e. certified lower
//! bounds on `w(opt)`.
//!
//! For unweighted instances with set size at most `k`, greedy is the
//! classical `k`-approximation; with weights, ordering by weight keeps the
//! same guarantee. These are good enough to anchor the lower end of the
//! `opt` bracket on instances too large for exact search.

use osp_core::{Instance, SetId};

/// Processing order for [`greedy_offline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GreedyOrder {
    /// Heaviest sets first.
    ByWeight,
    /// Highest weight density `w(S)/|S|` first.
    ByDensity,
    /// Smallest sets first (maximizes count on unweighted instances).
    BySizeAscending,
}

/// Greedily accepts sets in the given order, keeping per-element residual
/// capacities; a set is accepted iff all of its elements still have
/// capacity. Ties break by ascending set id. Returns `(value, chosen)`
/// with `chosen` ascending.
pub fn greedy_offline(instance: &Instance, order: GreedyOrder) -> (f64, Vec<SetId>) {
    let m = instance.num_sets();
    let mut ids: Vec<SetId> = (0..m as u32).map(SetId).collect();
    let key = |s: SetId| -> f64 {
        let meta = instance.set(s);
        match order {
            GreedyOrder::ByWeight => meta.weight(),
            GreedyOrder::ByDensity => meta.weight() / f64::from(meta.size()),
            GreedyOrder::BySizeAscending => -f64::from(meta.size()),
        }
    };
    ids.sort_by(|&a, &b| {
        key(b)
            .partial_cmp(&key(a))
            .expect("weights are finite")
            .then(a.cmp(&b))
    });

    // Elements of each set, gathered once.
    let members_by_set = instance.members_by_set();
    let mut residual: Vec<u32> = instance.arrivals().iter().map(|a| a.capacity()).collect();
    let mut chosen = Vec::new();
    let mut value = 0.0;
    for s in ids {
        let elems = &members_by_set[s.index()];
        if elems.iter().all(|e| residual[e.index()] > 0) {
            for e in elems {
                residual[e.index()] -= 1;
            }
            value += instance.set(s).weight();
            chosen.push(s);
        }
    }
    chosen.sort_unstable();
    (value, chosen)
}

/// The best of all greedy orders — a slightly stronger lower bound for the
/// cost of three passes.
pub fn best_greedy(instance: &Instance) -> (f64, Vec<SetId>) {
    [
        GreedyOrder::ByWeight,
        GreedyOrder::ByDensity,
        GreedyOrder::BySizeAscending,
    ]
    .into_iter()
    .map(|o| greedy_offline(instance, o))
    .max_by(|a, b| a.0.partial_cmp(&b.0).expect("finite values"))
    .expect("three candidates")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force;
    use crate::conflict::is_feasible;
    use osp_core::gen::{random_instance, RandomInstanceConfig};
    use osp_core::InstanceBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn greedy_solutions_are_feasible() {
        let mut rng = StdRng::seed_from_u64(0);
        for seed in 0..10u64 {
            let cfg = RandomInstanceConfig::unweighted(20, 40, 3);
            let inst = random_instance(&cfg, &mut rng).unwrap();
            for order in [
                GreedyOrder::ByWeight,
                GreedyOrder::ByDensity,
                GreedyOrder::BySizeAscending,
            ] {
                let (v, chosen) = greedy_offline(&inst, order);
                assert!(is_feasible(&inst, &chosen), "seed {seed} order {order:?}");
                assert_eq!(v, inst.weight_of(chosen.iter().copied()));
            }
        }
    }

    #[test]
    fn greedy_below_brute_force() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let cfg = RandomInstanceConfig::unweighted(12, 20, 3);
            let inst = random_instance(&cfg, &mut rng).unwrap();
            let (opt, _) = brute_force(&inst);
            let (g, _) = best_greedy(&inst);
            assert!(g <= opt + 1e-9);
            // greedy is at least opt/k on unweighted instances (k <= 20).
            assert!(g >= opt / 20.0);
        }
    }

    #[test]
    fn weight_order_beats_size_order_on_heavy_big_set() {
        // One heavy big set vs two light singletons inside it.
        let mut b = InstanceBuilder::new();
        let big = b.add_set(10.0, 2);
        let l0 = b.add_set(1.0, 1);
        let l1 = b.add_set(1.0, 1);
        b.add_element(1, &[big, l0]);
        b.add_element(1, &[big, l1]);
        let inst = b.build().unwrap();
        let (by_weight, _) = greedy_offline(&inst, GreedyOrder::ByWeight);
        let (by_size, _) = greedy_offline(&inst, GreedyOrder::BySizeAscending);
        assert_eq!(by_weight, 10.0);
        assert_eq!(by_size, 2.0);
        assert_eq!(best_greedy(&inst).0, 10.0);
    }

    #[test]
    fn capacities_honored() {
        let mut b = InstanceBuilder::new();
        let ids: Vec<SetId> = (0..4).map(|_| b.add_set(1.0, 1)).collect();
        b.add_element(3, &ids);
        let inst = b.build().unwrap();
        let (v, chosen) = greedy_offline(&inst, GreedyOrder::ByWeight);
        assert_eq!(v, 3.0);
        assert_eq!(chosen.len(), 3);
    }

    #[test]
    fn empty_instance_gives_zero() {
        let inst = InstanceBuilder::new().build().unwrap();
        assert_eq!(greedy_offline(&inst, GreedyOrder::ByWeight), (0.0, vec![]));
    }
}
