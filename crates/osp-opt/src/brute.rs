//! Exhaustive optimum for tiny instances — the oracle the other solvers are
//! tested against.

use osp_core::{Instance, SetId};

use crate::conflict::is_feasible;

/// Exhaustively finds the optimum packing by trying all `2^m` subsets.
///
/// Returns `(value, chosen)` with `chosen` ascending. Intended for test
/// oracles only.
///
/// # Panics
///
/// Panics if the instance has more than 25 sets (2^25 subsets ≈ the
/// tolerable limit for a test helper).
pub fn brute_force(instance: &Instance) -> (f64, Vec<SetId>) {
    let m = instance.num_sets();
    assert!(m <= 25, "brute force is for tiny instances (m = {m})");
    let mut best_value = 0.0f64;
    let mut best: Vec<SetId> = Vec::new();
    for mask in 0u32..(1u32 << m) {
        let chosen: Vec<SetId> = (0..m)
            .filter(|&i| mask & (1 << i) != 0)
            .map(|i| SetId(i as u32))
            .collect();
        let value = instance.weight_of(chosen.iter().copied());
        if value > best_value && is_feasible(instance, &chosen) {
            best_value = value;
            best = chosen;
        }
    }
    (best_value, best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use osp_core::InstanceBuilder;

    #[test]
    fn picks_the_best_disjoint_pair() {
        // s1 conflicts with both s0 and s2; opt = {s0, s2} = 5.
        let mut b = InstanceBuilder::new();
        let s0 = b.add_set(1.0, 1);
        let s1 = b.add_set(3.0, 2);
        let s2 = b.add_set(4.0, 1);
        b.add_element(1, &[s0, s1]);
        b.add_element(1, &[s1, s2]);
        let inst = b.build().unwrap();
        let (v, chosen) = brute_force(&inst);
        assert_eq!(v, 5.0);
        assert_eq!(chosen, vec![s0, s2]);
    }

    #[test]
    fn takes_heavy_middle_when_worth_it() {
        let mut b = InstanceBuilder::new();
        let s0 = b.add_set(1.0, 1);
        let s1 = b.add_set(30.0, 2);
        let s2 = b.add_set(4.0, 1);
        b.add_element(1, &[s0, s1]);
        b.add_element(1, &[s1, s2]);
        let inst = b.build().unwrap();
        let (v, chosen) = brute_force(&inst);
        assert_eq!(v, 30.0);
        assert_eq!(chosen, vec![s1]);
    }

    #[test]
    fn empty_instance() {
        let inst = InstanceBuilder::new().build().unwrap();
        assert_eq!(brute_force(&inst), (0.0, vec![]));
    }

    #[test]
    fn respects_capacities() {
        let mut b = InstanceBuilder::new();
        let ids: Vec<SetId> = (0..3).map(|_| b.add_set(1.0, 1)).collect();
        b.add_element(2, &ids);
        let inst = b.build().unwrap();
        let (v, chosen) = brute_force(&inst);
        assert_eq!(v, 2.0);
        assert_eq!(chosen.len(), 2);
    }
}
