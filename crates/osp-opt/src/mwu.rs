//! Multiplicative-weights fractional packing (Garg–Könemann style).
//!
//! Solves the LP relaxation of program (1) — `max w·x` subject to
//! `Σ_{S∋u} x_S ≤ b(u)`, `x ≥ 0` — by the flow-style width-independent
//! scheme: repeatedly "route" along the set with the best
//! weight-to-price ratio while multiplicatively raising the prices of its
//! elements.
//!
//! The returned [`FractionalSolution`] is **self-certifying** regardless of
//! how the iteration went:
//!
//! * `primal` is the value of an explicitly feasible fractional `x`
//!   (violations scaled out), so `primal ≤ LP`;
//! * `dual` comes from scaling the final prices to dual feasibility, so
//!   `dual ≥ LP ≥ w(opt)`.
//!
//! The experiment harness uses `dual` to upper-bound `opt` on instances too
//! large for exact search.

use osp_core::Instance;

/// A certified bracket around the LP optimum.
#[derive(Debug, Clone, PartialEq)]
pub struct FractionalSolution {
    /// Value of the feasible fractional primal (`≤ LP opt`).
    pub primal: f64,
    /// Value of the feasible dual (`≥ LP opt ≥ integral opt`).
    pub dual: f64,
    /// The feasible fractional solution, indexed by set.
    pub x: Vec<f64>,
    /// Number of augmenting iterations performed.
    pub iterations: usize,
}

impl FractionalSolution {
    /// Relative gap `(dual - primal) / dual`; 0 means the LP was solved
    /// exactly.
    pub fn gap(&self) -> f64 {
        if self.dual <= 0.0 {
            0.0
        } else {
            (self.dual - self.primal) / self.dual
        }
    }
}

/// Runs the Garg–Könemann scheme with accuracy parameter `epsilon`
/// (typical: 0.05–0.2; smaller is slower and tighter).
///
/// # Panics
///
/// Panics if `epsilon` is not in `(0, 1)`.
pub fn fractional_packing(instance: &Instance, epsilon: f64) -> FractionalSolution {
    assert!(
        epsilon > 0.0 && epsilon < 1.0,
        "epsilon must be in (0,1), got {epsilon}"
    );
    let m = instance.num_sets();
    let n = instance.num_elements();
    if m == 0 || n == 0 {
        return FractionalSolution {
            primal: 0.0,
            dual: 0.0,
            x: vec![0.0; m],
            iterations: 0,
        };
    }

    let members_by_set = instance.members_by_set();
    let capacities: Vec<f64> = instance
        .arrivals()
        .iter()
        .map(|a| f64::from(a.capacity()))
        .collect();

    // Sets with zero weight or no elements never enter the optimum.
    let weights: Vec<f64> = instance.sets().iter().map(|s| s.weight()).collect();

    // Initial prices δ/b_u (standard GK initialization).
    let delta = (1.0 + epsilon) / ((1.0 + epsilon) * n as f64).powf(1.0 / epsilon);
    let mut price: Vec<f64> = capacities.iter().map(|&b| delta / b).collect();
    let mut x_raw = vec![0.0f64; m];

    // Iterate until the dual objective Σ b_u y_u reaches 1, as in GK.
    let max_iters = ((n as f64) * (1.0 / epsilon).ceil() * 64.0) as usize + 1024;
    let mut iterations = 0;
    while iterations < max_iters {
        let dual_obj: f64 = price.iter().zip(&capacities).map(|(&y, &b)| y * b).sum();
        if dual_obj >= 1.0 {
            break;
        }
        // Best ratio column: maximize w(S) / Σ_{u∈S} y_u.
        let mut best: Option<(usize, f64)> = None;
        for s in 0..m {
            if weights[s] <= 0.0 {
                continue;
            }
            let path_price: f64 = members_by_set[s].iter().map(|e| price[e.index()]).sum();
            let ratio = weights[s] / path_price;
            if best.map(|(_, r)| ratio > r).unwrap_or(true) {
                best = Some((s, ratio));
            }
        }
        let Some((s, _)) = best else { break };
        // Route the bottleneck capacity along S.
        let bottleneck = members_by_set[s]
            .iter()
            .map(|e| capacities[e.index()])
            .fold(f64::INFINITY, f64::min);
        x_raw[s] += bottleneck;
        for e in &members_by_set[s] {
            let b = capacities[e.index()];
            price[e.index()] *= 1.0 + epsilon * bottleneck / b;
        }
        iterations += 1;
    }

    // --- Certify the primal: scale x down by its worst violation. ---
    let mut usage = vec![0.0f64; n];
    for s in 0..m {
        if x_raw[s] > 0.0 {
            for e in &members_by_set[s] {
                usage[e.index()] += x_raw[s];
            }
        }
    }
    let violation = usage
        .iter()
        .zip(&capacities)
        .map(|(&u, &b)| u / b)
        .fold(1.0f64, f64::max);
    let x: Vec<f64> = x_raw.iter().map(|&v| v / violation).collect();
    let primal: f64 = x.iter().zip(&weights).map(|(&xi, &wi)| xi * wi).sum();

    // --- Certify the dual: scale prices to cover every set. ---
    let mut lambda = 0.0f64;
    for s in 0..m {
        if weights[s] <= 0.0 {
            continue;
        }
        let path_price: f64 = members_by_set[s].iter().map(|e| price[e.index()]).sum();
        lambda = lambda.max(weights[s] / path_price);
    }
    let dual: f64 = price
        .iter()
        .zip(&capacities)
        .map(|(&y, &b)| lambda * y * b)
        .sum();

    FractionalSolution {
        primal,
        dual: dual.max(primal),
        x,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force;
    use osp_core::gen::{random_instance, RandomInstanceConfig};
    use osp_core::InstanceBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bracket_contains_lp_and_ip_optimum() {
        let mut rng = StdRng::seed_from_u64(0);
        for trial in 0..15 {
            let cfg = RandomInstanceConfig::unweighted(15, 25, 3);
            let inst = random_instance(&cfg, &mut rng).unwrap();
            let (ip_opt, _) = brute_force(&inst);
            let sol = fractional_packing(&inst, 0.1);
            assert!(
                sol.dual >= ip_opt - 1e-6,
                "trial {trial}: dual {} < IP opt {ip_opt}",
                sol.dual
            );
            assert!(sol.primal <= sol.dual + 1e-9);
        }
    }

    #[test]
    fn primal_is_feasible() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = RandomInstanceConfig::unweighted(30, 50, 4);
        let inst = random_instance(&cfg, &mut rng).unwrap();
        let sol = fractional_packing(&inst, 0.1);
        let members_by_set = inst.members_by_set();
        let mut usage = vec![0.0f64; inst.num_elements()];
        for (s, &xs) in sol.x.iter().enumerate() {
            assert!(xs >= 0.0);
            for e in &members_by_set[s] {
                usage[e.index()] += xs;
            }
        }
        for (j, a) in inst.arrivals().iter().enumerate() {
            assert!(
                usage[j] <= f64::from(a.capacity()) + 1e-9,
                "element {j} over capacity"
            );
        }
    }

    #[test]
    fn exact_on_disjoint_sets() {
        // LP = IP = total weight when sets are disjoint.
        let mut b = InstanceBuilder::new();
        for _ in 0..5 {
            let s = b.add_set_unsized(2.0);
            b.add_element(1, &[s]);
        }
        let inst = b.build().unwrap();
        let sol = fractional_packing(&inst, 0.05);
        assert!(sol.dual >= 10.0 - 1e-6);
        assert!(sol.primal >= 10.0 * 0.8, "primal {}", sol.primal);
    }

    #[test]
    fn star_lp_value_is_capacity_times_max_weight() {
        // σ singletons of weight 1 on one unit-capacity element: LP = 1.
        let mut b = InstanceBuilder::new();
        let ids: Vec<osp_core::SetId> = (0..6).map(|_| b.add_set(1.0, 1)).collect();
        b.add_element(1, &ids);
        let inst = b.build().unwrap();
        let sol = fractional_packing(&inst, 0.05);
        assert!(sol.dual >= 1.0 - 1e-6);
        assert!(sol.dual <= 1.5, "dual {} too loose", sol.dual);
        assert!(sol.gap() < 0.5);
    }

    #[test]
    fn tighter_epsilon_tightens_the_gap() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = RandomInstanceConfig::unweighted(20, 30, 3);
        let inst = random_instance(&cfg, &mut rng).unwrap();
        let loose = fractional_packing(&inst, 0.5);
        let tight = fractional_packing(&inst, 0.05);
        assert!(tight.gap() <= loose.gap() + 0.05);
    }

    #[test]
    fn empty_instance() {
        let inst = InstanceBuilder::new().build().unwrap();
        let sol = fractional_packing(&inst, 0.1);
        assert_eq!(sol.primal, 0.0);
        assert_eq!(sol.dual, 0.0);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn epsilon_validated() {
        let inst = InstanceBuilder::new().build().unwrap();
        let _ = fractional_packing(&inst, 1.5);
    }
}
