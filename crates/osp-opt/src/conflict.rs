//! Conflict structure between sets, and the closed neighborhoods `N[S]`
//! that Lemma 1 is phrased in.

use osp_core::{Instance, SetId};

/// For every set `S`, its closed neighborhood `N[S]` — the sets (including
/// `S` itself) sharing at least one element with `S` (Notation 1 of the
/// paper). Sorted ascending.
///
/// Runs in `O(Σ_u σ(u)²)`, the natural cost of enumerating pairwise
/// conflicts.
pub fn closed_neighborhoods(instance: &Instance) -> Vec<Vec<SetId>> {
    let m = instance.num_sets();
    let mut neighbors: Vec<Vec<SetId>> = vec![Vec::new(); m];
    for a in instance.arrivals() {
        let members = a.members();
        for (i, &s1) in members.iter().enumerate() {
            for &s2 in &members[i + 1..] {
                neighbors[s1.index()].push(s2);
                neighbors[s2.index()].push(s1);
            }
        }
    }
    for (i, nb) in neighbors.iter_mut().enumerate() {
        nb.push(SetId(i as u32));
        nb.sort_unstable();
        nb.dedup();
    }
    neighbors
}

/// The total weight `w(N[S])` of each closed neighborhood — the denominator
/// of Lemma 1's survival probability `w(S)/w(N[S])`.
pub fn neighborhood_weights(instance: &Instance) -> Vec<f64> {
    closed_neighborhoods(instance)
        .iter()
        .map(|nb| instance.weight_of(nb.iter().copied()))
        .collect()
}

/// Whether the sets `chosen` are pairwise capacity-feasible: no element is
/// contained in more than `b(u)` chosen sets. This is the offline
/// feasibility notion of program (1) in §2.
pub fn is_feasible(instance: &Instance, chosen: &[SetId]) -> bool {
    let mut flags = vec![false; instance.num_sets()];
    for &s in chosen {
        flags[s.index()] = true;
    }
    for a in instance.arrivals() {
        let used = a.members().iter().filter(|s| flags[s.index()]).count();
        if used > a.capacity() as usize {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use osp_core::InstanceBuilder;

    fn triangle() -> (Instance, [SetId; 3]) {
        // s0-s1 share e0, s1-s2 share e1, s0-s2 share nothing.
        let mut b = InstanceBuilder::new();
        let s0 = b.add_set(1.0, 1);
        let s1 = b.add_set(2.0, 2);
        let s2 = b.add_set(4.0, 1);
        b.add_element(1, &[s0, s1]);
        b.add_element(1, &[s1, s2]);
        (b.build().unwrap(), [s0, s1, s2])
    }

    #[test]
    fn neighborhoods_are_closed_and_sorted() {
        let (inst, [s0, s1, s2]) = triangle();
        let nb = closed_neighborhoods(&inst);
        assert_eq!(nb[s0.index()], vec![s0, s1]);
        assert_eq!(nb[s1.index()], vec![s0, s1, s2]);
        assert_eq!(nb[s2.index()], vec![s1, s2]);
    }

    #[test]
    fn neighborhood_weights_match() {
        let (inst, [s0, s1, s2]) = triangle();
        let w = neighborhood_weights(&inst);
        assert_eq!(w[s0.index()], 3.0);
        assert_eq!(w[s1.index()], 7.0);
        assert_eq!(w[s2.index()], 6.0);
    }

    #[test]
    fn feasibility_unit_capacity() {
        let (inst, [s0, s1, s2]) = triangle();
        assert!(is_feasible(&inst, &[s0, s2]));
        assert!(is_feasible(&inst, &[s1]));
        assert!(!is_feasible(&inst, &[s0, s1]));
        assert!(!is_feasible(&inst, &[s0, s1, s2]));
        assert!(is_feasible(&inst, &[]));
    }

    #[test]
    fn feasibility_respects_capacity() {
        let mut b = InstanceBuilder::new();
        let s0 = b.add_set(1.0, 1);
        let s1 = b.add_set(1.0, 1);
        let s2 = b.add_set(1.0, 1);
        b.add_element(2, &[s0, s1, s2]);
        let inst = b.build().unwrap();
        assert!(is_feasible(&inst, &[s0, s1]));
        assert!(!is_feasible(&inst, &[s0, s1, s2]));
    }

    #[test]
    fn isolated_sets_have_singleton_neighborhoods() {
        let mut b = InstanceBuilder::new();
        let s0 = b.add_set(1.0, 1);
        let s1 = b.add_set(1.0, 1);
        b.add_element(1, &[s0]);
        b.add_element(1, &[s1]);
        let inst = b.build().unwrap();
        let nb = closed_neighborhoods(&inst);
        assert_eq!(nb[0], vec![s0]);
        assert_eq!(nb[1], vec![s1]);
    }
}
