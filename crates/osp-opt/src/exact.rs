//! Exact branch-and-bound solver for the packing integer program (1).
//!
//! Branches on include/exclude per set (heaviest-density first), maintains
//! per-element residual capacities, and prunes with the residual density
//! dual bound of [`crate::dual`]. A node budget turns it into an anytime
//! solver: when the budget runs out it reports the best packing found plus
//! a valid upper bound, clearly flagged as non-optimal.

use osp_core::{Instance, SetId};

use crate::dual::residual_density_bound;
use crate::greedy::best_greedy;

/// Search configuration for [`branch_and_bound`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BnbConfig {
    /// Maximum number of search nodes to expand before giving up on a
    /// proof of optimality.
    pub max_nodes: u64,
}

impl Default for BnbConfig {
    fn default() -> Self {
        BnbConfig {
            max_nodes: 2_000_000,
        }
    }
}

/// Result of an exact (or budget-limited) search.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Value of the best packing found.
    pub value: f64,
    /// The best packing found, ascending by set id.
    pub chosen: Vec<SetId>,
    /// A valid upper bound on `w(opt)`; equals `value` when `optimal`.
    pub upper_bound: f64,
    /// Whether optimality was proven within the node budget.
    pub optimal: bool,
    /// Number of nodes expanded.
    pub nodes: u64,
}

struct Search<'a> {
    instance: &'a Instance,
    members_by_set: Vec<Vec<osp_core::ElementId>>,
    order: Vec<SetId>,
    candidate: Vec<bool>,
    residual: Vec<u32>,
    current: Vec<SetId>,
    current_value: f64,
    best: Vec<SetId>,
    best_value: f64,
    nodes: u64,
    max_nodes: u64,
    exhausted: bool,
}

impl Search<'_> {
    fn recurse(&mut self, depth: usize) {
        if self.nodes >= self.max_nodes {
            self.exhausted = true;
            return;
        }
        self.nodes += 1;

        // Skip past sets already infeasible or excluded.
        let mut depth = depth;
        while depth < self.order.len() {
            let s = self.order[depth];
            if self.candidate[s.index()] {
                break;
            }
            depth += 1;
        }
        if depth == self.order.len() {
            if self.current_value > self.best_value {
                self.best_value = self.current_value;
                self.best = self.current.clone();
            }
            return;
        }

        // Prune: even taking every remaining candidate can't beat best.
        let bound = self.current_value
            + residual_density_bound(self.instance, &self.candidate, &self.residual);
        if bound <= self.best_value + 1e-12 {
            return;
        }

        let s = self.order[depth];
        let feasible = self.members_by_set[s.index()]
            .iter()
            .all(|e| self.residual[e.index()] > 0);

        if feasible {
            // Branch 1: include s.
            for e in &self.members_by_set[s.index()] {
                self.residual[e.index()] -= 1;
            }
            self.candidate[s.index()] = false;
            self.current.push(s);
            self.current_value += self.instance.set(s).weight();
            self.recurse(depth + 1);
            self.current_value -= self.instance.set(s).weight();
            self.current.pop();
            for e in &self.members_by_set[s.index()] {
                self.residual[e.index()] += 1;
            }
        }

        // Branch 2: exclude s.
        self.candidate[s.index()] = false;
        self.recurse(depth + 1);
        self.candidate[s.index()] = true;
    }
}

/// Solves the offline packing problem exactly (within the node budget).
///
/// Seeds the incumbent with the best greedy packing, so even an immediate
/// budget exhaustion returns a sensible solution.
///
/// # Examples
///
/// ```
/// use osp_core::InstanceBuilder;
/// use osp_opt::{branch_and_bound, BnbConfig};
///
/// let mut b = InstanceBuilder::new();
/// let s0 = b.add_set(1.0, 1);
/// let s1 = b.add_set(2.0, 1);
/// b.add_element(1, &[s0, s1]);
/// let inst = b.build()?;
/// let sol = branch_and_bound(&inst, &BnbConfig::default());
/// assert!(sol.optimal);
/// assert_eq!(sol.value, 2.0);
/// # Ok::<(), osp_core::Error>(())
/// ```
pub fn branch_and_bound(instance: &Instance, config: &BnbConfig) -> Solution {
    let m = instance.num_sets();
    let (greedy_value, greedy_sets) = best_greedy(instance);

    // Density-descending order tends to find strong incumbents early.
    let mut order: Vec<SetId> = (0..m as u32).map(SetId).collect();
    order.sort_by(|&a, &b| {
        let da = instance.set(a).weight() / f64::from(instance.set(a).size());
        let db = instance.set(b).weight() / f64::from(instance.set(b).size());
        db.partial_cmp(&da).expect("finite").then(a.cmp(&b))
    });

    let mut search = Search {
        instance,
        members_by_set: instance.members_by_set(),
        order,
        candidate: vec![true; m],
        residual: instance.arrivals().iter().map(|a| a.capacity()).collect(),
        current: Vec::new(),
        current_value: 0.0,
        best: greedy_sets,
        best_value: greedy_value,
        nodes: 0,
        max_nodes: config.max_nodes,
        exhausted: false,
    };
    search.recurse(0);

    let optimal = !search.exhausted;
    let upper_bound = if optimal {
        search.best_value
    } else {
        // Root dual bound stays valid when the proof is incomplete.
        residual_density_bound(
            instance,
            &vec![true; m],
            &instance
                .arrivals()
                .iter()
                .map(|a| a.capacity())
                .collect::<Vec<_>>(),
        )
        .max(search.best_value)
    };
    let mut chosen = search.best;
    chosen.sort_unstable();
    Solution {
        value: search.best_value,
        chosen,
        upper_bound,
        optimal,
        nodes: search.nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force;
    use crate::conflict::is_feasible;
    use osp_core::gen::{
        random_instance, CapacityModel, LoadModel, RandomInstanceConfig, WeightModel,
    };
    use osp_core::InstanceBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_brute_force_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..25 {
            let cfg = RandomInstanceConfig {
                num_sets: 14,
                num_elements: 25,
                load: LoadModel::Uniform { lo: 1, hi: 4 },
                weights: WeightModel::Uniform { lo: 0.5, hi: 3.0 },
                capacities: CapacityModel::Uniform { lo: 1, hi: 2 },
            };
            let inst = random_instance(&cfg, &mut rng).unwrap();
            let (bv, _) = brute_force(&inst);
            let sol = branch_and_bound(&inst, &BnbConfig::default());
            assert!(sol.optimal, "trial {trial}");
            assert!(
                (sol.value - bv).abs() < 1e-9,
                "trial {trial}: {} vs {bv}",
                sol.value
            );
            assert!(is_feasible(&inst, &sol.chosen));
            assert_eq!(sol.upper_bound, sol.value);
        }
    }

    #[test]
    fn budget_exhaustion_still_returns_valid_bracket() {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = RandomInstanceConfig::unweighted(40, 80, 4);
        let inst = random_instance(&cfg, &mut rng).unwrap();
        let sol = branch_and_bound(&inst, &BnbConfig { max_nodes: 10 });
        assert!(!sol.optimal);
        assert!(sol.value <= sol.upper_bound);
        assert!(is_feasible(&inst, &sol.chosen));
        // Incumbent is at least the greedy value (it was seeded with it).
        let (g, _) = crate::greedy::best_greedy(&inst);
        assert!(sol.value >= g - 1e-12);
    }

    #[test]
    fn empty_instance() {
        let inst = InstanceBuilder::new().build().unwrap();
        let sol = branch_and_bound(&inst, &BnbConfig::default());
        assert!(sol.optimal);
        assert_eq!(sol.value, 0.0);
        assert!(sol.chosen.is_empty());
    }

    #[test]
    fn handles_capacities_above_one() {
        let mut b = InstanceBuilder::new();
        let ids: Vec<SetId> = (0..5).map(|i| b.add_set(1.0 + i as f64, 1)).collect();
        b.add_element(3, &ids);
        let inst = b.build().unwrap();
        let sol = branch_and_bound(&inst, &BnbConfig::default());
        // Best three of weights 1..5 = 3+4+5.
        assert_eq!(sol.value, 12.0);
        assert!(sol.optimal);
    }

    #[test]
    fn disjoint_union_takes_everything() {
        let mut b = InstanceBuilder::new();
        for _ in 0..6 {
            let s = b.add_set_unsized(2.0);
            b.add_element(1, &[s]);
        }
        let inst = b.build().unwrap();
        let sol = branch_and_bound(&inst, &BnbConfig::default());
        assert_eq!(sol.value, 12.0);
        assert_eq!(sol.chosen.len(), 6);
    }
}
