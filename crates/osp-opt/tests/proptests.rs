//! Property-based tests: the solver ladder stays ordered on random inputs.

use proptest::prelude::*;

use osp_core::gen::{random_instance, CapacityModel, LoadModel, RandomInstanceConfig, WeightModel};
use osp_core::Instance;
use osp_opt::conflict::is_feasible;
use osp_opt::dual::density_dual_bound;
use osp_opt::greedy::{best_greedy, greedy_offline, GreedyOrder};
use osp_opt::local_search::improve_packing;
use osp_opt::mwu::fractional_packing;
use osp_opt::prelude::brute_force;
use osp_opt::{branch_and_bound, BnbConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_instance(seed: u64, weighted: bool, capacitated: bool) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = RandomInstanceConfig {
        num_sets: 12,
        num_elements: 22,
        load: LoadModel::Uniform { lo: 1, hi: 4 },
        weights: if weighted {
            WeightModel::Uniform { lo: 0.25, hi: 4.0 }
        } else {
            WeightModel::Unit
        },
        capacities: if capacitated {
            CapacityModel::Uniform { lo: 1, hi: 3 }
        } else {
            CapacityModel::Unit
        },
    };
    random_instance(&cfg, &mut rng).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exact_matches_brute_force(seed in 0u64..10_000, weighted: bool, capacitated: bool) {
        let inst = tiny_instance(seed, weighted, capacitated);
        let (bv, bsets) = brute_force(&inst);
        let sol = branch_and_bound(&inst, &BnbConfig::default());
        prop_assert!(sol.optimal);
        prop_assert!((sol.value - bv).abs() < 1e-9, "bnb {} vs brute {bv}", sol.value);
        prop_assert!(is_feasible(&inst, &sol.chosen));
        prop_assert!(is_feasible(&inst, &bsets));
    }

    #[test]
    fn ladder_is_ordered(seed in 0u64..10_000, weighted: bool) {
        let inst = tiny_instance(seed, weighted, false);
        let (g, gsets) = best_greedy(&inst);
        let sol = branch_and_bound(&inst, &BnbConfig::default());
        let dual = density_dual_bound(&inst);
        let mwu = fractional_packing(&inst, 0.15);
        prop_assert!(g <= sol.value + 1e-9);
        prop_assert!(sol.value <= dual + 1e-9);
        prop_assert!(sol.value <= mwu.dual + 1e-6);
        prop_assert!(mwu.primal <= mwu.dual + 1e-9);
        prop_assert!(is_feasible(&inst, &gsets));
    }

    #[test]
    fn local_search_sandwiched_between_greedy_and_opt(seed in 0u64..10_000) {
        let inst = tiny_instance(seed, true, false);
        let (g, gsets) = greedy_offline(&inst, GreedyOrder::ByWeight);
        let (improved, packing) = improve_packing(&inst, &gsets, 30);
        let sol = branch_and_bound(&inst, &BnbConfig::default());
        prop_assert!(improved >= g - 1e-12);
        prop_assert!(improved <= sol.value + 1e-9);
        prop_assert!(is_feasible(&inst, &packing));
    }

    #[test]
    fn mwu_bracket_valid_at_any_epsilon(seed in 0u64..10_000, eps in 0.02f64..0.9) {
        let inst = tiny_instance(seed, false, true);
        let sol = branch_and_bound(&inst, &BnbConfig::default());
        let frac = fractional_packing(&inst, eps);
        // Dual is valid no matter how crude the epsilon.
        prop_assert!(frac.dual >= sol.value - 1e-6, "eps {eps}: {} < {}", frac.dual, sol.value);
        prop_assert!(frac.primal <= frac.dual + 1e-9);
    }
}
