//! Property-based tests: field axioms, polynomial ring laws, hash behavior.

use proptest::prelude::*;

use osp_gf::hash::{PolyHash, MERSENNE_61};
use osp_gf::poly;
use osp_gf::prime::{is_prime, next_prime_power, prime_power};
use osp_gf::Gf;

/// Prime powers small enough for exhaustive element sampling.
const SMALL_PRIME_POWERS: [u64; 12] = [2, 3, 4, 5, 7, 8, 9, 11, 16, 25, 27, 32];

proptest! {
    // ---------------- primality ----------------

    #[test]
    fn prime_power_factorization_is_sound(n in 2u64..100_000) {
        if let Some((p, m)) = prime_power(n) {
            prop_assert!(is_prime(p));
            prop_assert_eq!(p.pow(m), n);
        }
    }

    #[test]
    fn next_prime_power_is_minimal(n in 2u64..10_000) {
        let q = next_prime_power(n);
        prop_assert!(q >= n);
        prop_assert!(prime_power(q).is_some());
        for c in n..q {
            prop_assert!(prime_power(c).is_none(), "{c} < {q} is a prime power");
        }
    }

    // ---------------- field axioms ----------------

    #[test]
    fn field_ring_laws(qi in 0usize..SMALL_PRIME_POWERS.len(), a in 0u64..32, b in 0u64..32, c in 0u64..32) {
        let q = SMALL_PRIME_POWERS[qi];
        let f = Gf::new(q).unwrap();
        let (a, b, c) = (a % q, b % q, c % q);
        // Commutativity.
        prop_assert_eq!(f.add(a, b), f.add(b, a));
        prop_assert_eq!(f.mul(a, b), f.mul(b, a));
        // Associativity.
        prop_assert_eq!(f.add(f.add(a, b), c), f.add(a, f.add(b, c)));
        prop_assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
        // Distributivity.
        prop_assert_eq!(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
        // Inverses.
        prop_assert_eq!(f.add(a, f.neg(a)), 0);
        if a != 0 {
            prop_assert_eq!(f.mul(a, f.inv(a).unwrap()), 1);
        }
        // Subtraction is addition of the negation.
        prop_assert_eq!(f.sub(a, b), f.add(a, f.neg(b)));
    }

    #[test]
    fn frobenius_fixes_prime_subfield(qi in 0usize..SMALL_PRIME_POWERS.len(), a in 0u64..32) {
        let q = SMALL_PRIME_POWERS[qi];
        let f = Gf::new(q).unwrap();
        let p = f.characteristic();
        // x -> x^p fixes exactly the prime subfield elements {0..p-1}?
        // At minimum it must fix 0..p-1 (they embed Z_p).
        let a = a % p;
        prop_assert_eq!(f.pow(a, p), a);
    }

    // ---------------- polynomial ring ----------------

    #[test]
    fn poly_ring_laws(
        p in proptest::sample::select(vec![2u64, 3, 5, 7]),
        f in proptest::collection::vec(0u64..7, 0..5),
        g in proptest::collection::vec(0u64..7, 0..5),
        h in proptest::collection::vec(0u64..7, 0..5),
    ) {
        let f: Vec<u64> = poly::normalize(f.iter().map(|c| c % p).collect());
        let g: Vec<u64> = poly::normalize(g.iter().map(|c| c % p).collect());
        let h: Vec<u64> = poly::normalize(h.iter().map(|c| c % p).collect());
        prop_assert_eq!(poly::add(&f, &g, p), poly::add(&g, &f, p));
        prop_assert_eq!(poly::mul(&f, &g, p), poly::mul(&g, &f, p));
        prop_assert_eq!(
            poly::mul(&f, &poly::add(&g, &h, p), p),
            poly::add(&poly::mul(&f, &g, p), &poly::mul(&f, &h, p), p)
        );
        prop_assert_eq!(poly::sub(&poly::add(&f, &g, p), &g, p), f.clone());
    }

    #[test]
    fn poly_rem_is_a_proper_remainder(
        p in proptest::sample::select(vec![2u64, 3, 5]),
        f in proptest::collection::vec(0u64..5, 0..7),
        g_low in proptest::collection::vec(0u64..5, 1..4),
    ) {
        // Make g monic of degree |g_low|.
        let mut g: Vec<u64> = g_low.iter().map(|c| c % p).collect();
        g.push(1);
        let f: Vec<u64> = poly::normalize(f.iter().map(|c| c % p).collect());
        let r = poly::rem(&f, &g, p);
        // deg r < deg g, and g | (f - r).
        prop_assert!(poly::degree(&r).is_none_or(|dr| dr < poly::degree(&g).unwrap()));
        let diff = poly::sub(&f, &r, p);
        let check = poly::rem(&diff, &g, p);
        prop_assert!(check.is_empty(), "g does not divide f - r");
    }

    #[test]
    fn poly_gcd_divides_both(
        p in proptest::sample::select(vec![2u64, 3, 5]),
        f in proptest::collection::vec(0u64..5, 1..5),
        g in proptest::collection::vec(0u64..5, 1..5),
    ) {
        let f: Vec<u64> = poly::normalize(f.iter().map(|c| c % p).collect());
        let g: Vec<u64> = poly::normalize(g.iter().map(|c| c % p).collect());
        let d = poly::gcd(&f, &g, p);
        if !d.is_empty() {
            prop_assert!(poly::rem(&f, &d, p).is_empty());
            prop_assert!(poly::rem(&g, &d, p).is_empty());
        } else {
            // gcd is zero only when both inputs are zero.
            prop_assert!(f.is_empty() && g.is_empty());
        }
    }

    // ---------------- hashing ----------------

    #[test]
    fn hash_is_deterministic_and_in_range(
        independence in 1usize..8,
        seed in 0u64..1000,
        x in 0u64..u64::MAX,
    ) {
        let h1 = PolyHash::new(independence, seed);
        let h2 = PolyHash::new(independence, seed);
        let v = h1.eval(x);
        prop_assert_eq!(v, h2.eval(x));
        prop_assert!(v < MERSENNE_61);
        let u = h1.unit(x);
        prop_assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn hash_keys_congruent_mod_p_collide(seed in 0u64..1000, x in 0u64..MERSENNE_61) {
        // eval reduces keys mod 2^61-1 first; congruent keys must agree.
        let h = PolyHash::new(4, seed);
        if let Some(y) = x.checked_add(MERSENNE_61) {
            prop_assert_eq!(h.eval(x), h.eval(y));
        }
    }

    #[test]
    fn eval_fast_path_agrees_with_naive_random_members(
        independence in 1usize..24,
        seed in 0u64..5000,
        x in 0u64..u64::MAX,
    ) {
        // The 4-way unrolled fast path, the single-chain lazy Horner and
        // the precomputed-powers reference must agree on every family
        // member and every point (the independence range crosses the
        // unroll dispatch threshold and all stride-4 residues).
        let h = PolyHash::new(independence, seed);
        prop_assert_eq!(h.eval(x), h.eval_naive(x));
        prop_assert_eq!(h.eval_horner(x), h.eval_naive(x));
        prop_assert!(h.eval(x) < MERSENNE_61);
    }

    #[test]
    fn eval_fast_path_agrees_with_naive_boundary_coeffs(
        picks in proptest::collection::vec(0usize..5, 1..20),
        x in 0u64..u64::MAX,
    ) {
        // Coefficients drawn from the field's boundary values, where lazy
        // reduction is most likely to go wrong — vector lengths long
        // enough to exercise the unrolled accumulators and their partial
        // top chunk in every residue class.
        let boundary = [0u64, 1, 2, MERSENNE_61 - 2, MERSENNE_61 - 1];
        let coeffs: Vec<u64> = picks.iter().map(|&i| boundary[i]).collect();
        let h = PolyHash::from_coeffs(coeffs);
        for key in [x, 0, 1, MERSENNE_61 - 1, MERSENNE_61, u64::MAX] {
            prop_assert_eq!(h.eval(key), h.eval_naive(key));
            prop_assert_eq!(h.eval_horner(key), h.eval_naive(key));
        }
    }

    #[test]
    fn eval_batch_agrees_with_eval_and_naive(
        independence in 1usize..40,
        seed in 0u64..5000,
        keys in proptest::collection::vec(0u64..u64::MAX, 0..30),
    ) {
        // The transposed multi-key kernel against both the scalar fast
        // path and the precomputed-powers reference — independence
        // straddles the n<16 Horner dispatch crossover, and key counts
        // 0..30 hit every 8-lane/4-lane/scalar-tail remainder class.
        let h = PolyHash::new(independence, seed);
        let mut got = vec![0u64; keys.len()];
        h.eval_batch(&keys, &mut got);
        for (&x, &g) in keys.iter().zip(&got) {
            prop_assert_eq!(g, h.eval(x));
            prop_assert_eq!(g, h.eval_naive(x));
            prop_assert!(g < MERSENNE_61);
        }
    }

    #[test]
    fn eval_batch_boundary_coeffs_agree(
        picks in proptest::collection::vec(0usize..5, 1..20),
        extra in 0u64..u64::MAX,
    ) {
        // Boundary coefficients (where the six-step renormalization bound
        // is tightest) against boundary keys, at a width that exercises
        // full 8-lanes, the 4-lane middle, and the scalar tail at once.
        let boundary = [0u64, 1, 2, MERSENNE_61 - 2, MERSENNE_61 - 1];
        let coeffs: Vec<u64> = picks.iter().map(|&i| boundary[i]).collect();
        let h = PolyHash::from_coeffs(coeffs);
        let keys = [
            extra, 0, 1, 2, MERSENNE_61 - 2, MERSENNE_61 - 1,
            MERSENNE_61, MERSENNE_61 + 1, u64::MAX - 1, u64::MAX,
            extra ^ MERSENNE_61, extra.wrapping_mul(3), extra >> 7,
        ];
        let mut got = [0u64; 13];
        h.eval_batch(&keys, &mut got);
        for (&x, &g) in keys.iter().zip(&got) {
            prop_assert_eq!(g, h.eval_naive(x));
        }
    }

    #[test]
    fn reduce128_canonicalization_is_branchless_and_exact(
        hi in 0u64..u64::MAX,
        lo in 0u64..u64::MAX,
    ) {
        // eval's final canonicalization (two fixed folds + one
        // conditional subtract) must equal the data-dependent while-loop
        // it replaced, over the *entire* u128 range. reduce128 is
        // private, so probe it through from_coeffs: a constant
        // polynomial's eval is exactly reduce128(c as u128) — and the
        // loop reference is inlined here.
        let x = ((hi as u128) << 64) | lo as u128;
        let loop_reference = {
            let m = MERSENNE_61 as u128;
            let mut v = x;
            while v >> 61 != 0 {
                v = (v & m) + (v >> 61);
            }
            let mut s = v as u64;
            if s >= MERSENNE_61 {
                s -= MERSENNE_61;
            }
            s
        };
        let two_folds = {
            let fold = |v: u128| (v & MERSENNE_61 as u128) + (v >> 61);
            let s = fold(fold(x)) as u64;
            if s >= MERSENNE_61 { s - MERSENNE_61 } else { s }
        };
        prop_assert_eq!(two_folds, loop_reference);
        // And the shipped reduce128, via a constant polynomial whose
        // single (canonical) coefficient forces acc = c at the final
        // canonicalization step.
        let c = lo % MERSENNE_61;
        let h = PolyHash::from_coeffs(vec![c]);
        prop_assert_eq!(h.eval(hi), c);
    }
}
