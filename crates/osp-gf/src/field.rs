//! The finite field `GF(p^m)` for any prime power `q = p^m ≤ 2^32`.
//!
//! Field elements are represented as integers in `[0, q)`: the base-`p`
//! digits of an element are the coefficients of its polynomial
//! representative over `Z_p` (digit `i` multiplies `x^i`). Prime fields
//! (`m == 1`) take a fast path of plain modular arithmetic; extension fields
//! reduce modulo a deterministic irreducible polynomial, so the same `q`
//! always yields the same field tables across runs and machines.

use std::fmt;

use crate::poly::{self, Poly};
use crate::prime::{mul_mod, prime_power};

/// Error constructing a finite field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GfError {
    /// The requested order is not a prime power (or is < 2).
    NotPrimePower(u64),
    /// The requested order exceeds the supported bound of `2^32`.
    TooLarge(u64),
}

impl fmt::Display for GfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GfError::NotPrimePower(q) => write!(f, "{q} is not a prime power"),
            GfError::TooLarge(q) => write!(f, "field order {q} exceeds 2^32"),
        }
    }
}

impl std::error::Error for GfError {}

/// The finite field `GF(p^m)`; see the module docs for the element encoding.
///
/// # Examples
///
/// ```
/// use osp_gf::Gf;
///
/// let f = Gf::new(8)?; // GF(2^3)
/// assert_eq!(f.order(), 8);
/// for a in f.elements() {
///     for b in f.elements() {
///         assert_eq!(f.mul(a, b), f.mul(b, a));
///     }
/// }
/// # Ok::<(), osp_gf::GfError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gf {
    p: u64,
    m: u32,
    q: u64,
    /// Monic irreducible modulus of degree `m`; empty in the prime case.
    modulus: Poly,
}

impl Gf {
    /// Constructs `GF(q)`.
    ///
    /// # Errors
    ///
    /// Returns [`GfError::NotPrimePower`] if `q` is not `p^m` for a prime
    /// `p`, and [`GfError::TooLarge`] if `q > 2^32`.
    pub fn new(q: u64) -> Result<Self, GfError> {
        let (p, m) = prime_power(q).ok_or(GfError::NotPrimePower(q))?;
        if q > 1 << 32 {
            return Err(GfError::TooLarge(q));
        }
        let modulus = if m == 1 {
            Vec::new()
        } else {
            poly::find_irreducible(p, m)
        };
        Ok(Gf { p, m, q, modulus })
    }

    /// Field order `q = p^m`.
    pub fn order(&self) -> u64 {
        self.q
    }

    /// Field characteristic `p`.
    pub fn characteristic(&self) -> u64 {
        self.p
    }

    /// Extension degree `m`.
    pub fn degree(&self) -> u32 {
        self.m
    }

    /// The additive identity.
    pub fn zero(&self) -> u64 {
        0
    }

    /// The multiplicative identity.
    pub fn one(&self) -> u64 {
        1
    }

    /// Iterates over all field elements, `0..q`.
    pub fn elements(&self) -> impl Iterator<Item = u64> {
        0..self.q
    }

    /// Whether `a` encodes a field element.
    pub fn contains(&self, a: u64) -> bool {
        a < self.q
    }

    fn check(&self, a: u64) {
        debug_assert!(self.contains(a), "{a} is not an element of GF({})", self.q);
    }

    fn decode(&self, mut a: u64) -> Poly {
        let mut digits = Vec::with_capacity(self.m as usize);
        while a > 0 {
            digits.push(a % self.p);
            a /= self.p;
        }
        digits
    }

    fn encode(&self, f: &[u64]) -> u64 {
        let mut v = 0u64;
        for &c in f.iter().rev() {
            v = v * self.p + c;
        }
        v
    }

    /// Field addition.
    pub fn add(&self, a: u64, b: u64) -> u64 {
        self.check(a);
        self.check(b);
        if self.m == 1 {
            return (a + b) % self.p;
        }
        self.encode(&poly::add(&self.decode(a), &self.decode(b), self.p))
    }

    /// Field subtraction.
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        self.check(a);
        self.check(b);
        if self.m == 1 {
            return (a + self.p - b) % self.p;
        }
        self.encode(&poly::sub(&self.decode(a), &self.decode(b), self.p))
    }

    /// Additive inverse.
    pub fn neg(&self, a: u64) -> u64 {
        self.sub(0, a)
    }

    /// Field multiplication.
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        self.check(a);
        self.check(b);
        if self.m == 1 {
            return mul_mod(a, b, self.p);
        }
        let prod = poly::mul(&self.decode(a), &self.decode(b), self.p);
        self.encode(&poly::rem(&prod, &self.modulus, self.p))
    }

    /// Multiplicative inverse, or `None` for zero.
    pub fn inv(&self, a: u64) -> Option<u64> {
        self.check(a);
        if a == 0 {
            return None;
        }
        // a^(q-2) = a^{-1} since the multiplicative group has order q-1.
        Some(self.pow(a, self.q - 2))
    }

    /// Field division `a / b`, or `None` when `b` is zero.
    pub fn div(&self, a: u64, b: u64) -> Option<u64> {
        self.inv(b).map(|ib| self.mul(a, ib))
    }

    /// Exponentiation `a^e` by square-and-multiply.
    pub fn pow(&self, a: u64, mut e: u64) -> u64 {
        self.check(a);
        let mut base = a;
        let mut acc = self.one();
        while e > 0 {
            if e & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            e >>= 1;
        }
        acc
    }

    /// Evaluates the affine map `a·x + b`, the line equation used by the
    /// paper's `(M,N)`-gadget (`L_{a,b} = {(i, j) : j = a·i + b}`).
    pub fn affine(&self, a: u64, x: u64, b: u64) -> u64 {
        self.add(self.mul(a, x), b)
    }
}

impl fmt::Display for Gf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.m == 1 {
            write!(f, "GF({})", self.p)
        } else {
            write!(f, "GF({}^{})", self.p, self.m)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field_axioms(q: u64) {
        let f = Gf::new(q).unwrap();
        let els: Vec<u64> = f.elements().collect();
        assert_eq!(els.len() as u64, q);
        for &a in &els {
            // identities
            assert_eq!(f.add(a, 0), a);
            assert_eq!(f.mul(a, 1), a);
            assert_eq!(f.mul(a, 0), 0);
            // additive inverse
            assert_eq!(f.add(a, f.neg(a)), 0);
            // multiplicative inverse
            if a != 0 {
                let ia = f.inv(a).unwrap();
                assert_eq!(f.mul(a, ia), 1, "inv failed in GF({q}) for {a}");
            } else {
                assert_eq!(f.inv(a), None);
            }
        }
        // commutativity / associativity / distributivity on a sample grid
        for &a in els.iter().take(8) {
            for &b in els.iter().take(8) {
                assert_eq!(f.add(a, b), f.add(b, a));
                assert_eq!(f.mul(a, b), f.mul(b, a));
                for &c in els.iter().take(8) {
                    assert_eq!(f.mul(a, f.mul(b, c)), f.mul(f.mul(a, b), c));
                    assert_eq!(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn axioms_prime_fields() {
        for q in [2u64, 3, 5, 7, 11, 13] {
            field_axioms(q);
        }
    }

    #[test]
    fn axioms_extension_fields() {
        for q in [4u64, 8, 9, 16, 25, 27, 49, 64, 81, 121, 125] {
            field_axioms(q);
        }
    }

    #[test]
    fn rejects_non_prime_powers() {
        assert_eq!(Gf::new(6), Err(GfError::NotPrimePower(6)));
        assert_eq!(Gf::new(12), Err(GfError::NotPrimePower(12)));
        assert_eq!(Gf::new(0), Err(GfError::NotPrimePower(0)));
        assert_eq!(Gf::new(1), Err(GfError::NotPrimePower(1)));
    }

    #[test]
    fn multiplicative_group_is_cyclic_of_order_q_minus_1() {
        for q in [9u64, 16, 25] {
            let f = Gf::new(q).unwrap();
            for a in 1..q {
                assert_eq!(f.pow(a, q - 1), 1, "Fermat failed in GF({q}) at {a}");
            }
        }
    }

    #[test]
    fn no_zero_divisors() {
        for q in [8u64, 9, 16] {
            let f = Gf::new(q).unwrap();
            for a in 1..q {
                for b in 1..q {
                    assert_ne!(f.mul(a, b), 0, "zero divisor in GF({q}): {a}*{b}");
                }
            }
        }
    }

    #[test]
    fn affine_matches_definition() {
        let f = Gf::new(7).unwrap();
        assert_eq!(f.affine(3, 4, 5), (3 * 4 + 5) % 7);
    }

    #[test]
    fn display() {
        assert_eq!(Gf::new(7).unwrap().to_string(), "GF(7)");
        assert_eq!(Gf::new(8).unwrap().to_string(), "GF(2^3)");
    }

    #[test]
    fn deterministic_modulus() {
        let a = Gf::new(81).unwrap();
        let b = Gf::new(81).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn div_round_trip() {
        let f = Gf::new(27).unwrap();
        for a in 0..27 {
            for b in 1..27 {
                let c = f.div(a, b).unwrap();
                assert_eq!(f.mul(c, b), a);
            }
            assert_eq!(f.div(a, 0), None);
        }
    }
}
