//! Carter–Wegman polynomial hash families over the Mersenne prime `2^61 − 1`.
//!
//! §3.1 of the paper observes that the distributed implementation of
//! `randPr` only needs a *system-wide hash function* of the set identifier:
//! every server evaluates the same hash locally, so the random priorities
//! agree everywhere without communication, and `k_max · σ_max`-wise
//! independence suffices for the analysis. A degree-`d` random polynomial
//! over a prime field is exactly `(d+1)`-wise independent, so
//! [`PolyHash::new(d + 1, seed)`](PolyHash::new) provides the required
//! family; [`PolyHash::unit`] maps the output to `[0, 1)` for use as a
//! priority.

use rand::{Rng, SeedableRng};

/// The Mersenne prime `2^61 − 1`, the modulus of the hash field.
pub const MERSENNE_61: u64 = (1 << 61) - 1;

/// Debug-build counter of polynomial evaluations, the regression hook for
/// "evaluate the polynomial once per key" claims (e.g. `HashRandPr::begin`
/// used to pay two evaluations per set — `unit(i)` *and* `eval(i)`).
///
/// Compiled only under `debug_assertions` so the release hot path carries
/// zero bookkeeping; the counter is thread-local, so concurrent table
/// builds don't race it. [`eval`](PolyHash::eval),
/// [`eval_horner`](PolyHash::eval_horner) and
/// [`eval_batch`](PolyHash::eval_batch) each count one evaluation per key
/// (the internal dispatch between them never double-counts).
#[cfg(debug_assertions)]
pub mod eval_count {
    use std::cell::Cell;

    thread_local! {
        static EVALS: Cell<u64> = const { Cell::new(0) };
    }

    /// Evaluations performed by this thread since the last [`reset`].
    pub fn get() -> u64 {
        EVALS.with(Cell::get)
    }

    /// Zeroes this thread's counter.
    pub fn reset() {
        EVALS.with(|c| c.set(0));
    }

    pub(super) fn bump(n: u64) {
        EVALS.with(|c| c.set(c.get().wrapping_add(n)));
    }
}

/// Records `n` polynomial evaluations (no-op in release builds).
#[inline]
fn count_evals(n: u64) {
    #[cfg(debug_assertions)]
    eval_count::bump(n);
    #[cfg(not(debug_assertions))]
    let _ = n;
}

/// Reduces `x` modulo `2^61 − 1` — branchless Mersenne canonicalization.
///
/// Two fixed [`fold61`] folds bring *any* `u128` below `2^61 + 127`
/// (first fold: `< 2^61 + 2^67`; second: `< 2^61 + 2^7`), after which a
/// single conditional subtract lands in `[0, 2^61 − 1)`. No data-dependent
/// loop: the instruction count is the same for every input, which keeps
/// the hot evaluators' tails predictable.
#[inline]
fn reduce128(x: u128) -> u64 {
    let folded = fold61(fold61(x)); // < 2^61 + 127, fits u64
    let s = folded as u64;
    if s >= MERSENNE_61 {
        s - MERSENNE_61
    } else {
        s
    }
}

/// One branchless Mersenne fold: congruent mod `2^61 − 1`, shrinks the
/// value by ~61 bits without the data-dependent loop of [`reduce128`].
#[inline]
fn fold61(x: u128) -> u128 {
    const M: u128 = MERSENNE_61 as u128;
    (x & M) + (x >> 61)
}

/// A member of the polynomial hash family `h(x) = Σ a_i x^i mod (2^61−1)`.
///
/// A family with `independence = t` (polynomial degree `t − 1`) is exactly
/// `t`-wise independent over keys in `[0, 2^61 − 1)`.
///
/// # Examples
///
/// ```
/// use osp_gf::hash::PolyHash;
///
/// let h = PolyHash::new(4, 12345); // 4-wise independent
/// let v = h.unit(42);
/// assert!((0.0..1.0).contains(&v));
/// // Deterministic: same seed, same function.
/// assert_eq!(PolyHash::new(4, 12345).unit(42), v);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolyHash {
    coeffs: Vec<u64>,
}

impl PolyHash {
    /// Draws a hash function from the `independence`-wise independent family
    /// using the given seed.
    ///
    /// # Panics
    ///
    /// Panics if `independence == 0`.
    pub fn new(independence: usize, seed: u64) -> Self {
        assert!(independence >= 1, "independence must be at least 1");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let coeffs = (0..independence)
            .map(|_| rng.gen_range(0..MERSENNE_61))
            .collect();
        PolyHash { coeffs }
    }

    /// Builds a hash function directly from polynomial coefficients
    /// (`coeffs[i]` multiplies `x^i`); coefficients are reduced modulo
    /// `2^61 − 1`. Mainly for tests that need field-boundary coefficients;
    /// experiments should draw members via [`new`](Self::new).
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` is empty.
    pub fn from_coeffs(coeffs: Vec<u64>) -> Self {
        assert!(!coeffs.is_empty(), "need at least one coefficient");
        PolyHash {
            coeffs: coeffs.into_iter().map(|c| c % MERSENNE_61).collect(),
        }
    }

    /// The independence level `t` of the family this function was drawn from.
    pub fn independence(&self) -> usize {
        self.coeffs.len()
    }

    /// Evaluates the hash at `x`, returning a value in `[0, 2^61 − 1)`.
    ///
    /// Fast path: the Horner recurrence unrolled into **four independent
    /// lazy-reduction accumulators**. Writing `i = 4q + r`, the polynomial
    /// splits as `P(x) = Σ_r x^r · P_r(x⁴)`; each residue class `P_r` is
    /// evaluated by Horner in the stride-4 point `y = x⁴`, and the four
    /// chains carry no data dependency on each other — the CPU can overlap
    /// their multiply/fold latencies (ILP) instead of serializing one long
    /// Horner chain. Each step keeps its accumulator below `2^62` with two
    /// branchless `fold61` folds (entering a step `acc < 2^62` and
    /// `y < 2^62`, so `acc·y + c < 2^125`; one fold brings that under
    /// `2^65`, a second under `2^62`), and the value is canonicalized once
    /// at the end.
    ///
    /// [`eval_horner`](Self::eval_horner) keeps the single-chain lazy
    /// Horner as the mid reference and
    /// [`eval_naive`](Self::eval_naive) the obviously-correct one; the
    /// osp-gf proptests pin all three to agree everywhere.
    pub fn eval(&self, x: u64) -> u64 {
        count_evals(1);
        self.eval_uncounted(x)
    }

    /// [`eval`](Self::eval) minus the debug evaluation counter — the
    /// shared body for the public entry points, so internal dispatch
    /// (`eval` → Horner below the unroll threshold, `eval_batch`'s
    /// sub-lane-width tail) never counts a key twice.
    fn eval_uncounted(&self, x: u64) -> u64 {
        let n = self.coeffs.len();
        if n < 16 {
            // The unroll pays a fixed y = x⁴ setup plus a 4-term
            // recombination; measured on the committed baseline box the
            // crossover sits around 14 coefficients, so short polynomials
            // (including the default 8-wise family) stay on the
            // single-chain Horner.
            return self.eval_horner_uncounted(x);
        }
        let x = (x % MERSENNE_61) as u128;
        let x2 = fold61(fold61(x * x)); // < 2^62
        let y = fold61(fold61(x2 * x2)); // x⁴, < 2^62
        let x3 = fold61(fold61(x2 * x)); // < 2^62
                                         // Seed each chain with its class's highest coefficient (the
                                         // partial top chunk; missing classes start at zero, which Horner
                                         // treats as a leading zero coefficient).
        let q = n / 4;
        let (head, tail) = self.coeffs.split_at(4 * q);
        let mut acc = [0u128; 4];
        for (r, &c) in tail.iter().enumerate() {
            acc[r] = c as u128;
        }
        // invariant: every acc[r] < 2^62
        for chunk in head.chunks_exact(4).rev() {
            acc[0] = fold61(fold61(acc[0] * y + chunk[0] as u128));
            acc[1] = fold61(fold61(acc[1] * y + chunk[1] as u128));
            acc[2] = fold61(fold61(acc[2] * y + chunk[2] as u128));
            acc[3] = fold61(fold61(acc[3] * y + chunk[3] as u128));
        }
        // Recombine: P = P₀(y) + x·P₁(y) + x²·P₂(y) + x³·P₃(y). Each
        // product is double-folded below 2^62, so the sum stays below
        // 2^64 and one canonical reduction finishes the job.
        let combined = acc[0]
            + fold61(fold61(acc[1] * x))
            + fold61(fold61(acc[2] * x2))
            + fold61(fold61(acc[3] * x3));
        reduce128(combined)
    }

    /// Single-chain Horner with lazy Mersenne reduction — the PR-2 fast
    /// path, kept as the mid-tier conformance reference between
    /// [`eval`](Self::eval) (4-way unrolled) and
    /// [`eval_naive`](Self::eval_naive) (precomputed powers). Also the
    /// dispatch target for polynomials too short to amortize the unroll.
    #[inline]
    pub fn eval_horner(&self, x: u64) -> u64 {
        count_evals(1);
        self.eval_horner_uncounted(x)
    }

    #[inline]
    fn eval_horner_uncounted(&self, x: u64) -> u64 {
        let x = (x % MERSENNE_61) as u128;
        let mut acc: u128 = 0; // invariant: acc < 2^62
        for &c in self.coeffs.iter().rev() {
            acc = fold61(fold61(acc * x + c as u128));
        }
        reduce128(acc)
    }

    /// Evaluates the hash at every key of `xs`, writing `out[i] =
    /// self.eval(xs[i])` — bit-identical to the scalar path for every key,
    /// measurably more than 2× faster at 64-wise independence.
    ///
    /// This is the kernel entry every bulk-scoring path rides: hashPr's
    /// `begin`-time table fill, the table-free lazy scoring mode, and the
    /// sharded decision kernel's per-range fills (osp-core
    /// `engine::parallel`), which call it from several scoped threads at
    /// once over disjoint key ranges — `&self` and stack-resident lane
    /// state keep it trivially reentrant.
    ///
    /// Keys are processed in transposed lanes of 8 (then 4, then a scalar
    /// tail), each lane running its own Horner recurrence one *shared*
    /// coefficient at a time. The cross-key lanes supply the
    /// instruction-level parallelism that [`eval`](Self::eval) obtains
    /// from its stride-4 unroll — but because no lane depends on another,
    /// the reduction can get lazier than the scalar path's two folds per
    /// step: accumulators live in `u64`, each step performs a **single**
    /// branchless fold (`(lo & M) + ((lo >> 61) | (hi << 3))`, a
    /// funnel-shift on the 128-bit product halves), and a full
    /// re-normalization runs only once every 6 steps. Bounds: keys are
    /// canonicalized (`< 2^61`) and coefficients are stored canonical, so
    /// from a normalized accumulator (`< 2^61 + 8`) six single-fold steps
    /// grow it to at most `7·2^61 + 14 < 2^64` — never overflowing the
    /// `u64` lane — while the 128-bit product `acc·x + c` stays below
    /// `2^125`, so its high half is below `2^61` and the funnel shift is
    /// exact. Every fold preserves the value modulo `2^61 − 1`, and
    /// `reduce128` canonicalizes each lane at the end, which is what
    /// makes the result *bit*-identical to [`eval`](Self::eval) rather
    /// than merely congruent.
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `out` have different lengths.
    ///
    /// # Examples
    ///
    /// ```
    /// use osp_gf::hash::PolyHash;
    ///
    /// let h = PolyHash::new(64, 7);
    /// let keys: Vec<u64> = (0..13).collect(); // non-multiple of the lane width
    /// let mut out = vec![0u64; 13];
    /// h.eval_batch(&keys, &mut out);
    /// for (&k, &v) in keys.iter().zip(&out) {
    ///     assert_eq!(v, h.eval(k));
    /// }
    /// ```
    pub fn eval_batch(&self, xs: &[u64], out: &mut [u64]) {
        assert_eq!(
            xs.len(),
            out.len(),
            "eval_batch requires one output slot per key"
        );
        count_evals(xs.len() as u64);
        let n = xs.len();
        let mut i = 0;
        while n - i >= 8 {
            Self::eval_lanes::<8>(&self.coeffs, &xs[i..i + 8], &mut out[i..i + 8]);
            i += 8;
        }
        if n - i >= 4 {
            Self::eval_lanes::<4>(&self.coeffs, &xs[i..i + 4], &mut out[i..i + 4]);
            i += 4;
        }
        while i < n {
            out[i] = self.eval_uncounted(xs[i]);
            i += 1;
        }
    }

    /// The transposed multi-key kernel behind
    /// [`eval_batch`](Self::eval_batch): `L` independent Horner chains
    /// (manual `u64xL` lanes) advanced one shared coefficient per step
    /// with single-fold lazy reduction. See `eval_batch` for the overflow
    /// bounds that make one fold per step safe.
    #[inline]
    fn eval_lanes<const L: usize>(coeffs: &[u64], xs: &[u64], out: &mut [u64]) {
        let mut x = [0u64; L];
        for l in 0..L {
            x[l] = xs[l] % MERSENNE_61;
        }
        let mut acc = [0u64; L];
        let mut since_norm = 0u32;
        for &c in coeffs.iter().rev() {
            for l in 0..L {
                let t = (acc[l] as u128) * (x[l] as u128) + c as u128;
                let lo = t as u64;
                let hi = (t >> 64) as u64;
                // One branchless fold: (t & M) + (t >> 61), with the
                // 61-bit shift assembled as a funnel shift of the two
                // product halves (hi < 2^61, so `hi << 3` is exact).
                acc[l] = (lo & MERSENNE_61) + ((lo >> 61) | (hi << 3));
            }
            since_norm += 1;
            if since_norm == 6 {
                // Re-normalize before the u64 lanes can overflow: each
                // single-fold step grows the bound by ~2^61, and 8 of
                // them would reach 2^64.
                since_norm = 0;
                for lane in &mut acc {
                    *lane = (*lane & MERSENNE_61) + (*lane >> 61);
                }
            }
        }
        for l in 0..L {
            out[l] = reduce128(acc[l] as u128);
        }
    }

    /// Reference evaluation: explicit precomputed powers of `x`, each term
    /// fully reduced — `Σ a_i·x^i mod (2^61 − 1)` the naive way. Slower
    /// than [`eval`](Self::eval) but obviously correct; the proptests
    /// assert the two agree everywhere.
    pub fn eval_naive(&self, x: u64) -> u64 {
        let x = x % MERSENNE_61;
        let mut power = 1u64; // x^i, canonical
        let mut acc = 0u64;
        for (i, &c) in self.coeffs.iter().enumerate() {
            if i > 0 {
                power = reduce128(power as u128 * x as u128);
            }
            let term = reduce128(c as u128 * power as u128);
            acc = reduce128(acc as u128 + term as u128);
        }
        acc
    }

    /// Evaluates the hash and maps it to the unit interval `[0, 1)`.
    pub fn unit(&self, x: u64) -> f64 {
        self.eval(x) as f64 / MERSENNE_61 as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn reduction_is_correct() {
        for x in [
            0u128,
            1,
            MERSENNE_61 as u128,
            MERSENNE_61 as u128 + 1,
            u64::MAX as u128,
            u128::from(u64::MAX) * u128::from(u64::MAX),
        ] {
            assert_eq!(reduce128(x) as u128, x % MERSENNE_61 as u128, "x={x}");
        }
    }

    #[test]
    fn fast_path_agrees_with_naive_on_boundaries() {
        let m = MERSENNE_61;
        // Field-boundary coefficients: 0, 1, p−1 in every position — at
        // lengths below, at, and above the unrolled dispatch threshold,
        // including every `len % 4` residue of the partial top chunk.
        let hashes = [
            PolyHash::from_coeffs(vec![m - 1, m - 1, m - 1, m - 1]),
            PolyHash::from_coeffs(vec![0, 0, 0, m - 1]),
            PolyHash::from_coeffs(vec![m - 1]),
            PolyHash::from_coeffs(vec![1, 0, m - 1, 0, 1]),
            PolyHash::from_coeffs(vec![m - 1; 8]),
            PolyHash::from_coeffs(vec![m - 1; 16]),
            PolyHash::from_coeffs(vec![m - 1; 17]),
            PolyHash::from_coeffs(vec![m - 1; 18]),
            PolyHash::from_coeffs(vec![m - 1; 19]),
            PolyHash::from_coeffs([vec![0; 16], vec![m - 1]].concat()),
            PolyHash::from_coeffs([vec![1, 0, m - 1], vec![0; 13], vec![m - 1, 1]].concat()),
        ];
        for h in &hashes {
            for x in [0u64, 1, 2, m - 2, m - 1, m, m + 1, u64::MAX] {
                assert_eq!(h.eval(x), h.eval_naive(x), "{h:?} at {x}");
                assert_eq!(h.eval_horner(x), h.eval_naive(x), "{h:?} at {x}");
                assert!(h.eval(x) < m);
            }
        }
    }

    #[test]
    fn unrolled_handles_every_length_residue() {
        // One randomized family per length 1..=20 (crossing the unroll
        // threshold and all chunk residues): the three evaluators agree.
        for len in 1usize..=20 {
            let h = PolyHash::new(len, 1000 + len as u64);
            for x in (0..2000u64).step_by(37).chain([MERSENNE_61 - 1, u64::MAX]) {
                let want = h.eval_naive(x);
                assert_eq!(h.eval(x), want, "len {len} at {x}");
                assert_eq!(h.eval_horner(x), want, "len {len} at {x}");
            }
        }
    }

    #[test]
    fn eval_batch_matches_eval_for_every_remainder() {
        // Key counts covering every lane-dispatch shape (8s, a 4, a
        // scalar tail) and lengths straddling the scalar unroll
        // crossover; keys include field boundaries.
        for len in [1usize, 4, 8, 15, 16, 17, 19, 64] {
            let h = PolyHash::new(len, 500 + len as u64);
            let keys: Vec<u64> = (0..23u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .chain([0, 1, MERSENNE_61 - 1, MERSENNE_61, u64::MAX])
                .collect();
            for count in [0usize, 1, 3, 4, 5, 7, 8, 9, 12, 13, 16, 21, 28] {
                let xs = &keys[..count];
                let mut out = vec![0u64; count];
                h.eval_batch(xs, &mut out);
                for (&x, &got) in xs.iter().zip(&out) {
                    assert_eq!(got, h.eval(x), "len {len}, count {count}, key {x}");
                }
            }
        }
    }

    #[test]
    fn eval_batch_boundary_coefficients() {
        let m = MERSENNE_61;
        let h = PolyHash::from_coeffs(vec![m - 1; 64]);
        let xs: Vec<u64> = vec![0, 1, m - 2, m - 1, m, m + 1, u64::MAX, 12345, 6, 7, 8, 9];
        let mut out = vec![0u64; xs.len()];
        h.eval_batch(&xs, &mut out);
        for (&x, &got) in xs.iter().zip(&out) {
            assert_eq!(got, h.eval_naive(x), "key {x}");
        }
    }

    #[test]
    #[should_panic(expected = "one output slot per key")]
    fn eval_batch_rejects_mismatched_lengths() {
        let h = PolyHash::new(4, 0);
        let mut out = [0u64; 2];
        h.eval_batch(&[1, 2, 3], &mut out);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn eval_count_hook_counts_each_key_once() {
        let h = PolyHash::new(8, 3); // short: eval dispatches to Horner
        let wide = PolyHash::new(64, 3); // long: eval takes the unroll
        eval_count::reset();
        h.eval(1);
        wide.eval(2);
        h.eval_horner(3);
        assert_eq!(eval_count::get(), 3);
        eval_count::reset();
        let xs: Vec<u64> = (0..13).collect(); // 8 + 4 + 1 scalar tail
        let mut out = vec![0u64; 13];
        h.eval_batch(&xs, &mut out);
        wide.eval_batch(&xs, &mut out);
        assert_eq!(eval_count::get(), 26);
    }

    #[test]
    fn from_coeffs_reduces_and_rejects_empty() {
        let h = PolyHash::from_coeffs(vec![MERSENNE_61 + 5]);
        assert_eq!(h.eval(123), 5);
        assert!(std::panic::catch_unwind(|| PolyHash::from_coeffs(vec![])).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let h1 = PolyHash::new(3, 9);
        let h2 = PolyHash::new(3, 9);
        let h3 = PolyHash::new(3, 10);
        assert_eq!(h1, h2);
        assert_ne!(h1.eval(12345), h3.eval(12345));
    }

    #[test]
    fn constant_family_is_constant() {
        let h = PolyHash::new(1, 7);
        assert_eq!(h.eval(1), h.eval(2));
    }

    #[test]
    fn unit_in_range() {
        let h = PolyHash::new(8, 3);
        for x in 0..1000 {
            let u = h.unit(x);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn outputs_look_uniform() {
        // Bucket 100k hashed keys into 16 bins; each bin should get
        // 6250 ± a generous tolerance. This is a smoke test of uniformity,
        // not a strict statistical test.
        let h = PolyHash::new(4, 42);
        let mut bins = [0u32; 16];
        let n = 100_000u64;
        for x in 0..n {
            let b = (h.unit(x) * 16.0) as usize;
            bins[b.min(15)] += 1;
        }
        let expected = n as f64 / 16.0;
        for (i, &b) in bins.iter().enumerate() {
            assert!(
                (b as f64 - expected).abs() < expected * 0.1,
                "bin {i} has {b}, expected ~{expected}"
            );
        }
    }

    #[test]
    fn pairwise_independence_smoke() {
        // For a 2-wise independent family, Pr[h(x)=h(y)] for x != y should be
        // ~1/p, i.e. essentially zero collisions over a few thousand draws.
        let mut collisions = 0;
        for seed in 0..2000 {
            let h = PolyHash::new(2, seed);
            if h.eval(17) == h.eval(18) {
                collisions += 1;
            }
        }
        assert_eq!(collisions, 0);
    }

    #[test]
    fn different_keys_spread() {
        let h = PolyHash::new(4, 1);
        let mut seen = HashMap::new();
        for x in 0..10_000u64 {
            *seen.entry(h.eval(x)).or_insert(0u32) += 1;
        }
        // No collisions expected for 10k keys in a 2^61 range.
        assert_eq!(seen.len(), 10_000);
    }
}
