//! # osp-gf — finite fields and universal hashing for OSP
//!
//! The lower-bound machinery of *Emek et al., PODC 2010* builds its
//! `(M,N)`-gadgets over a finite field `F` with `|F| = N` a prime power
//! (§4.2.1), and the distributed implementation of `randPr` replaces true
//! randomness with a system-wide hash function of bounded independence
//! (§3.1). This crate supplies both substrates from scratch:
//!
//! * [`prime`] — deterministic Miller–Rabin primality for `u64`, prime-power
//!   detection and search.
//! * [`Gf`] — arithmetic in `GF(p^m)` for any prime power up to `2^32`,
//!   including deterministic irreducible-polynomial search (Rabin's test).
//! * [`hash`] — Carter–Wegman polynomial hash families over the Mersenne
//!   prime `2^61 - 1`; a degree-`d` family is `(d+1)`-wise independent, which
//!   covers the `k_max · σ_max`-wise independence the paper asks of the
//!   shared hash function.
//!
//! ```
//! use osp_gf::Gf;
//!
//! let f = Gf::new(9).unwrap(); // GF(3^2)
//! let a = 5;
//! let inv = f.inv(a).unwrap();
//! assert_eq!(f.mul(a, inv), f.one());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod field;
pub mod hash;
pub mod poly;
pub mod prime;

pub use field::{Gf, GfError};
