//! Primality testing and prime-power utilities on `u64`.
//!
//! The `(M,N)`-gadget of the paper requires `N` to be a prime power; the
//! experiment harness sweeps gadget sizes, so it needs to *find* nearby
//! prime powers. All routines here are deterministic.

/// Deterministic Miller–Rabin primality test, valid for all `u64`.
///
/// Uses the known deterministic witness set
/// `{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}` which is sufficient for
/// all integers below `3.3 × 10^24`, comfortably covering `u64`.
///
/// # Examples
///
/// ```
/// use osp_gf::prime::is_prime;
///
/// assert!(is_prime(2));
/// assert!(is_prime(1_000_000_007));
/// assert!(!is_prime(1));
/// assert!(!is_prime(561)); // Carmichael number
/// ```
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    // Write n - 1 = d * 2^s with d odd.
    let mut d = n - 1;
    let mut s = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        s += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Modular multiplication without overflow via `u128` widening.
pub fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// Modular exponentiation `a^e mod m` by square-and-multiply.
pub fn pow_mod(mut a: u64, mut e: u64, m: u64) -> u64 {
    if m == 1 {
        return 0;
    }
    let mut r = 1u64;
    a %= m;
    while e > 0 {
        if e & 1 == 1 {
            r = mul_mod(r, a, m);
        }
        a = mul_mod(a, a, m);
        e >>= 1;
    }
    r
}

/// If `n = p^m` for a prime `p` and `m ≥ 1`, returns `(p, m)`; otherwise
/// `None`. Returns `None` for `n < 2`.
///
/// # Examples
///
/// ```
/// use osp_gf::prime::prime_power;
///
/// assert_eq!(prime_power(8), Some((2, 3)));
/// assert_eq!(prime_power(9), Some((3, 2)));
/// assert_eq!(prime_power(7), Some((7, 1)));
/// assert_eq!(prime_power(12), None);
/// ```
pub fn prime_power(n: u64) -> Option<(u64, u32)> {
    if n < 2 {
        return None;
    }
    if is_prime(n) {
        return Some((n, 1));
    }
    // n = p^m with m >= 2 implies p <= n^(1/2) <= 2^32; find p as the
    // smallest (and only possible) prime divisor, then divide out.
    let p = smallest_prime_factor(n);
    let mut m = 0u32;
    let mut rest = n;
    while rest.is_multiple_of(p) {
        rest /= p;
        m += 1;
    }
    if rest == 1 {
        Some((p, m))
    } else {
        None
    }
}

/// Whether `n` is a prime power (`p^m`, `m ≥ 1`).
pub fn is_prime_power(n: u64) -> bool {
    prime_power(n).is_some()
}

/// Smallest prime factor of `n ≥ 2` by trial division (adequate for the
/// gadget sizes used here, which are far below `2^32`).
fn smallest_prime_factor(n: u64) -> u64 {
    if n.is_multiple_of(2) {
        return 2;
    }
    let mut d = 3u64;
    while d.saturating_mul(d) <= n {
        if n.is_multiple_of(d) {
            return d;
        }
        d += 2;
    }
    n
}

/// Smallest prime `>= n`.
///
/// # Panics
///
/// Panics if no prime fits in `u64` above `n` (cannot happen for realistic
/// inputs; the largest `u64` prime is `2^64 - 59`).
pub fn next_prime(n: u64) -> u64 {
    let mut c = n.max(2);
    loop {
        if is_prime(c) {
            return c;
        }
        c = c.checked_add(1).expect("prime search overflowed u64");
    }
}

/// Smallest prime power `>= n`.
///
/// # Examples
///
/// ```
/// use osp_gf::prime::next_prime_power;
///
/// assert_eq!(next_prime_power(6), 7);
/// assert_eq!(next_prime_power(10), 11);
/// assert_eq!(next_prime_power(26), 27);
/// ```
pub fn next_prime_power(n: u64) -> u64 {
    let mut c = n.max(2);
    loop {
        if is_prime_power(c) {
            return c;
        }
        c = c.checked_add(1).expect("prime-power search overflowed u64");
    }
}

/// The distinct prime factors of `n ≥ 1`, ascending.
///
/// # Examples
///
/// ```
/// use osp_gf::prime::distinct_prime_factors;
///
/// assert_eq!(distinct_prime_factors(12), vec![2, 3]);
/// assert_eq!(distinct_prime_factors(1), Vec::<u64>::new());
/// ```
pub fn distinct_prime_factors(mut n: u64) -> Vec<u64> {
    let mut out = Vec::new();
    if n < 2 {
        return out;
    }
    let mut d = 2u64;
    while d.saturating_mul(d) <= n {
        if n.is_multiple_of(d) {
            out.push(d);
            while n.is_multiple_of(d) {
                n /= d;
            }
        }
        d += if d == 2 { 1 } else { 2 };
    }
    if n > 1 {
        out.push(n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes() {
        let primes: Vec<u64> = (0..60).filter(|&n| is_prime(n)).collect();
        assert_eq!(
            primes,
            vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59]
        );
    }

    #[test]
    fn carmichael_numbers_rejected() {
        for n in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 10585] {
            assert!(!is_prime(n), "{n} is Carmichael, not prime");
        }
    }

    #[test]
    fn large_primes() {
        assert!(is_prime(2_305_843_009_213_693_951)); // 2^61 - 1 (Mersenne)
        assert!(is_prime(18_446_744_073_709_551_557)); // largest u64 prime
        assert!(!is_prime(2_305_843_009_213_693_953));
    }

    #[test]
    fn prime_power_detection() {
        assert_eq!(prime_power(0), None);
        assert_eq!(prime_power(1), None);
        assert_eq!(prime_power(2), Some((2, 1)));
        assert_eq!(prime_power(4), Some((2, 2)));
        assert_eq!(prime_power(1024), Some((2, 10)));
        assert_eq!(prime_power(243), Some((3, 5)));
        assert_eq!(prime_power(121), Some((11, 2)));
        assert_eq!(prime_power(6), None);
        assert_eq!(prime_power(100), None); // 2^2 * 5^2
        assert_eq!(prime_power(36), None);
    }

    #[test]
    fn prime_power_round_trip_exhaustive() {
        for n in 2u64..2000 {
            match prime_power(n) {
                Some((p, m)) => {
                    assert!(is_prime(p));
                    assert_eq!(p.pow(m), n);
                }
                None => {
                    // n must have at least two distinct prime factors.
                    assert!(distinct_prime_factors(n).len() >= 2, "{n}");
                }
            }
        }
    }

    #[test]
    fn next_prime_and_power() {
        assert_eq!(next_prime(0), 2);
        assert_eq!(next_prime(14), 17);
        assert_eq!(next_prime(17), 17);
        assert_eq!(next_prime_power(5), 5);
        assert_eq!(next_prime_power(6), 7);
        assert_eq!(next_prime_power(24), 25);
        assert_eq!(next_prime_power(28), 29);
    }

    #[test]
    fn pow_mod_basics() {
        assert_eq!(pow_mod(2, 10, 1_000_000), 1024);
        assert_eq!(pow_mod(5, 0, 7), 1);
        assert_eq!(pow_mod(0, 5, 7), 0);
        assert_eq!(pow_mod(3, 100, 1), 0);
        // Fermat little theorem check.
        assert_eq!(pow_mod(1234, 1_000_000_006, 1_000_000_007), 1);
    }

    #[test]
    fn factor_list() {
        assert_eq!(distinct_prime_factors(2 * 2 * 3 * 7 * 7), vec![2, 3, 7]);
        assert_eq!(distinct_prime_factors(97), vec![97]);
    }
}
