//! Dense polynomial arithmetic over the prime field `Z_p`.
//!
//! Polynomials are coefficient vectors in little-endian order
//! (`coeffs[i]` multiplies `x^i`) with no trailing zero coefficients, so the
//! zero polynomial is the empty vector. These routines back the extension
//! field construction in [`crate::Gf`]: reduction happens modulo an
//! irreducible polynomial found by Rabin's irreducibility test.

use crate::prime::{distinct_prime_factors, mul_mod};

/// A polynomial over `Z_p`, little-endian coefficients, normalized.
pub type Poly = Vec<u64>;

/// Removes trailing zeros so the representation is canonical.
pub fn normalize(mut f: Poly) -> Poly {
    while f.last() == Some(&0) {
        f.pop();
    }
    f
}

/// Degree of `f`, or `None` for the zero polynomial.
pub fn degree(f: &[u64]) -> Option<usize> {
    if f.is_empty() {
        None
    } else {
        Some(f.len() - 1)
    }
}

/// `f + g` over `Z_p`.
pub fn add(f: &[u64], g: &[u64], p: u64) -> Poly {
    let n = f.len().max(g.len());
    let out = (0..n)
        .map(|i| {
            let a = f.get(i).copied().unwrap_or(0);
            let b = g.get(i).copied().unwrap_or(0);
            (a + b) % p
        })
        .collect();
    normalize(out)
}

/// `f - g` over `Z_p`.
pub fn sub(f: &[u64], g: &[u64], p: u64) -> Poly {
    let n = f.len().max(g.len());
    let out = (0..n)
        .map(|i| {
            let a = f.get(i).copied().unwrap_or(0);
            let b = g.get(i).copied().unwrap_or(0);
            (a + p - b) % p
        })
        .collect();
    normalize(out)
}

/// `f * g` over `Z_p` (schoolbook; inputs here are tiny).
pub fn mul(f: &[u64], g: &[u64], p: u64) -> Poly {
    if f.is_empty() || g.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u64; f.len() + g.len() - 1];
    for (i, &a) in f.iter().enumerate() {
        if a == 0 {
            continue;
        }
        for (j, &b) in g.iter().enumerate() {
            out[i + j] = (out[i + j] + mul_mod(a, b, p)) % p;
        }
    }
    normalize(out)
}

/// Remainder of `f` divided by the *monic* polynomial `g` over `Z_p`.
/// Division by a monic constant (the unit polynomial `1`) yields the zero
/// polynomial.
///
/// # Panics
///
/// Panics if `g` is not monic or is zero.
pub fn rem(f: &[u64], g: &[u64], p: u64) -> Poly {
    let gd = degree(g).expect("division by zero polynomial");
    assert_eq!(g[gd], 1, "modulus must be monic");
    if gd == 0 {
        return Vec::new();
    }
    let mut r: Poly = f.to_vec();
    while let Some(rd) = degree(&r) {
        if rd < gd {
            break;
        }
        let coef = r[rd];
        let shift = rd - gd;
        // r -= coef * x^shift * g
        for (j, &gj) in g.iter().enumerate() {
            let t = mul_mod(coef, gj, p);
            r[shift + j] = (r[shift + j] + p - t) % p;
        }
        r = normalize(r);
    }
    r
}

/// Polynomial GCD over `Z_p` (monic result; empty for gcd of zeros).
pub fn gcd(f: &[u64], g: &[u64], p: u64) -> Poly {
    let mut a = normalize(f.to_vec());
    let mut b = normalize(g.to_vec());
    while !b.is_empty() {
        let bm = make_monic(&b, p);
        let r = rem(&a, &bm, p);
        a = bm;
        b = r;
    }
    make_monic(&a, p)
}

/// Scales `f` so its leading coefficient is 1 (empty stays empty).
pub fn make_monic(f: &[u64], p: u64) -> Poly {
    match degree(f) {
        None => Vec::new(),
        Some(d) => {
            let lead = f[d];
            if lead == 1 {
                return f.to_vec();
            }
            let inv = inv_mod(lead, p);
            normalize(f.iter().map(|&c| mul_mod(c, inv, p)).collect())
        }
    }
}

/// Inverse of `a` in `Z_p` via Fermat's little theorem.
///
/// # Panics
///
/// Panics if `a ≡ 0 (mod p)`.
pub fn inv_mod(a: u64, p: u64) -> u64 {
    assert!(!a.is_multiple_of(p), "zero has no inverse mod {p}");
    crate::prime::pow_mod(a, p - 2, p)
}

/// `base^e mod f` over `Z_p`, with `f` monic, by square-and-multiply.
pub fn pow_mod_poly(base: &[u64], mut e: u64, f: &[u64], p: u64) -> Poly {
    let mut result: Poly = vec![1];
    let mut b = rem(base, f, p);
    while e > 0 {
        if e & 1 == 1 {
            result = rem(&mul(&result, &b, p), f, p);
        }
        b = rem(&mul(&b, &b, p), f, p);
        e >>= 1;
    }
    result
}

/// Computes `x^(p^k) mod f` by iterating the Frobenius map `g -> g^p mod f`.
fn frobenius_power(k: u32, f: &[u64], p: u64) -> Poly {
    let mut g: Poly = vec![0, 1]; // x
    for _ in 0..k {
        g = pow_mod_poly(&g, p, f, p);
    }
    g
}

/// Rabin's irreducibility test: a monic degree-`m` polynomial `f` over `Z_p`
/// is irreducible iff `x^(p^m) ≡ x (mod f)` and, for every prime divisor `q`
/// of `m`, `gcd(x^(p^(m/q)) − x, f) = 1`.
///
/// # Panics
///
/// Panics if `f` is not monic of degree ≥ 1.
pub fn is_irreducible(f: &[u64], p: u64) -> bool {
    let m = degree(f).expect("zero polynomial") as u32;
    assert!(m >= 1);
    assert_eq!(f[m as usize], 1, "irreducibility test requires monic input");
    if m == 1 {
        return true;
    }
    let x: Poly = vec![0, 1];
    // x^(p^m) == x (mod f)
    if frobenius_power(m, f, p) != rem(&x, f, p) {
        return false;
    }
    for q in distinct_prime_factors(m as u64) {
        let k = m / q as u32;
        let g = sub(&frobenius_power(k, f, p), &x, p);
        let d = gcd(&g, f, p);
        if degree(&d) != Some(0) {
            return false;
        }
    }
    true
}

/// Finds the lexicographically-first monic irreducible polynomial of degree
/// `m` over `Z_p`, scanning lower coefficients as a base-`p` counter. The
/// result is deterministic, so two runs of any experiment agree on the field.
///
/// # Panics
///
/// Panics if `m == 0` or if `p^m` overflows `u64`.
pub fn find_irreducible(p: u64, m: u32) -> Poly {
    assert!(m >= 1, "degree must be at least 1");
    if m == 1 {
        return vec![0, 1]; // x itself
    }
    let count = p
        .checked_pow(m)
        .expect("field too large: p^m overflows u64");
    // Enumerate lower coefficient vectors as base-p integers. Irreducible
    // polynomials have density ~1/m, so this terminates quickly.
    for idx in 0..count {
        let mut f = vec![0u64; m as usize + 1];
        let mut v = idx;
        for c in f.iter_mut().take(m as usize) {
            *c = v % p;
            v /= p;
        }
        f[m as usize] = 1;
        // A polynomial with zero constant term is divisible by x.
        if f[0] == 0 {
            continue;
        }
        if is_irreducible(&f, p) {
            return f;
        }
    }
    unreachable!("an irreducible polynomial of degree {m} exists over GF({p})");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_strips_zeros() {
        assert_eq!(normalize(vec![1, 2, 0, 0]), vec![1, 2]);
        assert_eq!(normalize(vec![0, 0]), Vec::<u64>::new());
    }

    #[test]
    fn add_sub_round_trip() {
        let p = 7;
        let f = vec![1, 2, 3];
        let g = vec![6, 5];
        let s = add(&f, &g, p);
        assert_eq!(sub(&s, &g, p), f);
        assert_eq!(sub(&f, &f, p), Vec::<u64>::new());
    }

    #[test]
    fn mul_known() {
        // (x+1)(x+2) = x^2 + 3x + 2 over Z_5
        assert_eq!(mul(&[1, 1], &[2, 1], 5), vec![2, 3, 1]);
        // times zero
        assert_eq!(mul(&[1, 1], &[], 5), Vec::<u64>::new());
    }

    #[test]
    fn rem_known() {
        // x^2 mod (x^2 + 1) = -1 = p-1 over Z_3
        assert_eq!(rem(&[0, 0, 1], &[1, 0, 1], 3), vec![2]);
        // lower degree passes through
        assert_eq!(rem(&[2, 1], &[1, 0, 1], 3), vec![2, 1]);
    }

    #[test]
    fn gcd_of_multiples() {
        let p = 5;
        let f = vec![1, 1]; // x + 1
        let g = mul(&f, &[3, 1], p); // (x+1)(x+3)
        let h = mul(&f, &[2, 0, 1], p); // (x+1)(x^2+2)
        assert_eq!(gcd(&g, &h, p), f);
    }

    #[test]
    fn gcd_coprime_is_one() {
        let p = 7;
        assert_eq!(gcd(&[1, 1], &[2, 1], p), vec![1]);
    }

    #[test]
    fn known_irreducibles() {
        // x^2 + 1 irreducible over Z_3 (since -1 is a non-residue mod 3)
        assert!(is_irreducible(&[1, 0, 1], 3));
        // x^2 + 1 = (x+2)(x+3) over Z_5
        assert!(!is_irreducible(&[1, 0, 1], 5));
        // x^2 + x + 1 irreducible over Z_2
        assert!(is_irreducible(&[1, 1, 1], 2));
        // x^2 + 1 = (x+1)^2 over Z_2
        assert!(!is_irreducible(&[1, 0, 1], 2));
        // x^3 + x + 1 irreducible over Z_2
        assert!(is_irreducible(&[1, 1, 0, 1], 2));
    }

    #[test]
    fn find_irreducible_is_irreducible() {
        for (p, m) in [
            (2u64, 2u32),
            (2, 3),
            (2, 8),
            (3, 2),
            (3, 3),
            (5, 2),
            (7, 2),
            (11, 2),
        ] {
            let f = find_irreducible(p, m);
            assert_eq!(degree(&f), Some(m as usize));
            assert_eq!(f[m as usize], 1);
            assert!(is_irreducible(&f, p), "find_irreducible({p},{m}) = {f:?}");
        }
    }

    #[test]
    fn irreducible_count_gf2_deg4() {
        // There are exactly 3 monic irreducible polynomials of degree 4
        // over GF(2): x^4+x+1, x^4+x^3+1, x^4+x^3+x^2+x+1.
        let mut count = 0;
        for idx in 0u64..16 {
            let mut f = vec![0u64; 5];
            let mut v = idx;
            for c in f.iter_mut().take(4) {
                *c = v % 2;
                v /= 2;
            }
            f[4] = 1;
            if f[0] != 0 && is_irreducible(&f, 2) {
                count += 1;
            }
        }
        assert_eq!(count, 3);
    }

    #[test]
    fn pow_mod_poly_fermat() {
        // In GF(p)[x]/(f) with f irreducible of degree m, any nonzero g
        // satisfies g^(p^m - 1) = 1.
        let p = 3;
        let f = find_irreducible(p, 2);
        let g = vec![1, 2]; // 2x + 1
        let e = p.pow(2) - 1;
        assert_eq!(pow_mod_poly(&g, e, &f, p), vec![1]);
    }
}
