//! The Lemma 9 / Figure 1 four-stage distribution behind Theorem 2.
//!
//! For a prime power `ℓ`, the construction samples an unweighted
//! unit-capacity instance with `ℓ⁴` sets, all of size `k = 2ℓ² + ℓ + 1`,
//! such that a planted family `S` of `ℓ³` pairwise-disjoint sets is
//! completable by the optimum, while every deterministic online algorithm
//! completes only `O((log ℓ / log log ℓ)²)` sets in expectation:
//!
//! * **Stage I** — partition the sets into `ℓ²` subcollections of `ℓ²`;
//!   apply an `(ℓ,ℓ)`-gadget to each under a *uniformly random* bijection,
//!   **without rows**. (`ℓ⁴` elements of load `ℓ`.)
//! * **Stage II** — group the Stage I subcollections `ℓ` at a time into
//!   `ℓ` collections of `ℓ³` sets; place each by concatenating its Stage I
//!   matrices with *randomly permuted rows*; apply an `(ℓ,ℓ²)`-gadget,
//!   without rows. (`ℓ⁵` elements of load `ℓ`.)
//! * **Stage III** — pick a uniformly random row `u_t` of each Stage II
//!   matrix; the union of those rows is the planted family `S` (`ℓ³`
//!   sets). Apply an `(ℓ²−ℓ, ℓ²)`-gadget (with rows) to everything *not*
//!   in `S`. (`Θ(ℓ⁴)` elements of load `Θ(ℓ²)`.)
//! * **Stage IV** — complete each set in `S` with private load-1 elements.
//!
//! Two textual corrections relative to the paper (documented in
//! DESIGN.md): the Stage II column offset is `ℓ·(z′−1)` (the printed
//! `(ℓ−1)·z′` would overlap columns), and sets in `S` receive `ℓ²+1`
//! completion elements so that *every* set has the common size
//! `k = 2ℓ²+ℓ+1` (Stage III hands the non-planted sets `ℓ²+1` elements,
//! `N+1` per Lemma 8).

use rand::Rng;

use osp_core::{Instance, InstanceBuilder, SetId};
use osp_design::{apply_gadget, Bijection, Gadget};
use osp_gf::prime::is_prime_power;

use crate::AdvError;

/// The sampled Lemma 9 instance with its certificates.
#[derive(Debug, Clone)]
pub struct GadgetLowerBound {
    /// The OSP instance.
    pub instance: Instance,
    /// The planted family `S`: `ℓ³` pairwise-disjoint completable sets.
    pub planted: Vec<SetId>,
    /// The parameter `ℓ`.
    pub ell: u64,
    /// Element index (exclusive) at which each stage ends, for the
    /// Figure 1 reproduction: `[end_I, end_II, end_III, end_IV]`.
    pub stage_ends: [usize; 4],
}

impl GadgetLowerBound {
    /// The common set size `k = 2ℓ² + ℓ + 1`.
    pub fn set_size(&self) -> u64 {
        2 * self.ell * self.ell + self.ell + 1
    }

    /// Number of elements contributed by stage `i` (0-based).
    pub fn stage_len(&self, stage: usize) -> usize {
        let start = if stage == 0 {
            0
        } else {
            self.stage_ends[stage - 1]
        };
        self.stage_ends[stage] - start
    }
}

/// Samples the four-stage construction for a prime power `ℓ ≥ 2`.
///
/// Sizes grow steeply: the instance has `ℓ⁴` sets and `Θ(ℓ⁵)` elements
/// with `Θ(ℓ⁶)` incidences — `ℓ ≤ 9` stays comfortably in memory; `ℓ = 13`
/// is around 10M incidences.
///
/// # Errors
///
/// * [`AdvError::NotPrimePower`] if `ℓ` is not a prime power.
/// * [`AdvError::BadParameters`] if `ℓ < 2` or `ℓ > 16`.
pub fn gadget_lower_bound<R: Rng + ?Sized>(
    ell: u64,
    rng: &mut R,
) -> Result<GadgetLowerBound, AdvError> {
    if !(2..=16).contains(&ell) {
        return Err(AdvError::BadParameters(format!(
            "ℓ must be in 2..=16, got {ell}"
        )));
    }
    if !is_prime_power(ell) {
        return Err(AdvError::NotPrimePower(ell));
    }
    let l = ell as usize;
    let l2 = l * l;
    let l3 = l2 * l;
    let l4 = l2 * l2;
    let k = (2 * l2 + l + 1) as u32;

    let mut b = InstanceBuilder::new();
    for _ in 0..l4 {
        b.add_set(1.0, k);
    }

    // ---- Stage I ----------------------------------------------------
    // Subcollection z (0-based) holds global sets [z·ℓ², (z+1)·ℓ²).
    let gadget_i = Gadget::new(ell, ell).map_err(|e| AdvError::BadParameters(e.to_string()))?;
    let mut stage_i_bijections: Vec<Bijection> = Vec::with_capacity(l2);
    for z in 0..l2 {
        let mu = Bijection::random(ell, ell, rng);
        for line in apply_gadget(&gadget_i, &mu, false) {
            let members: Vec<SetId> = line
                .members
                .iter()
                .map(|&local| SetId((z * l2 + local) as u32))
                .collect();
            b.add_element(1, &members);
        }
        stage_i_bijections.push(mu);
    }
    let end_i = b.num_elements();

    // ---- Stage II ---------------------------------------------------
    // Collection t (0-based) = subcollections z ∈ [t·ℓ, (t+1)·ℓ), i.e.
    // global sets [t·ℓ³, (t+1)·ℓ³). Concatenate their ℓ×ℓ matrices with
    // fresh random row permutations into an ℓ×ℓ² matrix.
    let gadget_ii =
        Gadget::new(ell, (l2) as u64).map_err(|e| AdvError::BadParameters(e.to_string()))?;
    let mut stage_ii_bijections: Vec<Bijection> = Vec::with_capacity(l);
    for t in 0..l {
        let blocks: Vec<&Bijection> = (0..l).map(|z| &stage_i_bijections[t * l + z]).collect();
        let offsets: Vec<usize> = (0..l).map(|z| z * l2).collect();
        let mu = Bijection::concat_with_row_perms(&blocks, &offsets, rng);
        for line in apply_gadget(&gadget_ii, &mu, false) {
            let members: Vec<SetId> = line
                .members
                .iter()
                .map(|&local| SetId((t * l3 + local) as u32))
                .collect();
            b.add_element(1, &members);
        }
        stage_ii_bijections.push(mu);
    }
    let end_ii = b.num_elements();

    // ---- Stage III --------------------------------------------------
    // Planted family S: a uniformly random row of each Stage II matrix.
    let mut in_s = vec![false; l4];
    let mut planted: Vec<SetId> = Vec::with_capacity(l3);
    for (t, mu) in stage_ii_bijections.iter().enumerate() {
        let u_t = rng.gen_range(0..l as u64);
        for local in mu.row_sets(u_t) {
            let global = t * l3 + local;
            in_s[global] = true;
            planted.push(SetId(global as u32));
        }
    }
    // Apply an (ℓ²−ℓ, ℓ²)-gadget, with rows, to C \ S under an arbitrary
    // (identity-ordered) bijection.
    let rest: Vec<usize> = (0..l4).filter(|&s| !in_s[s]).collect();
    debug_assert_eq!(rest.len(), l4 - l3);
    let gadget_iii = Gadget::new((l2 - l) as u64, l2 as u64)
        .map_err(|e| AdvError::BadParameters(e.to_string()))?;
    let mu_iii = Bijection::identity((l2 - l) as u64, l2 as u64);
    for line in apply_gadget(&gadget_iii, &mu_iii, true) {
        let members: Vec<SetId> = line
            .members
            .iter()
            .map(|&local| SetId(rest[local] as u32))
            .collect();
        b.add_element(1, &members);
    }
    let end_iii = b.num_elements();

    // ---- Stage IV ---------------------------------------------------
    // Sets in S have ℓ + ℓ² elements so far; top up to k with private
    // load-1 elements.
    let completion = (k as usize) - l - l2;
    debug_assert_eq!(completion, l2 + 1);
    for &s in &planted {
        for _ in 0..completion {
            b.add_element(1, &[s]);
        }
    }
    let end_iv = b.num_elements();

    let instance = b
        .build()
        .map_err(|e| AdvError::BadParameters(format!("internal construction error: {e}")))?;
    planted.sort_unstable();
    Ok(GadgetLowerBound {
        instance,
        planted,
        ell,
        stage_ends: [end_i, end_ii, end_iii, end_iv],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use osp_core::algorithms::{GreedyOnline, RandPr, TieBreak};
    use osp_core::run;
    use osp_core::stats::InstanceStats;
    use osp_opt::conflict::is_feasible;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample(ell: u64, seed: u64) -> GadgetLowerBound {
        let mut rng = StdRng::seed_from_u64(seed);
        gadget_lower_bound(ell, &mut rng).unwrap()
    }

    #[test]
    fn lemma_9_shape_ell_3() {
        let g = sample(3, 0);
        let st = InstanceStats::compute(&g.instance);
        let l = 3usize;
        assert_eq!(st.m, l.pow(4));
        assert_eq!(st.uniform_size, Some((2 * l * l + l + 1) as u32));
        assert_eq!(g.planted.len(), l.pow(3));
        assert!(st.unweighted);
        assert!(st.unit_capacity);
        // Element counts per stage: ℓ⁴, ℓ⁵, ℓ⁴ + (ℓ²−ℓ), ℓ³·(ℓ²+1).
        assert_eq!(g.stage_len(0), l.pow(4));
        assert_eq!(g.stage_len(1), l.pow(5));
        assert_eq!(g.stage_len(2), l.pow(4) + l * l - l);
        assert_eq!(g.stage_len(3), l.pow(3) * (l * l + 1));
    }

    #[test]
    fn load_profile_matches_lemma_9() {
        let g = sample(3, 1);
        let l = 3u32;
        let arrivals = g.instance.arrivals();
        // Stage I and II: load ℓ.
        for a in arrivals.slice(..g.stage_ends[1]) {
            assert_eq!(a.load(), l);
        }
        // Stage III: affine lines load ℓ²−ℓ, rows load ℓ².
        let stage_iii = arrivals.slice(g.stage_ends[1]..g.stage_ends[2]);
        let affine_count = stage_iii.iter().filter(|a| a.load() == l * l - l).count();
        let row_count = stage_iii.iter().filter(|a| a.load() == l * l).count();
        assert_eq!(affine_count, (l * l * l * l) as usize);
        assert_eq!(row_count, (l * l - l) as usize);
        // Stage IV: load 1.
        for a in arrivals.slice(g.stage_ends[2]..) {
            assert_eq!(a.load(), 1);
        }
        // σ_max = ℓ².
        let st = InstanceStats::compute(&g.instance);
        assert_eq!(st.sigma_max, l * l);
    }

    #[test]
    fn planted_family_is_feasible_and_disjoint() {
        for ell in [2u64, 3, 4] {
            let g = sample(ell, 2);
            assert!(is_feasible(&g.instance, &g.planted), "ℓ={ell}");
            // Disjointness: no element contains two planted sets.
            let mut planted = vec![false; g.instance.num_sets()];
            for &s in &g.planted {
                planted[s.index()] = true;
            }
            for a in g.instance.arrivals() {
                let hits = a.members().iter().filter(|s| planted[s.index()]).count();
                assert!(hits <= 1, "ℓ={ell}: element carries {hits} planted sets");
            }
        }
    }

    #[test]
    fn theta_bounds_on_averages() {
        // σ̄ = Θ(ℓ) and σ² = Θ(ℓ³) per Lemma 9 — check the ratio stays
        // within fixed constants across ℓ.
        for ell in [3u64, 4, 5] {
            let g = sample(ell, 3);
            let st = InstanceStats::compute(&g.instance);
            let l = ell as f64;
            let c1 = st.sigma_mean / l;
            let c2 = st.sigma_sq_mean / (l * l * l);
            assert!((0.2..5.0).contains(&c1), "ℓ={ell}: σ̄/ℓ = {c1}");
            assert!((0.2..5.0).contains(&c2), "ℓ={ell}: σ²/ℓ³ = {c2}");
        }
    }

    #[test]
    fn deterministic_algorithms_complete_few_sets() {
        // opt ≥ ℓ³ = 125; deterministic baselines should complete a
        // polylog number. Generous threshold: ℓ³ / 4.
        let g = sample(5, 4);
        for policy in [
            TieBreak::ByIndex,
            TieBreak::ByWeight,
            TieBreak::ByFewestRemaining,
        ] {
            let out = run(&g.instance, &mut GreedyOnline::new(policy)).unwrap();
            assert!(
                out.completed().len() < 125 / 4,
                "{policy:?} completed {}",
                out.completed().len()
            );
        }
    }

    #[test]
    fn rand_pr_also_bounded_on_this_distribution() {
        // Theorem 2 applies to randomized algorithms too (in expectation
        // over the construction); on a single sample randPr should still
        // complete far fewer than ℓ³ sets.
        let g = sample(4, 5);
        let out = run(&g.instance, &mut RandPr::from_seed(0)).unwrap();
        assert!((out.completed().len() as u64) < 4u64.pow(3) / 2);
    }

    #[test]
    fn parameters_validated() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            gadget_lower_bound(6, &mut rng),
            Err(AdvError::NotPrimePower(6))
        ));
        assert!(gadget_lower_bound(1, &mut rng).is_err());
        assert!(gadget_lower_bound(17, &mut rng).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let a = sample(3, 9);
        let b = sample(3, 9);
        assert_eq!(a.instance, b.instance);
        assert_eq!(a.planted, b.planted);
    }
}
