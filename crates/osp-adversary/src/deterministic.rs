//! The Theorem 3 adaptive adversary.
//!
//! > *The competitive ratio of any deterministic OSP algorithm is at least
//! > `σ_max^(k_max−1)`, even for unweighted unit-capacity instances.*
//!
//! The construction (§4.1) plays `k` phases against the algorithm. It
//! starts with `σ^k` sets of declared size `k`, all *active*. In phase `i`
//! it partitions the currently active sets into groups of `σ` and releases
//! one element per group, containing exactly that group — the algorithm
//! can keep at most one set per group alive, so at most `σ^(k−i)` sets
//! remain active after phase `i`. After phase `k` at most one set is
//! active. Finally, every set is topped up to exactly `k` elements with
//! private load-1 elements.
//!
//! The optimum meanwhile completes one *loser* per phase-1 group: those
//! `σ^(k−1)` sets are pairwise disjoint (distinct phase-1 elements,
//! private completions, and — being dead to the algorithm — they never
//! appear in later phases).

use osp_core::{
    Arrival, ElementId, Instance, InstanceBuilder, OnlineAlgorithm, Outcome, Session, SetId,
    SetMeta,
};

use crate::AdvError;

/// Everything the Theorem 3 run produces.
#[derive(Debug, Clone)]
pub struct DeterministicAdversaryOutcome {
    /// The instance the adversary ended up constructing.
    pub instance: Instance,
    /// The driven algorithm's outcome on that instance.
    pub outcome: Outcome,
    /// A certified feasible optimum: one loser per phase-1 group, pairwise
    /// disjoint, `σ^(k−1)` sets in total.
    pub certified_opt: Vec<SetId>,
}

impl DeterministicAdversaryOutcome {
    /// The certified competitive ratio witnessed by this run
    /// (`|certified_opt| / |alg|`, infinite when the algorithm completed
    /// nothing).
    pub fn witnessed_ratio(&self) -> f64 {
        let alg = self.outcome.benefit();
        if alg <= 0.0 {
            f64::INFINITY
        } else {
            self.certified_opt.len() as f64 / alg
        }
    }
}

/// Runs the adaptive adversary with parameters `sigma ≥ 2`, `k ≥ 1`
/// against `algorithm`. The instance has `σ^k` unit-weight sets of size
/// exactly `k` and maximum load `σ`.
///
/// # Errors
///
/// * [`AdvError::BadParameters`] if `σ < 2`, `k < 1`, or `σ^k > 2^20`
///   (the construction is exponential by design; keep it small).
/// * [`AdvError::Algorithm`] if the driven algorithm emits an invalid
///   decision.
pub fn run_deterministic_adversary<A: OnlineAlgorithm + ?Sized>(
    sigma: u32,
    k: u32,
    algorithm: &mut A,
) -> Result<DeterministicAdversaryOutcome, AdvError> {
    if sigma < 2 || k < 1 {
        return Err(AdvError::BadParameters(format!(
            "need σ ≥ 2 and k ≥ 1, got σ={sigma}, k={k}"
        )));
    }
    let m = (sigma as u64)
        .checked_pow(k)
        .filter(|&m| m <= 1 << 20)
        .ok_or_else(|| {
            AdvError::BadParameters(format!("σ^k = {sigma}^{k} exceeds the 2^20 set budget"))
        })? as usize;

    let metas: Vec<SetMeta> = (0..m).map(|_| SetMeta::new(1.0, k)).collect();

    let mut session = Session::new(&metas, algorithm);
    let mut builder = InstanceBuilder::new();
    for _ in 0..m {
        builder.add_set(1.0, k);
    }

    let mut next_element = 0u32;
    let mut participation = vec![0u32; m];
    let mut certified_opt: Vec<SetId> = Vec::new();

    // One buffer reused across phases (refilled from the session's active
    // iterator) instead of a freshly materialized Vec per phase.
    let mut active: Vec<SetId> = Vec::with_capacity(m);
    for phase in 1..=k {
        active.clear();
        active.extend(session.active_sets_iter());
        // Partition the active sets into chunks of σ (last may be smaller).
        for group in active.chunks(sigma as usize) {
            let element = ElementId(next_element);
            next_element += 1;
            let arrival = Arrival::new(element, 1, group);
            let decision = session
                .offer(&arrival, algorithm)
                .map_err(|e| AdvError::Algorithm(e.to_string()))?;
            builder.add_element(1, group);
            for &s in group {
                participation[s.index()] += 1;
            }
            if phase == 1 && group.len() >= 2 {
                // Designate one loser per full phase-1 group for opt.
                let loser = group
                    .iter()
                    .copied()
                    .find(|s| !decision.contains(s))
                    .expect("a group of ≥2 has a non-chosen member");
                certified_opt.push(loser);
            }
        }
    }

    // Top every set up to exactly k elements with private load-1 elements.
    for (s, &seen) in participation.iter().enumerate() {
        let singleton = [SetId(s as u32)];
        for _ in seen..k {
            let element = ElementId(next_element);
            next_element += 1;
            let arrival = Arrival::new(element, 1, &singleton);
            session
                .offer(&arrival, algorithm)
                .map_err(|e| AdvError::Algorithm(e.to_string()))?;
            builder.add_element(1, &singleton);
        }
    }

    let outcome = session.finish();
    let instance = builder
        .build()
        .expect("adversary bookkeeping guarantees a valid instance");
    certified_opt.sort_unstable();
    Ok(DeterministicAdversaryOutcome {
        instance,
        outcome,
        certified_opt,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use osp_core::algorithms::{GreedyOnline, RandPr, TieBreak};
    use osp_core::run;
    use osp_core::stats::InstanceStats;
    use osp_opt::conflict::is_feasible;

    #[test]
    fn greedy_is_held_to_one_set() {
        for policy in TieBreak::all() {
            let mut alg = GreedyOnline::new(policy);
            let res = run_deterministic_adversary(3, 3, &mut alg).unwrap();
            assert!(
                res.outcome.completed().len() <= 1,
                "{policy:?} completed {}",
                res.outcome.completed().len()
            );
            assert_eq!(res.certified_opt.len(), 9); // σ^(k-1)
        }
    }

    #[test]
    fn certified_opt_is_feasible() {
        let mut alg = GreedyOnline::new(TieBreak::ByIndex);
        let res = run_deterministic_adversary(2, 4, &mut alg).unwrap();
        assert_eq!(res.certified_opt.len(), 8);
        assert!(is_feasible(&res.instance, &res.certified_opt));
    }

    #[test]
    fn instance_shape_matches_theorem() {
        let mut alg = GreedyOnline::new(TieBreak::ByWeight);
        let (sigma, k) = (3u32, 3u32);
        let res = run_deterministic_adversary(sigma, k, &mut alg).unwrap();
        let st = InstanceStats::compute(&res.instance);
        assert_eq!(st.m, 27); // σ^k
        assert_eq!(st.uniform_size, Some(k));
        assert_eq!(st.sigma_max, sigma);
        assert!(st.unweighted);
        assert!(st.unit_capacity);
    }

    #[test]
    fn replaying_the_instance_reproduces_the_outcome() {
        // The adversary is adaptive, but once built, the instance must be
        // an ordinary instance: replaying it against a *fresh* copy of the
        // same deterministic algorithm gives the same outcome.
        let mut alg = GreedyOnline::new(TieBreak::ByWeight);
        let res = run_deterministic_adversary(2, 3, &mut alg).unwrap();
        let mut fresh = GreedyOnline::new(TieBreak::ByWeight);
        let replay = run(&res.instance, &mut fresh).unwrap();
        assert_eq!(replay.completed(), res.outcome.completed());
        assert_eq!(replay.benefit(), res.outcome.benefit());
    }

    #[test]
    fn witnessed_ratio_meets_theorem_3() {
        for (sigma, k) in [(2u32, 2u32), (2, 3), (3, 2), (3, 3), (4, 2)] {
            let mut alg = GreedyOnline::new(TieBreak::ByIndex);
            let res = run_deterministic_adversary(sigma, k, &mut alg).unwrap();
            let bound = f64::from(sigma).powi(k as i32 - 1);
            assert!(
                res.witnessed_ratio() >= bound,
                "σ={sigma} k={k}: ratio {} < {bound}",
                res.witnessed_ratio()
            );
        }
    }

    #[test]
    fn randomized_algorithm_evades_the_deterministic_trap() {
        // The same instance family built against greedy leaves randPr room:
        // on the greedy-built instance, randPr completes ~σ^(k-1)·(fraction)
        // sets in expectation — strictly more than greedy's 1.
        let mut greedy = GreedyOnline::new(TieBreak::ByIndex);
        let res = run_deterministic_adversary(3, 3, &mut greedy).unwrap();
        let trials = 200;
        let mut total = 0.0;
        for seed in 0..trials {
            let out = run(&res.instance, &mut RandPr::from_seed(seed)).unwrap();
            total += out.benefit();
        }
        let mean = total / trials as f64;
        assert!(
            mean > 1.5,
            "randPr only averaged {mean} on the anti-greedy instance"
        );
    }

    #[test]
    fn parameter_validation() {
        let mut alg = GreedyOnline::new(TieBreak::ByIndex);
        assert!(run_deterministic_adversary(1, 3, &mut alg).is_err());
        assert!(run_deterministic_adversary(2, 0, &mut alg).is_err());
        assert!(run_deterministic_adversary(2, 30, &mut alg).is_err());
    }

    #[test]
    fn k_equals_one_degenerates_gracefully() {
        // k=1: a single phase of σ-fans; alg keeps 1 per group; opt keeps
        // σ^0 = 1 per... certified opt = one loser per group = σ^0 groups?
        // m = σ, one group, opt gets 1 loser, alg gets 1 winner.
        let mut alg = GreedyOnline::new(TieBreak::ByIndex);
        let res = run_deterministic_adversary(4, 1, &mut alg).unwrap();
        assert_eq!(res.outcome.completed().len(), 1);
        assert_eq!(res.certified_opt.len(), 1);
    }
}
