//! # osp-adversary — the paper's lower-bound constructions, executable
//!
//! Section 4 of *Emek et al., PODC 2010* proves two lower bounds on the
//! competitive ratio of online set packing. This crate turns both proofs
//! into runnable machinery:
//!
//! * [`deterministic`] — the **Theorem 3 adversary**: an *adaptive*
//!   construction that plays against any live deterministic algorithm
//!   through the engine's [`Session`](osp_core::Session) API and leaves it
//!   with at most one completed set while a certified optimum completes
//!   `σ^(k−1)`.
//! * [`weak`] — the **warm-up construction** of §4.2: `t²` sets, `t` row
//!   elements, `t²` random permutation elements; yields the `Ω(σ/log σ)`
//!   bound.
//! * [`gadget_lb`] — the **Lemma 9 / Figure 1 distribution**: the four-stage
//!   construction over `(M,N)`-gadgets with `ℓ⁴` sets of uniform size
//!   `k = 2ℓ² + ℓ + 1`, planted optimum of `ℓ³` disjoint sets, and
//!   `E[alg] = O((log ℓ / log log ℓ)²)` for every deterministic algorithm —
//!   the engine behind Theorem 2.
//!
//! Every construction returns a normal [`Instance`](osp_core::Instance)
//! plus its certificates (the planted optimum, stage metadata), so the
//! experiment harness can replay them against any algorithm and verify the
//! claimed invariants directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod deterministic;
pub mod gadget_lb;
pub mod weak;

use std::fmt;

/// Errors constructing adversarial instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdvError {
    /// Parameters out of the supported range (too small or too large).
    BadParameters(String),
    /// The gadget construction requires `ℓ` to be a prime power.
    NotPrimePower(u64),
    /// The driven algorithm emitted an invalid decision.
    Algorithm(String),
}

impl fmt::Display for AdvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdvError::BadParameters(msg) => write!(f, "bad adversary parameters: {msg}"),
            AdvError::NotPrimePower(l) => write!(f, "ℓ = {l} is not a prime power"),
            AdvError::Algorithm(msg) => write!(f, "algorithm error during adversary run: {msg}"),
        }
    }
}

impl std::error::Error for AdvError {}
