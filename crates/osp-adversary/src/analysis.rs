//! Construction audits: machine-checkable versions of the Lemma 9 claims.
//!
//! [`audit_gadget_lower_bound`] inspects a sampled [`GadgetLowerBound`]
//! and verifies, exhaustively, every structural invariant the proof of
//! Lemma 9 relies on. The `fig1` experiment and the `adversarial_gadget`
//! example print these audits; the test-suite asserts them for every
//! prime power in range.

use osp_core::stats::InstanceStats;
use osp_core::SetId;

use crate::gadget_lb::GadgetLowerBound;

/// The outcome of auditing one sampled construction.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstructionAudit {
    /// ℓ of the audited construction.
    pub ell: u64,
    /// Whether all sets have the common size `2ℓ²+ℓ+1`.
    pub uniform_size_ok: bool,
    /// Whether `σ_max = ℓ²`.
    pub sigma_max_ok: bool,
    /// Whether the planted family has exactly `ℓ³` sets.
    pub planted_count_ok: bool,
    /// Whether no element contains two planted sets (disjointness, hence
    /// feasibility of the planted optimum under unit capacities).
    pub planted_disjoint_ok: bool,
    /// Whether the per-stage element counts match the formulas
    /// `[ℓ⁴, ℓ⁵, ℓ⁴ + ℓ² − ℓ, ℓ³(ℓ²+1)]`.
    pub stage_counts_ok: bool,
    /// Whether stage loads match Lemma 9: `ℓ` in stages I–II, `ℓ²−ℓ` or
    /// `ℓ²` in stage III, `1` in stage IV.
    pub stage_loads_ok: bool,
    /// Normalized mean load `σ̄/ℓ` (a Θ(1) constant per Lemma 9).
    pub sigma_mean_over_ell: f64,
    /// Normalized mean squared load `σ²/ℓ³` (a Θ(1) constant).
    pub sigma_sq_over_ell3: f64,
}

impl ConstructionAudit {
    /// Whether every boolean invariant holds.
    pub fn all_ok(&self) -> bool {
        self.uniform_size_ok
            && self.sigma_max_ok
            && self.planted_count_ok
            && self.planted_disjoint_ok
            && self.stage_counts_ok
            && self.stage_loads_ok
    }
}

/// Audits a sampled construction against every Lemma 9 invariant.
pub fn audit_gadget_lower_bound(g: &GadgetLowerBound) -> ConstructionAudit {
    let st = InstanceStats::compute(&g.instance);
    let l = g.ell;
    let lu = l as usize;
    let l2 = lu * lu;

    let uniform_size_ok = st.uniform_size == Some(g.set_size() as u32);
    let sigma_max_ok = u64::from(st.sigma_max) == l * l;
    let planted_count_ok = g.planted.len() == lu.pow(3);

    let mut planted = vec![false; g.instance.num_sets()];
    for &s in &g.planted {
        planted[s.index()] = true;
    }
    let planted_disjoint_ok = g.instance.arrivals().iter().all(|a| {
        a.members()
            .iter()
            .filter(|s: &&SetId| planted[s.index()])
            .count()
            <= 1
    });

    let expected_stages = [
        lu.pow(4),
        lu.pow(5),
        lu.pow(4) + l2 - lu,
        lu.pow(3) * (l2 + 1),
    ];
    let stage_counts_ok = (0..4).all(|i| g.stage_len(i) == expected_stages[i]);

    let arrivals = g.instance.arrivals();
    let stage_loads_ok = {
        let stage_i_ii = arrivals
            .slice(..g.stage_ends[1])
            .iter()
            .all(|a| a.load() as usize == lu);
        let stage_iii = arrivals
            .slice(g.stage_ends[1]..g.stage_ends[2])
            .iter()
            .all(|a| a.load() as usize == l2 - lu || a.load() as usize == l2);
        let stage_iv = arrivals
            .slice(g.stage_ends[2]..)
            .iter()
            .all(|a| a.load() == 1);
        stage_i_ii && stage_iii && stage_iv
    };

    ConstructionAudit {
        ell: l,
        uniform_size_ok,
        sigma_max_ok,
        planted_count_ok,
        planted_disjoint_ok,
        stage_counts_ok,
        stage_loads_ok,
        sigma_mean_over_ell: st.sigma_mean / l as f64,
        sigma_sq_over_ell3: st.sigma_sq_mean / (l as f64).powi(3),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadget_lb::gadget_lower_bound;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn audits_pass_for_all_small_prime_powers() {
        for ell in [2u64, 3, 4, 5] {
            for seed in 0..3 {
                let mut rng = StdRng::seed_from_u64(seed);
                let g = gadget_lower_bound(ell, &mut rng).unwrap();
                let audit = audit_gadget_lower_bound(&g);
                assert!(audit.all_ok(), "ℓ={ell} seed={seed}: {audit:?}");
            }
        }
    }

    #[test]
    fn normalized_constants_are_theta_1() {
        // Across ℓ, the normalized load moments stay inside fixed bands —
        // the executable meaning of the Θ(ℓ) / Θ(ℓ³) claims.
        let mut c1s = Vec::new();
        let mut c2s = Vec::new();
        for ell in [3u64, 4, 5, 7] {
            let mut rng = StdRng::seed_from_u64(1);
            let g = gadget_lower_bound(ell, &mut rng).unwrap();
            let audit = audit_gadget_lower_bound(&g);
            c1s.push(audit.sigma_mean_over_ell);
            c2s.push(audit.sigma_sq_over_ell3);
        }
        for &c in &c1s {
            assert!((0.5..2.0).contains(&c), "σ̄/ℓ constants {c1s:?}");
        }
        for &c in &c2s {
            assert!((0.2..1.0).contains(&c), "σ²/ℓ³ constants {c2s:?}");
        }
    }

    #[test]
    fn audit_detects_a_tampered_construction() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut g = gadget_lower_bound(3, &mut rng).unwrap();
        // Claim a wrong planted family: drop half the sets.
        g.planted.truncate(10);
        let audit = audit_gadget_lower_bound(&g);
        assert!(!audit.planted_count_ok);
        assert!(!audit.all_ok());
    }
}
