//! The warm-up randomized lower bound of §4.2 (`Ω(σ/log σ)`).
//!
//! The input has `t²` sets `S_{ij}`, `i, j ∈ [t]`. First the adversary
//! presents `t` *row elements* `u_i ∈ S_{ij}` for all `j`. Then it presents
//! `t²` random *permutation elements* `v_ℓ`: each contains exactly one set
//! per row, with all column indices distinct (`v_ℓ = {S_{i,ρ_ℓ(i)}}` for a
//! uniformly random permutation `ρ_ℓ`), so any two sets it contains differ
//! in both row and column — the condition stated in the paper. Any pair of
//! sets the online algorithm keeps after the row elements collides in some
//! `v_ℓ` with constant probability, so only `O(log t)` of them survive; the
//! optimum completes a full column (`t` pairwise-disjoint sets).

use rand::seq::SliceRandom;
use rand::Rng;

use osp_core::{Instance, InstanceBuilder, SetId};

use crate::AdvError;

/// The sampled weak-lower-bound instance with its certificates.
#[derive(Debug, Clone)]
pub struct WeakLowerBound {
    /// The OSP instance (unweighted, unit capacity).
    pub instance: Instance,
    /// The planted optimum: the sets of one (hidden) column — pairwise
    /// disjoint by construction.
    pub planted: Vec<SetId>,
    /// The side length `t`.
    pub t: usize,
    /// The hidden grid: `grid[i*t + j]` is the set placed at `(i, j)`.
    /// Set ids are a uniformly random relabeling of the grid positions, so
    /// the column structure is invisible to the online algorithm (this is
    /// essential: with identity labels, first-fit would reconstruct a
    /// column and beat the bound).
    pub grid: Vec<SetId>,
}

impl WeakLowerBound {
    /// The set at grid position `(i, j)`.
    pub fn set_at(&self, i: usize, j: usize) -> SetId {
        self.grid[i * self.t + j]
    }
}

/// Samples the §4.2 warm-up construction with side `t ≥ 2`.
///
/// # Errors
///
/// Returns [`AdvError::BadParameters`] if `t < 2` or `t² > 2^20`.
pub fn weak_lower_bound<R: Rng + ?Sized>(
    t: usize,
    rng: &mut R,
) -> Result<WeakLowerBound, AdvError> {
    if t < 2 {
        return Err(AdvError::BadParameters(format!("need t ≥ 2, got {t}")));
    }
    if t * t > 1 << 20 {
        return Err(AdvError::BadParameters(format!(
            "t² = {} exceeds the 2^20 set budget",
            t * t
        )));
    }

    let mut b = InstanceBuilder::new();
    // Sizes are data-dependent, so infer them. Ids are a random relabeling
    // of grid positions: the algorithm must not be able to read columns
    // off the identifiers.
    let mut grid: Vec<SetId> = (0..t * t).map(|_| b.add_set_unsized(1.0)).collect();
    grid.shuffle(rng);
    let set_at = |i: usize, j: usize| grid[i * t + j];

    // Row elements u_i = {S_{ij} : j}.
    for i in 0..t {
        let members: Vec<SetId> = (0..t).map(|j| set_at(i, j)).collect();
        b.add_element(1, &members);
    }

    // Permutation elements v_ℓ = {S_{i, ρ_ℓ(i)} : i}.
    let mut perm: Vec<usize> = (0..t).collect();
    for _ in 0..t * t {
        perm.shuffle(rng);
        let members: Vec<SetId> = (0..t).map(|i| set_at(i, perm[i])).collect();
        b.add_element(1, &members);
    }

    // Some set may have appeared only in its row element; that is fine —
    // sizes are inferred, and every set saw its row element, so none is
    // empty.
    let instance = b.build().expect("construction produces a valid instance");
    let mut planted: Vec<SetId> = (0..t).map(|i| set_at(i, 0)).collect();
    planted.sort_unstable();
    Ok(WeakLowerBound {
        instance,
        planted,
        t,
        grid,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use osp_core::algorithms::{GreedyOnline, TieBreak};
    use osp_core::run;
    use osp_core::stats::InstanceStats;
    use osp_opt::conflict::is_feasible;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shape_is_as_stated() {
        let mut rng = StdRng::seed_from_u64(0);
        let w = weak_lower_bound(6, &mut rng).unwrap();
        let st = InstanceStats::compute(&w.instance);
        assert_eq!(st.m, 36);
        assert_eq!(st.n, 6 + 36);
        // Every element has load exactly t.
        assert_eq!(st.uniform_load, Some(6));
        assert!(st.unweighted);
        assert!(st.unit_capacity);
    }

    #[test]
    fn planted_column_is_feasible() {
        let mut rng = StdRng::seed_from_u64(1);
        for t in [2, 3, 5, 8] {
            let w = weak_lower_bound(t, &mut rng).unwrap();
            assert_eq!(w.planted.len(), t);
            assert!(is_feasible(&w.instance, &w.planted), "t={t}");
        }
    }

    #[test]
    fn permutation_elements_hit_each_row_once() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = 5;
        let w = weak_lower_bound(t, &mut rng).unwrap();
        // Invert the hidden grid: position of each set.
        let mut pos = vec![(0usize, 0usize); t * t];
        for i in 0..t {
            for j in 0..t {
                pos[w.set_at(i, j).index()] = (i, j);
            }
        }
        for a in w.instance.arrivals().iter().skip(t) {
            let mut rows: Vec<usize> = a.members().iter().map(|s| pos[s.index()].0).collect();
            rows.sort_unstable();
            rows.dedup();
            assert_eq!(rows.len(), t, "an element repeats a row");
            let mut cols: Vec<usize> = a.members().iter().map(|s| pos[s.index()].1).collect();
            cols.sort_unstable();
            cols.dedup();
            assert_eq!(cols.len(), t, "an element repeats a column");
        }
    }

    #[test]
    fn greedy_survives_far_fewer_than_opt() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = 16;
        let w = weak_lower_bound(t, &mut rng).unwrap();
        let out = run(&w.instance, &mut GreedyOnline::new(TieBreak::ByIndex)).unwrap();
        // Theory: O(log t) survivors vs opt = t. Allow slack but require a gap.
        assert!(
            (out.completed().len() as f64) < t as f64 / 2.0,
            "greedy completed {} of {t}",
            out.completed().len()
        );
    }

    #[test]
    fn parameters_validated() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(weak_lower_bound(1, &mut rng).is_err());
        assert!(weak_lower_bound(2000, &mut rng).is_err());
    }
}
