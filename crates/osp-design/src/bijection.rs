//! Bijections placing a collection of sets onto the `M × N` item matrix of a
//! gadget.
//!
//! The paper phrases gadget application as "apply the (M,N)-gadget to the
//! collection `C'` under the bijection `µ : C' → [M] × [N]`". A [`Bijection`]
//! stores the placement both ways: set index → matrix position and back.
//! Stage II of the Lemma 9 construction builds wide bijections by
//! concatenating narrow ones after randomly permuting their rows;
//! [`Bijection::concat_with_row_perms`] implements exactly that step.

use rand::seq::SliceRandom;
use rand::Rng;

/// A bijection between `M·N` set indices (`0..M·N`, local to one
/// subcollection) and matrix positions `(row, col)` with `row < M`,
/// `col < N`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bijection {
    m: u64,
    n: u64,
    /// `to_pos[set] = (row, col)`.
    to_pos: Vec<(u64, u64)>,
    /// `from_pos[row * n + col] = set`.
    from_pos: Vec<u32>,
}

impl Bijection {
    /// The identity placement: set `s` sits at `(s / n, s % n)` (row-major).
    ///
    /// # Panics
    ///
    /// Panics if `m * n == 0` or exceeds `u32::MAX` sets.
    pub fn identity(m: u64, n: u64) -> Self {
        let size = m.checked_mul(n).expect("m*n overflow");
        assert!(size > 0, "bijection must cover at least one item");
        assert!(size <= u32::MAX as u64, "too many sets for a bijection");
        let to_pos: Vec<(u64, u64)> = (0..size).map(|s| (s / n, s % n)).collect();
        let from_pos: Vec<u32> = (0..size as u32).collect();
        Bijection {
            m,
            n,
            to_pos,
            from_pos,
        }
    }

    /// A uniformly random placement (used by Stage I of Lemma 9).
    pub fn random<R: Rng + ?Sized>(m: u64, n: u64, rng: &mut R) -> Self {
        let mut b = Bijection::identity(m, n);
        // Shuffle which set lands on which position.
        let mut sets: Vec<u32> = (0..(m * n) as u32).collect();
        sets.shuffle(rng);
        for (pos, &set) in sets.iter().enumerate() {
            b.from_pos[pos] = set;
            b.to_pos[set as usize] = ((pos as u64) / n, (pos as u64) % n);
        }
        b
    }

    /// Number of rows `M`.
    pub fn rows(&self) -> u64 {
        self.m
    }

    /// Number of columns `N`.
    pub fn cols(&self) -> u64 {
        self.n
    }

    /// Number of placed sets, `M·N`.
    pub fn len(&self) -> usize {
        self.to_pos.len()
    }

    /// Whether the bijection is empty (never true for a constructed one).
    pub fn is_empty(&self) -> bool {
        self.to_pos.is_empty()
    }

    /// Position of set `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn position_of(&self, s: usize) -> (u64, u64) {
        self.to_pos[s]
    }

    /// Set at position `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of range.
    pub fn set_at(&self, row: u64, col: u64) -> usize {
        assert!(
            row < self.m && col < self.n,
            "position ({row},{col}) out of range"
        );
        self.from_pos[(row * self.n + col) as usize] as usize
    }

    /// All set indices in row `row`, by ascending column.
    pub fn row_sets(&self, row: u64) -> Vec<usize> {
        (0..self.n).map(|c| self.set_at(row, c)).collect()
    }

    /// Concatenates `blocks.len()` many `M × N_b` bijections into one
    /// `M × (Σ N_b)` bijection, after permuting the rows of each block by a
    /// fresh uniformly random permutation — the Stage II step of Lemma 9.
    ///
    /// `offsets[i]` receives the local set indices of block `i` shifted by
    /// the corresponding offset so the result addresses a single combined
    /// collection: set `s` of block `i` becomes set `offsets[i] + s`.
    ///
    /// # Panics
    ///
    /// Panics if blocks disagree on `M`, if `blocks` is empty, or if
    /// `offsets.len() != blocks.len()`.
    pub fn concat_with_row_perms<R: Rng + ?Sized>(
        blocks: &[&Bijection],
        offsets: &[usize],
        rng: &mut R,
    ) -> Self {
        assert!(!blocks.is_empty(), "need at least one block");
        assert_eq!(blocks.len(), offsets.len());
        let m = blocks[0].m;
        assert!(
            blocks.iter().all(|b| b.m == m),
            "all blocks must have the same row count"
        );
        let n_total: u64 = blocks.iter().map(|b| b.n).sum();
        let size = (m * n_total) as usize;
        let mut to_pos = vec![(0u64, 0u64); size];
        let mut from_pos = vec![0u32; size];

        let mut col_offset = 0u64;
        for (block, &set_offset) in blocks.iter().zip(offsets) {
            // Fresh random row permutation π for this block.
            let mut perm: Vec<u64> = (0..m).collect();
            perm.shuffle(rng);
            for local in 0..block.len() {
                let (r, c) = block.to_pos[local];
                let global_set = set_offset + local;
                let global_pos = (perm[r as usize], col_offset + c);
                to_pos[global_set] = global_pos;
                from_pos[(global_pos.0 * n_total + global_pos.1) as usize] = global_set as u32;
            }
            col_offset += block.n;
        }
        Bijection {
            m,
            n: n_total,
            to_pos,
            from_pos,
        }
    }

    /// Verifies internal consistency (each direction inverts the other).
    /// Exposed for tests and construction audits.
    pub fn is_consistent(&self) -> bool {
        if self.to_pos.len() != (self.m * self.n) as usize {
            return false;
        }
        self.to_pos.iter().enumerate().all(|(s, &(r, c))| {
            r < self.m && c < self.n && self.from_pos[(r * self.n + c) as usize] as usize == s
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_round_trip() {
        let b = Bijection::identity(3, 4);
        assert_eq!(b.len(), 12);
        assert!(b.is_consistent());
        for s in 0..12 {
            let (r, c) = b.position_of(s);
            assert_eq!(b.set_at(r, c), s);
        }
        assert_eq!(b.row_sets(1), vec![4, 5, 6, 7]);
    }

    #[test]
    fn random_is_bijective() {
        let mut rng = StdRng::seed_from_u64(5);
        let b = Bijection::random(4, 5, &mut rng);
        assert!(b.is_consistent());
        let mut seen = [false; 20];
        for s in 0..20 {
            let (r, c) = b.position_of(s);
            let idx = (r * 5 + c) as usize;
            assert!(!seen[idx]);
            seen[idx] = true;
        }
    }

    #[test]
    fn random_differs_from_identity_with_high_probability() {
        let mut rng = StdRng::seed_from_u64(17);
        let b = Bijection::random(6, 7, &mut rng);
        let id = Bijection::identity(6, 7);
        assert_ne!(b, id);
    }

    #[test]
    fn concat_covers_all_columns() {
        let mut rng = StdRng::seed_from_u64(1);
        let b1 = Bijection::identity(3, 2);
        let b2 = Bijection::identity(3, 4);
        let cat = Bijection::concat_with_row_perms(&[&b1, &b2], &[0, 6], &mut rng);
        assert_eq!(cat.rows(), 3);
        assert_eq!(cat.cols(), 6);
        assert!(cat.is_consistent());
        // Block 1's sets occupy columns 0..2, block 2's occupy 2..6.
        for s in 0..6 {
            assert!(cat.position_of(s).1 < 2);
        }
        for s in 6..18 {
            assert!(cat.position_of(s).1 >= 2);
        }
    }

    #[test]
    fn concat_permutes_rows_but_preserves_row_grouping() {
        // Sets sharing a row in a block must still share a row after concat.
        let mut rng = StdRng::seed_from_u64(99);
        let b = Bijection::identity(4, 3);
        let cat = Bijection::concat_with_row_perms(&[&b, &b], &[0, 12], &mut rng);
        for block in 0..2 {
            let off = block * 12;
            for r in 0..4u64 {
                let rows: Vec<u64> = (0..3)
                    .map(|c| cat.position_of(off + (r * 3 + c) as usize).0)
                    .collect();
                assert!(rows.windows(2).all(|w| w[0] == w[1]), "row split: {rows:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "same row count")]
    fn concat_rejects_mismatched_rows() {
        let mut rng = StdRng::seed_from_u64(0);
        let b1 = Bijection::identity(2, 2);
        let b2 = Bijection::identity(3, 2);
        let _ = Bijection::concat_with_row_perms(&[&b1, &b2], &[0, 4], &mut rng);
    }
}
