//! # osp-design — (M,N)-gadget combinatorial designs
//!
//! §4.2.1 of *Emek et al., PODC 2010* builds its randomized lower bound from
//! a combinatorial object reminiscent of affine planes, the **(M,N)-gadget**:
//! `M·N` items identified with pairs in `F_M × F` where `F` is a finite field
//! of cardinality `N` (a prime power) and `F_M ⊆ F` has cardinality `M ≤ N`.
//! Its **lines** are
//!
//! * `L_{a,b} = {(i, j) : j = a·i + b}` for every `a, b ∈ F`, and
//! * `L_{∞,c} = {c} × F` (the *rows*) for every `c ∈ F_M`.
//!
//! In the OSP reduction, items play the role of *sets* and lines the role of
//! *elements*: applying a gadget to a collection of `M·N` sets under a
//! bijection introduces one OSP element per line, containing exactly the sets
//! placed on that line. Propositions 1–2 of the paper (any two items share
//! exactly one line; each item lies on exactly one line per slope plus one
//! row) are exposed as executable checks in [`verify`].
//!
//! ```
//! use osp_design::Gadget;
//!
//! let g = Gadget::new(3, 5)?; // M=3, N=5 (5 is prime)
//! assert_eq!(g.item_count(), 15);
//! // Any two items in different rows share exactly one affine line:
//! let shared = g.affine_lines_through((0, 1), (2, 4));
//! assert_eq!(shared.len(), 1);
//! # Ok::<(), osp_design::GadgetError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apply;
mod bijection;
mod gadget;
pub mod verify;

pub use apply::{apply_gadget, LineElements};
pub use bijection::Bijection;
pub use gadget::{Gadget, GadgetError, Item, Line};
