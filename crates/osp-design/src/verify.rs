//! Executable checks of the paper's structural claims about gadgets
//! (Propositions 1–2 and the counting part of Lemma 8).
//!
//! These are used by the test-suite and by the `adversarial_gadget` example
//! to demonstrate that the constructed combinatorial designs really satisfy
//! the paper's stated properties — for *every* gadget size we use, not just
//! on paper.

use crate::apply::apply_gadget;
use crate::bijection::Bijection;
use crate::gadget::{Gadget, Line};

/// Proposition 1: items in different rows lie on exactly one common affine
/// line; items in the same row (different columns) lie on no common affine
/// line but exactly one common row line.
///
/// # Errors
///
/// Returns a description of the first violated pair, if any.
pub fn check_proposition_1(g: &Gadget) -> Result<(), String> {
    let items: Vec<_> = g.items().collect();
    for (x, &u) in items.iter().enumerate() {
        for &v in &items[x + 1..] {
            let shared_affine = g
                .affine_lines()
                .filter(|&l| g.on_line(u, l) && g.on_line(v, l))
                .count();
            let shared_rows = g
                .row_lines()
                .filter(|&l| g.on_line(u, l) && g.on_line(v, l))
                .count();
            if u.0 == v.0 {
                if shared_affine != 0 || shared_rows != 1 {
                    return Err(format!(
                        "Prop 1 fails for same-row {u:?},{v:?}: {shared_affine} affine, {shared_rows} rows"
                    ));
                }
            } else if shared_affine != 1 || shared_rows != 0 {
                return Err(format!(
                    "Prop 1 fails for {u:?},{v:?}: {shared_affine} affine, {shared_rows} rows"
                ));
            }
        }
    }
    Ok(())
}

/// Proposition 2: each item lies on exactly one line `L_{a,·}` for every
/// slope `a`, and on exactly one row line.
///
/// # Errors
///
/// Returns a description of the first violated (item, slope) pair, if any.
pub fn check_proposition_2(g: &Gadget) -> Result<(), String> {
    for item in g.items() {
        for a in 0..g.cols() {
            let count = (0..g.cols())
                .filter(|&b| g.on_line(item, Line::Affine { a, b }))
                .count();
            if count != 1 {
                return Err(format!(
                    "Prop 2 fails: item {item:?} lies on {count} lines of slope {a}"
                ));
            }
        }
        let rows = (0..g.rows())
            .filter(|&c| g.on_line(item, Line::Row { c }))
            .count();
        if rows != 1 {
            return Err(format!(
                "Prop 2 fails: item {item:?} lies on {rows} row lines"
            ));
        }
    }
    Ok(())
}

/// The counting statement of Lemma 8 for an application under `bijection`:
/// `N²` elements of load `M` plus (with rows) `M` elements of load `N`, and
/// every set appearing `N+1` times (with rows) or `N` times (without).
///
/// # Errors
///
/// Returns a description of the first violated count, if any.
pub fn check_lemma_8_counts(
    g: &Gadget,
    bijection: &Bijection,
    with_rows: bool,
) -> Result<(), String> {
    let lines = apply_gadget(g, bijection, with_rows);
    let expected_lines = g.cols() * g.cols() + if with_rows { g.rows() } else { 0 };
    if lines.len() as u64 != expected_lines {
        return Err(format!(
            "expected {expected_lines} elements, got {}",
            lines.len()
        ));
    }
    let mut appearances = vec![0u64; g.item_count() as usize];
    for le in &lines {
        let expected_load = match le.line {
            Line::Affine { .. } => g.rows(),
            Line::Row { .. } => g.cols(),
        };
        if le.members.len() as u64 != expected_load {
            return Err(format!(
                "line {:?} has load {}, expected {expected_load}",
                le.line,
                le.members.len()
            ));
        }
        for &s in &le.members {
            appearances[s] += 1;
        }
    }
    let expected_app = g.cols() + if with_rows { 1 } else { 0 };
    for (s, &a) in appearances.iter().enumerate() {
        if a != expected_app {
            return Err(format!(
                "set {s} appears {a} times, expected {expected_app}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn propositions_hold_across_field_types() {
        // Prime, prime-power even, prime-power odd, full square.
        for (m, n) in [
            (2u64, 2u64),
            (3, 5),
            (4, 4),
            (3, 9),
            (8, 8),
            (5, 11),
            (7, 8),
        ] {
            let g = Gadget::new(m, n).unwrap();
            check_proposition_1(&g).unwrap();
            check_proposition_2(&g).unwrap();
        }
    }

    #[test]
    fn lemma_8_counts_hold() {
        let mut rng = StdRng::seed_from_u64(11);
        for (m, n) in [(2u64, 3u64), (3, 3), (4, 5), (3, 8), (9, 9)] {
            let g = Gadget::new(m, n).unwrap();
            let b = Bijection::random(m, n, &mut rng);
            check_lemma_8_counts(&g, &b, true).unwrap();
            check_lemma_8_counts(&g, &b, false).unwrap();
        }
    }
}
