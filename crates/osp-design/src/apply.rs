//! Applying a gadget to a set collection under a bijection.
//!
//! "Applying a line `L` to `C'` under `µ`" means introducing one OSP element
//! whose members are every set `S ∈ C'` with `µ(S) ∈ L`; "applying the
//! gadget" applies all affine lines (in slope-major order) and then,
//! optionally, the row lines. This module produces those member lists in the
//! paper's arrival order; the adversary crate feeds them into an instance
//! builder.

use crate::bijection::Bijection;
use crate::gadget::{Gadget, Line};

/// One future OSP element: the line it came from and the member sets (as
/// indices local to the collection the bijection covers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineElements {
    /// Which gadget line produced this element.
    pub line: Line,
    /// Collection-local set indices on the line.
    pub members: Vec<usize>,
}

/// Applies `gadget` to the collection placed by `bijection`, yielding one
/// [`LineElements`] per line in the paper's application order: all affine
/// lines `L_{a,b}` (for `a = 0..N`, `b = 0..N`), then — when `with_rows` —
/// the row lines `L_{∞,c}` for `c = 0..M`.
///
/// # Panics
///
/// Panics if the bijection shape does not match the gadget shape.
pub fn apply_gadget(gadget: &Gadget, bijection: &Bijection, with_rows: bool) -> Vec<LineElements> {
    assert_eq!(
        (bijection.rows(), bijection.cols()),
        (gadget.rows(), gadget.cols()),
        "bijection shape must match gadget shape"
    );
    let mut out = Vec::with_capacity(
        (gadget.cols() * gadget.cols() + if with_rows { gadget.rows() } else { 0 }) as usize,
    );
    for line in gadget.affine_lines() {
        out.push(line_elements(gadget, bijection, line));
    }
    if with_rows {
        for line in gadget.row_lines() {
            out.push(line_elements(gadget, bijection, line));
        }
    }
    out
}

fn line_elements(gadget: &Gadget, bijection: &Bijection, line: Line) -> LineElements {
    let members = gadget
        .line_items(line)
        .into_iter()
        .map(|(r, c)| bijection.set_at(r, c))
        .collect();
    LineElements { line, members }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn counts_match_lemma_8() {
        // An (M,N)-gadget application consists of N^2 elements of load M and
        // M elements of load N; each set appears in exactly N+1 elements.
        let (m, n) = (3u64, 5u64);
        let g = Gadget::new(m, n).unwrap();
        let b = Bijection::identity(m, n);
        let lines = apply_gadget(&g, &b, true);
        assert_eq!(lines.len() as u64, n * n + m);
        let affine = lines
            .iter()
            .filter(|l| matches!(l.line, Line::Affine { .. }));
        for l in affine {
            assert_eq!(l.members.len() as u64, m);
        }
        let rows = lines.iter().filter(|l| matches!(l.line, Line::Row { .. }));
        for l in rows {
            assert_eq!(l.members.len() as u64, n);
        }
        // Per-set appearance count.
        let mut appearances = vec![0u64; (m * n) as usize];
        for l in &lines {
            for &s in &l.members {
                appearances[s] += 1;
            }
        }
        assert!(appearances.iter().all(|&a| a == n + 1));
    }

    #[test]
    fn without_rows_each_set_appears_n_times() {
        let (m, n) = (4u64, 4u64);
        let g = Gadget::new(m, n).unwrap();
        let b = Bijection::identity(m, n);
        let lines = apply_gadget(&g, &b, false);
        assert_eq!(lines.len() as u64, n * n);
        let mut appearances = vec![0u64; (m * n) as usize];
        for l in &lines {
            for &s in &l.members {
                appearances[s] += 1;
            }
        }
        assert!(appearances.iter().all(|&a| a == n));
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // triangular matrix sweep reads clearer indexed
    fn any_two_sets_meet_exactly_once_with_rows() {
        let (m, n) = (3u64, 4u64);
        let g = Gadget::new(m, n).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let b = Bijection::random(m, n, &mut rng);
        let lines = apply_gadget(&g, &b, true);
        let size = (m * n) as usize;
        let mut meet = vec![vec![0u32; size]; size];
        for l in &lines {
            for (x, &s1) in l.members.iter().enumerate() {
                for &s2 in &l.members[x + 1..] {
                    meet[s1][s2] += 1;
                    meet[s2][s1] += 1;
                }
            }
        }
        for s1 in 0..size {
            for s2 in 0..size {
                if s1 != s2 {
                    assert_eq!(meet[s1][s2], 1, "sets {s1},{s2} meet {}", meet[s1][s2]);
                }
            }
        }
    }

    #[test]
    fn without_rows_same_row_sets_never_meet() {
        let (m, n) = (3u64, 5u64);
        let g = Gadget::new(m, n).unwrap();
        let b = Bijection::identity(m, n);
        let lines = apply_gadget(&g, &b, false);
        for r in 0..m {
            let row = b.row_sets(r);
            for l in &lines {
                let hits = l.members.iter().filter(|s| row.contains(s)).count();
                assert!(hits <= 1, "row {r} has two sets on line {:?}", l.line);
            }
        }
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn shape_mismatch_panics() {
        let g = Gadget::new(2, 3).unwrap();
        let b = Bijection::identity(3, 3);
        let _ = apply_gadget(&g, &b, true);
    }
}
