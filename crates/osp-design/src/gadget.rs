//! The `(M,N)`-gadget itself: items, lines, and incidence queries.

use std::fmt;

use osp_gf::{Gf, GfError};

/// An item of the gadget: the pair `(row, col)` with `row ∈ F_M` and
/// `col ∈ F`, both encoded as integers (`row < M`, `col < N`).
pub type Item = (u64, u64);

/// Error constructing a gadget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GadgetError {
    /// `N` must be a prime power to carry the field structure.
    NotPrimePower(u64),
    /// `M` must satisfy `1 ≤ M ≤ N`.
    BadRowCount {
        /// The offending `M`.
        m: u64,
        /// The field order `N`.
        n: u64,
    },
}

impl fmt::Display for GadgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GadgetError::NotPrimePower(n) => {
                write!(f, "gadget order {n} is not a prime power")
            }
            GadgetError::BadRowCount { m, n } => {
                write!(f, "gadget row count {m} must be in 1..={n}")
            }
        }
    }
}

impl std::error::Error for GadgetError {}

impl From<GfError> for GadgetError {
    fn from(e: GfError) -> Self {
        match e {
            GfError::NotPrimePower(q) => GadgetError::NotPrimePower(q),
            GfError::TooLarge(q) => GadgetError::NotPrimePower(q),
        }
    }
}

/// A line of the gadget, in the order the paper applies them: all affine
/// lines `L_{a,b}` (grouped by slope `a`), then the rows `L_{∞,c}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Line {
    /// `L_{a,b} = {(i, j) : j = a·i + b}` — one item per row, `M` in total.
    Affine {
        /// Slope `a ∈ F`.
        a: u64,
        /// Intercept `b ∈ F`.
        b: u64,
    },
    /// `L_{∞,c} = {c} × F` — all `N` items of row `c`.
    Row {
        /// Row index `c ∈ F_M`.
        c: u64,
    },
}

/// The `(M,N)`-gadget of §4.2.1. `F_M` is fixed to `{0, 1, …, M−1}` under
/// the field's canonical element encoding; any `M`-subset satisfies the
/// paper's propositions, and fixing it keeps constructions deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gadget {
    m: u64,
    n: u64,
    field: Gf,
}

impl Gadget {
    /// Creates an `(M,N)`-gadget.
    ///
    /// # Errors
    ///
    /// Returns an error if `n` is not a prime power or `m ∉ 1..=n`.
    pub fn new(m: u64, n: u64) -> Result<Self, GadgetError> {
        let field = Gf::new(n)?;
        if m == 0 || m > n {
            return Err(GadgetError::BadRowCount { m, n });
        }
        Ok(Gadget { m, n, field })
    }

    /// Number of rows `M`.
    pub fn rows(&self) -> u64 {
        self.m
    }

    /// Field order / columns `N`.
    pub fn cols(&self) -> u64 {
        self.n
    }

    /// Total number of items `M·N`.
    pub fn item_count(&self) -> u64 {
        self.m * self.n
    }

    /// The underlying field `GF(N)`.
    pub fn field(&self) -> &Gf {
        &self.field
    }

    /// Iterates over all items in row-major order.
    pub fn items(&self) -> impl Iterator<Item = Item> + '_ {
        (0..self.m).flat_map(move |i| (0..self.n).map(move |j| (i, j)))
    }

    /// The items on a line. Affine lines have `M` items (one per row); rows
    /// have `N` items.
    pub fn line_items(&self, line: Line) -> Vec<Item> {
        match line {
            Line::Affine { a, b } => (0..self.m)
                .map(|i| (i, self.field.affine(a, i, b)))
                .collect(),
            Line::Row { c } => (0..self.n).map(|j| (c, j)).collect(),
        }
    }

    /// Whether `item` lies on `line`.
    pub fn on_line(&self, item: Item, line: Line) -> bool {
        let (i, j) = item;
        match line {
            Line::Affine { a, b } => self.field.affine(a, i, b) == j,
            Line::Row { c } => i == c,
        }
    }

    /// All affine lines, in the paper's application order (`a` outer, `b`
    /// inner).
    pub fn affine_lines(&self) -> impl Iterator<Item = Line> + '_ {
        (0..self.n).flat_map(move |a| (0..self.n).map(move |b| Line::Affine { a, b }))
    }

    /// All row lines `L_{∞,c}`, `c ∈ F_M`.
    pub fn row_lines(&self) -> impl Iterator<Item = Line> + '_ {
        (0..self.m).map(|c| Line::Row { c })
    }

    /// All lines in application order: affine lines first, then rows.
    pub fn lines(&self) -> impl Iterator<Item = Line> + '_ {
        self.affine_lines().chain(self.row_lines())
    }

    /// The affine lines passing through both items (Proposition 1 says there
    /// is exactly one when the items are in different rows, none when they
    /// share a row).
    pub fn affine_lines_through(&self, u: Item, v: Item) -> Vec<Line> {
        let (i1, j1) = u;
        let (i2, j2) = v;
        let f = &self.field;
        if i1 == i2 {
            return Vec::new();
        }
        // Solve j1 = a·i1 + b, j2 = a·i2 + b for (a, b).
        let di = f.sub(i1, i2);
        let dj = f.sub(j1, j2);
        let a = f
            .div(dj, di)
            .expect("distinct rows give nonzero row difference");
        let b = f.sub(j1, f.mul(a, i1));
        vec![Line::Affine { a, b }]
    }
}

impl fmt::Display for Gadget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})-gadget over {}", self.m, self.n, self.field)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_bounds() {
        assert!(Gadget::new(3, 5).is_ok());
        assert!(Gadget::new(5, 5).is_ok());
        assert_eq!(
            Gadget::new(6, 5).unwrap_err(),
            GadgetError::BadRowCount { m: 6, n: 5 }
        );
        assert_eq!(
            Gadget::new(0, 5).unwrap_err(),
            GadgetError::BadRowCount { m: 0, n: 5 }
        );
        assert_eq!(
            Gadget::new(2, 6).unwrap_err(),
            GadgetError::NotPrimePower(6)
        );
    }

    #[test]
    fn line_sizes() {
        let g = Gadget::new(3, 4).unwrap(); // GF(4)
        for line in g.affine_lines() {
            assert_eq!(g.line_items(line).len(), 3);
        }
        for line in g.row_lines() {
            assert_eq!(g.line_items(line).len(), 4);
        }
        assert_eq!(g.lines().count() as u64, 4 * 4 + 3);
    }

    #[test]
    fn items_on_their_lines() {
        let g = Gadget::new(4, 5).unwrap();
        for line in g.lines() {
            for item in g.line_items(line) {
                assert!(g.on_line(item, line));
            }
        }
    }

    #[test]
    fn affine_line_through_two_items_is_unique_brute_force() {
        let g = Gadget::new(3, 4).unwrap();
        let items: Vec<Item> = g.items().collect();
        for &u in &items {
            for &v in &items {
                if u == v {
                    continue;
                }
                let brute: Vec<Line> = g
                    .affine_lines()
                    .filter(|&l| g.on_line(u, l) && g.on_line(v, l))
                    .collect();
                let fast = g.affine_lines_through(u, v);
                if u.0 == v.0 {
                    assert!(brute.is_empty(), "{u:?} {v:?} share a row");
                    assert!(fast.is_empty());
                } else {
                    assert_eq!(brute.len(), 1, "{u:?} {v:?}");
                    assert_eq!(fast, brute);
                }
            }
        }
    }

    #[test]
    fn each_item_on_one_line_per_slope() {
        let g = Gadget::new(5, 7).unwrap();
        for item in g.items() {
            for a in 0..7 {
                let count = (0..7)
                    .filter(|&b| g.on_line(item, Line::Affine { a, b }))
                    .count();
                assert_eq!(count, 1, "item {item:?} slope {a}");
            }
            let rows = (0..5).filter(|&c| g.on_line(item, Line::Row { c })).count();
            assert_eq!(rows, 1);
        }
    }

    #[test]
    fn display_formats() {
        let g = Gadget::new(2, 9).unwrap();
        assert_eq!(g.to_string(), "(2,9)-gadget over GF(3^2)");
    }
}
