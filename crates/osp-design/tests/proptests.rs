//! Property-based tests: gadget propositions across random shapes.

use proptest::prelude::*;

use osp_design::{apply_gadget, verify, Bijection, Gadget, Line};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Valid (m, n) gadget shapes with n a small prime power.
fn shapes() -> impl Strategy<Value = (u64, u64)> {
    proptest::sample::select(vec![2u64, 3, 4, 5, 7, 8, 9])
        .prop_flat_map(|n| (1..=n).prop_map(move |m| (m, n)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn propositions_hold_for_every_shape((m, n) in shapes()) {
        let g = Gadget::new(m, n).unwrap();
        prop_assert!(verify::check_proposition_1(&g).is_ok());
        prop_assert!(verify::check_proposition_2(&g).is_ok());
    }

    #[test]
    fn lemma_8_counts_hold_under_random_bijections((m, n) in shapes(), seed in 0u64..1000) {
        let g = Gadget::new(m, n).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let b = Bijection::random(m, n, &mut rng);
        prop_assert!(b.is_consistent());
        prop_assert!(verify::check_lemma_8_counts(&g, &b, true).is_ok());
        prop_assert!(verify::check_lemma_8_counts(&g, &b, false).is_ok());
    }

    #[test]
    fn any_two_sets_meet_at_most_once_without_rows((m, n) in shapes(), seed in 0u64..1000) {
        let g = Gadget::new(m, n).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let b = Bijection::random(m, n, &mut rng);
        let lines = apply_gadget(&g, &b, false);
        let size = (m * n) as usize;
        let mut meet = vec![0u32; size * size];
        for le in &lines {
            for (i, &s1) in le.members.iter().enumerate() {
                for &s2 in &le.members[i + 1..] {
                    meet[s1 * size + s2] += 1;
                    prop_assert!(meet[s1 * size + s2] <= 1, "{s1},{s2} meet twice");
                }
            }
        }
    }

    #[test]
    fn affine_line_solver_agrees_with_membership((m, n) in shapes(), a in 0u64..9, b in 0u64..9) {
        let g = Gadget::new(m, n).unwrap();
        let (a, b) = (a % n, b % n);
        let line = Line::Affine { a, b };
        let items = g.line_items(line);
        prop_assert_eq!(items.len() as u64, m);
        for item in items {
            prop_assert!(g.on_line(item, line));
            // The unique-line solver must recover this line for any other
            // item of the line in a different row.
            for other in g.line_items(line) {
                if other.0 != item.0 {
                    let found = g.affine_lines_through(item, other);
                    prop_assert_eq!(found, vec![line]);
                }
            }
        }
    }

    #[test]
    fn concat_with_row_perms_is_consistent(
        seed in 0u64..1000,
        blocks in 1usize..4,
        m in 1u64..5,
        n in 1u64..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = Bijection::identity(m, n);
        let refs: Vec<&Bijection> = (0..blocks).map(|_| &base).collect();
        let offsets: Vec<usize> = (0..blocks).map(|i| i * (m * n) as usize).collect();
        let cat = Bijection::concat_with_row_perms(&refs, &offsets, &mut rng);
        prop_assert!(cat.is_consistent());
        prop_assert_eq!(cat.rows(), m);
        prop_assert_eq!(cat.cols(), n * blocks as u64);
        // Sets sharing a row in a block still share a row after concat.
        for &offset in &offsets {
            for r in 0..m {
                let rows: std::collections::HashSet<u64> = (0..n)
                    .map(|c| {
                        let local = base.set_at(r, c);
                        cat.position_of(offset + local).0
                    })
                    .collect();
                prop_assert_eq!(rows.len(), 1);
            }
        }
    }
}
