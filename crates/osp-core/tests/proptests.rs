//! Property-based tests of the core model, priorities and algorithms.

use proptest::prelude::*;

use osp_core::gen::{
    biregular_instance, fixed_size_instance, random_instance, RandomInstanceConfig,
};
use osp_core::prelude::*;
use osp_core::priority::{Priority, Rw};
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    // ---------------- R_w distribution ----------------

    #[test]
    fn rw_cdf_quantile_round_trip(w in 0.01f64..100.0, u in 0.0f64..1.0) {
        let rw = Rw::new(w).unwrap();
        let x = rw.quantile(u);
        prop_assert!((0.0..=1.0).contains(&x));
        prop_assert!((rw.cdf(x) - u).abs() < 1e-9);
    }

    #[test]
    fn rw_cdf_is_monotone(w in 0.01f64..50.0, a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let rw = Rw::new(w).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(rw.cdf(lo) <= rw.cdf(hi) + 1e-12);
    }

    #[test]
    fn rw_stochastic_dominance_in_weight(
        w1 in 0.1f64..20.0,
        delta in 0.1f64..20.0,
        x in 0.001f64..0.999,
    ) {
        // Heavier weight => smaller CDF at every point (larger samples).
        let light = Rw::new(w1).unwrap();
        let heavy = Rw::new(w1 + delta).unwrap();
        prop_assert!(heavy.cdf(x) <= light.cdf(x) + 1e-12);
    }

    #[test]
    fn priority_order_is_total_and_antisymmetric(
        v1 in 0.0f64..1.0, t1 in 0u64..100,
        v2 in 0.0f64..1.0, t2 in 0u64..100,
    ) {
        let a = Priority::new(v1, t1);
        let b = Priority::new(v2, t2);
        let ab = a.cmp(&b);
        let ba = b.cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
        if ab == std::cmp::Ordering::Equal {
            prop_assert_eq!((v1, t1), (v2, t2));
        }
    }

    // ---------------- builder validation ----------------

    #[test]
    fn builder_accepts_consistent_and_rejects_mismatched_sizes(
        sizes in proptest::collection::vec(1u32..4, 1..6),
        lie in 0usize..6,
    ) {
        // Build an instance where set i gets exactly sizes[i] private
        // elements; optionally misdeclare one size.
        let mut b = InstanceBuilder::new();
        let lying = lie < sizes.len();
        let ids: Vec<SetId> = sizes
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                let declared = if lying && i == lie { k + 1 } else { k };
                b.add_set(1.0, declared)
            })
            .collect();
        for (i, &k) in sizes.iter().enumerate() {
            for _ in 0..k {
                b.add_element(1, &[ids[i]]);
            }
        }
        match b.build() {
            Ok(inst) => {
                prop_assert!(!lying);
                prop_assert_eq!(inst.num_sets(), sizes.len());
            }
            Err(e) => {
                prop_assert!(lying, "unexpected error {e}");
                let is_mismatch = matches!(e, Error::SizeMismatch { .. });
                prop_assert!(is_mismatch);
            }
        }
    }

    // ---------------- generators ----------------

    #[test]
    fn biregular_degrees_are_exact(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = biregular_instance(12, 4, 3, &mut rng).unwrap();
        let st = InstanceStats::compute(&inst);
        prop_assert_eq!(st.uniform_size, Some(4));
        prop_assert_eq!(st.uniform_load, Some(3));
    }

    #[test]
    fn fixed_size_generator_keeps_k_uniform(
        seed in 0u64..200,
        skew in 0.0f64..2.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = fixed_size_instance(20, 3, 40, skew, &mut rng).unwrap();
        let st = InstanceStats::compute(&inst);
        prop_assert_eq!(st.uniform_size, Some(3));
        // Incidence identity m·k = n·σ̄ holds.
        prop_assert!((st.m as f64 * st.k_mean - st.n as f64 * st.sigma_mean).abs() < 1e-6);
    }

    // ---------------- order invariance (the theory property) ----------------

    #[test]
    fn randpr_outcome_is_invariant_under_arrival_order(
        gen_seed in 0u64..100,
        alg_seed in 0u64..100,
        shuffle_seed in 0u64..100,
    ) {
        // randPr draws one priority per set up front and its completion
        // condition ("top-b at every element of S") has no notion of time,
        // so for a fixed seed the completed family cannot depend on the
        // arrival order. Greedy baselines do NOT have this property.
        let mut rng = StdRng::seed_from_u64(gen_seed);
        let cfg = RandomInstanceConfig::unweighted(15, 30, 3);
        let inst = random_instance(&cfg, &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(shuffle_seed);
        let shuffled = inst.shuffle_arrivals(&mut rng);

        let a = run(&inst, &mut RandPr::from_seed(alg_seed)).unwrap();
        let b = run(&shuffled, &mut RandPr::from_seed(alg_seed)).unwrap();
        prop_assert_eq!(a.completed(), b.completed());

        let a = run(&inst, &mut HashRandPr::new(8, alg_seed)).unwrap();
        let b = run(&shuffled, &mut HashRandPr::new(8, alg_seed)).unwrap();
        prop_assert_eq!(a.completed(), b.completed());
    }

    #[test]
    fn shuffled_instance_preserves_structure(
        gen_seed in 0u64..100,
        shuffle_seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(gen_seed);
        let cfg = RandomInstanceConfig::unweighted(10, 25, 3);
        let inst = random_instance(&cfg, &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(shuffle_seed);
        let shuffled = inst.shuffle_arrivals(&mut rng);
        let a = InstanceStats::compute(&inst);
        let b = InstanceStats::compute(&shuffled);
        prop_assert_eq!(a.n, b.n);
        prop_assert_eq!(a.m, b.m);
        prop_assert_eq!(a.sigma_max, b.sigma_max);
        prop_assert!((a.sigma_mean - b.sigma_mean).abs() < 1e-12);
        prop_assert_eq!(a.uniform_size, b.uniform_size);
    }

    // ---------------- oracle round trip ----------------

    #[test]
    fn oracle_replays_randpr_outcomes(gen_seed in 0u64..100, alg_seed in 0u64..100) {
        // Whatever randPr completed is a feasible packing; the oracle must
        // reproduce it exactly through the engine.
        let mut rng = StdRng::seed_from_u64(gen_seed);
        let cfg = RandomInstanceConfig::unweighted(12, 25, 3);
        let inst = random_instance(&cfg, &mut rng).unwrap();
        let out = run(&inst, &mut RandPr::from_seed(alg_seed)).unwrap();
        let replay = run(&inst, &mut OracleOnline::new(out.completed().to_vec())).unwrap();
        prop_assert_eq!(replay.completed(), out.completed());
        prop_assert!((replay.benefit() - out.benefit()).abs() < 1e-12);
    }
}
