//! Length-prefixed frame protocol for job specs and outcomes.
//!
//! The distributed replay pool talks to its workers over byte streams
//! (today: pipes to `osp-worker` processes; tomorrow: sockets). Framing is
//! deliberately minimal and self-describing:
//!
//! ```text
//! frame   := length payload
//! length  := u32, little-endian, number of payload bytes (≤ 64 MiB)
//! payload := one JSON message (serde_json over the vendored stub)
//! ```
//!
//! * parent → worker: each frame is one [`JobSpec`];
//! * worker → parent: each frame is one [`reply`] — `{"ok": Outcome}` or
//!   `{"err": "message"}` — in the same order the jobs arrived.
//!
//! A clean end-of-stream *between* frames is the normal shutdown signal
//! ([`read_frame`] returns `None`); anything else — a truncated length or
//! payload, an oversized length, a payload that does not decode — is a
//! hard [`Error::Protocol`], never a panic (pinned by the
//! `wire_round_trip` proptest suite).
//!
//! [`serve`] is the worker side of the contract: a loop that reads job
//! frames, replays each spec through a [`SpecResolver`] with scratch
//! reuse, and answers with outcome frames. The `osp-worker` binary is a
//! thin `main` around it, and `examples/distributed_replay.rs` embeds it
//! behind a `--worker` flag.

use std::io::{Read, Write};

use serde::{Deserialize, Serialize};

use crate::engine::batch::ReplayScratch;
use crate::engine::Outcome;
use crate::error::Error;
use crate::spec::{run_spec_with_scratch, JobSpec, SpecResolver};

/// Hard upper bound on a frame payload (64 MiB). Real messages are far
/// smaller; the cap is what turns a garbage length prefix into a clean
/// [`Error::Protocol`] instead of an absurd allocation.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Writes one frame: little-endian `u32` payload length, then the payload.
///
/// # Errors
///
/// [`Error::Protocol`] if the payload exceeds [`MAX_FRAME_LEN`] or the
/// underlying writer fails.
pub fn write_frame<W: Write + ?Sized>(writer: &mut W, payload: &[u8]) -> Result<(), Error> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(Error::Protocol(format!(
            "frame of {} bytes exceeds the {MAX_FRAME_LEN}-byte cap",
            payload.len()
        )));
    }
    let len = (payload.len() as u32).to_le_bytes();
    writer
        .write_all(&len)
        .and_then(|()| writer.write_all(payload))
        .map_err(|e| Error::Protocol(format!("writing frame: {e}")))
}

/// Reads one frame's payload; `Ok(None)` on a clean end-of-stream at a
/// frame boundary.
///
/// # Errors
///
/// [`Error::Protocol`] on a truncated length prefix, a length above
/// [`MAX_FRAME_LEN`], or a payload shorter than its declared length.
pub fn read_frame<R: Read + ?Sized>(reader: &mut R) -> Result<Option<Vec<u8>>, Error> {
    let mut len = [0u8; 4];
    // A clean EOF before any length byte ends the stream; EOF *inside*
    // the prefix is a truncation.
    let mut filled = 0usize;
    while filled < len.len() {
        match reader.read(&mut len[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(Error::Protocol(format!(
                    "truncated frame: {filled} of 4 length bytes"
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(Error::Protocol(format!("reading frame length: {e}"))),
        }
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_LEN {
        return Err(Error::Protocol(format!(
            "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap"
        )));
    }
    let mut payload = vec![0u8; len];
    reader
        .read_exact(&mut payload)
        .map_err(|e| Error::Protocol(format!("truncated frame payload ({len} bytes): {e}")))?;
    Ok(Some(payload))
}

/// Serializes a message and writes it as one frame.
///
/// # Errors
///
/// [`Error::Protocol`] on serialization or I/O failure.
pub fn write_message<W: Write + ?Sized, T: Serialize>(
    writer: &mut W,
    message: &T,
) -> Result<(), Error> {
    let json =
        serde_json::to_string(message).map_err(|e| Error::Protocol(format!("encoding: {e}")))?;
    write_frame(writer, json.as_bytes())
}

/// Reads one frame and deserializes it; `Ok(None)` on clean end-of-stream.
///
/// # Errors
///
/// [`Error::Protocol`] on framing, UTF-8 or decode failure.
pub fn read_message<R: Read + ?Sized, T: Deserialize>(reader: &mut R) -> Result<Option<T>, Error> {
    let Some(payload) = read_frame(reader)? else {
        return Ok(None);
    };
    let text = std::str::from_utf8(&payload)
        .map_err(|e| Error::Protocol(format!("frame payload is not UTF-8: {e}")))?;
    serde_json::from_str(text)
        .map(Some)
        .map_err(|e| Error::Protocol(format!("decoding frame: {e}")))
}

/// The worker→parent message: one job's result.
pub mod reply {
    use super::*;

    /// Wire envelope for `Result<Outcome, Error>` (errors cross the
    /// boundary as display text; see [`decode`]).
    #[derive(Debug, Clone, PartialEq)]
    pub struct Reply {
        /// The outcome, when the job succeeded.
        pub ok: Option<Outcome>,
        /// The error message, when it failed.
        pub err: Option<String>,
    }

    impl Serialize for Reply {
        fn to_value(&self) -> serde::Value {
            match (&self.ok, &self.err) {
                (Some(outcome), _) => {
                    serde::Value::Map(vec![("ok".to_string(), outcome.to_value())])
                }
                (None, Some(err)) => {
                    serde::Value::Map(vec![("err".to_string(), serde::Value::Str(err.clone()))])
                }
                (None, None) => serde::Value::Map(vec![(
                    "err".to_string(),
                    serde::Value::Str("empty reply".to_string()),
                )]),
            }
        }
    }

    impl Deserialize for Reply {
        fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
            if let Ok(ok) = serde::get_field(value, "ok") {
                return Ok(Reply {
                    ok: Some(Outcome::from_value(ok)?),
                    err: None,
                });
            }
            let err = String::from_value(serde::get_field(value, "err")?)?;
            Ok(Reply {
                ok: None,
                err: Some(err),
            })
        }
    }

    /// Wraps a job result for the wire.
    pub fn encode(result: &Result<Outcome, Error>) -> Reply {
        match result {
            Ok(outcome) => Reply {
                ok: Some(outcome.clone()),
                err: None,
            },
            Err(e) => Reply {
                ok: None,
                err: Some(e.to_string()),
            },
        }
    }

    /// Unwraps a wire reply. A structured engine error does not survive
    /// the boundary typed; it comes back as [`Error::Worker`] carrying
    /// the original display text.
    pub fn decode(reply: Reply) -> Result<Outcome, Error> {
        match reply {
            Reply { ok: Some(o), .. } => Ok(o),
            Reply { err: Some(e), .. } => Err(Error::Worker(e)),
            Reply {
                ok: None,
                err: None,
            } => Err(Error::Protocol("empty reply".into())),
        }
    }
}

/// The worker loop: reads [`JobSpec`] frames from `reader` until clean
/// end-of-stream, replays each through `resolver` (reusing one
/// [`ReplayScratch`] across jobs, exactly like a thread shard), and
/// writes one [`reply`] frame per job to `writer`, flushed immediately so
/// the parent can consume results as they stream.
///
/// Per-job failures (unsupported spec, invalid decision) are *answered*,
/// not fatal: the worker stays up for the next job.
///
/// # Errors
///
/// [`Error::Protocol`] if the input stream itself is malformed or the
/// output pipe breaks — the conditions under which a worker cannot
/// meaningfully continue.
pub fn serve<R, In, Out>(resolver: &R, reader: &mut In, writer: &mut Out) -> Result<(), Error>
where
    R: SpecResolver + ?Sized,
    In: Read + ?Sized,
    Out: Write + ?Sized,
{
    let mut scratch = ReplayScratch::new();
    while let Some(job) = read_message::<_, JobSpec>(reader)? {
        let result = run_spec_with_scratch(&job, resolver, &mut scratch);
        write_message(writer, &reply::encode(&result))?;
        writer
            .flush()
            .map_err(|e| Error::Protocol(format!("flushing reply: {e}")))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::RandomInstanceConfig;
    use crate::spec::{AlgorithmSpec, CoreResolver, ScenarioSpec};
    use std::io::Cursor;

    fn job(seed: u64) -> JobSpec {
        JobSpec {
            scenario: ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(15, 40, 3)),
            algorithm: AlgorithmSpec::RandPr,
            seed,
        }
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"world").unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"world");
        assert!(read_frame(&mut cursor).unwrap().is_none());
        // Exhausted stays exhausted.
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn truncated_and_oversized_frames_error_cleanly() {
        // EOF inside the length prefix.
        let mut cursor = Cursor::new(vec![5u8, 0]);
        assert!(matches!(read_frame(&mut cursor), Err(Error::Protocol(_))));
        // EOF inside the payload.
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)),
            Err(Error::Protocol(_))
        ));
        // Garbage length prefix above the cap.
        let mut cursor = Cursor::new(0xFFFF_FFFFu32.to_le_bytes().to_vec());
        assert!(matches!(read_frame(&mut cursor), Err(Error::Protocol(_))));
        // Oversized write is refused before touching the stream.
        struct NoWrite;
        impl Write for NoWrite {
            fn write(&mut self, _b: &[u8]) -> std::io::Result<usize> {
                panic!("must not write")
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let huge = vec![0u8; MAX_FRAME_LEN + 1];
        assert!(matches!(
            write_frame(&mut NoWrite, &huge),
            Err(Error::Protocol(_))
        ));
    }

    #[test]
    fn non_json_payload_is_a_protocol_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"\x00\xFFnot json").unwrap();
        assert!(matches!(
            read_message::<_, JobSpec>(&mut Cursor::new(buf)),
            Err(Error::Protocol(_))
        ));
    }

    #[test]
    fn serve_answers_every_job_in_order() {
        let mut input = Vec::new();
        let jobs: Vec<JobSpec> = (0..4).map(job).collect();
        for j in &jobs {
            write_message(&mut input, j).unwrap();
        }
        let mut output = Vec::new();
        serve(&CoreResolver, &mut Cursor::new(input), &mut output).unwrap();
        let mut cursor = Cursor::new(output);
        for j in &jobs {
            let r: reply::Reply = read_message(&mut cursor)
                .unwrap()
                .expect("one reply per job");
            let got = reply::decode(r).unwrap();
            let want = crate::spec::run_spec(j, &CoreResolver).unwrap();
            assert_eq!(got, want, "seed {}", j.seed);
        }
        assert!(read_message::<_, reply::Reply>(&mut cursor)
            .unwrap()
            .is_none());
    }

    #[test]
    fn serve_reports_per_job_failures_and_continues() {
        let mut input = Vec::new();
        let bad = JobSpec {
            scenario: ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(2, 5, 4)),
            algorithm: AlgorithmSpec::RandPr,
            seed: 0,
        };
        write_message(&mut input, &bad).unwrap();
        write_message(&mut input, &job(1)).unwrap();
        let mut output = Vec::new();
        serve(&CoreResolver, &mut Cursor::new(input), &mut output).unwrap();
        let mut cursor = Cursor::new(output);
        let first = reply::decode(read_message(&mut cursor).unwrap().unwrap());
        assert!(matches!(first, Err(Error::Worker(_))));
        let second = reply::decode(read_message(&mut cursor).unwrap().unwrap());
        assert!(second.is_ok());
    }

    #[test]
    fn malformed_input_stream_stops_serve() {
        let mut input = Vec::new();
        write_frame(&mut input, b"{\"not\": \"a job\"}").unwrap();
        let mut output = Vec::new();
        assert!(matches!(
            serve(&CoreResolver, &mut Cursor::new(input), &mut output),
            Err(Error::Protocol(_))
        ));
    }

    #[test]
    fn outcome_survives_the_wire_bit_for_bit() {
        let want = crate::spec::run_spec(&job(9), &CoreResolver).unwrap();
        let mut buf = Vec::new();
        write_message(&mut buf, &reply::encode(&Ok(want.clone()))).unwrap();
        let got: reply::Reply = read_message(&mut Cursor::new(buf)).unwrap().unwrap();
        let got = reply::decode(got).unwrap();
        assert_eq!(got.completed(), want.completed());
        assert_eq!(got.benefit().to_bits(), want.benefit().to_bits());
        assert_eq!(got.decisions(), want.decisions());
        assert_eq!(got, want);
    }
}
