//! Crash-safe result persistence for the replay service.
//!
//! The replay server's content-addressed cache ([`job_digest`] →
//! [`Outcome`]) lived purely in RAM through PR 7 — a crash lost every
//! computed outcome and the map grew without bound until shutdown. This
//! module closes both residuals behind one seam:
//!
//! * [`ResultStore`] — the storage trait the service talks to. `get` and
//!   `put` by digest, plus the observability counters surfaced in
//!   [`BatchStatus`](crate::serve::BatchStatus) (entry count, live bytes,
//!   evictions).
//! * [`MemStore`] — the in-memory implementation, now bounded: an
//!   entry-count cap and a byte cap with LRU eviction
//!   ([`StoreLimits`]), so a long-running server without `--state-dir`
//!   holds a working set, not an unbounded history.
//! * [`JournalStore`] — a [`MemStore`] mirrored to disk. Every `put`
//!   appends one length-prefixed, checksummed record (the framed-wire
//!   codec of [`wire`](crate::wire): `u32`-LE length, then an 8-byte
//!   FNV-1a checksum over the payload, then the record's canonical JSON)
//!   to `journal.osp` and flushes, so the OS page cache — which survives
//!   `kill -9` — holds the bytes even if the process dies mid-batch.
//!
//! # Recovery discipline
//!
//! Opening a [`JournalStore`] replays `snapshot.osp` (if present) then
//! `journal.osp`. A record that is *complete but bad* — checksum
//! mismatch, undecodable JSON, a bit flip anywhere in the payload — is
//! skipped and recorded as a typed [`Error::Corrupt`] with its byte
//! offset; recovery never panics and keeps every record that survives. A
//! record that is *incomplete* (the torn tail of a crashed append, or a
//! length field pointing past [`MAX_FRAME_LEN`]) truncates the journal
//! back to the last good record boundary, so the next append starts on a
//! clean frame.
//!
//! # Compaction
//!
//! The journal is append-only, so re-`put`s and evicted entries leave
//! stale bytes behind. When the journal grows past a floor *and* past 4×
//! the live working set, the store compacts: the live entries are written
//! (in LRU order, oldest first, so recency survives a restart) to
//! `snapshot.tmp`, atomically renamed over `snapshot.osp`, and the
//! journal is truncated to zero. A crash anywhere in that sequence leaves
//! either the old snapshot + full journal or the new snapshot + journal
//! tail — never a half-written snapshot in play.
//!
//! [`job_digest`]: crate::serve::job_digest
//! [`MAX_FRAME_LEN`]: crate::wire::MAX_FRAME_LEN

use std::collections::{HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::engine::Outcome;
use crate::error::Error;
use crate::wire::MAX_FRAME_LEN;

/// FNV-1a 64-bit prime (same constants as [`job_digest`]'s lanes — the
/// checksum is one lane over the record payload).
///
/// [`job_digest`]: crate::serve::job_digest
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// The standard FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Capacity bounds for a result store. `0` means unlimited on that axis.
///
/// Both axes are enforced on every insert with LRU eviction: the least
/// recently *touched* (`get` or `put`) entry goes first. The byte axis
/// counts each entry as its canonical-JSON length plus the 16-byte
/// digest, i.e. roughly what the entry costs in a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreLimits {
    /// Maximum live entries (0 = unlimited).
    pub max_entries: usize,
    /// Maximum live bytes (0 = unlimited).
    pub max_bytes: u64,
}

impl Default for StoreLimits {
    /// 4096 entries / 64 MiB — generous for a replay cache of
    /// [`Outcome`]s, small enough that a week-long server stays flat.
    fn default() -> Self {
        StoreLimits::DEFAULT
    }
}

impl StoreLimits {
    /// No caps on either axis — the pre-PR-8 unbounded behaviour, kept
    /// for tests that assert on exact entry counts.
    pub const UNBOUNDED: StoreLimits = StoreLimits {
        max_entries: 0,
        max_bytes: 0,
    };

    /// The [`Default`] limits as a `const` (4096 entries / 64 MiB), so
    /// other defaults can reference them in const position.
    pub const DEFAULT: StoreLimits = StoreLimits {
        max_entries: 4096,
        max_bytes: 64 << 20,
    };
}

/// Storage seam between [`ReplayService`](crate::serve::ReplayService)
/// and its results cache: content-addressed `get`/`put` plus the
/// counters the service surfaces in batch status.
///
/// `get` takes `&mut self` because a lookup is a *touch* — it moves the
/// entry to the back of the LRU queue.
pub trait ResultStore: Send {
    /// Look up a cached outcome, marking it most-recently-used.
    fn get(&mut self, digest: (u64, u64)) -> Option<Outcome>;
    /// Insert (or overwrite) an outcome, evicting LRU entries if a cap
    /// is exceeded. Outcomes that fail to serialize are dropped silently
    /// — the cache is an optimisation, a lost insert only costs a future
    /// recompute.
    fn put(&mut self, digest: (u64, u64), outcome: &Outcome);
    /// Live entries.
    fn len(&self) -> usize;
    /// Whether the store holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Live bytes (canonical-JSON length + digest, summed over entries).
    fn bytes(&self) -> u64;
    /// Entries evicted by the LRU caps over the store's lifetime.
    fn evictions(&self) -> u64;
    /// Corrupt records skipped while opening a persistent store (empty
    /// for a memory store).
    fn corrupt(&self) -> &[Error] {
        &[]
    }
    /// Flush buffered writes toward the OS (no-op for a memory store).
    fn flush(&mut self) {}
    /// Backend label for banners and status: `"memory"` / `"journal"`.
    fn kind(&self) -> &'static str;
}

/// One cached outcome plus its LRU bookkeeping.
struct Entry {
    outcome: Outcome,
    /// Canonical-JSON length + 16 digest bytes — the entry's cost
    /// against [`StoreLimits::max_bytes`].
    bytes: u64,
    /// Logical clock of the last touch; pairs with the lazy LRU queue.
    tick: u64,
}

/// The bounded in-memory result store.
///
/// LRU is tracked lazily: every touch pushes `(digest, tick)` onto a
/// queue and stamps the entry with the same tick. Eviction pops from the
/// front and only acts when the popped tick is still the entry's current
/// tick — stale queue entries (from earlier touches) are skipped. Each
/// touch is O(1); the queue is bounded by the number of touches between
/// evictions, and every pop retires one queue slot, so the amortized
/// cost stays constant.
pub struct MemStore {
    limits: StoreLimits,
    entries: HashMap<(u64, u64), Entry>,
    lru: VecDeque<((u64, u64), u64)>,
    bytes: u64,
    evictions: u64,
    tick: u64,
}

impl MemStore {
    /// An empty store with the given caps.
    pub fn new(limits: StoreLimits) -> MemStore {
        MemStore {
            limits,
            entries: HashMap::new(),
            lru: VecDeque::new(),
            bytes: 0,
            evictions: 0,
            tick: 0,
        }
    }

    fn touch(&mut self, digest: (u64, u64)) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self.entries.get_mut(&digest) {
            entry.tick = tick;
        }
        self.lru.push_back((digest, tick));
    }

    /// Pops LRU entries until both caps hold. Returns evicted digests so
    /// [`JournalStore`] can decide whether a compaction is due.
    fn enforce_caps(&mut self) -> u64 {
        let mut evicted = 0;
        while self.over_cap() {
            let Some((digest, tick)) = self.lru.pop_front() else {
                break;
            };
            let live = self
                .entries
                .get(&digest)
                .is_some_and(|entry| entry.tick == tick);
            if live {
                let entry = self.entries.remove(&digest).expect("checked live");
                self.bytes -= entry.bytes;
                self.evictions += 1;
                evicted += 1;
            }
        }
        evicted
    }

    fn over_cap(&self) -> bool {
        (self.limits.max_entries != 0 && self.entries.len() > self.limits.max_entries)
            || (self.limits.max_bytes != 0 && self.bytes > self.limits.max_bytes)
    }

    /// Live entries ordered by last touch, oldest first — the order a
    /// snapshot is written in, so LRU recency survives a restart.
    fn entries_by_tick(&self) -> Vec<((u64, u64), &Outcome)> {
        let mut live: Vec<_> = self.entries.iter().collect();
        live.sort_by_key(|(_, entry)| entry.tick);
        live.into_iter()
            .map(|(digest, entry)| (*digest, &entry.outcome))
            .collect()
    }
}

impl ResultStore for MemStore {
    fn get(&mut self, digest: (u64, u64)) -> Option<Outcome> {
        if !self.entries.contains_key(&digest) {
            return None;
        }
        self.touch(digest);
        self.entries.get(&digest).map(|entry| entry.outcome.clone())
    }

    fn put(&mut self, digest: (u64, u64), outcome: &Outcome) {
        let Ok(json) = serde_json::to_string(outcome) else {
            return;
        };
        let bytes = json.len() as u64 + 16;
        if let Some(old) = self.entries.get(&digest) {
            self.bytes -= old.bytes;
        }
        self.bytes += bytes;
        self.entries.insert(
            digest,
            Entry {
                outcome: outcome.clone(),
                bytes,
                tick: 0,
            },
        );
        self.touch(digest);
        self.enforce_caps();
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn bytes(&self) -> u64 {
        self.bytes
    }

    fn evictions(&self) -> u64 {
        self.evictions
    }

    fn kind(&self) -> &'static str {
        "memory"
    }
}

/// One journal record: the digest lanes plus the outcome, serialized as
/// canonical JSON inside a checksummed frame.
#[derive(Serialize, Deserialize)]
struct Record {
    a: u64,
    b: u64,
    outcome: Outcome,
}

/// Journal grows past this before compaction is even considered.
const COMPACT_FLOOR: u64 = 64 << 10;
/// …and past this multiple of the live working set.
const COMPACT_RATIO: u64 = 4;

/// A [`MemStore`] mirrored to an append-only journal on disk.
///
/// Layout under the state dir: `journal.osp` (the append log) and
/// `snapshot.osp` (the last compaction). See the
/// [module docs](self) for the record format, recovery discipline, and
/// compaction policy.
pub struct JournalStore {
    mem: MemStore,
    dir: PathBuf,
    journal: File,
    journal_bytes: u64,
    corrupt: Vec<Error>,
    compactions: u64,
}

impl JournalStore {
    /// Opens (creating if absent) the store under `dir`, replaying
    /// snapshot + journal into memory and truncating any torn journal
    /// tail left by a crash.
    ///
    /// # Errors
    ///
    /// [`Error::Unavailable`] if the directory or files cannot be
    /// created/read — *corruption* is never an open error, it is
    /// recorded per-record in [`ResultStore::corrupt`].
    pub fn open(dir: &Path, limits: StoreLimits) -> Result<JournalStore, Error> {
        std::fs::create_dir_all(dir).map_err(|e| {
            Error::Unavailable(format!("creating state dir {}: {e}", dir.display()))
        })?;
        let mut mem = MemStore::new(limits);
        let mut corrupt = Vec::new();

        let snapshot_path = dir.join("snapshot.osp");
        if let Ok(bytes) = std::fs::read(&snapshot_path) {
            let scan = scan_records(&bytes);
            for (digest, outcome) in scan.records {
                mem.put(digest, &outcome);
            }
            corrupt.extend(scan.corrupt);
            // A torn snapshot tail (possible only if a pre-rename crash
            // raced something unexpected) is recorded but not truncated:
            // the snapshot is replaced wholesale at the next compaction.
            corrupt.extend(scan.torn);
        }

        let journal_path = dir.join("journal.osp");
        let mut journal = OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(&journal_path)
            .map_err(|e| Error::Unavailable(format!("opening {}: {e}", journal_path.display())))?;
        let mut bytes = Vec::new();
        journal
            .read_to_end(&mut bytes)
            .map_err(|e| Error::Unavailable(format!("reading {}: {e}", journal_path.display())))?;
        let scan = scan_records(&bytes);
        for (digest, outcome) in scan.records {
            mem.put(digest, &outcome);
        }
        corrupt.extend(scan.corrupt);
        let mut journal_bytes = bytes.len() as u64;
        if let Some(err) = scan.torn {
            // The torn tail of a crashed append: cut the journal back to
            // the last good record boundary so the next append starts on
            // a clean frame.
            corrupt.push(err);
            journal
                .set_len(scan.tail_offset)
                .map_err(|e| Error::Unavailable(format!("truncating torn journal tail: {e}")))?;
            journal
                .seek(SeekFrom::End(0))
                .map_err(|e| Error::Unavailable(format!("seeking journal: {e}")))?;
            journal_bytes = scan.tail_offset;
        }

        Ok(JournalStore {
            mem,
            dir: dir.to_path_buf(),
            journal,
            journal_bytes,
            corrupt,
            compactions: 0,
        })
    }

    /// Compactions performed over this handle's lifetime.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Bytes currently in the on-disk journal (not the live set).
    pub fn journal_bytes(&self) -> u64 {
        self.journal_bytes
    }

    fn maybe_compact(&mut self) {
        if self.journal_bytes <= COMPACT_FLOOR
            || self.journal_bytes <= COMPACT_RATIO * self.mem.bytes().max(1)
        {
            return;
        }
        if self.compact().is_err() {
            // Compaction is an optimisation; a failed one leaves the
            // journal intact and correct, just longer than ideal.
        }
    }

    /// Rewrites the live set as `snapshot.osp` (atomically, via a tmp
    /// file + rename) and truncates the journal to zero.
    fn compact(&mut self) -> std::io::Result<()> {
        let tmp = self.dir.join("snapshot.tmp");
        {
            let mut out = File::create(&tmp)?;
            for (digest, outcome) in self.mem.entries_by_tick() {
                if let Some(frame) = encode_record(digest, outcome) {
                    out.write_all(&frame)?;
                }
            }
            out.flush()?;
        }
        std::fs::rename(&tmp, self.dir.join("snapshot.osp"))?;
        self.journal.set_len(0)?;
        self.journal.seek(SeekFrom::End(0))?;
        self.journal_bytes = 0;
        self.compactions += 1;
        Ok(())
    }
}

impl ResultStore for JournalStore {
    fn get(&mut self, digest: (u64, u64)) -> Option<Outcome> {
        self.mem.get(digest)
    }

    fn put(&mut self, digest: (u64, u64), outcome: &Outcome) {
        self.mem.put(digest, outcome);
        if let Some(frame) = encode_record(digest, outcome) {
            if self.journal.write_all(&frame).is_ok() {
                self.journal_bytes += frame.len() as u64;
                // Push the bytes to the OS now: the page cache survives
                // `kill -9`, which is the crash model here. (Power-loss
                // durability would need fsync; the replay cache does not
                // warrant that cost — a lost record is a recompute.)
                let _ = self.journal.flush();
            }
        }
        self.maybe_compact();
    }

    fn len(&self) -> usize {
        self.mem.len()
    }

    fn bytes(&self) -> u64 {
        self.mem.bytes()
    }

    fn evictions(&self) -> u64 {
        self.mem.evictions()
    }

    fn corrupt(&self) -> &[Error] {
        &self.corrupt
    }

    fn flush(&mut self) {
        let _ = self.journal.flush();
    }

    fn kind(&self) -> &'static str {
        "journal"
    }
}

/// Encodes one record as its on-disk frame: `u32`-LE payload length,
/// then 8-byte LE FNV-1a checksum over the JSON, then the JSON bytes.
/// `None` if the outcome does not serialize (dropped, never panicked on).
fn encode_record(digest: (u64, u64), outcome: &Outcome) -> Option<Vec<u8>> {
    let record = Record {
        a: digest.0,
        b: digest.1,
        outcome: outcome.clone(),
    };
    let json = serde_json::to_string(&record).ok()?;
    let json = json.as_bytes();
    let payload_len = json.len() + 8;
    if payload_len > MAX_FRAME_LEN {
        return None;
    }
    let mut frame = Vec::with_capacity(4 + payload_len);
    frame.extend_from_slice(&(payload_len as u32).to_le_bytes());
    frame.extend_from_slice(&fnv1a(json).to_le_bytes());
    frame.extend_from_slice(json);
    Some(frame)
}

/// The result of scanning a journal byte-for-byte.
struct Scan {
    /// Records that decoded and passed their checksum, in file order.
    records: Vec<((u64, u64), Outcome)>,
    /// Complete-but-bad records, skipped.
    corrupt: Vec<Error>,
    /// The torn-tail error, if the file ends mid-record.
    torn: Option<Error>,
    /// Offset of the last good record boundary — where a torn tail is
    /// truncated to.
    tail_offset: u64,
}

/// Walks `bytes` frame by frame. Never panics, whatever the input: a
/// frame whose checksum or JSON fails is skipped (recorded as
/// [`Error::Corrupt`] at its offset) and scanning continues at the next
/// frame boundary; a frame that runs past the end of the buffer — or
/// claims a length over [`MAX_FRAME_LEN`], which destroys framing — is a
/// torn tail and ends the scan.
fn scan_records(bytes: &[u8]) -> Scan {
    let mut scan = Scan {
        records: Vec::new(),
        corrupt: Vec::new(),
        torn: None,
        tail_offset: 0,
    };
    let mut offset = 0usize;
    while offset < bytes.len() {
        let Some(header) = bytes.get(offset..offset + 4) else {
            scan.torn = Some(Error::Corrupt {
                offset: offset as u64,
                cause: format!(
                    "torn record header ({} trailing bytes)",
                    bytes.len() - offset
                ),
            });
            return scan;
        };
        let len = u32::from_le_bytes(header.try_into().expect("4-byte slice")) as usize;
        if len > MAX_FRAME_LEN {
            scan.torn = Some(Error::Corrupt {
                offset: offset as u64,
                cause: format!("record length {len} exceeds frame cap"),
            });
            return scan;
        }
        let Some(payload) = bytes.get(offset + 4..offset + 4 + len) else {
            scan.torn = Some(Error::Corrupt {
                offset: offset as u64,
                cause: format!(
                    "torn record body (want {len} bytes, {} remain)",
                    bytes.len() - offset - 4
                ),
            });
            return scan;
        };
        match decode_payload(payload) {
            Ok((digest, outcome)) => scan.records.push((digest, outcome)),
            Err(cause) => scan.corrupt.push(Error::Corrupt {
                offset: offset as u64,
                cause,
            }),
        }
        offset += 4 + len;
        scan.tail_offset = offset as u64;
    }
    scan
}

/// Checks the payload's checksum and decodes its JSON into a record.
fn decode_payload(payload: &[u8]) -> Result<((u64, u64), Outcome), String> {
    if payload.len() < 8 {
        return Err(format!(
            "payload too short for checksum ({} bytes)",
            payload.len()
        ));
    }
    let (sum, json) = payload.split_at(8);
    let want = u64::from_le_bytes(sum.try_into().expect("8-byte slice"));
    let got = fnv1a(json);
    if want != got {
        return Err(format!(
            "checksum mismatch (stored {want:#018x}, computed {got:#018x})"
        ));
    }
    let text = std::str::from_utf8(json).map_err(|e| format!("payload not UTF-8: {e}"))?;
    let record: Record =
        serde_json::from_str(text).map_err(|e| format!("payload not a record: {e}"))?;
    Ok(((record.a, record.b), record.outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::RandomInstanceConfig;
    use crate::spec::{run_spec, AlgorithmSpec, CoreResolver, JobSpec, ScenarioSpec};

    /// A few distinct real outcomes (digest, outcome) to exercise stores
    /// with — produced by the actual engine so JSON shape is realistic.
    fn samples(n: u64) -> Vec<((u64, u64), Outcome)> {
        (0..n)
            .map(|trial| {
                let job = JobSpec {
                    scenario: ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(12, 30, 3)),
                    algorithm: AlgorithmSpec::RandPr,
                    seed: 7000 + trial,
                };
                let outcome = run_spec(&job, &CoreResolver).expect("sample outcome");
                (crate::serve::job_digest(&job).expect("digest"), outcome)
            })
            .collect()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("osp-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn mem_store_round_trips_and_counts_bytes() {
        let mut store = MemStore::new(StoreLimits::UNBOUNDED);
        let samples = samples(3);
        for (digest, outcome) in &samples {
            store.put(*digest, outcome);
        }
        assert_eq!(store.len(), 3);
        assert!(store.bytes() > 0);
        assert_eq!(store.evictions(), 0);
        for (digest, outcome) in &samples {
            assert_eq!(store.get(*digest).as_ref(), Some(outcome));
        }
        assert!(store.get((1, 2)).is_none());
        // Overwriting the same digest does not double-count bytes.
        let before = store.bytes();
        store.put(samples[0].0, &samples[0].1);
        assert_eq!(store.bytes(), before);
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn mem_store_evicts_least_recently_touched_first() {
        let mut store = MemStore::new(StoreLimits {
            max_entries: 2,
            max_bytes: 0,
        });
        let samples = samples(3);
        store.put(samples[0].0, &samples[0].1);
        store.put(samples[1].0, &samples[1].1);
        // Touch [0] so [1] becomes the LRU entry…
        assert!(store.get(samples[0].0).is_some());
        // …then a third insert must evict [1], not [0].
        store.put(samples[2].0, &samples[2].1);
        assert_eq!(store.len(), 2);
        assert_eq!(store.evictions(), 1);
        assert!(
            store.get(samples[0].0).is_some(),
            "recently touched survives"
        );
        assert!(store.get(samples[1].0).is_none(), "LRU entry evicted");
        assert!(store.get(samples[2].0).is_some());
    }

    #[test]
    fn mem_store_byte_cap_evicts() {
        let samples = samples(4);
        let one = {
            let mut probe = MemStore::new(StoreLimits::UNBOUNDED);
            probe.put(samples[0].0, &samples[0].1);
            probe.bytes()
        };
        // Cap at roughly two entries' worth of bytes.
        let mut store = MemStore::new(StoreLimits {
            max_entries: 0,
            max_bytes: one * 2 + one / 2,
        });
        for (digest, outcome) in &samples {
            store.put(*digest, outcome);
        }
        assert!(
            store.len() < 4,
            "byte cap must evict ({} live)",
            store.len()
        );
        assert!(store.bytes() <= one * 2 + one / 2);
        assert_eq!(store.evictions() as usize, 4 - store.len());
    }

    #[test]
    fn journal_store_survives_reopen_bit_identically() {
        let dir = tmp_dir("reopen");
        let samples = samples(3);
        {
            let mut store = JournalStore::open(&dir, StoreLimits::default()).expect("open");
            assert_eq!(store.kind(), "journal");
            for (digest, outcome) in &samples {
                store.put(*digest, outcome);
            }
            // No clean shutdown: the handle is dropped mid-flight, as a
            // `kill -9` would leave it.
        }
        let mut store = JournalStore::open(&dir, StoreLimits::default()).expect("reopen");
        assert_eq!(store.len(), 3);
        assert!(store.corrupt().is_empty(), "{:?}", store.corrupt());
        for (digest, outcome) in &samples {
            assert_eq!(
                store.get(*digest).as_ref(),
                Some(outcome),
                "bit-identical reload"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_store_truncates_torn_tail_and_keeps_good_prefix() {
        let dir = tmp_dir("torn");
        let samples = samples(2);
        {
            let mut store = JournalStore::open(&dir, StoreLimits::default()).expect("open");
            for (digest, outcome) in &samples {
                store.put(*digest, outcome);
            }
        }
        // Simulate a crash mid-append: chop the last record in half.
        let path = dir.join("journal.osp");
        let bytes = std::fs::read(&path).expect("read journal");
        std::fs::write(&path, &bytes[..bytes.len() - 10]).expect("tear tail");

        let mut store = JournalStore::open(&dir, StoreLimits::default()).expect("reopen");
        assert_eq!(store.len(), 1, "good prefix survives");
        assert_eq!(store.get(samples[0].0).as_ref(), Some(&samples[0].1));
        assert_eq!(store.corrupt().len(), 1);
        assert!(
            matches!(store.corrupt()[0], Error::Corrupt { .. }),
            "{:?}",
            store.corrupt()
        );
        // The tail was truncated: a fresh append lands on a clean frame.
        store.put(samples[1].0, &samples[1].1);
        drop(store);
        let store = JournalStore::open(&dir, StoreLimits::default()).expect("re-reopen");
        assert_eq!(store.len(), 2);
        assert!(store.corrupt().is_empty(), "{:?}", store.corrupt());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_store_skips_bit_flipped_record_with_typed_error() {
        let dir = tmp_dir("flip");
        let samples = samples(3);
        {
            let mut store = JournalStore::open(&dir, StoreLimits::default()).expect("open");
            for (digest, outcome) in &samples {
                store.put(*digest, outcome);
            }
        }
        // Flip one byte inside the *second* record's payload.
        let path = dir.join("journal.osp");
        let mut bytes = std::fs::read(&path).expect("read journal");
        let first_len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let target = 4 + first_len + 4 + 20;
        bytes[target] ^= 0x40;
        std::fs::write(&path, &bytes).expect("flip");

        let mut store = JournalStore::open(&dir, StoreLimits::default()).expect("reopen");
        assert_eq!(store.len(), 2, "flipped record skipped, neighbours kept");
        assert_eq!(store.get(samples[0].0).as_ref(), Some(&samples[0].1));
        assert!(store.get(samples[1].0).is_none());
        assert_eq!(store.get(samples[2].0).as_ref(), Some(&samples[2].1));
        match &store.corrupt()[0] {
            Error::Corrupt { offset, cause } => {
                assert_eq!(*offset, (4 + first_len) as u64);
                assert!(cause.contains("checksum"), "{cause}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_store_compacts_into_snapshot() {
        let dir = tmp_dir("compact");
        let samples = samples(2);
        let mut store = JournalStore::open(&dir, StoreLimits::default()).expect("open");
        // Hammer the same two digests until the journal passes the
        // compaction floor — stale bytes pile up, live set stays tiny.
        let mut compacted = false;
        for _ in 0..4000 {
            for (digest, outcome) in &samples {
                store.put(*digest, outcome);
            }
            if store.compactions() > 0 {
                compacted = true;
                break;
            }
        }
        assert!(compacted, "journal never compacted");
        assert!(store.journal_bytes() < COMPACT_FLOOR);
        assert!(dir.join("snapshot.osp").exists());
        drop(store);
        // The snapshot + journal pair reload to the same live set.
        let mut store = JournalStore::open(&dir, StoreLimits::default()).expect("reopen");
        assert_eq!(store.len(), 2);
        for (digest, outcome) in &samples {
            assert_eq!(store.get(*digest).as_ref(), Some(outcome));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_store_applies_lru_caps_on_replay() {
        let dir = tmp_dir("caps");
        let samples = samples(4);
        {
            let mut store = JournalStore::open(&dir, StoreLimits::UNBOUNDED).expect("open");
            for (digest, outcome) in &samples {
                store.put(*digest, outcome);
            }
        }
        // Reopen with a 2-entry cap: replay itself enforces LRU, keeping
        // the most recently written entries.
        let mut store = JournalStore::open(
            &dir,
            StoreLimits {
                max_entries: 2,
                max_bytes: 0,
            },
        )
        .expect("reopen");
        assert_eq!(store.len(), 2);
        assert!(store.get(samples[2].0).is_some());
        assert!(store.get(samples[3].0).is_some());
        assert!(store.get(samples[0].0).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    mod fuzz {
        use super::*;
        use proptest::prelude::*;

        type JournalSamples = Vec<((u64, u64), Outcome)>;

        /// A valid journal's bytes plus the records it encodes.
        fn valid_journal() -> (Vec<u8>, JournalSamples) {
            let samples = samples(4);
            let mut bytes = Vec::new();
            for (digest, outcome) in &samples {
                bytes.extend_from_slice(&encode_record(*digest, outcome).expect("encode"));
            }
            (bytes, samples)
        }

        proptest! {
            /// Random byte flips over a valid journal: scanning never
            /// panics, and every record that *does* survive is
            /// bit-identical to one of the originals (the checksum
            /// gate).
            #[test]
            fn scan_survives_random_bit_flips(
                flips in proptest::collection::vec((0usize..4096, 0u8..=255u8), 1..8)
            ) {
                let (mut bytes, originals) = valid_journal();
                for (pos, mask) in flips {
                    let pos = pos % bytes.len();
                    bytes[pos] ^= mask;
                }
                let scan = scan_records(&bytes);
                for (digest, outcome) in &scan.records {
                    let original = originals
                        .iter()
                        .find(|(d, _)| d == digest)
                        .map(|(_, o)| o);
                    prop_assert_eq!(original, Some(outcome));
                }
                prop_assert!(scan.tail_offset <= bytes.len() as u64);
            }

            /// Random truncations: the scan keeps the whole-record
            /// prefix and flags the torn tail, never panicking.
            #[test]
            fn scan_survives_random_truncation(cut in 0usize..2048) {
                let (bytes, originals) = valid_journal();
                let cut = cut % (bytes.len() + 1);
                let scan = scan_records(&bytes[..cut]);
                prop_assert!(scan.records.len() <= originals.len());
                for (i, (digest, outcome)) in scan.records.iter().enumerate() {
                    prop_assert_eq!(digest, &originals[i].0);
                    prop_assert_eq!(outcome, &originals[i].1);
                }
                prop_assert!(scan.corrupt.is_empty());
                if cut < bytes.len() {
                    prop_assert!(scan.torn.is_some() || scan.tail_offset == cut as u64);
                }
            }

            /// Arbitrary garbage bytes: never a panic, never a record.
            #[test]
            fn scan_survives_garbage(bytes in proptest::collection::vec(0u8..=255u8, 0..512)) {
                let scan = scan_records(&bytes);
                prop_assert!(scan.records.is_empty() || !bytes.is_empty());
            }
        }
    }
}
