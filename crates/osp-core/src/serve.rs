//! Replay as a service: a long-running front door over any
//! [`Dispatcher`] backend.
//!
//! The engine so far is batch-invoked — somebody builds a job list, calls
//! [`run_specs`](Dispatcher::run_specs), and waits. This module adds the
//! contract a service-scale deployment needs: **accept work, track it,
//! answer callers over time**. Three layers, all in this file:
//!
//! * [`ReplayService`] — the embeddable core: a background executor
//!   thread draining a **bounded submission queue** of batches onto one
//!   `Dispatcher` (threads, processes, or a socket fleet — the service
//!   does not care), plus a **content-addressed results cache** keyed by
//!   the digest of each job's canonical JSON ([`job_digest`]): a
//!   resubmitted spec is answered without recompute, and the hit/miss
//!   counters are surfaced in every [`BatchStatus`]. The cache is a
//!   [`ResultStore`]: bounded in memory (LRU, [`ServiceConfig`] caps)
//!   and — with [`ServiceConfig::state_dir`] set — journaled to disk
//!   ([`JournalStore`]), with **batch
//!   manifests checkpointed at chunk boundaries** so a service killed
//!   mid-batch resumes on restart, re-serving journaled results
//!   bit-identically and recomputing only the missing jobs;
//! * [`ServeServer`] — the wire front door: a [`WorkerAddr`] listener
//!   (TCP or Unix-domain, the same transports as the worker fleet)
//!   answering framed [`ServeRequest`]s — submit, status, fetch, cancel,
//!   shutdown, and the `fleet` admin verb ([`FleetCommand`]: inspect,
//!   add/remove workers, trigger a rejoin probe) — against an embedded
//!   `ReplayService`, one thread per connection, strict request/reply;
//! * [`ServeClient`] — the caller side: connect + [`Hello`] check, then
//!   typed submit/status/fetch/cancel calls and a polling
//!   [`wait`](ServeClient::wait) helper.
//!
//! Determinism is inherited wholesale: outcomes are pure functions of the
//! [`JobSpec`], so a batch fetched from the service is bit-identical to a
//! sequential [`run_spec`](crate::spec::run_spec) loop over the same
//! specs — whatever backend executes it, and whether or not the cache
//! answered (pinned by `tests/replay_service.rs` across all three
//! backends, including a fault-injected socket fleet).
//!
//! ```no_run
//! use osp_core::serve::{ReplayService, ServeServer, ServeClient, ServiceConfig};
//! use osp_core::spec::{AlgorithmSpec, CoreResolver, JobSpec, ScenarioSpec};
//! use osp_core::gen::RandomInstanceConfig;
//! use osp_core::wire::socket::WorkerAddr;
//! use osp_core::{derived_jobs, ReplayPool, SpecPool};
//! use std::time::Duration;
//!
//! let jobs = derived_jobs(
//!     &ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(24, 60, 3)),
//!     &AlgorithmSpec::RandPr,
//!     7,
//!     4,
//! );
//! let service = ReplayService::new(
//!     Box::new(SpecPool::new(ReplayPool::new(2), CoreResolver)),
//!     ServiceConfig::default(),
//! )?;
//! let server = ServeServer::bind(&WorkerAddr::Tcp("127.0.0.1:0".into()), service)?;
//! let mut client = ServeClient::connect(server.local_addr(), Duration::from_secs(5))?;
//! let batch = client.submit(&jobs)?;
//! let status = client.wait(batch, Duration::from_millis(20), Duration::from_secs(60))?;
//! let results = client.fetch(batch)?;
//! # Ok::<(), osp_core::Error>(())
//! ```

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::engine::dispatch::{DispatchEvent, Dispatcher, EventSink, FleetHandle, FleetReport};
use crate::engine::Outcome;
use crate::error::{Error, WorkerError};
use crate::spec::JobSpec;
use crate::store::{JournalStore, MemStore, ResultStore, StoreLimits};
use crate::wire;
use crate::wire::socket::{read_hello, Listener, Stream, WorkerAddr};
use crate::wire::Hello;

/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// The standard FNV-1a offset basis — first lane of the digest.
const FNV_OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
/// A second, independent basis — second lane, so a single-lane collision
/// does not alias two different specs in the cache.
const FNV_OFFSET_B: u64 = 0x6c62_272e_07bb_0142;

fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Content address of a job: a two-lane FNV-1a digest over the spec's
/// canonical JSON. Canonical because the crate's serializer emits map
/// keys in declaration order — the same spec always renders to the same
/// bytes, so equal specs collide (the point of the cache) and different
/// specs would need a simultaneous 128-bit collision to alias.
///
/// # Errors
///
/// [`Error::Protocol`] if the spec does not serialize (cannot happen for
/// well-formed specs; surfaced rather than swallowed).
pub fn job_digest(job: &JobSpec) -> Result<(u64, u64), Error> {
    let json = serde_json::to_string(job)
        .map_err(|e| Error::Protocol(format!("digesting job spec: {e}")))?;
    let bytes = json.as_bytes();
    Ok((fnv1a(bytes, FNV_OFFSET_A), fnv1a(bytes, FNV_OFFSET_B)))
}

/// Tuning for a [`ReplayService`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Batches the submission queue holds before [`ReplayService::submit`]
    /// answers [`Error::Unavailable`] (zero is treated as one). Bounded by
    /// design: back-pressure belongs at the front door, not in an
    /// unbounded queue that hides overload until memory runs out.
    pub queue_capacity: usize,
    /// Jobs per dispatcher call inside one batch (zero is treated as
    /// one). Smaller chunks mean finer-grained progress in
    /// [`BatchStatus`] and faster cancel response; larger chunks amortize
    /// per-call overhead. With a `state_dir` this is also the checkpoint
    /// granularity: the batch manifest is rewritten after every chunk.
    pub chunk: usize,
    /// Results-cache entry cap (`0` = unlimited). Least-recently-used
    /// outcomes are evicted past the cap; evictions are counted in
    /// [`BatchStatus::cache_evictions`].
    pub cache_entries: usize,
    /// Results-cache byte cap (`0` = unlimited), counting canonical-JSON
    /// outcome bytes plus the 16-byte digest per entry.
    pub cache_bytes: u64,
    /// Persist the cache and batch manifests under this directory. The
    /// cache becomes a [`JournalStore`] (journal + snapshot, crash-safe),
    /// and interrupted batches found in the directory are re-queued on
    /// construction — journaled jobs answered from the store, only the
    /// rest recomputed.
    pub state_dir: Option<PathBuf>,
    /// Serve-side fault injection for crash drills: exit the process with
    /// status 86 after this many dispatched chunks (lifetime count,
    /// *after* the chunk's results are journaled and its manifest is
    /// checkpointed). Wired to `OSP_FAULT=die-after-chunk:<n>` in
    /// `osp-serve`; never set in production.
    pub die_after_chunk: Option<u64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 64,
            chunk: 16,
            cache_entries: StoreLimits::DEFAULT.max_entries,
            cache_bytes: StoreLimits::DEFAULT.max_bytes,
            state_dir: None,
            die_after_chunk: None,
        }
    }
}

/// Lifecycle of one submitted batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BatchState {
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
}

impl BatchState {
    fn as_str(self) -> &'static str {
        match self {
            BatchState::Queued => "queued",
            BatchState::Running => "running",
            BatchState::Done => "done",
            BatchState::Failed => "failed",
            BatchState::Cancelled => "cancelled",
        }
    }

    fn terminal(self) -> bool {
        matches!(
            self,
            BatchState::Done | BatchState::Failed | BatchState::Cancelled
        )
    }
}

/// One job's result as held by the service and answered by `Fetch` —
/// incremental, so a batch can be fetched while still running.
#[derive(Debug, Clone, PartialEq)]
pub enum JobResult {
    /// Not answered yet (or never will be, if the batch was cancelled).
    Pending,
    /// The outcome, bit-identical to sequential
    /// [`run_spec`](crate::spec::run_spec).
    Ok(Outcome),
    /// The per-job failure, as display text (like
    /// [`reply`](crate::wire::reply) across the worker boundary).
    Err(String),
}

impl Serialize for JobResult {
    fn to_value(&self) -> serde::Value {
        match self {
            JobResult::Pending => {
                serde::Value::Map(vec![("pending".to_string(), serde::Value::Bool(true))])
            }
            JobResult::Ok(outcome) => {
                serde::Value::Map(vec![("ok".to_string(), outcome.to_value())])
            }
            JobResult::Err(err) => {
                serde::Value::Map(vec![("err".to_string(), serde::Value::Str(err.clone()))])
            }
        }
    }
}

impl Deserialize for JobResult {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        if let Ok(ok) = serde::get_field(value, "ok") {
            return Ok(JobResult::Ok(Outcome::from_value(ok)?));
        }
        if let Ok(err) = serde::get_field(value, "err") {
            return Ok(JobResult::Err(String::from_value(err)?));
        }
        bool::from_value(serde::get_field(value, "pending")?)?;
        Ok(JobResult::Pending)
    }
}

/// A point-in-time report on one batch, plus the service-lifetime cache
/// counters — the `Status` answer.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BatchStatus {
    /// The batch id.
    pub id: u64,
    /// `queued` / `running` / `done` / `failed` / `cancelled`. `failed`
    /// means the batch finished with at least one per-job error; the
    /// other jobs' outcomes are still valid and fetchable.
    pub state: String,
    /// Jobs in the batch.
    pub total: u64,
    /// Jobs with a final result so far (outcomes and per-job errors).
    pub answered: u64,
    /// Jobs whose final result is an error.
    pub failed: u64,
    /// Jobs of *this batch* answered from the results cache.
    pub cached: u64,
    /// Per-job progress, in submission order: `pending` / `done` /
    /// `cached` / `failed` / `cancelled`.
    pub jobs: Vec<String>,
    /// Service-lifetime cache hits.
    pub cache_hits: u64,
    /// Service-lifetime cache misses.
    pub cache_misses: u64,
    /// Outcomes evicted from the results cache over the store's life
    /// (LRU past the [`ServiceConfig`] caps).
    pub cache_evictions: u64,
    /// Fleet workers excluded during dispatch since the service started
    /// (`addr: cause`, most recent last; socket backend only).
    pub excluded: Vec<String>,
    /// Excluded workers re-admitted by the rejoin probe (socket backend
    /// only; zero elsewhere).
    pub workers_rejoined: u64,
    /// Rejoin probes attempted, successful or not (socket backend only).
    pub worker_probes: u64,
}

/// One batch as the service tracks it.
struct BatchRecord {
    jobs: Vec<JobSpec>,
    /// One slot per job, submission order; `None` is pending.
    results: Vec<Option<Result<Outcome, String>>>,
    /// Parallel to `results`: answered from the cache.
    from_cache: Vec<bool>,
    state: BatchState,
    /// Set by [`ReplayService::cancel`]; the executor honors it between
    /// chunks.
    cancel: bool,
}

impl BatchRecord {
    fn status(&self, id: u64, shared: &ServiceState) -> BatchStatus {
        let answered = self.results.iter().filter(|r| r.is_some()).count() as u64;
        let failed = self
            .results
            .iter()
            .filter(|r| matches!(r, Some(Err(_))))
            .count() as u64;
        let cached = self.from_cache.iter().filter(|&&c| c).count() as u64;
        let jobs = self
            .results
            .iter()
            .zip(&self.from_cache)
            .map(|(result, &from_cache)| {
                match result {
                    Some(Ok(_)) if from_cache => "cached",
                    Some(Ok(_)) => "done",
                    Some(Err(_)) => "failed",
                    None if self.state == BatchState::Cancelled => "cancelled",
                    None => "pending",
                }
                .to_string()
            })
            .collect();
        let fleet = shared.fleet.as_ref().map(FleetHandle::report);
        BatchStatus {
            id,
            state: self.state.as_str().to_string(),
            total: self.jobs.len() as u64,
            answered,
            failed,
            cached,
            jobs,
            cache_hits: shared.cache_hits,
            cache_misses: shared.cache_misses,
            cache_evictions: shared.cache.evictions(),
            excluded: shared.excluded.clone(),
            workers_rejoined: fleet.as_ref().map_or(0, |r| r.rejoined),
            worker_probes: fleet.as_ref().map_or(0, |r| r.probes),
        }
    }
}

/// Everything behind the service mutex.
struct ServiceState {
    batches: HashMap<u64, BatchRecord>,
    /// Content-addressed results: [`job_digest`] → outcome. Only
    /// successes are cached — errors may be transient (a dead fleet) and
    /// must re-execute on resubmit. A [`MemStore`] by default; a
    /// [`JournalStore`] when [`ServiceConfig::state_dir`] is set.
    cache: Box<dyn ResultStore>,
    cache_hits: u64,
    cache_misses: u64,
    /// Excluded-worker log (`addr: cause`), capped at
    /// [`EXCLUDED_LOG_CAP`] most recent entries.
    excluded: Vec<String>,
    /// Handle into the socket fleet's membership state, when the backend
    /// has one — lets `Status` report rejoin counters and the `fleet`
    /// admin verb mutate membership while the executor owns the
    /// dispatcher. Lock order is always service state → fleet state.
    fleet: Option<FleetHandle>,
}

/// Most recent worker exclusions kept for [`BatchStatus::excluded`].
const EXCLUDED_LOG_CAP: usize = 32;

/// The dispatch event sink the executor runs under: worker exclusions
/// are recorded as structured fleet-health state (and echoed to stderr,
/// keeping the pre-service diagnostics); progress ticks are dropped —
/// per-chunk accounting in the batch records is already finer.
struct ServiceSink {
    state: Arc<Mutex<ServiceState>>,
}

impl EventSink for ServiceSink {
    fn event(&self, event: DispatchEvent) {
        match event {
            DispatchEvent::WorkerExcluded { addr, error } => {
                eprintln!("osp: excluding worker {addr}: {error}");
                let mut state = self.state.lock().expect("service state poisoned");
                if state.excluded.len() >= EXCLUDED_LOG_CAP {
                    state.excluded.remove(0);
                }
                state.excluded.push(format!("{addr}: {error}"));
            }
            DispatchEvent::WorkerRejoined { addr } => {
                eprintln!("osp: worker {addr} rejoined the fleet");
            }
            _ => {}
        }
    }
}

/// The embeddable replay service: one executor thread, one bounded
/// submission queue, one results cache, any [`Dispatcher`] backend. See
/// the [module docs](self) for the full contract.
pub struct ReplayService {
    state: Arc<Mutex<ServiceState>>,
    /// `None` after [`shutdown`](Self::shutdown); dropping the sender is
    /// the executor's stop signal.
    sender: Mutex<Option<SyncSender<u64>>>,
    executor: Mutex<Option<JoinHandle<()>>>,
    next_id: AtomicU64,
    backend: &'static str,
    lanes: usize,
    /// Where batch manifests live, when persistence is on.
    state_dir: Option<PathBuf>,
}

impl ReplayService {
    /// Starts the service: spawns the executor thread owning
    /// `dispatcher`.
    ///
    /// With [`ServiceConfig::state_dir`] set, the results cache is opened
    /// as a [`JournalStore`] (corrupt records are skipped and logged, a
    /// torn tail is truncated) and every `batch-<id>.json` manifest found
    /// in the directory — a batch interrupted by a crash — is re-queued
    /// in id order: journaled jobs are answered from the store as cache
    /// hits, only the rest are recomputed.
    ///
    /// # Errors
    ///
    /// [`Error::Unavailable`] when the state directory cannot be created
    /// or its journal cannot be opened. A corrupt journal is *not* an
    /// error — recovery salvages every intact record.
    pub fn new(
        dispatcher: Box<dyn Dispatcher + Send>,
        config: ServiceConfig,
    ) -> Result<ReplayService, Error> {
        let backend = dispatcher.backend();
        let lanes = dispatcher.lanes();
        let fleet = dispatcher.fleet();
        let limits = StoreLimits {
            max_entries: config.cache_entries,
            max_bytes: config.cache_bytes,
        };
        let mut resumed: Vec<BatchManifest> = Vec::new();
        let cache: Box<dyn ResultStore> = match &config.state_dir {
            Some(dir) => {
                let store = JournalStore::open(dir, limits)?;
                for err in store.corrupt() {
                    eprintln!("osp: warning: journal recovery skipped a record: {err}");
                }
                resumed = load_manifests(dir);
                Box::new(store)
            }
            None => Box::new(MemStore::new(limits)),
        };
        let next_id = resumed.iter().map(|m| m.id).max().unwrap_or(0) + 1;
        let mut batches = HashMap::new();
        for manifest in &resumed {
            let total = manifest.jobs.len();
            batches.insert(
                manifest.id,
                BatchRecord {
                    jobs: manifest.jobs.clone(),
                    results: vec![None; total],
                    from_cache: vec![false; total],
                    state: BatchState::Queued,
                    cancel: false,
                },
            );
        }
        let state = Arc::new(Mutex::new(ServiceState {
            batches,
            cache,
            cache_hits: 0,
            cache_misses: 0,
            excluded: Vec::new(),
            fleet,
        }));
        // The channel must hold every resumed batch up front — resume
        // happens before the executor starts, so nothing is draining yet.
        let capacity = config.queue_capacity.max(resumed.len()).max(1);
        let (sender, receiver) = std::sync::mpsc::sync_channel(capacity);
        for manifest in &resumed {
            eprintln!(
                "osp: resuming batch {} ({} job{})",
                manifest.id,
                manifest.jobs.len(),
                if manifest.jobs.len() == 1 { "" } else { "s" }
            );
            sender.send(manifest.id).expect("resume queue sized to fit");
        }
        let state_dir = config.state_dir.clone();
        let executor = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || executor_loop(&state, &receiver, &*dispatcher, config))
        };
        Ok(ReplayService {
            state,
            sender: Mutex::new(Some(sender)),
            executor: Mutex::new(Some(executor)),
            next_id: AtomicU64::new(next_id),
            backend,
            lanes,
            state_dir,
        })
    }

    /// The executing backend's tag (`"threads"` / `"processes"` /
    /// `"sockets"`).
    pub fn backend(&self) -> &'static str {
        self.backend
    }

    /// The executing backend's lane count.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Submits a batch; returns its id immediately (the batch runs in the
    /// background — poll [`status`](Self::status), then
    /// [`fetch`](Self::fetch)).
    ///
    /// # Errors
    ///
    /// [`Error::Unavailable`] when the submission queue is full or the
    /// service is shutting down; nothing was enqueued and the id was not
    /// consumed durably — resubmit later.
    pub fn submit(&self, jobs: Vec<JobSpec>) -> Result<u64, Error> {
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        {
            let mut state = self.state.lock().expect("service state poisoned");
            let total = jobs.len();
            state.batches.insert(
                id,
                BatchRecord {
                    jobs: jobs.clone(),
                    results: vec![None; total],
                    from_cache: vec![false; total],
                    state: BatchState::Queued,
                    cancel: false,
                },
            );
        }
        // Checkpoint the manifest *before* enqueueing: once the executor
        // can see the batch, the on-disk record must already exist, or a
        // crash in the gap would lose it.
        if let Some(dir) = &self.state_dir {
            write_manifest(dir, &BatchManifest::new(id, &jobs));
        }
        let sender = self.sender.lock().expect("service sender poisoned");
        let enqueue = match sender.as_ref() {
            Some(sender) => sender.try_send(id),
            None => Err(TrySendError::Disconnected(id)),
        };
        if let Err(e) = enqueue {
            let mut state = self.state.lock().expect("service state poisoned");
            state.batches.remove(&id);
            drop(state);
            if let Some(dir) = &self.state_dir {
                remove_manifest(dir, id);
            }
            return Err(Error::Unavailable(match e {
                TrySendError::Full(_) => "submission queue is full — resubmit later".to_string(),
                TrySendError::Disconnected(_) => "service is shutting down".to_string(),
            }));
        }
        Ok(id)
    }

    /// Runs a fleet-supervision command against the backend's socket
    /// fleet: inspect membership, add or remove a worker, or force a
    /// rejoin probe of every excluded lane. Always answers with the
    /// post-command [`FleetReport`].
    ///
    /// # Errors
    ///
    /// [`Error::Unavailable`] when the backend is not a socket fleet;
    /// [`Error::InvalidSpec`] for an unparseable address, removing a
    /// non-member, or removing the last lane.
    pub fn fleet(&self, command: FleetCommand) -> Result<FleetReport, Error> {
        let handle = {
            let state = self.state.lock().expect("service state poisoned");
            state.fleet.clone()
        };
        let Some(handle) = handle else {
            return Err(Error::Unavailable(format!(
                "the {} backend has no socket fleet to supervise",
                self.backend
            )));
        };
        match command {
            FleetCommand::Status => {}
            FleetCommand::Add(addr) => {
                let addr = WorkerAddr::parse(&addr).map_err(Error::InvalidSpec)?;
                handle.add(addr);
            }
            FleetCommand::Remove(addr) => {
                let addr = WorkerAddr::parse(&addr).map_err(Error::InvalidSpec)?;
                handle.remove(&addr)?;
            }
            FleetCommand::Probe => {
                handle.probe();
            }
        }
        Ok(handle.report())
    }

    /// A point-in-time report on batch `id`; `None` for an unknown id.
    pub fn status(&self, id: u64) -> Option<BatchStatus> {
        let state = self.state.lock().expect("service state poisoned");
        state.batches.get(&id).map(|r| r.status(id, &state))
    }

    /// The batch's per-job results so far, in submission order ([`Fetch`
    /// is incremental](JobResult::Pending)); `None` for an unknown id.
    pub fn fetch(&self, id: u64) -> Option<Vec<JobResult>> {
        let state = self.state.lock().expect("service state poisoned");
        state.batches.get(&id).map(|record| {
            record
                .results
                .iter()
                .map(|slot| match slot {
                    None => JobResult::Pending,
                    Some(Ok(outcome)) => JobResult::Ok(outcome.clone()),
                    Some(Err(e)) => JobResult::Err(e.clone()),
                })
                .collect()
        })
    }

    /// Requests cancellation of batch `id`. Returns whether the request
    /// took hold — `false` for an unknown id or a batch already in a
    /// terminal state. A queued batch cancels before running anything; a
    /// running batch stops at the next chunk boundary (answers already
    /// computed stay fetchable).
    pub fn cancel(&self, id: u64) -> bool {
        let mut state = self.state.lock().expect("service state poisoned");
        match state.batches.get_mut(&id) {
            Some(record) if !record.state.terminal() => {
                record.cancel = true;
                true
            }
            _ => false,
        }
    }

    /// Stops the service: no further submissions are accepted, the
    /// executor finishes its current batch, and queued-but-unstarted
    /// batches are marked `cancelled`. Idempotent; blocks until the
    /// executor has exited.
    pub fn shutdown(&self) {
        // Dropping the sender disconnects the channel: the executor
        // drains what is already queued (cancel flags still honored) and
        // exits.
        drop(self.sender.lock().expect("service sender poisoned").take());
        if let Some(handle) = self
            .executor
            .lock()
            .expect("service executor poisoned")
            .take()
        {
            let _ = handle.join();
        }
    }
}

impl Drop for ReplayService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The executor: drains batch ids off the queue, runs each through the
/// dispatcher chunk by chunk with a cache pass first, and finalizes the
/// record. Runs until the submission channel disconnects.
///
/// With a state directory, every chunk boundary is a checkpoint: the
/// chunk's outcomes land in the journal (inside `cache.put`), then the
/// batch manifest is rewritten with the enlarged `completed` list — so a
/// crash at any instant loses at most the in-flight chunk. Terminal
/// batches drop their manifest (the journal keeps the outcomes).
fn executor_loop(
    state: &Arc<Mutex<ServiceState>>,
    receiver: &Receiver<u64>,
    dispatcher: &(dyn Dispatcher + Send),
    config: ServiceConfig,
) {
    let sink = ServiceSink {
        state: Arc::clone(state),
    };
    let chunk = config.chunk.max(1);
    let state_dir = config.state_dir.as_deref();
    // Lifetime dispatched-chunk count, for `die-after-chunk` drills.
    let mut chunks_dispatched: u64 = 0;
    while let Ok(id) = receiver.recv() {
        // Claim the batch: cancelled-while-queued short-circuits here.
        let jobs = {
            let mut guard = state.lock().expect("service state poisoned");
            let Some(record) = guard.batches.get_mut(&id) else {
                continue; // submit() rolled it back
            };
            if record.cancel {
                record.state = BatchState::Cancelled;
                drop(guard);
                if let Some(dir) = state_dir {
                    remove_manifest(dir, id);
                }
                continue;
            }
            record.state = BatchState::Running;
            record.jobs.clone()
        };

        // Cache pass: answer every hit up front, then dispatch only the
        // misses. Digests computed outside the lock; it is pure CPU. On a
        // post-crash resume this is where journaled outcomes short-circuit
        // recompute — they surface as cache hits.
        let digests: Vec<Option<(u64, u64)>> =
            jobs.iter().map(|job| job_digest(job).ok()).collect();
        let uncached: Vec<usize> = {
            let mut guard = state.lock().expect("service state poisoned");
            let mut uncached = Vec::new();
            for (index, digest) in digests.iter().enumerate() {
                let hit = match digest {
                    Some(d) => guard.cache.get(*d),
                    None => None,
                };
                match hit {
                    Some(outcome) => {
                        guard.cache_hits += 1;
                        let record = guard.batches.get_mut(&id).expect("running batch exists");
                        record.results[index] = Some(Ok(outcome));
                        record.from_cache[index] = true;
                    }
                    None => {
                        guard.cache_misses += 1;
                        uncached.push(index);
                    }
                }
            }
            uncached
        };

        let mut cancelled = false;
        for slice in uncached.chunks(chunk) {
            if state
                .lock()
                .expect("service state poisoned")
                .batches
                .get(&id)
                .is_some_and(|r| r.cancel)
            {
                cancelled = true;
                break;
            }
            let specs: Vec<JobSpec> = slice.iter().map(|&i| jobs[i].clone()).collect();
            let outcomes = dispatcher.run_specs_with_events(&specs, &sink);
            chunks_dispatched += 1;
            let mut guard = state.lock().expect("service state poisoned");
            for (&index, result) in slice.iter().zip(outcomes) {
                if let (Ok(outcome), Some(digest)) = (&result, digests[index]) {
                    guard.cache.put(digest, outcome);
                }
                let record = guard.batches.get_mut(&id).expect("running batch exists");
                record.results[index] = Some(result.map_err(|e| e.to_string()));
            }
            if let Some(dir) = state_dir {
                // Chunk boundary checkpoint: journal first (the puts
                // above), then the manifest naming what is journaled.
                guard.cache.flush();
                let record = guard.batches.get_mut(&id).expect("running batch exists");
                write_manifest(dir, &BatchManifest::checkpoint(id, record, &digests));
            }
            drop(guard);
            if config
                .die_after_chunk
                .is_some_and(|n| chunks_dispatched >= n)
            {
                // Fault drill: the checkpoint above is durable; die the
                // way a power cut would — no unwinding, no Drop glue.
                eprintln!(
                    "osp: fault injection: dying after chunk {chunks_dispatched} (die-after-chunk)"
                );
                std::process::exit(i32::from(wire::FAULT_EXIT));
            }
        }

        let mut guard = state.lock().expect("service state poisoned");
        let record = guard.batches.get_mut(&id).expect("running batch exists");
        record.state = if cancelled || record.cancel {
            BatchState::Cancelled
        } else if record.results.iter().any(|r| matches!(r, Some(Err(_)))) {
            BatchState::Failed
        } else {
            BatchState::Done
        };
        drop(guard);
        if let Some(dir) = state_dir {
            // Terminal: the manifest has done its job; results live in
            // the journal (and in memory until the service drops).
            remove_manifest(dir, id);
        }
    }
    // Channel disconnected: whatever never started is cancelled, so
    // late status calls see a terminal state instead of `queued` forever.
    let mut guard = state.lock().expect("service state poisoned");
    let mut cancelled_ids = Vec::new();
    for (&id, record) in guard.batches.iter_mut() {
        if record.state == BatchState::Queued {
            record.state = BatchState::Cancelled;
            cancelled_ids.push(id);
        }
    }
    guard.cache.flush();
    drop(guard);
    if let Some(dir) = state_dir {
        for id in cancelled_ids {
            remove_manifest(dir, id);
        }
    }
}

/// On-disk checkpoint of one batch — `batch-<id>.json` in the state
/// directory. Written atomically (tmp + rename) when the batch is
/// submitted and rewritten at every chunk boundary; removed when the
/// batch reaches a terminal state. A manifest still on disk at startup
/// is therefore exactly an interrupted batch, and [`ReplayService::new`]
/// re-queues it.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
struct BatchManifest {
    /// The batch id (also in the file name; the file wins for discovery,
    /// this field for integrity).
    id: u64,
    /// The full job list — resume needs the specs, not just digests.
    jobs: Vec<JobSpec>,
    /// First digest lane per job (`0` for an undigestable spec).
    digest_a: Vec<u64>,
    /// Second digest lane per job.
    digest_b: Vec<u64>,
    /// Indices of jobs whose successful outcome was journaled by the
    /// last checkpoint — what a resume may skip.
    completed: Vec<u64>,
}

impl BatchManifest {
    /// The submission-time manifest: nothing completed yet.
    fn new(id: u64, jobs: &[JobSpec]) -> BatchManifest {
        let digests: Vec<Option<(u64, u64)>> = jobs.iter().map(|j| job_digest(j).ok()).collect();
        BatchManifest {
            id,
            jobs: jobs.to_vec(),
            digest_a: digests.iter().map(|d| d.map_or(0, |d| d.0)).collect(),
            digest_b: digests.iter().map(|d| d.map_or(0, |d| d.1)).collect(),
            completed: Vec::new(),
        }
    }

    /// A chunk-boundary checkpoint: `completed` lists every job whose
    /// successful outcome is in the journal right now.
    fn checkpoint(id: u64, record: &BatchRecord, digests: &[Option<(u64, u64)>]) -> BatchManifest {
        BatchManifest {
            id,
            jobs: record.jobs.clone(),
            digest_a: digests.iter().map(|d| d.map_or(0, |d| d.0)).collect(),
            digest_b: digests.iter().map(|d| d.map_or(0, |d| d.1)).collect(),
            completed: record
                .results
                .iter()
                .enumerate()
                .filter(|(_, r)| matches!(r, Some(Ok(_))))
                .map(|(i, _)| i as u64)
                .collect(),
        }
    }
}

fn manifest_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("batch-{id}.json"))
}

/// Writes `batch-<id>.json` atomically. Persistence failures are logged,
/// not fatal: the service keeps serving from memory and the operator
/// sees why resume would be incomplete.
fn write_manifest(dir: &Path, manifest: &BatchManifest) {
    let path = manifest_path(dir, manifest.id);
    let tmp = path.with_extension("json.tmp");
    let json = match serde_json::to_string(manifest) {
        Ok(json) => json,
        Err(e) => {
            eprintln!(
                "osp: warning: cannot encode manifest for batch {}: {e}",
                manifest.id
            );
            return;
        }
    };
    let write = std::fs::write(&tmp, json).and_then(|()| std::fs::rename(&tmp, &path));
    if let Err(e) = write {
        eprintln!("osp: warning: cannot checkpoint batch {}: {e}", manifest.id);
    }
}

fn remove_manifest(dir: &Path, id: u64) {
    let _ = std::fs::remove_file(manifest_path(dir, id));
}

/// Scans a state directory for `batch-<id>.json` manifests, id order.
/// Unreadable or undecodable manifests are skipped with a warning —
/// recovery salvages what it can, like the journal scan.
fn load_manifests(dir: &Path) -> Vec<BatchManifest> {
    let mut found = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return found;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(id_text) = name
            .strip_prefix("batch-")
            .and_then(|rest| rest.strip_suffix(".json"))
        else {
            continue;
        };
        let Ok(id) = id_text.parse::<u64>() else {
            continue;
        };
        let path = entry.path();
        let decoded = std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|json| {
                serde_json::from_str::<BatchManifest>(&json).map_err(|e| e.to_string())
            });
        match decoded {
            Ok(manifest) if manifest.id == id => found.push(manifest),
            Ok(manifest) => eprintln!(
                "osp: warning: skipping manifest {}: file says batch {id}, body says {}",
                path.display(),
                manifest.id
            ),
            Err(e) => eprintln!(
                "osp: warning: skipping unreadable manifest {}: {e}",
                path.display()
            ),
        }
    }
    found.sort_by_key(|m| m.id);
    found
}

/// One client → service message. Same tagged-map wire idiom as
/// [`wire::Request`]: the single key names the verb.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeRequest {
    /// Submit a batch; answered with [`ServeReply::Batch`] (or
    /// [`ServeReply::Busy`] under back-pressure).
    Submit(Vec<JobSpec>),
    /// Report on a batch; answered with [`ServeReply::Report`].
    Status(u64),
    /// The batch's results so far; answered with [`ServeReply::Results`].
    Fetch(u64),
    /// Cancel a batch; answered with [`ServeReply::Cancelled`].
    Cancel(u64),
    /// A fleet-supervision command; answered with [`ServeReply::Fleet`]
    /// (or [`ServeReply::Error`] on a non-socket backend).
    Fleet(FleetCommand),
    /// Stop the whole server; answered with [`ServeReply::Bye`].
    Shutdown,
}

/// The `fleet` admin verb's sub-commands (protocol v3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetCommand {
    /// Report membership and rejoin counters; mutates nothing.
    Status,
    /// Add a worker address (parsed like `OSP_WORKERS`) to the fleet; a
    /// duplicate address is a no-op.
    Add(String),
    /// Remove a worker address from the fleet. Removing a non-member or
    /// the last lane is refused.
    Remove(String),
    /// Probe every excluded lane now, ignoring its backoff deadline.
    Probe,
}

impl Serialize for FleetCommand {
    fn to_value(&self) -> serde::Value {
        let (key, value) = match self {
            FleetCommand::Status => ("status", serde::Value::Bool(true)),
            FleetCommand::Add(addr) => ("add", serde::Value::Str(addr.clone())),
            FleetCommand::Remove(addr) => ("remove", serde::Value::Str(addr.clone())),
            FleetCommand::Probe => ("probe", serde::Value::Bool(true)),
        };
        serde::Value::Map(vec![(key.to_string(), value)])
    }
}

impl Deserialize for FleetCommand {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        if let Ok(addr) = serde::get_field(value, "add") {
            return Ok(FleetCommand::Add(String::from_value(addr)?));
        }
        if let Ok(addr) = serde::get_field(value, "remove") {
            return Ok(FleetCommand::Remove(String::from_value(addr)?));
        }
        if let Ok(probe) = serde::get_field(value, "probe") {
            bool::from_value(probe)?;
            return Ok(FleetCommand::Probe);
        }
        bool::from_value(serde::get_field(value, "status")?)?;
        Ok(FleetCommand::Status)
    }
}

impl Serialize for ServeRequest {
    fn to_value(&self) -> serde::Value {
        let (key, value) = match self {
            ServeRequest::Submit(jobs) => ("submit", jobs.to_value()),
            ServeRequest::Status(id) => ("status", serde::Value::U64(*id)),
            ServeRequest::Fetch(id) => ("fetch", serde::Value::U64(*id)),
            ServeRequest::Cancel(id) => ("cancel", serde::Value::U64(*id)),
            ServeRequest::Fleet(command) => ("fleet", command.to_value()),
            ServeRequest::Shutdown => ("shutdown", serde::Value::Bool(true)),
        };
        serde::Value::Map(vec![(key.to_string(), value)])
    }
}

impl Deserialize for ServeRequest {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        if let Ok(jobs) = serde::get_field(value, "submit") {
            return Ok(ServeRequest::Submit(Vec::<JobSpec>::from_value(jobs)?));
        }
        if let Ok(id) = serde::get_field(value, "status") {
            return Ok(ServeRequest::Status(u64::from_value(id)?));
        }
        if let Ok(id) = serde::get_field(value, "fetch") {
            return Ok(ServeRequest::Fetch(u64::from_value(id)?));
        }
        if let Ok(id) = serde::get_field(value, "cancel") {
            return Ok(ServeRequest::Cancel(u64::from_value(id)?));
        }
        if let Ok(command) = serde::get_field(value, "fleet") {
            return Ok(ServeRequest::Fleet(FleetCommand::from_value(command)?));
        }
        bool::from_value(serde::get_field(value, "shutdown")?)?;
        Ok(ServeRequest::Shutdown)
    }
}

/// One service → client answer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeReply {
    /// The submitted batch's id.
    Batch(u64),
    /// The status report.
    Report(BatchStatus),
    /// Per-job results so far, submission order.
    Results(Vec<JobResult>),
    /// Whether the cancel request took hold.
    Cancelled(bool),
    /// The fleet report after a [`ServeRequest::Fleet`] command.
    Fleet(FleetReport),
    /// Acknowledges [`ServeRequest::Shutdown`].
    Bye,
    /// Back-pressure: queue full or shutting down; resubmit later.
    Busy(String),
    /// The request could not be served (e.g. an unknown batch id).
    Error(String),
}

impl Serialize for ServeReply {
    fn to_value(&self) -> serde::Value {
        let (key, value) = match self {
            ServeReply::Batch(id) => ("batch", serde::Value::U64(*id)),
            ServeReply::Report(status) => ("report", status.to_value()),
            ServeReply::Results(results) => ("results", results.to_value()),
            ServeReply::Cancelled(took) => ("cancelled", serde::Value::Bool(*took)),
            ServeReply::Fleet(report) => ("fleet", report.to_value()),
            ServeReply::Bye => ("bye", serde::Value::Bool(true)),
            ServeReply::Busy(why) => ("busy", serde::Value::Str(why.clone())),
            ServeReply::Error(why) => ("error", serde::Value::Str(why.clone())),
        };
        serde::Value::Map(vec![(key.to_string(), value)])
    }
}

impl Deserialize for ServeReply {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        if let Ok(id) = serde::get_field(value, "batch") {
            return Ok(ServeReply::Batch(u64::from_value(id)?));
        }
        if let Ok(status) = serde::get_field(value, "report") {
            return Ok(ServeReply::Report(BatchStatus::from_value(status)?));
        }
        if let Ok(results) = serde::get_field(value, "results") {
            return Ok(ServeReply::Results(Vec::<JobResult>::from_value(results)?));
        }
        if let Ok(took) = serde::get_field(value, "cancelled") {
            return Ok(ServeReply::Cancelled(bool::from_value(took)?));
        }
        if let Ok(report) = serde::get_field(value, "fleet") {
            return Ok(ServeReply::Fleet(FleetReport::from_value(report)?));
        }
        if let Ok(why) = serde::get_field(value, "busy") {
            return Ok(ServeReply::Busy(String::from_value(why)?));
        }
        if let Ok(why) = serde::get_field(value, "error") {
            return Ok(ServeReply::Error(String::from_value(why)?));
        }
        bool::from_value(serde::get_field(value, "bye")?)?;
        Ok(ServeReply::Bye)
    }
}

/// The verbs a serve front door answers — its [`Hello`] roster, so a
/// probing client can tell a service endpoint from a worker endpoint.
fn serve_roster() -> Vec<String> {
    ["submit", "status", "fetch", "cancel", "fleet", "shutdown"]
        .iter()
        .map(|s| (*s).to_string())
        .collect()
}

/// The wire front door: a listener answering [`ServeRequest`] frames
/// against an embedded [`ReplayService`], one thread per connection.
///
/// On accept the server sends a [`Hello`] (protocol
/// [`WIRE_VERSION`](crate::wire::WIRE_VERSION), roster = the serve
/// verbs), mirroring the
/// worker handshake so clients fail loudly on version skew. Stop with
/// [`stop`](Self::stop); a client's `Shutdown` request sets
/// [`shutdown_requested`](Self::shutdown_requested) for the hosting
/// binary to observe — the server itself keeps serving until stopped, so
/// in-flight connections drain.
pub struct ServeServer {
    addr: WorkerAddr,
    service: Arc<ReplayService>,
    stop: Arc<AtomicBool>,
    shutdown_requested: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServeServer {
    /// Binds `addr` and starts accepting. TCP port `0` binds an ephemeral
    /// port; the resolved address is [`local_addr`](Self::local_addr).
    ///
    /// # Errors
    ///
    /// [`WorkerError::Spawn`] if the address cannot be bound.
    pub fn bind(addr: &WorkerAddr, service: ReplayService) -> Result<ServeServer, Error> {
        let (listener, local) = Listener::bind(addr)?;
        let service = Arc::new(service);
        let stop = Arc::new(AtomicBool::new(false));
        let shutdown_requested = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            let shutdown_requested = Arc::clone(&shutdown_requested);
            std::thread::spawn(move || loop {
                let stream = match listener.accept() {
                    Ok(stream) => stream,
                    Err(_) => break,
                };
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let service = Arc::clone(&service);
                let shutdown_requested = Arc::clone(&shutdown_requested);
                std::thread::spawn(move || {
                    let _ = serve_connection(&stream, &service, &shutdown_requested);
                });
            })
        };
        Ok(ServeServer {
            addr: local,
            service,
            stop,
            shutdown_requested,
            accept_thread: Some(accept_thread),
        })
    }

    /// The actually-bound address (the resolved port, for TCP `:0`) —
    /// what clients dial.
    pub fn local_addr(&self) -> &WorkerAddr {
        &self.addr
    }

    /// The embedded service, for in-process observation (tests, the
    /// hosting binary's banner).
    pub fn service(&self) -> &ReplayService {
        &self.service
    }

    /// Whether a client has asked the whole server to shut down
    /// ([`ServeRequest::Shutdown`]). The hosting binary polls this and
    /// calls [`stop`](Self::stop).
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown_requested.load(Ordering::SeqCst)
    }

    /// Stops accepting, joins the accept loop, and shuts the embedded
    /// [`ReplayService`] down (its executor finishes the running batch).
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // A blocked accept only wakes on a connection: poke ourselves.
        let _ = Stream::connect(&self.addr, Duration::from_millis(200));
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        self.service.shutdown();
        if let WorkerAddr::Uds(path) = &self.addr {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// One connection's request/reply loop.
fn serve_connection(
    stream: &Stream,
    service: &ReplayService,
    shutdown_requested: &AtomicBool,
) -> Result<(), Error> {
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(stream);
    wire::write_message(
        &mut writer,
        &Hello {
            version: wire::WIRE_VERSION,
            roster: serve_roster(),
        },
    )?;
    writer
        .flush()
        .map_err(|e| Error::Protocol(format!("flushing hello: {e}")))?;
    while let Some(request) = wire::read_message::<_, ServeRequest>(&mut reader)? {
        let reply = match request {
            ServeRequest::Submit(jobs) => match service.submit(jobs) {
                Ok(id) => ServeReply::Batch(id),
                Err(Error::Unavailable(why)) => ServeReply::Busy(why),
                Err(e) => ServeReply::Error(e.to_string()),
            },
            ServeRequest::Status(id) => match service.status(id) {
                Some(status) => ServeReply::Report(status),
                None => ServeReply::Error(format!("unknown batch id {id}")),
            },
            ServeRequest::Fetch(id) => match service.fetch(id) {
                Some(results) => ServeReply::Results(results),
                None => ServeReply::Error(format!("unknown batch id {id}")),
            },
            ServeRequest::Cancel(id) => ServeReply::Cancelled(service.cancel(id)),
            ServeRequest::Fleet(command) => match service.fleet(command) {
                Ok(report) => ServeReply::Fleet(report),
                Err(e) => ServeReply::Error(e.to_string()),
            },
            ServeRequest::Shutdown => {
                shutdown_requested.store(true, Ordering::SeqCst);
                ServeReply::Bye
            }
        };
        wire::write_message(&mut writer, &reply)?;
        writer
            .flush()
            .map_err(|e| Error::Protocol(format!("flushing reply: {e}")))?;
    }
    Ok(())
}

/// The caller side: one connection, strict request/reply, typed verbs.
pub struct ServeClient {
    stream: Stream,
    addr: String,
}

impl ServeClient {
    /// Connects to a [`ServeServer`] within `timeout` and completes the
    /// [`Hello`] handshake (version-range checked like a worker dial).
    ///
    /// # Errors
    ///
    /// [`WorkerError::Connect`] / [`WorkerError::Handshake`] with the
    /// typed cause.
    pub fn connect(addr: &WorkerAddr, timeout: Duration) -> Result<ServeClient, Error> {
        let stream = Stream::connect(addr, timeout).map_err(|e| WorkerError::Connect {
            addr: addr.to_string(),
            attempts: 1,
            cause: e.to_string(),
        })?;
        stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| WorkerError::Connect {
                addr: addr.to_string(),
                attempts: 1,
                cause: format!("setting read deadline: {e}"),
            })?;
        let addr = addr.to_string();
        let mut reader = BufReader::new(&stream);
        read_hello(&mut reader, &addr)?;
        Ok(ServeClient { stream, addr })
    }

    /// One request/reply round trip. A fresh reader per call is safe:
    /// the protocol is strictly one reply per request, so no bytes are in
    /// flight between calls.
    fn call(&mut self, request: &ServeRequest) -> Result<ServeReply, Error> {
        let mut writer = &self.stream;
        wire::write_message(&mut writer, request)?;
        writer
            .flush()
            .map_err(|e| Error::Protocol(format!("flushing request: {e}")))?;
        let mut reader = BufReader::new(&self.stream);
        match wire::read_message::<_, ServeReply>(&mut reader)? {
            Some(reply) => Ok(reply),
            None => Err(Error::Worker(WorkerError::Disconnect {
                addr: self.addr.clone(),
                cause: "stream closed with a reply outstanding".to_string(),
            })),
        }
    }

    fn unexpected(&self, got: &ServeReply) -> Error {
        Error::Protocol(format!(
            "service at {} answered with an unexpected frame: {got:?}",
            self.addr
        ))
    }

    /// Submits a batch, returning its id.
    ///
    /// # Errors
    ///
    /// [`Error::Unavailable`] under back-pressure (nothing was enqueued),
    /// [`Error::Worker`] for transport failures.
    pub fn submit(&mut self, jobs: &[JobSpec]) -> Result<u64, Error> {
        match self.call(&ServeRequest::Submit(jobs.to_vec()))? {
            ServeReply::Batch(id) => Ok(id),
            ServeReply::Busy(why) => Err(Error::Unavailable(why)),
            ServeReply::Error(why) => Err(Error::Worker(WorkerError::Remote(why))),
            other => Err(self.unexpected(&other)),
        }
    }

    /// The batch's current [`BatchStatus`].
    ///
    /// # Errors
    ///
    /// [`WorkerError::Remote`] for an unknown id, [`Error::Worker`] for
    /// transport failures.
    pub fn status(&mut self, id: u64) -> Result<BatchStatus, Error> {
        match self.call(&ServeRequest::Status(id))? {
            ServeReply::Report(status) => Ok(status),
            ServeReply::Error(why) => Err(Error::Worker(WorkerError::Remote(why))),
            other => Err(self.unexpected(&other)),
        }
    }

    /// The batch's per-job results so far (incremental; pending jobs come
    /// back as [`JobResult::Pending`]).
    ///
    /// # Errors
    ///
    /// [`WorkerError::Remote`] for an unknown id, [`Error::Worker`] for
    /// transport failures.
    pub fn fetch(&mut self, id: u64) -> Result<Vec<JobResult>, Error> {
        match self.call(&ServeRequest::Fetch(id))? {
            ServeReply::Results(results) => Ok(results),
            ServeReply::Error(why) => Err(Error::Worker(WorkerError::Remote(why))),
            other => Err(self.unexpected(&other)),
        }
    }

    /// Requests cancellation; returns whether it took hold (see
    /// [`ReplayService::cancel`]).
    ///
    /// # Errors
    ///
    /// [`Error::Worker`] for transport failures.
    pub fn cancel(&mut self, id: u64) -> Result<bool, Error> {
        match self.call(&ServeRequest::Cancel(id))? {
            ServeReply::Cancelled(took) => Ok(took),
            ServeReply::Error(why) => Err(Error::Worker(WorkerError::Remote(why))),
            other => Err(self.unexpected(&other)),
        }
    }

    /// Runs a fleet-supervision command (see [`ReplayService::fleet`]),
    /// returning the post-command [`FleetReport`].
    ///
    /// # Errors
    ///
    /// [`WorkerError::Remote`] when the service refuses the command
    /// (non-socket backend, bad address, last lane), [`Error::Worker`]
    /// for transport failures.
    pub fn fleet(&mut self, command: FleetCommand) -> Result<FleetReport, Error> {
        match self.call(&ServeRequest::Fleet(command))? {
            ServeReply::Fleet(report) => Ok(report),
            ServeReply::Error(why) => Err(Error::Worker(WorkerError::Remote(why))),
            other => Err(self.unexpected(&other)),
        }
    }

    /// Asks the whole server to shut down (acknowledged before the
    /// server's hosting binary acts on it).
    ///
    /// # Errors
    ///
    /// [`Error::Worker`] for transport failures.
    pub fn shutdown(&mut self) -> Result<(), Error> {
        match self.call(&ServeRequest::Shutdown)? {
            ServeReply::Bye => Ok(()),
            other => Err(self.unexpected(&other)),
        }
    }

    /// Polls [`status`](Self::status) every `poll` until the batch
    /// reaches a terminal state (`done` / `failed` / `cancelled`),
    /// returning the final report.
    ///
    /// # Errors
    ///
    /// [`WorkerError::Timeout`] if `deadline` elapses first; any
    /// [`status`](Self::status) error.
    pub fn wait(
        &mut self,
        id: u64,
        poll: Duration,
        deadline: Duration,
    ) -> Result<BatchStatus, Error> {
        let started = Instant::now();
        loop {
            let status = self.status(id)?;
            if matches!(status.state.as_str(), "done" | "failed" | "cancelled") {
                return Ok(status);
            }
            if started.elapsed() >= deadline {
                return Err(Error::Worker(WorkerError::Timeout {
                    addr: self.addr.clone(),
                    cause: format!("batch {id} still `{}` after {:?}", status.state, deadline),
                }));
            }
            std::thread::sleep(poll);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::batch::ReplayPool;
    use crate::engine::dispatch::{derived_jobs, LaneReport, SpecPool};
    use crate::gen::RandomInstanceConfig;
    use crate::spec::{run_spec, AlgorithmSpec, CoreResolver, ScenarioSpec};

    fn jobs(n: u64) -> Vec<JobSpec> {
        derived_jobs(
            &ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(18, 45, 3)),
            &AlgorithmSpec::RandPr,
            11,
            n,
        )
    }

    fn service() -> ReplayService {
        ReplayService::new(
            Box::new(SpecPool::new(ReplayPool::new(2), CoreResolver)),
            ServiceConfig {
                queue_capacity: 4,
                chunk: 3,
                ..ServiceConfig::default()
            },
        )
        .expect("in-memory service never fails to start")
    }

    fn wait_terminal(service: &ReplayService, id: u64) -> BatchStatus {
        let started = Instant::now();
        loop {
            let status = service.status(id).expect("batch exists");
            if matches!(status.state.as_str(), "done" | "failed" | "cancelled") {
                return status;
            }
            assert!(started.elapsed() < Duration::from_secs(60), "batch stuck");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn digests_are_canonical_and_distinguish_specs() {
        let a = jobs(2);
        assert_eq!(
            job_digest(&a[0]).unwrap(),
            job_digest(&a[0].clone()).unwrap()
        );
        assert_ne!(job_digest(&a[0]).unwrap(), job_digest(&a[1]).unwrap());
    }

    #[test]
    fn submit_runs_bit_identical_to_sequential_and_caches_resubmits() {
        let service = service();
        let batch = jobs(5);
        let want: Vec<Outcome> = batch
            .iter()
            .map(|j| run_spec(j, &CoreResolver).unwrap())
            .collect();

        let first = service.submit(batch.clone()).unwrap();
        let status = wait_terminal(&service, first);
        assert_eq!(status.state, "done");
        assert_eq!(status.answered, 5);
        assert_eq!(status.cached, 0);
        assert_eq!(status.cache_misses, 5);
        let results = service.fetch(first).unwrap();
        for (result, want) in results.iter().zip(&want) {
            match result {
                JobResult::Ok(got) => assert_eq!(got, want),
                other => panic!("expected an outcome, got {other:?}"),
            }
        }

        // Identical batch again: answered from the cache, bit-identical.
        let second = service.submit(batch).unwrap();
        let status = wait_terminal(&service, second);
        assert_eq!(status.state, "done");
        assert_eq!(status.cached, 5, "resubmission must hit the cache");
        assert_eq!(status.cache_hits, 5);
        assert!(status.jobs.iter().all(|s| s == "cached"));
        let results = service.fetch(second).unwrap();
        for (result, want) in results.iter().zip(&want) {
            match result {
                JobResult::Ok(got) => assert_eq!(got, want),
                other => panic!("expected an outcome, got {other:?}"),
            }
        }
        service.shutdown();
    }

    #[test]
    fn unknown_ids_and_cancel_semantics() {
        let service = service();
        assert!(service.status(999).is_none());
        assert!(service.fetch(999).is_none());
        assert!(!service.cancel(999));
        let id = service.submit(jobs(3)).unwrap();
        let status = wait_terminal(&service, id);
        assert_eq!(status.state, "done");
        // Terminal batches don't cancel.
        assert!(!service.cancel(id));
        service.shutdown();
    }

    #[test]
    fn failed_jobs_mark_the_batch_failed_but_keep_good_outcomes() {
        let service = service();
        let mut batch = jobs(2);
        // An infeasible generator config: capacity 4 demanded from 2 sets.
        batch.push(JobSpec {
            scenario: ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(2, 5, 4)),
            algorithm: AlgorithmSpec::RandPr,
            seed: 0,
        });
        let id = service.submit(batch.clone()).unwrap();
        let status = wait_terminal(&service, id);
        assert_eq!(status.state, "failed");
        assert_eq!(status.failed, 1);
        assert_eq!(status.answered, 3);
        assert_eq!(status.jobs[2], "failed");
        let results = service.fetch(id).unwrap();
        assert!(matches!(results[0], JobResult::Ok(_)));
        assert!(matches!(results[2], JobResult::Err(_)));
        // Errors are not cached: resubmitting the bad spec recomputes it.
        let again = service.submit(batch).unwrap();
        let status = wait_terminal(&service, again);
        assert_eq!(status.cached, 2, "only the two good jobs hit the cache");
        service.shutdown();
    }

    #[test]
    fn shutdown_rejects_new_submissions() {
        let service = service();
        service.shutdown();
        let err = service.submit(jobs(1)).unwrap_err();
        assert!(matches!(err, Error::Unavailable(_)), "got {err:?}");
    }

    fn temp_state_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("osp-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn persistent_service(dir: &Path) -> ReplayService {
        ReplayService::new(
            Box::new(SpecPool::new(ReplayPool::new(2), CoreResolver)),
            ServiceConfig {
                queue_capacity: 4,
                chunk: 2,
                state_dir: Some(dir.to_path_buf()),
                ..ServiceConfig::default()
            },
        )
        .expect("persistent service opens")
    }

    #[test]
    fn journaled_results_survive_a_restart_and_serve_as_cache_hits() {
        let dir = temp_state_dir("restart");
        let batch = jobs(5);
        let want: Vec<Outcome> = batch
            .iter()
            .map(|j| run_spec(j, &CoreResolver).unwrap())
            .collect();
        {
            let service = persistent_service(&dir);
            let id = service.submit(batch.clone()).unwrap();
            let status = wait_terminal(&service, id);
            assert_eq!(status.state, "done");
            assert_eq!(status.cached, 0);
            service.shutdown();
        }
        let service = persistent_service(&dir);
        let id = service.submit(batch).unwrap();
        let status = wait_terminal(&service, id);
        assert_eq!(status.state, "done");
        assert_eq!(status.cached, 5, "a restart must reload the journal");
        let results = service.fetch(id).unwrap();
        for (result, want) in results.iter().zip(&want) {
            match result {
                JobResult::Ok(got) => {
                    assert_eq!(got, want, "journal round trip must be bit-identical")
                }
                other => panic!("expected an outcome, got {other:?}"),
            }
        }
        service.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn an_interrupted_manifest_resumes_computing_only_missing_jobs() {
        let dir = temp_state_dir("resume");
        let batch = jobs(4);
        let want: Vec<Outcome> = batch
            .iter()
            .map(|j| run_spec(j, &CoreResolver).unwrap())
            .collect();
        // Forge the post-crash state by hand: the journal holds the first
        // two outcomes, and a manifest says batch 9 never finished.
        {
            let mut store = JournalStore::open(&dir, StoreLimits::default()).unwrap();
            for (job, outcome) in batch.iter().zip(&want).take(2) {
                store.put(job_digest(job).unwrap(), outcome);
            }
            store.flush();
        }
        write_manifest(&dir, &BatchManifest::new(9, &batch));

        let service = persistent_service(&dir);
        let status = wait_terminal(&service, 9);
        assert_eq!(status.state, "done");
        assert_eq!(status.cached, 2, "journaled jobs must not recompute");
        assert_eq!(status.cache_misses, 2);
        let results = service.fetch(9).unwrap();
        for (result, want) in results.iter().zip(&want) {
            match result {
                JobResult::Ok(got) => assert_eq!(got, want, "resume must be bit-identical"),
                other => panic!("expected an outcome, got {other:?}"),
            }
        }
        // Fresh ids continue after the resumed one, and a finished batch
        // leaves no manifest to resume again.
        let next = service.submit(jobs(1)).unwrap();
        assert_eq!(next, 10);
        wait_terminal(&service, next);
        service.shutdown();
        assert!(
            !manifest_path(&dir, 9).exists(),
            "terminal batches drop their manifest"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_bounded_cache_evicts_and_reports_it() {
        let service = ReplayService::new(
            Box::new(SpecPool::new(ReplayPool::new(2), CoreResolver)),
            ServiceConfig {
                queue_capacity: 4,
                chunk: 3,
                cache_entries: 2,
                ..ServiceConfig::default()
            },
        )
        .expect("bounded service starts");
        let id = service.submit(jobs(5)).unwrap();
        let status = wait_terminal(&service, id);
        assert_eq!(status.state, "done");
        assert!(
            status.cache_evictions >= 3,
            "five results through a two-entry cache must evict; status: {status:?}"
        );
        service.shutdown();
    }

    #[test]
    fn fleet_commands_are_refused_off_the_socket_backend() {
        let service = service();
        let err = service.fleet(FleetCommand::Status).unwrap_err();
        assert!(matches!(err, Error::Unavailable(_)), "got {err:?}");
        service.shutdown();
    }

    #[test]
    fn serve_frames_round_trip() {
        let requests = vec![
            ServeRequest::Submit(jobs(2)),
            ServeRequest::Status(7),
            ServeRequest::Fetch(8),
            ServeRequest::Cancel(9),
            ServeRequest::Fleet(FleetCommand::Status),
            ServeRequest::Fleet(FleetCommand::Add("127.0.0.1:7411".into())),
            ServeRequest::Fleet(FleetCommand::Remove("uds:/tmp/w0.sock".into())),
            ServeRequest::Fleet(FleetCommand::Probe),
            ServeRequest::Shutdown,
        ];
        let mut buf = Vec::new();
        for r in &requests {
            wire::write_message(&mut buf, r).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for want in &requests {
            let got: ServeRequest = wire::read_message(&mut cursor).unwrap().unwrap();
            assert_eq!(&got, want);
        }

        let outcome = run_spec(&jobs(1)[0], &CoreResolver).unwrap();
        let replies = vec![
            ServeReply::Batch(3),
            ServeReply::Report(BatchStatus {
                id: 3,
                state: "running".into(),
                total: 2,
                answered: 1,
                failed: 0,
                cached: 1,
                jobs: vec!["cached".into(), "pending".into()],
                cache_hits: 4,
                cache_misses: 2,
                cache_evictions: 1,
                excluded: vec!["127.0.0.1:9: boom".into()],
                workers_rejoined: 1,
                worker_probes: 3,
            }),
            ServeReply::Results(vec![
                JobResult::Ok(outcome),
                JobResult::Err("bad".into()),
                JobResult::Pending,
            ]),
            ServeReply::Cancelled(true),
            ServeReply::Fleet(FleetReport {
                lanes: vec![
                    LaneReport {
                        addr: "127.0.0.1:7411".into(),
                        state: "up".into(),
                        failures: 0,
                        cause: String::new(),
                    },
                    LaneReport {
                        addr: "127.0.0.1:7412".into(),
                        state: "excluded".into(),
                        failures: 2,
                        cause: "connect refused".into(),
                    },
                ],
                rejoined: 1,
                probes: 4,
            }),
            ServeReply::Bye,
            ServeReply::Busy("queue full".into()),
            ServeReply::Error("unknown batch".into()),
        ];
        let mut buf = Vec::new();
        for r in &replies {
            wire::write_message(&mut buf, r).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for want in &replies {
            let got: ServeReply = wire::read_message(&mut cursor).unwrap().unwrap();
            assert_eq!(&got, want);
        }
    }

    #[test]
    fn server_and_client_round_trip_over_tcp() {
        let server = ServeServer::bind(&WorkerAddr::Tcp("127.0.0.1:0".into()), service()).unwrap();
        let addr = server.local_addr().clone();
        let mut client = ServeClient::connect(&addr, Duration::from_secs(10)).unwrap();
        let batch = jobs(4);
        let want: Vec<Outcome> = batch
            .iter()
            .map(|j| run_spec(j, &CoreResolver).unwrap())
            .collect();
        let id = client.submit(&batch).unwrap();
        let status = client
            .wait(id, Duration::from_millis(10), Duration::from_secs(60))
            .unwrap();
        assert_eq!(status.state, "done");
        let results = client.fetch(id).unwrap();
        assert_eq!(results.len(), 4);
        for (result, want) in results.iter().zip(&want) {
            match result {
                JobResult::Ok(got) => assert_eq!(got, want),
                other => panic!("expected an outcome, got {other:?}"),
            }
        }
        // Unknown ids are remote errors, not transport failures.
        let err = client.status(999).unwrap_err();
        assert!(
            matches!(err, Error::Worker(WorkerError::Remote(_))),
            "got {err:?}"
        );
        assert!(!server.shutdown_requested());
        client.shutdown().unwrap();
        assert!(server.shutdown_requested());
        server.stop();
        assert!(ServeClient::connect(&addr, Duration::from_millis(300)).is_err());
    }
}
