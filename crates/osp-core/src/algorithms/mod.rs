//! Online algorithms for OSP: the paper's `randPr` (centralized and
//! distributed) and the baselines it is compared against.
//!
//! | Algorithm | Source | Character |
//! |-----------|--------|-----------|
//! | [`RandPr`] | §3.1 | one random priority per set from `R_w`; provably `k_max√σ_max`-competitive |
//! | [`HashRandPr`] | §3.1 | same, but priorities from a shared limited-independence hash — runs identically on every distributed server |
//! | [`GreedyOnline`] | folklore | deterministic; keeps the best *active* sets under a [`TieBreak`] policy; Theorem 3 victim |
//! | [`RandomAssign`] | ablation | a fresh coin per element; shows why randPr's *consistent* priorities matter |

mod greedy;
mod hash_pr;
mod oracle;
mod rand_pr;
mod random_assign;

pub use greedy::{GreedyOnline, TieBreak};
pub use hash_pr::HashRandPr;
pub use oracle::OracleOnline;
pub use rand_pr::RandPr;
pub use random_assign::RandomAssign;

use crate::SetId;

/// Picks the (up to) `b` member sets with the largest keys, deterministically
/// (keys must be totally ordered and unique, which all callers guarantee via
/// tiebreak tokens).
pub(crate) fn top_b_by_key<K: Ord + Copy>(
    members: &[SetId],
    b: usize,
    mut key: impl FnMut(SetId) -> K,
) -> Vec<SetId> {
    if members.len() <= b {
        return members.to_vec();
    }
    let mut keyed: Vec<(K, SetId)> = members.iter().map(|&s| (key(s), s)).collect();
    // Highest keys first; select the top b in O(σ) average time.
    keyed.select_nth_unstable_by(b - 1, |x, y| y.0.cmp(&x.0));
    keyed.truncate(b);
    keyed.into_iter().map(|(_, s)| s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_b_selects_largest() {
        let members: Vec<SetId> = (0..6).map(SetId).collect();
        let keys = [3u64, 9, 1, 7, 5, 2];
        let mut picked = top_b_by_key(&members, 2, |s| keys[s.index()]);
        picked.sort_unstable();
        assert_eq!(picked, vec![SetId(1), SetId(3)]);
    }

    #[test]
    fn top_b_with_fewer_members_returns_all() {
        let members = vec![SetId(4), SetId(2)];
        let picked = top_b_by_key(&members, 5, |s| s.0);
        assert_eq!(picked, members);
    }

    #[test]
    fn top_b_exact_size() {
        let members = vec![SetId(0), SetId(1)];
        let picked = top_b_by_key(&members, 2, |s| s.0);
        assert_eq!(picked.len(), 2);
    }
}
