//! Online algorithms for OSP: the paper's `randPr` (centralized and
//! distributed) and the baselines it is compared against.
//!
//! | Algorithm | Source | Character |
//! |-----------|--------|-----------|
//! | [`RandPr`] | §3.1 | one random priority per set from `R_w`; provably `k_max√σ_max`-competitive |
//! | [`HashRandPr`] | §3.1 | same, but priorities from a shared limited-independence hash — runs identically on every distributed server |
//! | [`GreedyOnline`] | folklore | deterministic; keeps the best *active* sets under a [`TieBreak`] policy; Theorem 3 victim |
//! | [`RandomAssign`] | ablation | a fresh coin per element; shows why randPr's *consistent* priorities matter |
//!
//! All implementations write their decision through
//! [`OnlineAlgorithm::decide_into`](crate::OnlineAlgorithm::decide_into)
//! directly into the engine's recycled buffer — the per-arrival hot path
//! allocates nothing.

mod greedy;
mod hash_pr;
mod oracle;
mod rand_pr;
mod random_assign;

pub use greedy::{GreedyOnline, TieBreak};
pub use hash_pr::HashRandPr;
pub use oracle::OracleOnline;
pub use rand_pr::RandPr;
pub use random_assign::RandomAssign;

use crate::SetId;

/// The one comparator core every top-`b` pruning path rides: partitions
/// `items` so the `b` largest-keyed entries occupy `items[..b]`, via a
/// single `select_nth_unstable_by` call with the descending-key
/// comparator. The resulting permutation is a deterministic function of
/// the item count and the *key order alone* (the selection is purely
/// comparison-based), so every caller that presents the same keys in the
/// same positions — a table lookup ([`retain_top_b_by_key`]), a bulk
/// score pass ([`retain_top_b_scored`]), or a sharded parallel score fill
/// ([`fill_sharded`](crate::engine::parallel::fill_sharded), the third
/// caller) — gets the same survivors in the same order, which is what
/// keeps decisions bit-identical across scoring strategies and thread
/// counts. Keys must be totally ordered and unique (all callers guarantee
/// uniqueness via tiebreak tokens).
#[inline]
pub(crate) fn select_top_b<T, K: Ord>(items: &mut [T], b: usize, mut key: impl FnMut(&T) -> K) {
    // Highest keys first; selects the top b in O(len) average time.
    items.select_nth_unstable_by(b - 1, |x, y| key(y).cmp(&key(x)));
}

/// Retains the (up to) `b` candidates with the largest keys, in place and
/// without allocating, deterministically ([`select_top_b`]'s contract).
/// Callers stage the candidate list in `out` (the engine's recycled
/// decision buffer) and this prunes it to the winners.
pub(crate) fn retain_top_b_by_key<K: Ord>(
    out: &mut Vec<SetId>,
    b: usize,
    mut key: impl FnMut(SetId) -> K,
) {
    if out.len() <= b {
        return;
    }
    select_top_b(out, b, |&s| key(s));
    out.truncate(b);
}

/// [`retain_top_b_by_key`] for callers that score candidates in bulk
/// instead of looking keys up per comparison. When pruning is needed
/// (`out.len() > b` — the same early-exit as the table path), `score` is
/// called once to fill `scored` with one `(key, id)` pair per candidate,
/// position-aligned with `out` (pushed serially or written in parallel
/// ranges by [`fill_sharded`](crate::engine::parallel::fill_sharded) —
/// either way the buffer contents are identical); the top `b` pairs are
/// then selected with the *same* [`select_top_b`] comparator decisions
/// the table path makes (keys compare identically regardless of where
/// they are stored), so the surviving ids — and their order — are
/// bit-identical to scoring through a precomputed table. `scored` is
/// caller-owned scratch so the per-arrival hot path stays allocation-free
/// once it has grown to the widest arrival.
pub(crate) fn retain_top_b_scored<K: Ord + Copy>(
    out: &mut Vec<SetId>,
    b: usize,
    scored: &mut Vec<(K, SetId)>,
    score: impl FnOnce(&[SetId], &mut Vec<(K, SetId)>),
) {
    if out.len() <= b {
        return;
    }
    scored.clear();
    score(out, scored);
    debug_assert_eq!(scored.len(), out.len(), "score must cover every candidate");
    select_top_b(scored, b, |p| p.0);
    out.clear();
    out.extend(scored[..b].iter().map(|&(_, s)| s));
}

/// In-place partial Fisher–Yates: prunes the staged candidates in `out` to
/// a uniform random `min(b, out.len())`-subset, consuming exactly the RNG
/// stream of the vendored `rand::seq::index::sample` — the
/// allocation-free, seed-compatible replacement for `choose_multiple` that
/// [`RandomAssign`] (and osp-net's `RandomDrop`) use in `decide_into`.
/// Kept as the single canonical copy so the draw sequence cannot drift
/// between call sites.
pub fn sample_in_place<R: rand::RngCore + ?Sized>(out: &mut Vec<SetId>, b: usize, rng: &mut R) {
    let n = out.len();
    let b = b.min(n);
    for i in 0..b {
        let j = i + (rng.next_u64() % (n - i) as u64) as usize;
        out.swap(i, j);
    }
    out.truncate(b);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_in_place_matches_vendored_choose_multiple() {
        use rand::rngs::StdRng;
        use rand::seq::SliceRandom;
        use rand::{RngCore, SeedableRng};
        let pool: Vec<SetId> = (0..9).map(SetId).collect();
        for seed in 0..50u64 {
            for b in [0usize, 1, 4, 9, 12] {
                let mut reference_rng = StdRng::seed_from_u64(seed);
                let want: Vec<SetId> = pool
                    .choose_multiple(&mut reference_rng, b)
                    .copied()
                    .collect();
                let mut rng = StdRng::seed_from_u64(seed);
                let mut got = pool.clone();
                sample_in_place(&mut got, b, &mut rng);
                assert_eq!(got, want, "seed {seed}, b {b}");
                // And the two consumed the same number of draws.
                assert_eq!(rng.next_u64(), reference_rng.next_u64());
            }
        }
    }

    #[test]
    fn top_b_selects_largest() {
        let mut picked: Vec<SetId> = (0..6).map(SetId).collect();
        let keys = [3u64, 9, 1, 7, 5, 2];
        retain_top_b_by_key(&mut picked, 2, |s| keys[s.index()]);
        picked.sort_unstable();
        assert_eq!(picked, vec![SetId(1), SetId(3)]);
    }

    #[test]
    fn top_b_with_fewer_members_keeps_all() {
        let mut picked = vec![SetId(4), SetId(2)];
        retain_top_b_by_key(&mut picked, 5, |s| s.0);
        assert_eq!(picked, vec![SetId(4), SetId(2)]);
    }

    #[test]
    fn top_b_exact_size() {
        let mut picked = vec![SetId(0), SetId(1)];
        retain_top_b_by_key(&mut picked, 2, |s| s.0);
        assert_eq!(picked.len(), 2);
    }

    proptest::proptest! {
        /// All three callers of the [`select_top_b`] comparator core — the
        /// table-lookup path, the serial bulk-score path, and the sharded
        /// parallel score fill — must produce the same survivor *sequence*
        /// (the order is observable in the `DecisionLog`), at any thread
        /// count.
        #[test]
        fn three_retain_paths_pin_the_same_survivor_sequence(
            raw in proptest::collection::vec(0u64..1_000, 1..80),
            b in 1usize..24,
            threads in 1usize..6,
        ) {
            // Make keys unique (the callers' tiebreak-token guarantee)
            // while keeping plenty of near-collisions from the raw draw.
            let keys: Vec<u64> = raw
                .iter()
                .enumerate()
                .map(|(i, &k)| k * 128 + i as u64)
                .collect();
            let ids: Vec<SetId> = (0..keys.len()).map(|i| SetId(i as u32)).collect();

            let mut by_key = ids.clone();
            retain_top_b_by_key(&mut by_key, b, |s| keys[s.index()]);

            let mut serial = ids.clone();
            let mut scored: Vec<(u64, SetId)> = Vec::new();
            retain_top_b_scored(&mut serial, b, &mut scored, |candidates, scored| {
                scored.extend(candidates.iter().map(|&s| (keys[s.index()], s)));
            });

            let mut sharded = ids.clone();
            let mut scored2: Vec<(u64, SetId)> = Vec::new();
            retain_top_b_scored(&mut sharded, b, &mut scored2, |candidates, scored| {
                crate::engine::parallel::fill_sharded(
                    scored,
                    candidates.len(),
                    (0u64, SetId(0)),
                    threads,
                    &|start, slots| {
                        for (j, slot) in slots.iter_mut().enumerate() {
                            let s = candidates[start + j];
                            *slot = (keys[s.index()], s);
                        }
                    },
                );
            });

            proptest::prop_assert_eq!(&serial, &by_key);
            proptest::prop_assert_eq!(&sharded, &by_key);
        }
    }
}
