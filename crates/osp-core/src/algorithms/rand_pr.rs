//! Algorithm `randPr` (§3.1): random priorities from `R_w`, highest wins.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::algorithm::{EngineView, OnlineAlgorithm};
use crate::engine::parallel::{fill_sharded, SHARDED_DECIDE_MIN};
use crate::engine::prologue;
use crate::instance::{Arrival, SetMeta};
use crate::priority::{Priority, Rw};
use crate::SetId;

use super::{retain_top_b_by_key, retain_top_b_scored};

/// Draws consumed from the priority stream for one set: `R_w` rejects
/// non-finite / non-positive weights without touching the RNG, and every
/// valid weight costs exactly two draws (the quantile sample plus the
/// tiebreak token). Being able to state this *without* running the
/// generator is what lets the parallel prologue jump each shard's RNG
/// clone straight to its offset.
#[inline]
fn draws_for(set: &SetMeta) -> u64 {
    if Rw::new(set.weight()).is_ok() {
        2
    } else {
        0
    }
}

/// The paper's randomized algorithm:
///
/// > For each set `S ∈ C`, pick a random priority `r(S)` according to the
/// > distribution `R_{w(S)}`. Upon arrival of element `u` listing parent
/// > sets `C(u)` and capacity `b(u)`: assign `u` to the `b(u)` sets with the
/// > highest priority in `C(u)`.
///
/// Guarantees (all verified empirically by the `osp-bench` experiments):
/// `Pr[S completes] = w(S)/w(N[S])` under unit capacity (Lemma 1), and
/// competitive ratio at most `k_max·sqrt(σ·σ̄$ / σ̄$)` (Theorem 1), hence at
/// most `k_max·sqrt(σ_max)` (Corollary 6).
///
/// The optional *active filter* (an ablation, **not** the paper's
/// algorithm) restricts the choice to still-completable sets; it can only
/// help, and the `A2` experiment quantifies by how much.
///
/// # Examples
///
/// ```
/// use osp_core::prelude::*;
///
/// let mut b = InstanceBuilder::new();
/// let s = b.add_set(1.0, 1);
/// b.add_element(1, &[s]);
/// let inst = b.build()?;
/// let out = run(&inst, &mut RandPr::from_seed(0))?;
/// assert_eq!(out.benefit(), 1.0); // uncontended element always completes
/// # Ok::<(), osp_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct RandPr {
    rng: StdRng,
    priorities: Vec<Priority>,
    active_filter: bool,
    /// Recycled candidate-scoring buffer for the sharded decision kernel
    /// (grows to the widest sharded arrival once, then stays warm).
    scored: Vec<(Priority, SetId)>,
    /// Sharded-decide fan-out announced by the pipelined replay
    /// ([`OnlineAlgorithm::set_decision_threads`]); 1 = serial scoring.
    decide_threads: usize,
}

impl RandPr {
    /// The paper's algorithm with a seeded RNG.
    pub fn from_seed(seed: u64) -> Self {
        RandPr {
            rng: StdRng::seed_from_u64(seed),
            priorities: Vec::new(),
            active_filter: false,
            scored: Vec::new(),
            decide_threads: 1,
        }
    }

    /// Ablation variant that only ever assigns to still-active sets.
    pub fn with_active_filter(seed: u64) -> Self {
        RandPr {
            active_filter: true,
            ..RandPr::from_seed(seed)
        }
    }

    /// The priority drawn for `set` (after [`begin`](OnlineAlgorithm::begin)).
    ///
    /// # Panics
    ///
    /// Panics if called before the run started or with an out-of-range id.
    pub fn priority(&self, set: SetId) -> Priority {
        self.priorities[set.index()]
    }

    /// Draws the priority table over an explicit prologue thread count —
    /// the seam [`begin`](OnlineAlgorithm::begin) rides with the
    /// `OSP_PROLOGUE_THREADS` policy value, exposed so conformance tests
    /// can pin any shard count without touching the process environment.
    ///
    /// Bit-identity across shard counts: the SplitMix64 stream is
    /// random-access ([`StdRng::advance`]), and each set's stream
    /// consumption is known without generating (`draws_for`: two draws per
    /// positive-weight set, none otherwise), so every shard clones
    /// the base RNG, jumps to the draw offset of its first set, and then
    /// walks its range exactly as the serial loop would. Afterwards the
    /// algorithm's own RNG is advanced past the whole table, leaving it
    /// where a sequential `begin` would have.
    pub fn begin_with_threads(&mut self, sets: &[SetMeta], threads: usize) {
        let base = self.rng.clone();
        self.priorities = prologue::build_table(
            sets.len(),
            Priority::zero(),
            threads,
            &|start, slots: &mut [Priority]| {
                let mut rng = base.clone();
                rng.advance(sets[..start].iter().map(draws_for).sum());
                for (slot, s) in slots.iter_mut().zip(&sets[start..]) {
                    *slot = match Rw::new(s.weight()) {
                        // Tiebreak token makes the order total even under
                        // f64 ties.
                        Ok(rw) => Priority::new(rw.sample(&mut rng), rng.gen()),
                        // Weight-zero sets get the a.s. limit of R_w as
                        // w -> 0.
                        Err(_) => Priority::zero(),
                    };
                }
            },
        );
        self.rng.advance(sets.iter().map(draws_for).sum());
    }
}

impl OnlineAlgorithm for RandPr {
    fn name(&self) -> String {
        if self.active_filter {
            "randPr+active".into()
        } else {
            "randPr".into()
        }
    }

    fn begin(&mut self, sets: &[SetMeta]) {
        self.begin_with_threads(sets, prologue::threads_from_env());
    }

    fn decide_into(&mut self, arrival: &Arrival<'_>, view: &EngineView<'_>, out: &mut Vec<SetId>) {
        let b = arrival.capacity() as usize;
        if self.active_filter {
            // Stage the active members directly in the output buffer — no
            // intermediate `Vec` per query.
            out.extend(
                arrival
                    .members()
                    .iter()
                    .copied()
                    .filter(|&s| view.is_active(s)),
            );
        } else {
            out.extend_from_slice(arrival.members());
        }
        if self.decide_threads > 1 && out.len() >= SHARDED_DECIDE_MIN {
            // Sharded decide: fill the position-aligned scored pairs from
            // the table across scoped threads, then select with the exact
            // serial comparator sequence — bit-identical to the lookup
            // path below.
            let priorities = &self.priorities;
            let threads = self.decide_threads;
            retain_top_b_scored(out, b, &mut self.scored, |candidates, scored| {
                fill_sharded(
                    scored,
                    candidates.len(),
                    (Priority::zero(), SetId(0)),
                    threads,
                    &|start, slots| {
                        for (j, slot) in slots.iter_mut().enumerate() {
                            let s = candidates[start + j];
                            *slot = (priorities[s.index()], s);
                        }
                    },
                );
            });
        } else {
            retain_top_b_by_key(out, b, |s| self.priorities[s.index()]);
        }
    }

    fn set_decision_threads(&mut self, threads: usize) {
        self.decide_threads = threads.max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run;
    use crate::instance::InstanceBuilder;

    fn star_instance(load: usize) -> (crate::Instance, Vec<SetId>) {
        // `load` singleton sets all sharing one element.
        let mut b = InstanceBuilder::new();
        let ids: Vec<SetId> = (0..load).map(|_| b.add_set(1.0, 1)).collect();
        b.add_element(1, &ids);
        (b.build().unwrap(), ids)
    }

    #[test]
    fn exactly_one_winner_on_a_star() {
        let (inst, _) = star_instance(10);
        for seed in 0..20 {
            let out = run(&inst, &mut RandPr::from_seed(seed)).unwrap();
            assert_eq!(out.completed().len(), 1);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (inst, _) = star_instance(10);
        let a = run(&inst, &mut RandPr::from_seed(7)).unwrap();
        let b = run(&inst, &mut RandPr::from_seed(7)).unwrap();
        assert_eq!(a.completed(), b.completed());
    }

    #[test]
    fn different_seeds_eventually_pick_different_winners() {
        let (inst, _) = star_instance(10);
        let winners: std::collections::HashSet<SetId> = (0..50)
            .map(|seed| {
                run(&inst, &mut RandPr::from_seed(seed))
                    .unwrap()
                    .completed()[0]
            })
            .collect();
        assert!(winners.len() > 3, "only {} distinct winners", winners.len());
    }

    #[test]
    fn lemma_1_uniform_weights_on_star() {
        // On a star of σ unit-weight singletons, each wins w.p. 1/σ.
        let sigma = 5;
        let (inst, ids) = star_instance(sigma);
        let trials = 20_000;
        let mut wins = vec![0u32; sigma];
        for seed in 0..trials {
            let out = run(&inst, &mut RandPr::from_seed(seed as u64)).unwrap();
            wins[out.completed()[0].index()] += 1;
        }
        let expect = trials as f64 / sigma as f64;
        for (i, &w) in wins.iter().enumerate() {
            assert!(
                (w as f64 - expect).abs() < expect * 0.1,
                "set {} won {} times, expected ~{}",
                ids[i],
                w,
                expect
            );
        }
    }

    #[test]
    fn heavier_sets_win_proportionally_more() {
        // Two sets, weights 1 and 3, sharing one element:
        // Pr[heavy wins] = 3/4 by Lemma 1.
        let mut b = InstanceBuilder::new();
        let light = b.add_set(1.0, 1);
        let heavy = b.add_set(3.0, 1);
        b.add_element(1, &[light, heavy]);
        let inst = b.build().unwrap();
        let trials = 40_000;
        let mut heavy_wins = 0u32;
        for seed in 0..trials {
            let out = run(&inst, &mut RandPr::from_seed(seed as u64)).unwrap();
            if out.completed()[0] == heavy {
                heavy_wins += 1;
            }
        }
        let frac = heavy_wins as f64 / trials as f64;
        assert!((frac - 0.75).abs() < 0.02, "heavy won {frac}");
    }

    #[test]
    fn zero_weight_set_always_loses_contests() {
        let mut b = InstanceBuilder::new();
        let z = b.add_set(0.0, 1);
        let w = b.add_set(1.0, 1);
        b.add_element(1, &[z, w]);
        let inst = b.build().unwrap();
        for seed in 0..50 {
            let out = run(&inst, &mut RandPr::from_seed(seed)).unwrap();
            assert_eq!(out.completed(), &[w]);
        }
    }

    #[test]
    fn capacity_b_takes_b_sets() {
        let mut b = InstanceBuilder::new();
        let ids: Vec<SetId> = (0..6).map(|_| b.add_set(1.0, 1)).collect();
        b.add_element(3, &ids);
        let inst = b.build().unwrap();
        let out = run(&inst, &mut RandPr::from_seed(2)).unwrap();
        assert_eq!(out.completed().len(), 3);
    }

    #[test]
    fn active_filter_never_wastes_capacity_on_dead_sets() {
        // s0 dies at e0 (loses to s1); at e1, plain randPr may waste the
        // slot on s0, the filtered variant must give it to s2.
        let mut b = InstanceBuilder::new();
        let s0 = b.add_set(10.0, 2); // heavy: wins e0 priority-wise... unless
        let s1 = b.add_set(10.0, 1);
        let s2 = b.add_set(0.5, 1);
        b.add_element(1, &[s0, s1]);
        b.add_element(1, &[s0, s2]);
        let inst = b.build().unwrap();
        for seed in 0..100 {
            let mut alg = RandPr::with_active_filter(seed);
            let out = run(&inst, &mut alg).unwrap();
            // Whichever of s0/s1 lost e0 is dead; e1 must then not be
            // wasted: if s0 died, s2 completes.
            let s0_died = !out.is_completed(s0);
            if s0_died {
                assert!(
                    out.is_completed(s2),
                    "seed {seed}: filtered randPr wasted e1"
                );
            }
        }
    }

    #[test]
    fn names() {
        assert_eq!(RandPr::from_seed(0).name(), "randPr");
        assert_eq!(RandPr::with_active_filter(0).name(), "randPr+active");
    }

    #[test]
    fn prologue_shard_counts_draw_identical_tables() {
        // Mixed valid / zero weights so the jump-ahead must skip the
        // rejected sets' (absent) draws correctly; prime length so no
        // shard count divides evenly.
        let sets: Vec<SetMeta> = (0..151)
            .map(|i| SetMeta::new(if i % 4 == 0 { 0.0 } else { i as f64 }, 1))
            .collect();
        let mut reference = RandPr::from_seed(13);
        reference.begin_with_threads(&sets, 1);
        for threads in [2usize, 3, 8, 64] {
            let mut sharded = RandPr::from_seed(13);
            sharded.begin_with_threads(&sets, threads);
            assert_eq!(
                sharded.priorities, reference.priorities,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn parallel_begin_leaves_the_rng_where_serial_did() {
        // After begin, the algorithm's own RNG must sit exactly past the
        // table draws, whatever the shard count — a second begin must
        // therefore produce the same (different-from-first) table.
        let sets: Vec<SetMeta> = (0..37)
            .map(|i| SetMeta::new(if i % 5 == 0 { 0.0 } else { 1.5 }, 1))
            .collect();
        let mut serial = RandPr::from_seed(99);
        serial.begin_with_threads(&sets, 1);
        let first = serial.priorities.clone();
        serial.begin_with_threads(&sets, 1);
        let second = serial.priorities.clone();
        assert_ne!(first, second, "stream must advance between begins");

        let mut sharded = RandPr::from_seed(99);
        sharded.begin_with_threads(&sets, 8);
        assert_eq!(sharded.priorities, first);
        sharded.begin_with_threads(&sets, 3);
        assert_eq!(sharded.priorities, second);
    }
}
