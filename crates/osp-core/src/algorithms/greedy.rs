//! Deterministic greedy baselines.
//!
//! These are the natural deterministic policies a router implementer would
//! reach for, and the victims of the paper's Theorem 3 (every deterministic
//! online algorithm has competitive ratio at least `σ_max^(k_max−1)`). All
//! variants prefer *active* (still-completable) sets and break remaining
//! ties by ascending set id, so they are fully deterministic.

use crate::algorithm::{EngineView, OnlineAlgorithm};
use crate::engine::parallel::{fill_sharded, SHARDED_DECIDE_MIN};
use crate::instance::{Arrival, SetMeta};
use crate::SetId;

use super::{retain_top_b_by_key, retain_top_b_scored};

/// Ranking policy for [`GreedyOnline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TieBreak {
    /// Prefer heavier sets (`w(S)` descending).
    ByWeight,
    /// Prefer sets closest to completion (fewest remaining elements).
    ByFewestRemaining,
    /// Prefer sets that already received the most elements (sunk cost).
    ByMostProgress,
    /// Prefer sets with the highest weight density `w(S)/|S|`.
    ByDensity,
    /// First-fit: prefer the lowest set id.
    ByIndex,
}

impl TieBreak {
    /// All policies, for experiment sweeps.
    pub fn all() -> [TieBreak; 5] {
        [
            TieBreak::ByWeight,
            TieBreak::ByFewestRemaining,
            TieBreak::ByMostProgress,
            TieBreak::ByDensity,
            TieBreak::ByIndex,
        ]
    }

    fn label(self) -> &'static str {
        match self {
            TieBreak::ByWeight => "weight",
            TieBreak::ByFewestRemaining => "fewest-remaining",
            TieBreak::ByMostProgress => "most-progress",
            TieBreak::ByDensity => "density",
            TieBreak::ByIndex => "first-fit",
        }
    }
}

/// Deterministic greedy: assign each element to the best `b(u)` *active*
/// member sets under the chosen [`TieBreak`]; never waste capacity on dead
/// sets.
///
/// # Examples
///
/// ```
/// use osp_core::prelude::*;
///
/// let mut b = InstanceBuilder::new();
/// let cheap = b.add_set(1.0, 1);
/// let dear = b.add_set(9.0, 1);
/// b.add_element(1, &[cheap, dear]);
/// let inst = b.build()?;
/// let out = run(&inst, &mut GreedyOnline::new(TieBreak::ByWeight))?;
/// assert_eq!(out.completed(), &[dear]);
/// # Ok::<(), osp_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct GreedyOnline {
    policy: TieBreak,
    /// Recycled candidate-scoring buffer for the sharded decision kernel
    /// (grows to the widest sharded arrival once, then stays warm).
    scored: Vec<((u64, u32), SetId)>,
    /// Sharded-decide fan-out announced by the pipelined replay
    /// ([`OnlineAlgorithm::set_decision_threads`]); 1 = serial scoring.
    decide_threads: usize,
}

impl GreedyOnline {
    /// Creates the greedy baseline with the given ranking policy.
    pub fn new(policy: TieBreak) -> Self {
        GreedyOnline {
            policy,
            scored: Vec::new(),
            decide_threads: 1,
        }
    }

    /// The ranking policy in use.
    pub fn policy(&self) -> TieBreak {
        self.policy
    }
}

/// Ranking key: bigger is better. Ties broken by ascending id via the
/// reversed id component.
fn rank(policy: TieBreak, s: SetId, view: &EngineView<'_>) -> (u64, u32) {
    let id_asc = u32::MAX - s.0; // larger key = smaller id
    let key = match policy {
        TieBreak::ByWeight => view.set(s).weight().to_bits(),
        TieBreak::ByFewestRemaining => u64::from(u32::MAX - view.remaining(s)),
        TieBreak::ByMostProgress => u64::from(view.assigned(s)),
        TieBreak::ByDensity => (view.set(s).weight() / f64::from(view.set(s).size())).to_bits(),
        TieBreak::ByIndex => 0,
    };
    (key, id_asc)
}

impl OnlineAlgorithm for GreedyOnline {
    fn name(&self) -> String {
        format!("greedy[{}]", self.policy.label())
    }

    fn begin(&mut self, _sets: &[SetMeta]) {}

    fn decide_into(&mut self, arrival: &Arrival<'_>, view: &EngineView<'_>, out: &mut Vec<SetId>) {
        out.extend(
            arrival
                .members()
                .iter()
                .copied()
                .filter(|&s| view.is_active(s)),
        );
        let b = arrival.capacity() as usize;
        if self.decide_threads > 1 && out.len() >= SHARDED_DECIDE_MIN {
            // Sharded decide: rank the staged candidates into
            // position-aligned scored pairs across scoped threads, then
            // select with the exact serial comparator sequence —
            // bit-identical to the ranked lookup below (the rank of a
            // candidate is a pure function of the pre-decision view).
            let policy = self.policy;
            let threads = self.decide_threads;
            retain_top_b_scored(out, b, &mut self.scored, |candidates, scored| {
                fill_sharded(
                    scored,
                    candidates.len(),
                    ((0, 0), SetId(0)),
                    threads,
                    &|start, slots| {
                        for (j, slot) in slots.iter_mut().enumerate() {
                            let s = candidates[start + j];
                            *slot = (rank(policy, s, view), s);
                        }
                    },
                );
            });
        } else {
            retain_top_b_by_key(out, b, |s| rank(self.policy, s, view));
        }
    }

    fn set_decision_threads(&mut self, threads: usize) {
        self.decide_threads = threads.max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run;
    use crate::instance::InstanceBuilder;

    #[test]
    fn by_weight_prefers_heavy() {
        let mut b = InstanceBuilder::new();
        let s0 = b.add_set(1.0, 1);
        let s1 = b.add_set(2.0, 1);
        let s2 = b.add_set(3.0, 1);
        b.add_element(1, &[s0, s1, s2]);
        let inst = b.build().unwrap();
        let out = run(&inst, &mut GreedyOnline::new(TieBreak::ByWeight)).unwrap();
        assert_eq!(out.completed(), &[s2]);
    }

    #[test]
    fn by_fewest_remaining_prefers_nearly_done() {
        // s_long has 3 elements, s_short has 1; they clash on the last one.
        let mut b = InstanceBuilder::new();
        let s_long = b.add_set(1.0, 3);
        let s_short = b.add_set(1.0, 1);
        b.add_element(1, &[s_long]);
        b.add_element(1, &[s_long]);
        b.add_element(1, &[s_long, s_short]); // long has 1 remaining, short 1
        let inst = b.build().unwrap();
        // Equal remaining: ties break to lower id => s_long.
        let out = run(&inst, &mut GreedyOnline::new(TieBreak::ByFewestRemaining)).unwrap();
        assert_eq!(out.completed(), &[s_long]);
    }

    #[test]
    fn by_most_progress_prefers_invested() {
        let mut b = InstanceBuilder::new();
        let invested = b.add_set(1.0, 3);
        let fresh = b.add_set(1.0, 1);
        b.add_element(1, &[invested]);
        b.add_element(1, &[invested]);
        b.add_element(1, &[fresh, invested]);
        let inst = b.build().unwrap();
        let out = run(&inst, &mut GreedyOnline::new(TieBreak::ByMostProgress)).unwrap();
        assert_eq!(out.completed(), &[invested]);
    }

    #[test]
    fn by_density_prefers_weight_per_element() {
        let mut b = InstanceBuilder::new();
        let dense = b.add_set(2.0, 1); // density 2
        let heavy = b.add_set(3.0, 3); // density 1
        b.add_element(1, &[dense, heavy]);
        b.add_element(1, &[heavy]);
        b.add_element(1, &[heavy]);
        let inst = b.build().unwrap();
        let out = run(&inst, &mut GreedyOnline::new(TieBreak::ByDensity)).unwrap();
        assert_eq!(out.completed(), &[dense]);
    }

    #[test]
    fn first_fit_takes_lowest_id() {
        let mut b = InstanceBuilder::new();
        let s0 = b.add_set(1.0, 1);
        let s1 = b.add_set(100.0, 1);
        b.add_element(1, &[s0, s1]);
        let inst = b.build().unwrap();
        let out = run(&inst, &mut GreedyOnline::new(TieBreak::ByIndex)).unwrap();
        assert_eq!(out.completed(), &[s0]);
    }

    #[test]
    fn never_assigns_to_dead_sets() {
        // s0 dies at e0; e1 offers s0 (dead) and s1 (alive).
        let mut b = InstanceBuilder::new();
        let s0 = b.add_set(10.0, 2);
        let s1 = b.add_set(1.0, 1);
        let killer = b.add_set(20.0, 1);
        b.add_element(1, &[s0, killer]); // ByWeight picks killer; s0 dies
        b.add_element(1, &[s0, s1]);
        let inst = b.build().unwrap();
        let out = run(&inst, &mut GreedyOnline::new(TieBreak::ByWeight)).unwrap();
        assert!(out.is_completed(killer));
        assert!(out.is_completed(s1), "capacity must go to the live set");
    }

    #[test]
    fn deterministic_across_runs() {
        let mut b = InstanceBuilder::new();
        let ids: Vec<SetId> = (0..8).map(|i| b.add_set(1.0 + i as f64, 1)).collect();
        b.add_element(2, &ids);
        let inst = b.build().unwrap();
        for policy in TieBreak::all() {
            let a = run(&inst, &mut GreedyOnline::new(policy)).unwrap();
            let b2 = run(&inst, &mut GreedyOnline::new(policy)).unwrap();
            assert_eq!(a.completed(), b2.completed(), "{policy:?}");
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<String> = TieBreak::all()
            .iter()
            .map(|&p| GreedyOnline::new(p).name())
            .collect();
        assert_eq!(names.len(), 5);
    }
}
