//! Naive randomized baseline: a fresh coin for every element.
//!
//! `randPr`'s power comes from drawing *one* priority per set and using it
//! consistently at every element — so a set that wins once keeps winning.
//! [`RandomAssign`] deliberately breaks that property by choosing uniformly
//! at random among the (active) member sets independently at each element.
//! On a set of size `k` facing load `σ` everywhere it survives with
//! probability about `σ^{-k}` instead of `randPr`'s `1/(kσ)`-ish rate; the
//! `A2` ablation experiment shows the resulting collapse.

use rand::rngs::StdRng;
use rand::SeedableRng;

use super::sample_in_place;

use crate::algorithm::{EngineView, OnlineAlgorithm};
use crate::instance::{Arrival, SetMeta};
use crate::SetId;

/// Per-element uniform random assignment (active-set aware).
///
/// # Examples
///
/// ```
/// use osp_core::prelude::*;
///
/// let mut b = InstanceBuilder::new();
/// let s = b.add_set(1.0, 1);
/// b.add_element(1, &[s]);
/// let inst = b.build()?;
/// let out = run(&inst, &mut RandomAssign::from_seed(3))?;
/// assert_eq!(out.completed(), &[s]);
/// # Ok::<(), osp_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct RandomAssign {
    rng: StdRng,
}

impl RandomAssign {
    /// Creates the baseline with a seeded RNG.
    pub fn from_seed(seed: u64) -> Self {
        RandomAssign {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl OnlineAlgorithm for RandomAssign {
    fn name(&self) -> String {
        "random-assign".into()
    }

    fn begin(&mut self, _sets: &[SetMeta]) {}

    fn decide_into(&mut self, arrival: &Arrival<'_>, view: &EngineView<'_>, out: &mut Vec<SetId>) {
        out.extend(
            arrival
                .members()
                .iter()
                .copied()
                .filter(|&s| view.is_active(s)),
        );
        sample_in_place(out, arrival.capacity() as usize, &mut self.rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run;
    use crate::instance::InstanceBuilder;

    #[test]
    fn uncontended_elements_always_assigned() {
        let mut b = InstanceBuilder::new();
        let s = b.add_set(1.0, 3);
        for _ in 0..3 {
            b.add_element(1, &[s]);
        }
        let inst = b.build().unwrap();
        let out = run(&inst, &mut RandomAssign::from_seed(0)).unwrap();
        assert_eq!(out.completed(), &[s]);
    }

    #[test]
    fn consistency_failure_shows_up_against_fresh_competitors() {
        // One frame of k=3 elements, each contested by 3 fresh singletons
        // (load σ=4 everywhere it appears). randPr survives w.p.
        // 1/(1 + 3·3) = 0.1 (Lemma 1); an independent coin per element
        // survives only w.p. (1/4)^3 ≈ 0.016.
        let mut b = InstanceBuilder::new();
        let frame = b.add_set(1.0, 3);
        for _ in 0..3 {
            let rivals: Vec<SetId> = (0..3).map(|_| b.add_set(1.0, 1)).collect();
            let mut members = vec![frame];
            members.extend(rivals);
            b.add_element(1, &members);
        }
        let inst = b.build().unwrap();
        let trials = 20_000;
        let mut naive = 0u32;
        let mut consistent = 0u32;
        for seed in 0..trials {
            let out = run(&inst, &mut RandomAssign::from_seed(seed as u64)).unwrap();
            naive += u32::from(out.is_completed(frame));
            let out = run(
                &inst,
                &mut crate::algorithms::RandPr::from_seed(seed as u64),
            )
            .unwrap();
            consistent += u32::from(out.is_completed(frame));
        }
        let naive_rate = naive as f64 / trials as f64;
        let consistent_rate = consistent as f64 / trials as f64;
        assert!((naive_rate - 1.0 / 64.0).abs() < 0.01, "naive {naive_rate}");
        assert!(
            (consistent_rate - 0.1).abs() < 0.015,
            "randPr {consistent_rate}"
        );
        assert!(consistent_rate > 3.0 * naive_rate);
    }

    #[test]
    fn capacity_respected() {
        let mut b = InstanceBuilder::new();
        let ids: Vec<SetId> = (0..5).map(|_| b.add_set(1.0, 1)).collect();
        b.add_element(2, &ids);
        let inst = b.build().unwrap();
        let out = run(&inst, &mut RandomAssign::from_seed(1)).unwrap();
        assert_eq!(out.completed().len(), 2);
    }
}
