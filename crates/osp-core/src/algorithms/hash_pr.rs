//! The distributed implementation of `randPr` via a system-wide hash
//! function (§3.1).
//!
//! > "All we need is a system-wide hash function `h`: applying `h` to the
//! > identifier of each set `S ∈ C(u)`, we can use `h(S)` as the random
//! > priority of `S`. [...] it suffices for the hash function to have
//! > `k_max · σ_max`-wise independence."
//!
//! [`HashRandPr`] derives each set's priority by feeding the hash output
//! (uniform on `[0,1)`) through the `R_w` quantile function. Because the
//! hash is a pure function of the *set identifier* and the shared seed, any
//! number of servers instantiated with the same seed make byte-identical
//! decisions without exchanging a single message — the
//! `multihop` experiment and the `distributed_consistency` integration test
//! demonstrate exactly that.

use osp_gf::hash::PolyHash;

use crate::algorithm::{EngineView, OnlineAlgorithm};
use crate::instance::{Arrival, SetMeta};
use crate::priority::{Priority, Rw};
use crate::SetId;

use super::retain_top_b_by_key;

/// Distributed `randPr`: priorities from a shared limited-independence
/// polynomial hash instead of private randomness.
///
/// # Examples
///
/// ```
/// use osp_core::prelude::*;
///
/// // Two replicas with the same seed decide identically.
/// let mut b = InstanceBuilder::new();
/// let s0 = b.add_set(1.0, 1);
/// let s1 = b.add_set(1.0, 1);
/// b.add_element(1, &[s0, s1]);
/// let inst = b.build()?;
/// let a = run(&inst, &mut HashRandPr::new(8, 42))?;
/// let b2 = run(&inst, &mut HashRandPr::new(8, 42))?;
/// assert_eq!(a.completed(), b2.completed());
/// # Ok::<(), osp_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct HashRandPr {
    hash: PolyHash,
    priorities: Vec<Priority>,
}

impl HashRandPr {
    /// Creates the algorithm with a hash drawn from the `independence`-wise
    /// independent family under `seed`. The paper's analysis wants
    /// `independence ≥ k_max · σ_max`; the `A2` ablation experiment measures
    /// how little independence is enough in practice.
    ///
    /// # Panics
    ///
    /// Panics if `independence == 0`.
    pub fn new(independence: usize, seed: u64) -> Self {
        HashRandPr {
            hash: PolyHash::new(independence, seed),
            priorities: Vec::new(),
        }
    }

    /// The independence level of the underlying hash family.
    pub fn independence(&self) -> usize {
        self.hash.independence()
    }

    /// The priority assigned to `set` (after the run started).
    ///
    /// # Panics
    ///
    /// Panics if called before the run started or with an out-of-range id.
    pub fn priority(&self, set: SetId) -> Priority {
        self.priorities[set.index()]
    }
}

impl OnlineAlgorithm for HashRandPr {
    fn name(&self) -> String {
        format!("hashPr({}-wise)", self.hash.independence())
    }

    fn begin(&mut self, sets: &[SetMeta]) {
        self.priorities = sets
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let u = self.hash.unit(i as u64);
                match Rw::new(s.weight()) {
                    // The raw hash value doubles as the deterministic
                    // tiebreak, so replicas break ties identically too.
                    Ok(rw) => Priority::new(rw.from_uniform(u), self.hash.eval(i as u64)),
                    Err(_) => Priority::zero(),
                }
            })
            .collect();
    }

    fn decide_into(&mut self, arrival: &Arrival<'_>, _view: &EngineView<'_>, out: &mut Vec<SetId>) {
        out.extend_from_slice(arrival.members());
        retain_top_b_by_key(out, arrival.capacity() as usize, |s| {
            self.priorities[s.index()]
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run;
    use crate::instance::InstanceBuilder;

    fn star(load: usize) -> crate::Instance {
        let mut b = InstanceBuilder::new();
        let ids: Vec<SetId> = (0..load).map(|_| b.add_set(1.0, 1)).collect();
        b.add_element(1, &ids);
        b.build().unwrap()
    }

    #[test]
    fn replicas_agree() {
        let inst = star(12);
        let out1 = run(&inst, &mut HashRandPr::new(4, 99)).unwrap();
        let out2 = run(&inst, &mut HashRandPr::new(4, 99)).unwrap();
        assert_eq!(out1.completed(), out2.completed());
        assert_eq!(out1.decisions(), out2.decisions());
    }

    #[test]
    fn different_seeds_give_different_priorities() {
        let inst = star(12);
        let winners: std::collections::HashSet<SetId> = (0..40)
            .map(|seed| {
                run(&inst, &mut HashRandPr::new(4, seed))
                    .unwrap()
                    .completed()[0]
            })
            .collect();
        assert!(winners.len() > 3);
    }

    #[test]
    fn hash_winners_are_roughly_uniform() {
        // Over many seeds, each of the σ sets should win about equally
        // often (the hash family is 4-wise independent).
        let sigma = 4;
        let inst = star(sigma);
        let trials = 4_000u64;
        let mut wins = vec![0u32; sigma];
        for seed in 0..trials {
            let out = run(&inst, &mut HashRandPr::new(4, seed)).unwrap();
            wins[out.completed()[0].index()] += 1;
        }
        let expect = trials as f64 / sigma as f64;
        for &w in &wins {
            assert!((w as f64 - expect).abs() < expect * 0.15, "wins {wins:?}");
        }
    }

    #[test]
    fn weighted_hash_priorities_respect_lemma_1_roughly() {
        let mut b = InstanceBuilder::new();
        let light = b.add_set(1.0, 1);
        let heavy = b.add_set(3.0, 1);
        b.add_element(1, &[light, heavy]);
        let inst = b.build().unwrap();
        let trials = 10_000u64;
        let mut heavy_wins = 0u32;
        for seed in 0..trials {
            let out = run(&inst, &mut HashRandPr::new(8, seed)).unwrap();
            if out.completed()[0] == heavy {
                heavy_wins += 1;
            }
        }
        let frac = heavy_wins as f64 / trials as f64;
        assert!((frac - 0.75).abs() < 0.03, "heavy won {frac}");
    }

    #[test]
    fn name_reflects_independence() {
        assert_eq!(HashRandPr::new(16, 0).name(), "hashPr(16-wise)");
    }
}
