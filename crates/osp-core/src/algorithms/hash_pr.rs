//! The distributed implementation of `randPr` via a system-wide hash
//! function (§3.1).
//!
//! > "All we need is a system-wide hash function `h`: applying `h` to the
//! > identifier of each set `S ∈ C(u)`, we can use `h(S)` as the random
//! > priority of `S`. [...] it suffices for the hash function to have
//! > `k_max · σ_max`-wise independence."
//!
//! [`HashRandPr`] derives each set's priority by feeding the hash output
//! (uniform on `[0,1)`) through the `R_w` quantile function. Because the
//! hash is a pure function of the *set identifier* and the shared seed, any
//! number of servers instantiated with the same seed make byte-identical
//! decisions without exchanging a single message — the
//! `multihop` experiment and the `distributed_consistency` integration test
//! demonstrate exactly that.

use osp_gf::hash::{PolyHash, MERSENNE_61};

use crate::algorithm::{EngineView, OnlineAlgorithm};
use crate::engine::parallel::{fill_sharded, SHARDED_DECIDE_MIN};
use crate::engine::prologue;
use crate::instance::{Arrival, SetMeta};
use crate::priority::{Priority, Rw};
use crate::SetId;

use super::{retain_top_b_by_key, retain_top_b_scored};

/// Lane-sized staging buffers for chunked [`PolyHash::eval_batch`] calls:
/// 64 keys per round trip keeps the buffers on the stack (no allocation
/// on any path that uses them) while amortizing the batch call overhead.
const BATCH_CHUNK: usize = 64;

/// The one place a raw hash word becomes a [`Priority`]: the hash output
/// mapped to `[0, 1)` is fed through the `R_w` quantile, and the raw word
/// doubles as the deterministic tiebreak so replicas break ties
/// identically too. Both the `begin`-time table fill and the lazy
/// per-arrival scoring path call this, which is what keeps the two modes
/// bit-identical — one polynomial evaluation per key, everywhere.
#[inline]
fn priority_from_raw(raw: u64, weight: f64) -> Priority {
    match Rw::new(weight) {
        Ok(rw) => {
            let u = raw as f64 / MERSENNE_61 as f64;
            Priority::new(rw.from_uniform(u), raw)
        }
        // Weight-zero sets get the a.s. limit of R_w as w -> 0.
        Err(_) => Priority::zero(),
    }
}

/// Distributed `randPr`: priorities from a shared limited-independence
/// polynomial hash instead of private randomness.
///
/// # Examples
///
/// ```
/// use osp_core::prelude::*;
///
/// // Two replicas with the same seed decide identically.
/// let mut b = InstanceBuilder::new();
/// let s0 = b.add_set(1.0, 1);
/// let s1 = b.add_set(1.0, 1);
/// b.add_element(1, &[s0, s1]);
/// let inst = b.build()?;
/// let a = run(&inst, &mut HashRandPr::new(8, 42))?;
/// let b2 = run(&inst, &mut HashRandPr::new(8, 42))?;
/// assert_eq!(a.completed(), b2.completed());
/// # Ok::<(), osp_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct HashRandPr {
    hash: PolyHash,
    priorities: Vec<Priority>,
    /// Lazy mode: skip the O(m) `begin`-time table and score each
    /// arrival's candidates on the fly with `eval_batch`.
    lazy: bool,
    /// Recycled candidate-scoring buffer for the lazy path and the
    /// sharded decision kernel (grows to the widest arrival once, then
    /// the hot path stays allocation-free).
    scored: Vec<(Priority, SetId)>,
    /// Sharded-decide fan-out announced by the pipelined replay
    /// ([`OnlineAlgorithm::set_decision_threads`]); 1 = serial scoring.
    decide_threads: usize,
}

impl HashRandPr {
    /// Creates the algorithm with a hash drawn from the `independence`-wise
    /// independent family under `seed`. The paper's analysis wants
    /// `independence ≥ k_max · σ_max`; the `A2` ablation experiment measures
    /// how little independence is enough in practice.
    ///
    /// # Panics
    ///
    /// Panics if `independence == 0`.
    pub fn new(independence: usize, seed: u64) -> Self {
        HashRandPr {
            hash: PolyHash::new(independence, seed),
            priorities: Vec::new(),
            lazy: false,
            scored: Vec::new(),
            decide_threads: 1,
        }
    }

    /// The table-free variant: `begin` builds **no** O(m) priority table;
    /// instead every arrival's candidates are hashed on the spot with
    /// [`PolyHash::eval_batch`] (chunked through stack buffers) and the
    /// top `b` retained — decisions are bit-identical to [`new`](Self::new)
    /// with the same parameters, because both modes derive each priority
    /// from the same single evaluation via the same transform. Trades
    /// per-arrival arithmetic for O(m) memory: the right mode when m is
    /// huge and each replay touches only a sliver of the sets.
    ///
    /// # Panics
    ///
    /// Panics if `independence == 0`.
    pub fn new_lazy(independence: usize, seed: u64) -> Self {
        HashRandPr {
            lazy: true,
            ..HashRandPr::new(independence, seed)
        }
    }

    /// The independence level of the underlying hash family.
    pub fn independence(&self) -> usize {
        self.hash.independence()
    }

    /// The priority assigned to `set` (after the run started).
    ///
    /// # Panics
    ///
    /// Panics if called before the run started, with an out-of-range id,
    /// or on a [`new_lazy`](Self::new_lazy) instance (which builds no
    /// table).
    pub fn priority(&self, set: SetId) -> Priority {
        self.priorities[set.index()]
    }

    /// Builds the priority table over an explicit prologue thread count —
    /// the seam [`begin`](OnlineAlgorithm::begin) rides with the
    /// `OSP_PROLOGUE_THREADS` policy value, exposed so conformance tests
    /// and benchmarks can pin any shard count without touching the
    /// process environment. Each slot is a pure function of
    /// `(hash, index, weight)`, so every thread count writes the same
    /// bytes; keys are hashed in [`PolyHash::eval_batch`] chunks — one
    /// polynomial evaluation per set.
    pub fn begin_with_threads(&mut self, sets: &[SetMeta], threads: usize) {
        let hash = &self.hash;
        self.priorities = prologue::build_table(
            sets.len(),
            Priority::zero(),
            threads,
            &|start, slots: &mut [Priority]| {
                let mut keys = [0u64; BATCH_CHUNK];
                let mut raws = [0u64; BATCH_CHUNK];
                let mut i = start;
                for chunk in slots.chunks_mut(BATCH_CHUNK) {
                    let k = chunk.len();
                    for (j, key) in keys[..k].iter_mut().enumerate() {
                        *key = (i + j) as u64;
                    }
                    hash.eval_batch(&keys[..k], &mut raws[..k]);
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        *slot = priority_from_raw(raws[j], sets[i + j].weight());
                    }
                    i += k;
                }
            },
        );
    }
}

impl OnlineAlgorithm for HashRandPr {
    fn name(&self) -> String {
        format!("hashPr({}-wise)", self.hash.independence())
    }

    fn begin(&mut self, sets: &[SetMeta]) {
        if self.lazy {
            self.priorities.clear();
            return;
        }
        self.begin_with_threads(sets, prologue::threads_from_env());
    }

    fn decide_into(&mut self, arrival: &Arrival<'_>, view: &EngineView<'_>, out: &mut Vec<SetId>) {
        out.extend_from_slice(arrival.members());
        let b = arrival.capacity() as usize;
        let threads = if out.len() >= SHARDED_DECIDE_MIN {
            self.decide_threads
        } else {
            1
        };
        if !self.lazy {
            if threads > 1 {
                // Sharded decide: fill the position-aligned scored pairs
                // from the table across scoped threads, then select with
                // the exact serial comparator sequence — bit-identical to
                // the lookup path below.
                let priorities = &self.priorities;
                retain_top_b_scored(out, b, &mut self.scored, |candidates, scored| {
                    fill_sharded(
                        scored,
                        candidates.len(),
                        (Priority::zero(), SetId(0)),
                        threads,
                        &|start, slots| {
                            for (j, slot) in slots.iter_mut().enumerate() {
                                let s = candidates[start + j];
                                *slot = (priorities[s.index()], s);
                            }
                        },
                    );
                });
            } else {
                retain_top_b_by_key(out, b, |s| self.priorities[s.index()]);
            }
            return;
        }
        // Table-free path: hash the staged candidates in eval_batch
        // chunks through stack buffers into the recycled `scored` pairs
        // (serially, or in disjoint contiguous ranges across scoped
        // threads once the candidate count crosses the sharding
        // threshold — each range runs the same chunked kernel, so the
        // buffer contents are identical), then retain the top b.
        // `retain_top_b_scored` runs the same selection over the same
        // comparator results as the table path's `retain_top_b_by_key`,
        // so the survivors (and their order) are bit-identical.
        let hash = &self.hash;
        let scored = &mut self.scored;
        retain_top_b_scored(out, b, scored, |candidates, scored| {
            let score_range = |start: usize, slots: &mut [(Priority, SetId)]| {
                let mut keys = [0u64; BATCH_CHUNK];
                let mut raws = [0u64; BATCH_CHUNK];
                let mut i = start;
                for chunk in slots.chunks_mut(BATCH_CHUNK) {
                    let k = chunk.len();
                    for (j, key) in keys[..k].iter_mut().enumerate() {
                        *key = candidates[i + j].index() as u64;
                    }
                    hash.eval_batch(&keys[..k], &mut raws[..k]);
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        let s = candidates[i + j];
                        *slot = (priority_from_raw(raws[j], view.set(s).weight()), s);
                    }
                    i += k;
                }
            };
            fill_sharded(
                scored,
                candidates.len(),
                (Priority::zero(), SetId(0)),
                threads,
                &score_range,
            );
        });
    }

    fn set_decision_threads(&mut self, threads: usize) {
        self.decide_threads = threads.max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run;
    use crate::instance::InstanceBuilder;

    fn star(load: usize) -> crate::Instance {
        let mut b = InstanceBuilder::new();
        let ids: Vec<SetId> = (0..load).map(|_| b.add_set(1.0, 1)).collect();
        b.add_element(1, &ids);
        b.build().unwrap()
    }

    #[test]
    fn replicas_agree() {
        let inst = star(12);
        let out1 = run(&inst, &mut HashRandPr::new(4, 99)).unwrap();
        let out2 = run(&inst, &mut HashRandPr::new(4, 99)).unwrap();
        assert_eq!(out1.completed(), out2.completed());
        assert_eq!(out1.decisions(), out2.decisions());
    }

    #[test]
    fn different_seeds_give_different_priorities() {
        let inst = star(12);
        let winners: std::collections::HashSet<SetId> = (0..40)
            .map(|seed| {
                run(&inst, &mut HashRandPr::new(4, seed))
                    .unwrap()
                    .completed()[0]
            })
            .collect();
        assert!(winners.len() > 3);
    }

    #[test]
    fn hash_winners_are_roughly_uniform() {
        // Over many seeds, each of the σ sets should win about equally
        // often (the hash family is 4-wise independent).
        let sigma = 4;
        let inst = star(sigma);
        let trials = 4_000u64;
        let mut wins = vec![0u32; sigma];
        for seed in 0..trials {
            let out = run(&inst, &mut HashRandPr::new(4, seed)).unwrap();
            wins[out.completed()[0].index()] += 1;
        }
        let expect = trials as f64 / sigma as f64;
        for &w in &wins {
            assert!((w as f64 - expect).abs() < expect * 0.15, "wins {wins:?}");
        }
    }

    #[test]
    fn weighted_hash_priorities_respect_lemma_1_roughly() {
        let mut b = InstanceBuilder::new();
        let light = b.add_set(1.0, 1);
        let heavy = b.add_set(3.0, 1);
        b.add_element(1, &[light, heavy]);
        let inst = b.build().unwrap();
        let trials = 10_000u64;
        let mut heavy_wins = 0u32;
        for seed in 0..trials {
            let out = run(&inst, &mut HashRandPr::new(8, seed)).unwrap();
            if out.completed()[0] == heavy {
                heavy_wins += 1;
            }
        }
        let frac = heavy_wins as f64 / trials as f64;
        assert!((frac - 0.75).abs() < 0.03, "heavy won {frac}");
    }

    #[test]
    fn name_reflects_independence() {
        assert_eq!(HashRandPr::new(16, 0).name(), "hashPr(16-wise)");
    }

    fn mixed_weight_sets(m: usize) -> Vec<SetMeta> {
        (0..m)
            .map(|i| {
                let w = match i % 5 {
                    0 => 0.0, // rejected by R_w: Priority::zero()
                    r => r as f64 * 0.7,
                };
                SetMeta::new(w, 1 + (i % 3) as u32)
            })
            .collect()
    }

    #[test]
    fn prologue_shard_counts_build_identical_tables() {
        let sets = mixed_weight_sets(193); // prime: uneven chunks everywhere
        let mut reference = HashRandPr::new(8, 11);
        reference.begin_with_threads(&sets, 1);
        for threads in [2usize, 3, 8, 64] {
            let mut sharded = HashRandPr::new(8, 11);
            sharded.begin_with_threads(&sets, threads);
            assert_eq!(
                sharded.priorities, reference.priorities,
                "threads={threads}"
            );
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    fn begin_evaluates_the_polynomial_exactly_once_per_set() {
        // Regression: `begin` used to call both `unit(i)` and `eval(i)`,
        // evaluating the polynomial twice per set. The raw hash is now
        // computed once and the unit value derived from it.
        use osp_gf::hash::eval_count;
        let sets = mixed_weight_sets(157);
        let mut alg = HashRandPr::new(8, 5);
        eval_count::reset();
        alg.begin(&sets);
        assert_eq!(eval_count::get(), sets.len() as u64);
    }

    fn contested_instance() -> crate::Instance {
        // Several arrivals with overlapping parent lists and capacities
        // above 1, so both the pruning and the no-pruning decide paths run.
        let mut b = InstanceBuilder::new();
        // Each set's declared size = how many of the four elements below
        // list it (the builder checks the two agree).
        let sizes = [1u32, 1, 2, 2, 3, 2, 3, 3, 3, 2, 2, 2, 1, 1];
        let ids: Vec<SetId> = sizes
            .iter()
            .enumerate()
            .map(|(i, &sz)| b.add_set(0.5 + (i % 4) as f64, sz))
            .collect();
        b.add_element(2, &ids[0..9]);
        b.add_element(1, &ids[4..12]);
        b.add_element(3, &ids[2..5]); // capacity >= candidates: no pruning
        b.add_element(2, &ids[6..14]);
        b.build().unwrap()
    }

    #[test]
    fn lazy_mode_decides_bit_identically_to_eager() {
        let inst = contested_instance();
        for seed in 0..25u64 {
            let eager = run(&inst, &mut HashRandPr::new(8, seed)).unwrap();
            let lazy = run(&inst, &mut HashRandPr::new_lazy(8, seed)).unwrap();
            assert_eq!(eager.decisions(), lazy.decisions(), "seed {seed}");
            assert_eq!(eager.completed(), lazy.completed(), "seed {seed}");
        }
    }

    #[test]
    fn lazy_mode_builds_no_table() {
        let inst = contested_instance();
        let mut alg = HashRandPr::new_lazy(8, 1);
        run(&inst, &mut alg).unwrap();
        assert!(alg.priorities.is_empty());
    }
}
