//! Oracle replay: an "algorithm" that plays a predetermined packing.
//!
//! Given a target family of sets (typically a certified offline optimum),
//! [`OracleOnline`] assigns every element to its target members and
//! nothing else. Running it through the engine proves, end to end, that
//! the target family really is completable under the online rules — this
//! is how integration tests validate solver outputs and adversary
//! certificates without trusting any feasibility checker.

use crate::algorithm::{EngineView, OnlineAlgorithm};
use crate::instance::{Arrival, SetMeta};
use crate::SetId;

/// Replays a fixed target packing.
///
/// # Examples
///
/// ```
/// use osp_core::prelude::*;
/// use osp_core::algorithms::OracleOnline;
///
/// let mut b = InstanceBuilder::new();
/// let s0 = b.add_set(1.0, 1);
/// let s1 = b.add_set(9.0, 1);
/// b.add_element(1, &[s0, s1]);
/// let inst = b.build()?;
/// // Force the low-weight choice — oracles play *their* plan, not the best one.
/// let out = run(&inst, &mut OracleOnline::new(vec![s0]))?;
/// assert_eq!(out.completed(), &[s0]);
/// # Ok::<(), osp_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct OracleOnline {
    target: Vec<SetId>,
    chosen: Vec<bool>,
}

impl OracleOnline {
    /// Creates the oracle for a target family (order irrelevant).
    pub fn new(target: Vec<SetId>) -> Self {
        OracleOnline {
            target,
            chosen: Vec::new(),
        }
    }

    /// The target family, sorted.
    pub fn target(&self) -> Vec<SetId> {
        let mut t = self.target.clone();
        t.sort_unstable();
        t
    }
}

impl OnlineAlgorithm for OracleOnline {
    fn name(&self) -> String {
        format!("oracle[{} sets]", self.target.len())
    }

    fn begin(&mut self, sets: &[SetMeta]) {
        self.chosen = vec![false; sets.len()];
        for s in &self.target {
            self.chosen[s.index()] = true;
        }
    }

    fn decide_into(&mut self, arrival: &Arrival<'_>, _view: &EngineView<'_>, out: &mut Vec<SetId>) {
        // Assign to target members only; if the plan is infeasible the
        // engine rejects the over-capacity decision, which is exactly the
        // verdict callers want.
        out.extend(
            arrival
                .members()
                .iter()
                .copied()
                .filter(|s| self.chosen[s.index()]),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run;
    use crate::instance::InstanceBuilder;
    use crate::Error;

    fn conflict_instance() -> (crate::Instance, [SetId; 3]) {
        let mut b = InstanceBuilder::new();
        let s0 = b.add_set(1.0, 1);
        let s1 = b.add_set(2.0, 2);
        let s2 = b.add_set(3.0, 1);
        b.add_element(1, &[s0, s1]);
        b.add_element(1, &[s1, s2]);
        (b.build().unwrap(), [s0, s1, s2])
    }

    #[test]
    fn feasible_plans_complete_exactly_the_target() {
        let (inst, [s0, _, s2]) = conflict_instance();
        let out = run(&inst, &mut OracleOnline::new(vec![s2, s0])).unwrap();
        assert_eq!(out.completed(), &[s0, s2]);
        assert_eq!(out.benefit(), 4.0);
    }

    #[test]
    fn middle_set_alone_works() {
        let (inst, [_, s1, _]) = conflict_instance();
        let out = run(&inst, &mut OracleOnline::new(vec![s1])).unwrap();
        assert_eq!(out.completed(), &[s1]);
    }

    #[test]
    fn infeasible_plans_are_rejected_by_the_engine() {
        let (inst, [s0, s1, _]) = conflict_instance();
        // s0 and s1 share the capacity-1 first element.
        let err = run(&inst, &mut OracleOnline::new(vec![s0, s1])).unwrap_err();
        assert!(matches!(err, Error::DecisionOverCapacity { .. }));
    }

    #[test]
    fn empty_target_completes_nothing() {
        let (inst, _) = conflict_instance();
        let out = run(&inst, &mut OracleOnline::new(vec![])).unwrap();
        assert!(out.completed().is_empty());
    }
}
