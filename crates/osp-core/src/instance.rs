//! The OSP instance model: declared sets plus an online arrival sequence.
//!
//! Per §2 of the paper, the algorithm initially knows each set's *weight and
//! size* only. Elements then arrive one by one; element `u` brings its
//! capacity `b(u)` and the list `C(u)` of sets containing it. An
//! [`Instance`] freezes exactly that information, validated so that every
//! set's declared size matches the number of arrivals that list it — which
//! is what makes "the set received all its elements" a well-defined event.

use crate::error::Error;
use crate::ids::{ElementId, SetId};

/// What the algorithm knows about a set up front: weight and size (§2).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SetMeta {
    weight: f64,
    size: u32,
}

impl SetMeta {
    /// Creates standalone set metadata for incremental use with
    /// [`Session`](crate::engine::Session) (adaptive adversaries declare
    /// sets before any [`Instance`] exists).
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or non-finite, or if `size == 0` —
    /// the same invariants [`InstanceBuilder::build`] enforces.
    pub fn new(weight: f64, size: u32) -> Self {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "set weight must be finite and non-negative, got {weight}"
        );
        assert!(size >= 1, "set size must be at least 1");
        SetMeta { weight, size }
    }

    /// The set's weight `w(S)`.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// The set's size `|S|` (number of elements it contains).
    pub fn size(&self) -> u32 {
        self.size
    }
}

/// One online arrival: element identity, capacity `b(u)` and the member
/// list `C(u)` (sorted by set id).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Arrival {
    element: ElementId,
    capacity: u32,
    members: Vec<SetId>,
}

impl Arrival {
    /// Creates a standalone arrival for incremental use with
    /// [`Session`](crate::engine::Session) (adaptive adversaries build
    /// arrivals on the fly, before any [`Instance`] exists). The member
    /// list is sorted internally.
    pub fn new(element: ElementId, capacity: u32, members: &[SetId]) -> Self {
        let mut members = members.to_vec();
        members.sort_unstable();
        Arrival {
            element,
            capacity,
            members,
        }
    }

    /// The arriving element's id (also its position in arrival order).
    pub fn element(&self) -> ElementId {
        self.element
    }

    /// The element's capacity `b(u)`: how many sets it may be assigned to.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// The sets containing this element, `C(u)`, sorted by id.
    pub fn members(&self) -> &[SetId] {
        &self.members
    }

    /// The element's load `σ(u) = |C(u)|`.
    pub fn load(&self) -> u32 {
        self.members.len() as u32
    }

    /// Whether `set` contains this element (binary search on the sorted
    /// member list).
    pub fn contains(&self, set: SetId) -> bool {
        self.members.binary_search(&set).is_ok()
    }
}

/// A complete, validated OSP instance.
///
/// Construct via [`InstanceBuilder`]. Invariants guaranteed after
/// construction:
///
/// * every weight is finite and non-negative;
/// * every set has size ≥ 1 and its declared size equals the number of
///   arrivals listing it;
/// * every arrival has capacity ≥ 1 and a duplicate-free, sorted member
///   list referencing declared sets only.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Instance {
    sets: Vec<SetMeta>,
    arrivals: Vec<Arrival>,
}

impl Instance {
    /// Number of sets `m`.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Number of elements `n`.
    pub fn num_elements(&self) -> usize {
        self.arrivals.len()
    }

    /// Metadata of one set.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn set(&self, id: SetId) -> &SetMeta {
        &self.sets[id.index()]
    }

    /// All set metadata, indexed by [`SetId`].
    pub fn sets(&self) -> &[SetMeta] {
        &self.sets
    }

    /// The arrival sequence in online order.
    pub fn arrivals(&self) -> &[Arrival] {
        &self.arrivals
    }

    /// Total weight `w(C)` of all sets.
    pub fn total_weight(&self) -> f64 {
        self.sets.iter().map(|s| s.weight).sum()
    }

    /// Sum of the weights of the given sets.
    pub fn weight_of<I: IntoIterator<Item = SetId>>(&self, ids: I) -> f64 {
        ids.into_iter().map(|id| self.set(id).weight).sum()
    }

    /// Whether all elements have capacity 1 (the paper's *unit capacity*
    /// special case).
    pub fn is_unit_capacity(&self) -> bool {
        self.arrivals.iter().all(|a| a.capacity == 1)
    }

    /// Whether all sets have weight 1 (the paper's *unweighted* case).
    pub fn is_unweighted(&self) -> bool {
        self.sets.iter().all(|s| s.weight == 1.0)
    }

    /// For each set, the elements it contains, in arrival order. Computed on
    /// demand (`O(Σ|S|)`); offline solvers and statistics use this view.
    pub fn members_by_set(&self) -> Vec<Vec<ElementId>> {
        let mut by_set = vec![Vec::new(); self.sets.len()];
        for a in &self.arrivals {
            for s in &a.members {
                by_set[s.index()].push(a.element);
            }
        }
        by_set
    }

    /// Returns a copy of this instance with the arrival order permuted
    /// uniformly at random (elements are renumbered to match their new
    /// positions).
    ///
    /// Arrival order matters to *stateful* algorithms (greedy variants see
    /// different activity histories), but `randPr`'s outcome for a fixed
    /// priority draw is order-invariant: a set completes iff its priority
    /// is in the top `b(u)` of every one of its elements, a condition with
    /// no notion of time. The `arrival_order` property tests exploit this.
    pub fn shuffle_arrivals<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> Instance {
        use rand::seq::SliceRandom;
        let mut order: Vec<usize> = (0..self.arrivals.len()).collect();
        order.shuffle(rng);
        let arrivals = order
            .iter()
            .enumerate()
            .map(|(new_idx, &old_idx)| {
                let a = &self.arrivals[old_idx];
                Arrival {
                    element: ElementId(new_idx as u32),
                    capacity: a.capacity,
                    members: a.members.clone(),
                }
            })
            .collect();
        Instance {
            sets: self.sets.clone(),
            arrivals,
        }
    }
}

/// Incremental builder for [`Instance`].
///
/// Sets may be declared with a known size ([`add_set`](Self::add_set)) or
/// with the size inferred at build time
/// ([`add_set_unsized`](Self::add_set_unsized)) — the latter is convenient
/// for generators that decide membership element-by-element.
///
/// # Examples
///
/// ```
/// use osp_core::InstanceBuilder;
///
/// let mut b = InstanceBuilder::new();
/// let s = b.add_set(2.5, 1);
/// b.add_element(1, &[s]);
/// let inst = b.build()?;
/// assert_eq!(inst.num_sets(), 1);
/// assert_eq!(inst.set(s).weight(), 2.5);
/// # Ok::<(), osp_core::Error>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct InstanceBuilder {
    weights: Vec<f64>,
    declared: Vec<Option<u32>>,
    arrivals: Vec<Arrival>,
}

impl InstanceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a set with known `weight` and `size`, returning its id.
    pub fn add_set(&mut self, weight: f64, size: u32) -> SetId {
        self.weights.push(weight);
        self.declared.push(Some(size));
        SetId((self.weights.len() - 1) as u32)
    }

    /// Declares a set whose size will be inferred from the elements added
    /// later (it must end up ≥ 1).
    pub fn add_set_unsized(&mut self, weight: f64) -> SetId {
        self.weights.push(weight);
        self.declared.push(None);
        SetId((self.weights.len() - 1) as u32)
    }

    /// Number of sets declared so far.
    pub fn num_sets(&self) -> usize {
        self.weights.len()
    }

    /// Number of elements added so far.
    pub fn num_elements(&self) -> usize {
        self.arrivals.len()
    }

    /// Appends the next arriving element with capacity `b(u)` and member
    /// list `C(u)`; returns the element's id. The member list is sorted
    /// internally; order does not matter.
    pub fn add_element(&mut self, capacity: u32, members: &[SetId]) -> ElementId {
        let element = ElementId(self.arrivals.len() as u32);
        let mut members = members.to_vec();
        members.sort_unstable();
        self.arrivals.push(Arrival {
            element,
            capacity,
            members,
        });
        element
    }

    /// Validates and freezes the instance.
    ///
    /// # Errors
    ///
    /// Returns the first violation found: invalid weight, zero capacity,
    /// duplicate/unknown members, or declared-vs-realized size mismatch
    /// (unsized sets must receive at least one element).
    pub fn build(self) -> Result<Instance, Error> {
        let m = self.weights.len();
        for (i, &w) in self.weights.iter().enumerate() {
            if !w.is_finite() || w < 0.0 {
                return Err(Error::BadWeight {
                    set: SetId(i as u32),
                    weight: w,
                });
            }
        }
        let mut realized = vec![0u32; m];
        for a in &self.arrivals {
            if a.capacity == 0 {
                return Err(Error::ZeroCapacity(a.element));
            }
            for w in a.members.windows(2) {
                if w[0] == w[1] {
                    return Err(Error::DuplicateMember {
                        element: a.element,
                        set: w[0],
                    });
                }
            }
            for &s in &a.members {
                if s.index() >= m {
                    return Err(Error::UnknownSet {
                        element: a.element,
                        set: s,
                    });
                }
                realized[s.index()] += 1;
            }
        }
        let mut sets = Vec::with_capacity(m);
        for (i, (&w, &d)) in self.weights.iter().zip(&self.declared).enumerate() {
            let id = SetId(i as u32);
            let size = match d {
                Some(declared) => {
                    if declared == 0 {
                        return Err(Error::EmptySet(id));
                    }
                    if declared != realized[i] {
                        return Err(Error::SizeMismatch {
                            set: id,
                            declared,
                            realized: realized[i],
                        });
                    }
                    declared
                }
                None => {
                    if realized[i] == 0 {
                        return Err(Error::EmptySet(id));
                    }
                    realized[i]
                }
            };
            sets.push(SetMeta { weight: w, size });
        }
        Ok(Instance {
            sets,
            arrivals: self.arrivals,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_set_builder() -> (InstanceBuilder, SetId, SetId) {
        let mut b = InstanceBuilder::new();
        let s0 = b.add_set(1.0, 2);
        let s1 = b.add_set(2.0, 1);
        (b, s0, s1)
    }

    #[test]
    fn happy_path() {
        let (mut b, s0, s1) = two_set_builder();
        b.add_element(1, &[s0, s1]);
        b.add_element(1, &[s0]);
        let inst = b.build().unwrap();
        assert_eq!(inst.num_sets(), 2);
        assert_eq!(inst.num_elements(), 2);
        assert_eq!(inst.set(s0).size(), 2);
        assert_eq!(inst.set(s1).weight(), 2.0);
        assert_eq!(inst.total_weight(), 3.0);
        assert!(inst.is_unit_capacity());
        assert!(!inst.is_unweighted());
        assert_eq!(inst.weight_of([s0, s1]), 3.0);
    }

    #[test]
    fn members_sorted_regardless_of_input_order() {
        let (mut b, s0, s1) = two_set_builder();
        b.add_element(1, &[s1, s0]);
        b.add_element(1, &[s0]);
        let inst = b.build().unwrap();
        assert_eq!(inst.arrivals()[0].members(), &[s0, s1]);
        assert!(inst.arrivals()[0].contains(s1));
        assert!(!inst.arrivals()[1].contains(s1));
    }

    #[test]
    fn size_mismatch_rejected() {
        let (mut b, s0, _) = two_set_builder();
        b.add_element(1, &[s0]);
        // s0 declared size 2 but gets 1 element; s1 declared 1 but gets 0.
        let err = b.build().unwrap_err();
        assert!(matches!(err, Error::SizeMismatch { .. }));
    }

    #[test]
    fn unsized_sets_infer() {
        let mut b = InstanceBuilder::new();
        let s = b.add_set_unsized(1.0);
        b.add_element(2, &[s]);
        b.add_element(1, &[s]);
        let inst = b.build().unwrap();
        assert_eq!(inst.set(s).size(), 2);
        assert!(!inst.is_unit_capacity());
    }

    #[test]
    fn unsized_set_with_no_elements_rejected() {
        let mut b = InstanceBuilder::new();
        b.add_set_unsized(1.0);
        assert_eq!(b.build().unwrap_err(), Error::EmptySet(SetId(0)));
    }

    #[test]
    fn zero_declared_size_rejected() {
        let mut b = InstanceBuilder::new();
        b.add_set(1.0, 0);
        assert_eq!(b.build().unwrap_err(), Error::EmptySet(SetId(0)));
    }

    #[test]
    fn bad_weights_rejected() {
        for w in [-1.0, f64::NAN, f64::INFINITY] {
            let mut b = InstanceBuilder::new();
            b.add_set(w, 1);
            assert!(matches!(b.build().unwrap_err(), Error::BadWeight { .. }));
        }
    }

    #[test]
    fn zero_weight_allowed() {
        let mut b = InstanceBuilder::new();
        let s = b.add_set(0.0, 1);
        b.add_element(1, &[s]);
        assert!(b.build().is_ok());
    }

    #[test]
    fn zero_capacity_rejected() {
        let (mut b, s0, s1) = two_set_builder();
        b.add_element(0, &[s0, s1]);
        b.add_element(1, &[s0]);
        assert_eq!(b.build().unwrap_err(), Error::ZeroCapacity(ElementId(0)));
    }

    #[test]
    fn duplicate_member_rejected() {
        let mut b = InstanceBuilder::new();
        let s = b.add_set(1.0, 2);
        b.add_element(1, &[s, s]);
        assert!(matches!(
            b.build().unwrap_err(),
            Error::DuplicateMember { .. }
        ));
    }

    #[test]
    fn unknown_set_rejected() {
        let mut b = InstanceBuilder::new();
        b.add_set(1.0, 1);
        b.add_element(1, &[SetId(5)]);
        assert!(matches!(b.build().unwrap_err(), Error::UnknownSet { .. }));
    }

    #[test]
    fn members_by_set_inverts_arrivals() {
        let (mut b, s0, s1) = two_set_builder();
        let e0 = b.add_element(1, &[s0, s1]);
        let e1 = b.add_element(1, &[s0]);
        let inst = b.build().unwrap();
        let by_set = inst.members_by_set();
        assert_eq!(by_set[s0.index()], vec![e0, e1]);
        assert_eq!(by_set[s1.index()], vec![e0]);
    }

    #[test]
    fn empty_instance_is_valid() {
        let inst = InstanceBuilder::new().build().unwrap();
        assert_eq!(inst.num_sets(), 0);
        assert_eq!(inst.num_elements(), 0);
        assert_eq!(inst.total_weight(), 0.0);
        assert!(inst.is_unit_capacity());
        assert!(inst.is_unweighted());
    }

    #[test]
    fn shuffle_preserves_structure_and_renumbers() {
        let (mut b, s0, s1) = two_set_builder();
        b.add_element(1, &[s0, s1]);
        b.add_element(2, &[s0]);
        let inst = b.build().unwrap();
        let mut rng = rand::rngs::mock::StepRng::new(1, 7);
        let shuffled = inst.shuffle_arrivals(&mut rng);
        assert_eq!(shuffled.num_elements(), inst.num_elements());
        assert_eq!(shuffled.sets(), inst.sets());
        // Element ids are consecutive in the new order.
        for (i, a) in shuffled.arrivals().iter().enumerate() {
            assert_eq!(a.element(), ElementId(i as u32));
        }
        // The multiset of (capacity, members) is preserved.
        let mut orig: Vec<(u32, Vec<SetId>)> = inst
            .arrivals()
            .iter()
            .map(|a| (a.capacity(), a.members().to_vec()))
            .collect();
        let mut shuf: Vec<(u32, Vec<SetId>)> = shuffled
            .arrivals()
            .iter()
            .map(|a| (a.capacity(), a.members().to_vec()))
            .collect();
        orig.sort();
        shuf.sort();
        assert_eq!(orig, shuf);
    }
}
