//! The OSP instance model: declared sets plus an online arrival sequence.
//!
//! Per §2 of the paper, the algorithm initially knows each set's *weight and
//! size* only. Elements then arrive one by one; element `u` brings its
//! capacity `b(u)` and the list `C(u)` of sets containing it. An
//! [`Instance`] freezes exactly that information, validated so that every
//! set's declared size matches the number of arrivals that list it — which
//! is what makes "the set received all its elements" a well-defined event.
//!
//! # Flat-memory layout
//!
//! Membership is stored as one CSR arena: a single `Vec<SetId>` pool plus
//! an offset table, so replaying the arrival sequence walks one contiguous
//! buffer instead of chasing a heap pointer per arrival. [`Arrival`] is a
//! cheap borrowed *view* into that arena ([`Arrival::members`] is a slice
//! of the pool), and [`Instance::arrivals`] returns an indexable,
//! sliceable, iterable [`Arrivals`] view over all of them.

use crate::error::Error;
use crate::ids::{ElementId, SetId};

/// What the algorithm knows about a set up front: weight and size (§2).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SetMeta {
    weight: f64,
    size: u32,
}

impl SetMeta {
    /// Creates standalone set metadata for incremental use with
    /// [`Session`](crate::engine::Session) (adaptive adversaries declare
    /// sets before any [`Instance`] exists).
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or non-finite, or if `size == 0` —
    /// the same invariants [`InstanceBuilder::build`] enforces.
    pub fn new(weight: f64, size: u32) -> Self {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "set weight must be finite and non-negative, got {weight}"
        );
        assert!(size >= 1, "set size must be at least 1");
        SetMeta { weight, size }
    }

    /// The set's weight `w(S)`.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// The set's size `|S|` (number of elements it contains).
    pub fn size(&self) -> u32 {
        self.size
    }
}

/// One online arrival: element identity, capacity `b(u)` and the member
/// list `C(u)` (sorted by set id).
///
/// An `Arrival` is a borrowed view — for instance replays the member list
/// is a slice into the [`Instance`]'s CSR membership arena, so handing
/// arrivals to an algorithm allocates nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival<'a> {
    element: ElementId,
    capacity: u32,
    members: &'a [SetId],
}

impl<'a> Arrival<'a> {
    /// Creates a standalone arrival for incremental use with
    /// [`Session`](crate::engine::Session) (adaptive adversaries build
    /// arrivals on the fly, before any [`Instance`] exists).
    ///
    /// # Panics
    ///
    /// Panics unless the member list is sorted ascending by set id and
    /// duplicate-free — the engine's binary searches rely on it, and this
    /// constructor is a cold path (replay arrivals come from the
    /// [`Arrivals`] view, whose arena segments are sorted by
    /// construction).
    pub fn new(element: ElementId, capacity: u32, members: &'a [SetId]) -> Self {
        assert!(
            members.windows(2).all(|w| w[0] < w[1]),
            "arrival member list must be sorted and duplicate-free"
        );
        Arrival {
            element,
            capacity,
            members,
        }
    }

    /// Checked variant of [`new`](Self::new) for *untrusted* input (e.g.
    /// the osp-net trace boundary): instead of panicking it reports exactly
    /// which invariant the member list violates, plus a zero capacity.
    ///
    /// # Errors
    ///
    /// * [`Error::ZeroCapacity`] if `capacity == 0`;
    /// * [`Error::DuplicateMember`] if a set id repeats;
    /// * [`Error::UnsortedMembers`] if the list is not ascending.
    pub fn try_new(element: ElementId, capacity: u32, members: &'a [SetId]) -> Result<Self, Error> {
        if capacity == 0 {
            return Err(Error::ZeroCapacity(element));
        }
        for w in members.windows(2) {
            if w[0] == w[1] {
                return Err(Error::DuplicateMember { element, set: w[0] });
            }
            if w[0] > w[1] {
                return Err(Error::UnsortedMembers { element, set: w[1] });
            }
        }
        Ok(Arrival {
            element,
            capacity,
            members,
        })
    }

    /// The arriving element's id (also its position in arrival order).
    pub fn element(&self) -> ElementId {
        self.element
    }

    /// The element's capacity `b(u)`: how many sets it may be assigned to.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// The sets containing this element, `C(u)`, sorted by id.
    pub fn members(&self) -> &'a [SetId] {
        self.members
    }

    /// The element's load `σ(u) = |C(u)|`.
    pub fn load(&self) -> u32 {
        self.members.len() as u32
    }

    /// Whether `set` contains this element (binary search on the sorted
    /// member list).
    pub fn contains(&self, set: SetId) -> bool {
        self.members.binary_search(&set).is_ok()
    }
}

/// A borrowed view of a contiguous run of arrivals (all of an instance's,
/// or a [`slice`](Arrivals::slice) of them). Indexing materializes the
/// [`Arrival`] view on the fly; nothing is copied.
#[derive(Debug, Clone, Copy)]
pub struct Arrivals<'a> {
    capacities: &'a [u32],
    /// Absolute offsets into `pool`; `offsets.len() == capacities.len()+1`.
    offsets: &'a [u32],
    pool: &'a [SetId],
    /// Element id of the first arrival in this view.
    base: u32,
}

impl<'a> Arrivals<'a> {
    /// Number of arrivals in the view.
    pub fn len(&self) -> usize {
        self.capacities.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.capacities.is_empty()
    }

    /// The `i`-th arrival of the view, or `None` past the end.
    pub fn get(&self, i: usize) -> Option<Arrival<'a>> {
        if i >= self.capacities.len() {
            return None;
        }
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        Some(Arrival {
            element: ElementId(self.base + i as u32),
            capacity: self.capacities[i],
            members: &self.pool[lo..hi],
        })
    }

    /// A sub-view over `range` (arrival indices relative to this view).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Arrivals<'a> {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&b) => b,
            Bound::Excluded(&b) => b + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&b) => b + 1,
            Bound::Excluded(&b) => b,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "arrival range out of bounds");
        Arrivals {
            capacities: &self.capacities[lo..hi],
            offsets: &self.offsets[lo..=hi],
            pool: self.pool,
            base: self.base + lo as u32,
        }
    }

    /// Iterates the arrivals in order.
    pub fn iter(self) -> ArrivalsIter<'a> {
        ArrivalsIter {
            view: self,
            front: 0,
            back: self.len(),
        }
    }
}

impl<'a> IntoIterator for Arrivals<'a> {
    type Item = Arrival<'a>;
    type IntoIter = ArrivalsIter<'a>;

    fn into_iter(self) -> ArrivalsIter<'a> {
        self.iter()
    }
}

impl<'a> IntoIterator for &Arrivals<'a> {
    type Item = Arrival<'a>;
    type IntoIter = ArrivalsIter<'a>;

    fn into_iter(self) -> ArrivalsIter<'a> {
        self.iter()
    }
}

/// Iterator over an [`Arrivals`] view.
#[derive(Debug, Clone)]
pub struct ArrivalsIter<'a> {
    view: Arrivals<'a>,
    front: usize,
    back: usize,
}

impl<'a> Iterator for ArrivalsIter<'a> {
    type Item = Arrival<'a>;

    fn next(&mut self) -> Option<Arrival<'a>> {
        if self.front >= self.back {
            return None;
        }
        let a = self.view.get(self.front);
        self.front += 1;
        a
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.back - self.front;
        (n, Some(n))
    }
}

impl DoubleEndedIterator for ArrivalsIter<'_> {
    fn next_back(&mut self) -> Option<Self::Item> {
        if self.front >= self.back {
            return None;
        }
        self.back -= 1;
        self.view.get(self.back)
    }
}

impl ExactSizeIterator for ArrivalsIter<'_> {}
impl std::iter::FusedIterator for ArrivalsIter<'_> {}

/// A complete, validated OSP instance.
///
/// Construct via [`InstanceBuilder`]. Invariants guaranteed after
/// construction:
///
/// * every weight is finite and non-negative;
/// * every set has size ≥ 1 and its declared size equals the number of
///   arrivals listing it;
/// * every arrival has capacity ≥ 1 and a duplicate-free, sorted member
///   list referencing declared sets only.
///
/// Memberships live in a flat CSR arena (`member_offsets` + `members`),
/// so the replay hot path walks one contiguous `Vec<SetId>`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Instance {
    sets: Vec<SetMeta>,
    capacities: Vec<u32>,
    /// CSR offsets: arrival `i`'s members are `members[offsets[i]..offsets[i+1]]`.
    member_offsets: Vec<u32>,
    /// The CSR membership pool; each arrival's segment is sorted by set id.
    members: Vec<SetId>,
}

impl Instance {
    /// Number of sets `m`.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Number of elements `n`.
    pub fn num_elements(&self) -> usize {
        self.capacities.len()
    }

    /// Metadata of one set.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn set(&self, id: SetId) -> &SetMeta {
        &self.sets[id.index()]
    }

    /// All set metadata, indexed by [`SetId`].
    pub fn sets(&self) -> &[SetMeta] {
        &self.sets
    }

    /// The arrival sequence in online order, as a zero-copy view into the
    /// CSR arena.
    pub fn arrivals(&self) -> Arrivals<'_> {
        Arrivals {
            capacities: &self.capacities,
            offsets: &self.member_offsets,
            pool: &self.members,
            base: 0,
        }
    }

    /// The `i`-th arrival.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn arrival(&self, i: usize) -> Arrival<'_> {
        self.arrivals()
            .get(i)
            .unwrap_or_else(|| panic!("arrival index {i} out of range"))
    }

    /// A fresh [`ArrivalSource`](crate::source::ArrivalSource) streaming
    /// this instance's arrivals from the start — the bridge from the
    /// materialized world into the source-generic engine entry points
    /// ([`run_source`](crate::engine::run_source) and friends). The yielded
    /// [`Arrival`]s are the same zero-copy views into the CSR arena that
    /// [`arrivals`](Self::arrivals) hands out.
    pub fn source(&self) -> crate::source::InstanceSource<'_> {
        crate::source::InstanceSource::new(self)
    }

    /// Consumes the instance into an owning stream over its arrival
    /// sequence — the `'static` twin of [`source`](Self::source), for
    /// when the stream must outlive the builder scope (e.g. a
    /// [`spec`](crate::spec) resolver returning a boxed source).
    pub fn into_source(self) -> crate::source::OwnedInstanceSource {
        crate::source::OwnedInstanceSource::new(self)
    }

    /// Bytes of heap memory the instance's arrays occupy (set metadata,
    /// capacities, CSR offsets and membership pool) — what a streaming
    /// [`source`](Self::source) pipeline avoids materializing.
    pub fn heap_bytes(&self) -> usize {
        self.sets.len() * std::mem::size_of::<SetMeta>()
            + self.capacities.len() * std::mem::size_of::<u32>()
            + self.member_offsets.len() * std::mem::size_of::<u32>()
            + self.members.len() * std::mem::size_of::<SetId>()
    }

    /// Total weight `w(C)` of all sets.
    pub fn total_weight(&self) -> f64 {
        self.sets.iter().map(|s| s.weight).sum()
    }

    /// Sum of the weights of the given sets.
    pub fn weight_of<I: IntoIterator<Item = SetId>>(&self, ids: I) -> f64 {
        ids.into_iter().map(|id| self.set(id).weight).sum()
    }

    /// Whether all elements have capacity 1 (the paper's *unit capacity*
    /// special case).
    pub fn is_unit_capacity(&self) -> bool {
        self.capacities.iter().all(|&c| c == 1)
    }

    /// Whether all sets have weight 1 (the paper's *unweighted* case).
    pub fn is_unweighted(&self) -> bool {
        self.sets.iter().all(|s| s.weight == 1.0)
    }

    /// For each set, the elements it contains, in arrival order. Computed on
    /// demand (`O(Σ|S|)`); offline solvers and statistics use this view.
    pub fn members_by_set(&self) -> Vec<Vec<ElementId>> {
        let mut by_set = vec![Vec::new(); self.sets.len()];
        for a in self.arrivals() {
            for &s in a.members() {
                by_set[s.index()].push(a.element());
            }
        }
        by_set
    }

    /// Returns a copy of this instance with the arrival order permuted
    /// uniformly at random (elements are renumbered to match their new
    /// positions).
    ///
    /// Arrival order matters to *stateful* algorithms (greedy variants see
    /// different activity histories), but `randPr`'s outcome for a fixed
    /// priority draw is order-invariant: a set completes iff its priority
    /// is in the top `b(u)` of every one of its elements, a condition with
    /// no notion of time. The `arrival_order` property tests exploit this.
    pub fn shuffle_arrivals<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> Instance {
        use rand::seq::SliceRandom;
        let mut order: Vec<usize> = (0..self.num_elements()).collect();
        order.shuffle(rng);
        let mut capacities = Vec::with_capacity(order.len());
        let mut member_offsets = Vec::with_capacity(order.len() + 1);
        let mut members = Vec::with_capacity(self.members.len());
        member_offsets.push(0);
        for &old_idx in &order {
            let a = self.arrival(old_idx);
            capacities.push(a.capacity());
            members.extend_from_slice(a.members());
            member_offsets.push(members.len() as u32);
        }
        Instance {
            sets: self.sets.clone(),
            capacities,
            member_offsets,
            members,
        }
    }
}

/// Incremental builder for [`Instance`].
///
/// Sets may be declared with a known size ([`add_set`](Self::add_set)) or
/// with the size inferred at build time
/// ([`add_set_unsized`](Self::add_set_unsized)) — the latter is convenient
/// for generators that decide membership element-by-element. Memberships
/// accumulate directly in the CSR arena the built [`Instance`] will own.
///
/// # Examples
///
/// ```
/// use osp_core::InstanceBuilder;
///
/// let mut b = InstanceBuilder::new();
/// let s = b.add_set(2.5, 1);
/// b.add_element(1, &[s]);
/// let inst = b.build()?;
/// assert_eq!(inst.num_sets(), 1);
/// assert_eq!(inst.set(s).weight(), 2.5);
/// # Ok::<(), osp_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct InstanceBuilder {
    weights: Vec<f64>,
    declared: Vec<Option<u32>>,
    capacities: Vec<u32>,
    member_offsets: Vec<u32>,
    members: Vec<SetId>,
}

impl Default for InstanceBuilder {
    fn default() -> Self {
        InstanceBuilder {
            weights: Vec::new(),
            declared: Vec::new(),
            capacities: Vec::new(),
            member_offsets: vec![0],
            members: Vec::new(),
        }
    }
}

impl InstanceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a set with known `weight` and `size`, returning its id.
    pub fn add_set(&mut self, weight: f64, size: u32) -> SetId {
        self.weights.push(weight);
        self.declared.push(Some(size));
        SetId((self.weights.len() - 1) as u32)
    }

    /// Declares a set whose size will be inferred from the elements added
    /// later (it must end up ≥ 1).
    pub fn add_set_unsized(&mut self, weight: f64) -> SetId {
        self.weights.push(weight);
        self.declared.push(None);
        SetId((self.weights.len() - 1) as u32)
    }

    /// Number of sets declared so far.
    pub fn num_sets(&self) -> usize {
        self.weights.len()
    }

    /// Number of elements added so far.
    pub fn num_elements(&self) -> usize {
        self.capacities.len()
    }

    /// Appends the next arriving element with capacity `b(u)` and member
    /// list `C(u)`; returns the element's id. The member list is sorted
    /// internally; order does not matter.
    pub fn add_element(&mut self, capacity: u32, members: &[SetId]) -> ElementId {
        let element = ElementId(self.capacities.len() as u32);
        self.capacities.push(capacity);
        let start = self.members.len();
        self.members.extend_from_slice(members);
        self.members[start..].sort_unstable();
        self.member_offsets.push(self.members.len() as u32);
        element
    }

    /// Validates and freezes the instance.
    ///
    /// # Errors
    ///
    /// Returns the first violation found: invalid weight, zero capacity,
    /// duplicate/unknown members, or declared-vs-realized size mismatch
    /// (unsized sets must receive at least one element).
    pub fn build(self) -> Result<Instance, Error> {
        let m = self.weights.len();
        for (i, &w) in self.weights.iter().enumerate() {
            if !w.is_finite() || w < 0.0 {
                return Err(Error::BadWeight {
                    set: SetId(i as u32),
                    weight: w,
                });
            }
        }
        let mut realized = vec![0u32; m];
        for (i, &capacity) in self.capacities.iter().enumerate() {
            let element = ElementId(i as u32);
            if capacity == 0 {
                return Err(Error::ZeroCapacity(element));
            }
            let segment =
                &self.members[self.member_offsets[i] as usize..self.member_offsets[i + 1] as usize];
            for w in segment.windows(2) {
                if w[0] == w[1] {
                    return Err(Error::DuplicateMember { element, set: w[0] });
                }
            }
            for &s in segment {
                if s.index() >= m {
                    return Err(Error::UnknownSet { element, set: s });
                }
                realized[s.index()] += 1;
            }
        }
        let mut sets = Vec::with_capacity(m);
        for (i, (&w, &d)) in self.weights.iter().zip(&self.declared).enumerate() {
            let id = SetId(i as u32);
            let size = match d {
                Some(declared) => {
                    if declared == 0 {
                        return Err(Error::EmptySet(id));
                    }
                    if declared != realized[i] {
                        return Err(Error::SizeMismatch {
                            set: id,
                            declared,
                            realized: realized[i],
                        });
                    }
                    declared
                }
                None => {
                    if realized[i] == 0 {
                        return Err(Error::EmptySet(id));
                    }
                    realized[i]
                }
            };
            sets.push(SetMeta { weight: w, size });
        }
        Ok(Instance {
            sets,
            capacities: self.capacities,
            member_offsets: self.member_offsets,
            members: self.members,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_set_builder() -> (InstanceBuilder, SetId, SetId) {
        let mut b = InstanceBuilder::new();
        let s0 = b.add_set(1.0, 2);
        let s1 = b.add_set(2.0, 1);
        (b, s0, s1)
    }

    #[test]
    fn happy_path() {
        let (mut b, s0, s1) = two_set_builder();
        b.add_element(1, &[s0, s1]);
        b.add_element(1, &[s0]);
        let inst = b.build().unwrap();
        assert_eq!(inst.num_sets(), 2);
        assert_eq!(inst.num_elements(), 2);
        assert_eq!(inst.set(s0).size(), 2);
        assert_eq!(inst.set(s1).weight(), 2.0);
        assert_eq!(inst.total_weight(), 3.0);
        assert!(inst.is_unit_capacity());
        assert!(!inst.is_unweighted());
        assert_eq!(inst.weight_of([s0, s1]), 3.0);
    }

    #[test]
    fn members_sorted_regardless_of_input_order() {
        let (mut b, s0, s1) = two_set_builder();
        b.add_element(1, &[s1, s0]);
        b.add_element(1, &[s0]);
        let inst = b.build().unwrap();
        assert_eq!(inst.arrival(0).members(), &[s0, s1]);
        assert!(inst.arrival(0).contains(s1));
        assert!(!inst.arrival(1).contains(s1));
    }

    #[test]
    fn arrivals_view_indexes_slices_and_iterates() {
        let (mut b, s0, s1) = two_set_builder();
        b.add_element(1, &[s0, s1]);
        b.add_element(2, &[s0]);
        let inst = b.build().unwrap();
        let arrivals = inst.arrivals();
        assert_eq!(arrivals.len(), 2);
        assert!(!arrivals.is_empty());
        assert_eq!(arrivals.get(0).unwrap().load(), 2);
        assert!(arrivals.get(2).is_none());
        // Elements are numbered by position, including in sub-views.
        let tail = arrivals.slice(1..);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail.get(0).unwrap().element(), ElementId(1));
        assert_eq!(tail.get(0).unwrap().capacity(), 2);
        // Iteration, both directions.
        let fwd: Vec<ElementId> = arrivals.iter().map(|a| a.element()).collect();
        assert_eq!(fwd, vec![ElementId(0), ElementId(1)]);
        let bwd: Vec<ElementId> = arrivals.iter().rev().map(|a| a.element()).collect();
        assert_eq!(bwd, vec![ElementId(1), ElementId(0)]);
        assert_eq!(arrivals.iter().len(), 2);
    }

    #[test]
    fn size_mismatch_rejected() {
        let (mut b, s0, _) = two_set_builder();
        b.add_element(1, &[s0]);
        // s0 declared size 2 but gets 1 element; s1 declared 1 but gets 0.
        let err = b.build().unwrap_err();
        assert!(matches!(err, Error::SizeMismatch { .. }));
    }

    #[test]
    fn unsized_sets_infer() {
        let mut b = InstanceBuilder::new();
        let s = b.add_set_unsized(1.0);
        b.add_element(2, &[s]);
        b.add_element(1, &[s]);
        let inst = b.build().unwrap();
        assert_eq!(inst.set(s).size(), 2);
        assert!(!inst.is_unit_capacity());
    }

    #[test]
    fn unsized_set_with_no_elements_rejected() {
        let mut b = InstanceBuilder::new();
        b.add_set_unsized(1.0);
        assert_eq!(b.build().unwrap_err(), Error::EmptySet(SetId(0)));
    }

    #[test]
    fn zero_declared_size_rejected() {
        let mut b = InstanceBuilder::new();
        b.add_set(1.0, 0);
        assert_eq!(b.build().unwrap_err(), Error::EmptySet(SetId(0)));
    }

    #[test]
    fn bad_weights_rejected() {
        for w in [-1.0, f64::NAN, f64::INFINITY] {
            let mut b = InstanceBuilder::new();
            b.add_set(w, 1);
            assert!(matches!(b.build().unwrap_err(), Error::BadWeight { .. }));
        }
    }

    #[test]
    fn zero_weight_allowed() {
        let mut b = InstanceBuilder::new();
        let s = b.add_set(0.0, 1);
        b.add_element(1, &[s]);
        assert!(b.build().is_ok());
    }

    #[test]
    fn zero_capacity_rejected() {
        let (mut b, s0, s1) = two_set_builder();
        b.add_element(0, &[s0, s1]);
        b.add_element(1, &[s0]);
        assert_eq!(b.build().unwrap_err(), Error::ZeroCapacity(ElementId(0)));
    }

    #[test]
    fn duplicate_member_rejected() {
        let mut b = InstanceBuilder::new();
        let s = b.add_set(1.0, 2);
        b.add_element(1, &[s, s]);
        assert!(matches!(
            b.build().unwrap_err(),
            Error::DuplicateMember { .. }
        ));
    }

    #[test]
    fn unknown_set_rejected() {
        let mut b = InstanceBuilder::new();
        b.add_set(1.0, 1);
        b.add_element(1, &[SetId(5)]);
        assert!(matches!(b.build().unwrap_err(), Error::UnknownSet { .. }));
    }

    #[test]
    fn members_by_set_inverts_arrivals() {
        let (mut b, s0, s1) = two_set_builder();
        let e0 = b.add_element(1, &[s0, s1]);
        let e1 = b.add_element(1, &[s0]);
        let inst = b.build().unwrap();
        let by_set = inst.members_by_set();
        assert_eq!(by_set[s0.index()], vec![e0, e1]);
        assert_eq!(by_set[s1.index()], vec![e0]);
    }

    #[test]
    fn empty_instance_is_valid() {
        let inst = InstanceBuilder::new().build().unwrap();
        assert_eq!(inst.num_sets(), 0);
        assert_eq!(inst.num_elements(), 0);
        assert_eq!(inst.total_weight(), 0.0);
        assert!(inst.is_unit_capacity());
        assert!(inst.is_unweighted());
        assert!(inst.arrivals().iter().next().is_none());
    }

    #[test]
    fn shuffle_preserves_structure_and_renumbers() {
        let (mut b, s0, s1) = two_set_builder();
        b.add_element(1, &[s0, s1]);
        b.add_element(2, &[s0]);
        let inst = b.build().unwrap();
        let mut rng = rand::rngs::mock::StepRng::new(1, 7);
        let shuffled = inst.shuffle_arrivals(&mut rng);
        assert_eq!(shuffled.num_elements(), inst.num_elements());
        assert_eq!(shuffled.sets(), inst.sets());
        // Element ids are consecutive in the new order.
        for (i, a) in shuffled.arrivals().iter().enumerate() {
            assert_eq!(a.element(), ElementId(i as u32));
        }
        // The multiset of (capacity, members) is preserved.
        let mut orig: Vec<(u32, Vec<SetId>)> = inst
            .arrivals()
            .iter()
            .map(|a| (a.capacity(), a.members().to_vec()))
            .collect();
        let mut shuf: Vec<(u32, Vec<SetId>)> = shuffled
            .arrivals()
            .iter()
            .map(|a| (a.capacity(), a.members().to_vec()))
            .collect();
        orig.sort();
        shuf.sort();
        assert_eq!(orig, shuf);
    }
}
