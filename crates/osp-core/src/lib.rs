//! # osp-core — the online set packing problem, engine and algorithms
//!
//! This crate implements the model of *"Online Set Packing and Competitive
//! Scheduling of Multi-Part Tasks"* (Emek, Halldórsson, Mansour, Patt-Shamir,
//! Radhakrishnan, Rawitz — PODC 2010):
//!
//! * the **problem model** — a weighted set system whose elements arrive
//!   online, each announcing its capacity and the sets containing it
//!   ([`Instance`], [`InstanceBuilder`]);
//! * the **online engine** — drives an [`OnlineAlgorithm`] over an instance,
//!   enforcing the capacity constraint and tracking which sets survive
//!   ([`engine::run`], [`Outcome`]);
//! * the paper's **algorithm `randPr`** ([`algorithms::RandPr`]) with its
//!   priority distribution `R_w` ([`priority::Rw`], Eq. (2) of the paper),
//!   the **distributed hash-priority variant** ([`algorithms::HashRandPr`],
//!   §3.1), deterministic greedy baselines and a naive randomized baseline;
//! * **instance statistics** ([`stats::InstanceStats`]) and the
//!   **theoretical bounds** of every theorem ([`bounds`]);
//! * seeded **random instance generators** ([`gen`]) for the upper-bound
//!   experiments.
//!
//! # Example
//!
//! ```
//! use osp_core::prelude::*;
//!
//! // Two frames of two packets each, colliding in the middle slot.
//! let mut b = InstanceBuilder::new();
//! let s0 = b.add_set(1.0, 2);
//! let s1 = b.add_set(1.0, 2);
//! b.add_element(1, &[s0]);
//! b.add_element(1, &[s0, s1]); // burst: only one can be served
//! b.add_element(1, &[s1]);
//! let instance = b.build()?;
//!
//! let mut alg = RandPr::from_seed(1);
//! let outcome = run(&instance, &mut alg)?;
//! assert_eq!(outcome.completed().len(), 1); // exactly one frame survives
//! # Ok::<(), osp_core::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm;
pub mod algorithms;
pub mod bounds;
pub mod engine;
mod error;
pub mod gen;
mod ids;
mod instance;
pub mod prelude;
pub mod priority;
pub mod serve;
pub mod source;
pub mod spec;
pub mod stats;
pub mod store;
pub mod wire;

pub use algorithm::{EngineView, OnlineAlgorithm};
pub use engine::batch::{
    derive_seed, env_parallelism, ReplayJob, ReplayPool, ReplayScratch, SourceJob,
};
pub use engine::dispatch::{
    derived_jobs, worker_binary, DispatchEvent, Dispatcher, EventSink, FleetHandle, FleetReport,
    LaneReport, ProcessPool, RejoinPolicy, RetryPolicy, SocketConfig, SocketPool, SpecPool,
    StderrSink,
};
pub use engine::{
    run, run_parallel, run_source, run_source_parallel, run_source_with_scratch, run_with_scratch,
    DecisionLog, Outcome, ParallelConfig, Session,
};
pub use error::{Error, WorkerError};
pub use ids::{ElementId, SetId};
pub use instance::{Arrival, Arrivals, Instance, InstanceBuilder, SetMeta};
pub use serve::{
    job_digest, BatchStatus, FleetCommand, JobResult, ReplayService, ServeClient, ServeServer,
    ServiceConfig,
};
pub use source::{ArrivalSource, FramedSource, InstanceSource, OwnedInstanceSource, SocketSource};
pub use spec::{run_spec, AlgorithmSpec, CoreResolver, JobSpec, ScenarioSpec, SpecResolver};
pub use store::{JournalStore, MemStore, ResultStore, StoreLimits};
pub use wire::socket::{SocketServer, WorkerAddr};
pub use wire::FaultPlan;
