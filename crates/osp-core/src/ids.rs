//! Typed identifiers for sets and elements.

use std::fmt;

/// Identifier of a set (a data frame / multi-part task) within an
/// [`Instance`](crate::Instance); dense indices `0..m`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct SetId(pub u32);

impl SetId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl From<SetId> for usize {
    fn from(id: SetId) -> usize {
        id.index()
    }
}

/// Identifier of an element (a time slot / served unit) within an
/// [`Instance`](crate::Instance); dense indices `0..n` in arrival order.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct ElementId(pub u32);

impl ElementId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ElementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl From<ElementId> for usize {
    fn from(id: ElementId) -> usize {
        id.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        assert_eq!(SetId(3).to_string(), "S3");
        assert_eq!(ElementId(7).to_string(), "u7");
        assert_eq!(SetId(3).index(), 3);
        assert_eq!(usize::from(ElementId(9)), 9);
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(SetId(1) < SetId(2));
        assert!(ElementId(0) < ElementId(10));
    }
}
