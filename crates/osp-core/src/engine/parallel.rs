//! Intra-replay parallelism: the pipelined session and the sharded
//! decision kernel — parallelism *within* one huge replay, as opposed to
//! the across-jobs lanes ([`ReplayPool`](super::batch::ReplayPool),
//! process/socket pools).
//!
//! Two mechanisms, both preserving the bit-identity contract exactly:
//!
//! 1. **Pipelined session** ([`run_source_parallel`]): a producer thread
//!    drains the [`ArrivalSource`] into a double-buffered ring of chunk
//!    arenas (arrivals copied into a reused CSR arena per chunk — the
//!    same flat layout [`Instance`] uses, so the steady
//!    state allocates nothing) while the consumer thread runs the
//!    existing [`Session::step`] loop over the previous chunk. Decisions
//!    are order-dependent, so the arrival loop itself stays sequential —
//!    but generation cost (20–60% of wall for fused generator sources)
//!    is hidden behind decision cost. The arrivals the consumer replays
//!    are byte-for-byte the arrivals the source yielded, so outcomes are
//!    bit-identical to [`run_source`](super::run_source) by
//!    construction.
//!
//! 2. **Sharded decision kernel** ([`fill_sharded`], threshold
//!    [`SHARDED_DECIDE_MIN`]): when one arrival's candidate count crosses
//!    the threshold, the built-in algorithms score candidates in
//!    disjoint contiguous ranges across scoped threads (the
//!    [`prologue::build_table`](super::prologue::build_table) fan-out
//!    shape, applied per arrival) into one position-aligned scored
//!    buffer, then select the winners over the *full* buffer with the
//!    exact serial
//!    [`select_top_b`](crate::algorithms) comparator sequence. Because
//!    only the score *fill* is sharded — never the selection — survivors
//!    and their order are bit-identical to the serial path at ANY thread
//!    count.
//!
//! Thread counts come from `OSP_REPLAY_THREADS` under the workspace-wide
//! [`env_parallelism`] policy (unset → machine default, `0` → 1, junk →
//! machine default); one thread is exactly the historical serial path
//! ([`run_source_with_scratch`] is called directly — no producer thread,
//! no chunk copies). Batch and intra-replay parallelism compose via
//! [`ReplayPool::run_sources_pipelined`](super::batch::ReplayPool::run_sources_pipelined):
//! `OSP_REPLAY_SHARDS` jobs × `OSP_REPLAY_THREADS` threads per job.
//! `tests/parallel_replay.rs` pins thread counts {1, 2, 8} bit-identical
//! across the full algorithm × generator conformance grid.

use std::sync::mpsc::sync_channel;

use crate::algorithm::OnlineAlgorithm;
use crate::error::Error;
use crate::ids::{ElementId, SetId};
use crate::instance::{Arrival, Instance};
use crate::source::ArrivalSource;

use super::batch::{env_parallelism, ReplayScratch};
use super::{run_source_with_scratch, Outcome, Session};

/// The environment variable sizing intra-replay parallelism.
pub const REPLAY_THREADS_VAR: &str = "OSP_REPLAY_THREADS";

/// Candidate count at which the built-in algorithms switch one decision's
/// score fill from the serial loop to the sharded kernel. Measured on the
/// scoring-bound path (lazy `hashPr`, one polynomial evaluation per
/// candidate): below ~4096 candidates the scoped-thread fan-out costs
/// more than the scoring it parallelizes; table-lookup algorithms cross
/// even later, but dispatching them identically keeps the policy simple —
/// and either path produces bit-identical survivors, so the threshold is
/// a pure performance knob.
pub const SHARDED_DECIDE_MIN: usize = 4096;

/// Arrivals staged per pipeline chunk: large enough to amortize the
/// channel round trip to well under a nanosecond per arrival, small
/// enough that two in-flight chunks stay cache-resident.
const PIPELINE_CHUNK: usize = 1024;

/// Chunk arenas in flight (double buffering: the producer fills one while
/// the consumer drains the other).
const PIPELINE_RING: usize = 2;

/// The replay thread count from `OSP_REPLAY_THREADS` under the
/// [`env_parallelism`] policy.
pub fn threads_from_env() -> usize {
    env_parallelism(REPLAY_THREADS_VAR)
}

/// Tuning for the pipelined entry points, decoupled from the process
/// environment so tests and benchmarks can pin any configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Total threads for one replay: `<= 1` is the exact serial path;
    /// `>= 2` runs the producer/consumer pipeline, and the same value is
    /// announced to the algorithm as its sharded-decide fan-out
    /// ([`OnlineAlgorithm::set_decision_threads`]).
    pub threads: usize,
    /// Arrivals staged per pipeline chunk (clamped to at least 1).
    pub chunk: usize,
}

impl ParallelConfig {
    /// The configuration [`run_source_parallel`] uses: thread count from
    /// `OSP_REPLAY_THREADS` ([`threads_from_env`]), default chunking.
    pub fn from_env() -> Self {
        ParallelConfig::with_threads(threads_from_env())
    }

    /// An explicit thread count with default chunking.
    pub fn with_threads(threads: usize) -> Self {
        ParallelConfig {
            threads,
            chunk: PIPELINE_CHUNK,
        }
    }
}

/// One pipeline chunk: up to `chunk` arrivals copied out of the source
/// into a flat CSR arena (element ids + capacities + an offset-indexed
/// member pool). Chunks ping-pong between producer and consumer over two
/// bounded channels and are never dropped until the replay ends, so after
/// the arenas grow to steady width the pipeline allocates nothing per
/// arrival.
#[derive(Debug, Default)]
struct Chunk {
    elements: Vec<ElementId>,
    capacities: Vec<u32>,
    /// `offsets.len() == elements.len() + 1`; arrival `i`'s members are
    /// `members[offsets[i]..offsets[i + 1]]`.
    offsets: Vec<usize>,
    members: Vec<SetId>,
}

impl Chunk {
    fn clear(&mut self) {
        self.elements.clear();
        self.capacities.clear();
        self.offsets.clear();
        self.offsets.push(0);
        self.members.clear();
    }

    fn push(&mut self, arrival: &Arrival<'_>) {
        self.elements.push(arrival.element());
        self.capacities.push(arrival.capacity());
        self.members.extend_from_slice(arrival.members());
        self.offsets.push(self.members.len());
    }

    fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    fn arrivals(&self) -> impl Iterator<Item = Arrival<'_>> {
        (0..self.elements.len()).map(|i| {
            Arrival::new(
                self.elements[i],
                self.capacities[i],
                &self.members[self.offsets[i]..self.offsets[i + 1]],
            )
        })
    }
}

/// Replays a frozen [`Instance`] through the pipelined session with
/// `OSP_REPLAY_THREADS` threads — the intra-replay-parallel twin of
/// [`run`](super::run). Bit-identical to it at every thread count.
///
/// # Errors
///
/// Same contract as [`run`](super::run): the first invalid decision.
///
/// # Examples
///
/// ```
/// use osp_core::prelude::*;
///
/// let mut b = InstanceBuilder::new();
/// let s = b.add_set(1.0, 1);
/// b.add_element(1, &[s]);
/// let inst = b.build()?;
/// let parallel = run_parallel(&inst, &mut GreedyOnline::new(TieBreak::ByWeight))?;
/// let serial = run(&inst, &mut GreedyOnline::new(TieBreak::ByWeight))?;
/// assert_eq!(parallel, serial);
/// # Ok::<(), osp_core::Error>(())
/// ```
pub fn run_parallel<A: OnlineAlgorithm + ?Sized>(
    instance: &Instance,
    algorithm: &mut A,
) -> Result<Outcome, Error> {
    run_source_parallel(&mut instance.source(), algorithm)
}

/// Drives `algorithm` over `source` through the pipelined session with
/// `OSP_REPLAY_THREADS` threads — the intra-replay-parallel twin of
/// [`run_source`](super::run_source). Bit-identical to it at every
/// thread count: the consumer replays exactly the arrivals the producer
/// copied, in order, through the same [`Session`] logic.
///
/// # Errors
///
/// Same contract as [`run_source`](super::run_source): the first invalid
/// decision.
pub fn run_source_parallel<S, A>(source: &mut S, algorithm: &mut A) -> Result<Outcome, Error>
where
    S: ArrivalSource + Send + ?Sized,
    A: OnlineAlgorithm + ?Sized,
{
    let mut scratch = ReplayScratch::new();
    run_source_parallel_with(source, algorithm, &ParallelConfig::from_env(), &mut scratch)
}

/// [`run_source_parallel`] with an explicit [`ParallelConfig`] and
/// caller-provided [`ReplayScratch`] — the seam conformance tests and the
/// pool's composed lane ride, so any thread count can be pinned without
/// touching the process environment.
///
/// `config.threads <= 1` is **exactly** the serial path: the call
/// degenerates to [`run_source_with_scratch`] (no producer thread, no
/// chunk copies). Otherwise one producer thread fills chunk arenas while
/// the caller's thread consumes them, and `config.threads` is announced
/// to the algorithm via
/// [`OnlineAlgorithm::set_decision_threads`] so wide arrivals can shard
/// their score fill.
///
/// # Errors
///
/// Same contract as [`run_source`](super::run_source).
pub fn run_source_parallel_with<S, A>(
    source: &mut S,
    algorithm: &mut A,
    config: &ParallelConfig,
    scratch: &mut ReplayScratch,
) -> Result<Outcome, Error>
where
    S: ArrivalSource + Send + ?Sized,
    A: OnlineAlgorithm + ?Sized,
{
    algorithm.set_decision_threads(config.threads.max(1));
    if config.threads <= 1 {
        return run_source_with_scratch(source, algorithm, scratch);
    }
    let chunk_arrivals = config.chunk.max(1);
    let mut metas = std::mem::take(&mut scratch.set_metas);
    metas.clear();
    metas.extend_from_slice(source.sets());
    // Two bounded channels ping-pong the chunk arenas: `full` carries
    // filled chunks producer → consumer, `empty` returns them. Bounded
    // (array-backed) channels make the steady-state sends allocation-free
    // and cap the arrivals in flight at RING × chunk.
    let (full_tx, full_rx) = sync_channel::<Chunk>(PIPELINE_RING);
    let (empty_tx, empty_rx) = sync_channel::<Chunk>(PIPELINE_RING);
    for _ in 0..PIPELINE_RING {
        empty_tx.send(Chunk::default()).expect("ring has capacity");
    }
    let mut session = Session::with_scratch(&metas, algorithm, scratch);
    let producer_source = &mut *source;
    let replay = std::thread::scope(|scope| {
        scope.spawn(move || {
            // Producer: recycle an empty chunk, refill it, hand it over.
            // Ends when the source is exhausted (dropping `full_tx`
            // signals end-of-stream) or when the consumer bailed on an
            // invalid decision (both channel ends report disconnect).
            while let Ok(mut chunk) = empty_rx.recv() {
                chunk.clear();
                let mut exhausted = false;
                for _ in 0..chunk_arrivals {
                    match producer_source.next_arrival() {
                        Some(arrival) => chunk.push(&arrival),
                        None => {
                            exhausted = true;
                            break;
                        }
                    }
                }
                if !chunk.is_empty() && full_tx.send(chunk).is_err() {
                    return;
                }
                if exhausted {
                    return;
                }
            }
        });
        let consumed = (|| {
            while let Ok(chunk) = full_rx.recv() {
                for arrival in chunk.arrivals() {
                    session.step(&arrival, algorithm)?;
                }
                // A failed return just means the producer already
                // finished and dropped its end; keep draining `full_rx` —
                // the tail chunks may still be queued.
                let _ = empty_tx.send(chunk);
            }
            Ok(())
        })();
        // On error the producer may still be blocked sending or waiting
        // for an empty chunk; dropping both consumer-side endpoints
        // disconnects it so the scope can join.
        drop(full_rx);
        drop(empty_tx);
        consumed
    });
    let outcome = match replay {
        Ok(()) => Ok(session.finish_into(scratch)),
        Err(e) => Err(e),
    };
    scratch.set_metas = metas;
    outcome
}

/// Fills `buf` (cleared and resized to `n`) by sharding disjoint
/// contiguous index ranges across `threads` scoped threads — the
/// in-place, buffer-recycling twin of
/// [`prologue::build_table`](super::prologue::build_table), applied *per
/// decision* instead of per run.
///
/// `fill(start, slots)` must write every slot of `slots`, where
/// `slots[j]` is entry `start + j`, as a pure function of the entry
/// indices — which is what makes the buffer contents independent of the
/// thread count, and therefore the subsequent (serial) selection
/// bit-identical at any fan-out. `buf` is pre-filled with `placeholder`
/// only so the slices exist to hand out; every slot is overwritten.
///
/// `threads <= 1` (or a range too small to split) degenerates to one
/// `fill(0, ..)` call on the caller's thread — the serial path.
pub fn fill_sharded<T, F>(buf: &mut Vec<T>, n: usize, placeholder: T, threads: usize, fill: &F)
where
    T: Copy + Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    buf.clear();
    buf.resize(n, placeholder);
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        fill(0, buf);
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (shard, slots) in buf.chunks_mut(chunk).enumerate() {
            scope.spawn(move || fill(shard * chunk, slots));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{GreedyOnline, RandPr, TieBreak};
    use crate::engine::{run, run_source};
    use crate::gen::{RandomInstanceConfig, UniformSource};
    use crate::instance::InstanceBuilder;

    fn tiny_instance() -> Instance {
        let mut b = InstanceBuilder::new();
        let s0 = b.add_set(1.0, 2);
        let s1 = b.add_set(2.0, 1);
        let s2 = b.add_set(0.5, 1);
        b.add_element(1, &[s0, s1]);
        b.add_element(2, &[s0, s2]);
        b.build().unwrap()
    }

    #[test]
    fn chunk_round_trips_arrivals_exactly() {
        let inst = tiny_instance();
        let mut chunk = Chunk::default();
        chunk.clear();
        for arrival in inst.arrivals().iter() {
            chunk.push(&arrival);
        }
        let replayed: Vec<(ElementId, u32, Vec<SetId>)> = chunk
            .arrivals()
            .map(|a| (a.element(), a.capacity(), a.members().to_vec()))
            .collect();
        let want: Vec<(ElementId, u32, Vec<SetId>)> = inst
            .arrivals()
            .iter()
            .map(|a| (a.element(), a.capacity(), a.members().to_vec()))
            .collect();
        assert_eq!(replayed, want);
    }

    #[test]
    fn pipeline_matches_serial_across_chunk_sizes() {
        // Chunk sizes around the stream length exercise the partial-chunk
        // and exact-boundary end conditions.
        let cfg = RandomInstanceConfig::unweighted(20, 60, 3);
        let want = run_source(
            &mut UniformSource::new(&cfg, 7).unwrap(),
            &mut RandPr::from_seed(1),
        )
        .unwrap();
        for chunk in [1usize, 7, 60, 64, 100] {
            let mut scratch = ReplayScratch::new();
            let config = ParallelConfig { threads: 2, chunk };
            let got = run_source_parallel_with(
                &mut UniformSource::new(&cfg, 7).unwrap(),
                &mut RandPr::from_seed(1),
                &config,
                &mut scratch,
            )
            .unwrap();
            assert_eq!(got, want, "chunk={chunk}");
        }
    }

    #[test]
    fn one_thread_is_the_exact_serial_path() {
        let inst = tiny_instance();
        let mut scratch = ReplayScratch::new();
        let got = run_source_parallel_with(
            &mut inst.source(),
            &mut GreedyOnline::new(TieBreak::ByWeight),
            &ParallelConfig::with_threads(1),
            &mut scratch,
        )
        .unwrap();
        let want = run(&inst, &mut GreedyOnline::new(TieBreak::ByWeight)).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_source_finishes_cleanly() {
        let inst = InstanceBuilder::new().build().unwrap();
        let out = run_parallel(&inst, &mut RandPr::from_seed(0)).unwrap();
        assert_eq!(out.benefit(), 0.0);
        assert!(out.decisions().is_empty());
    }

    #[test]
    fn invalid_decisions_error_and_unblock_the_producer() {
        use crate::algorithms::OracleOnline;
        // Oracle wants both sets; capacity 1 makes that invalid on the
        // very first arrival of a long stream, so the producer is still
        // running when the consumer bails.
        let mut b = InstanceBuilder::new();
        let s0 = b.add_set(1.0, 400);
        let s1 = b.add_set(1.0, 400);
        for _ in 0..400 {
            b.add_element(1, &[s0, s1]);
        }
        let inst = b.build().unwrap();
        let mut scratch = ReplayScratch::new();
        let got = run_source_parallel_with(
            &mut inst.source(),
            &mut OracleOnline::new(vec![s0, s1]),
            &ParallelConfig {
                threads: 2,
                chunk: 8,
            },
            &mut scratch,
        );
        assert!(matches!(got, Err(Error::DecisionOverCapacity { .. })));
    }

    #[test]
    fn fill_sharded_writes_every_slot_at_any_thread_count() {
        let fill = |start: usize, slots: &mut [u64]| {
            for (j, slot) in slots.iter_mut().enumerate() {
                *slot = (start + j) as u64 * 5 + 2;
            }
        };
        let want: Vec<u64> = (0..101u64).map(|i| i * 5 + 2).collect();
        let mut buf = Vec::new();
        for threads in [0usize, 1, 2, 3, 8, 101, 300] {
            fill_sharded(&mut buf, 101, 0u64, threads, &fill);
            assert_eq!(buf, want, "threads={threads}");
        }
    }

    #[test]
    fn fill_sharded_recycles_without_growing() {
        let fill = |start: usize, slots: &mut [u32]| {
            for (j, slot) in slots.iter_mut().enumerate() {
                *slot = (start + j) as u32;
            }
        };
        let mut buf = Vec::new();
        fill_sharded(&mut buf, 500, 0u32, 4, &fill);
        let cap = buf.capacity();
        for n in [100usize, 500, 1] {
            fill_sharded(&mut buf, n, 0u32, 4, &fill);
            assert_eq!(buf.len(), n);
            assert_eq!(buf.capacity(), cap, "n={n} must not reallocate");
        }
    }

    #[test]
    fn config_from_threads_keeps_default_chunk() {
        let cfg = ParallelConfig::with_threads(8);
        assert_eq!(cfg.threads, 8);
        assert_eq!(cfg.chunk, PIPELINE_CHUNK);
    }
}
