//! Backend-agnostic dispatch of [`JobSpec`] work-lists: threads or
//! processes behind one contract.
//!
//! A [`Dispatcher`] takes a list of fully-specified jobs and returns their
//! outcomes **in submission order**, bit-identical to the sequential
//! reference ([`run_spec`](crate::spec::run_spec) job by job), whatever
//! the lane count. The contract has exactly two legs, both inherited from
//! the in-process pool:
//!
//! * **seeds are data** — every job's seed is fixed inside the spec
//!   before fan-out (typically via [`derive_seed`]/[`derived_jobs`]), so
//!   no job's randomness depends on which lane runs it;
//! * **order is submission order** — results are merged back
//!   positionally, never by completion time.
//!
//! Three backends implement it:
//!
//! * [`SpecPool`] — `std::thread` shards via
//!   [`ReplayPool::run_specs`](ReplayPool::run_specs), resolving specs
//!   in-process;
//! * [`ProcessPool`] — `osp-worker` child processes fed framed specs over
//!   stdin and answering framed outcomes over stdout ([`wire`]);
//! * [`SocketPool`] — a fleet of `osp-worker --listen` endpoints
//!   (TCP or Unix-domain, [`WorkerAddr`]) spoken to over the same frames,
//!   with connect retry/backoff ([`RetryPolicy`]), read deadlines, an
//!   in-band heartbeat, and **chunk re-dispatch**: when a worker dies
//!   mid-batch its unanswered jobs are re-chunked across the survivors,
//!   and only with every worker dead does a job fail
//!   ([`WorkerError::AllWorkersDead`]). Because outcomes are pure
//!   functions of the specs, recovery never changes results — just who
//!   computes them.
//!
//! `tests/process_pool_conformance.rs` pins sequential, threads and
//! processes bit-identical across the algorithm × generator grid at
//! worker counts 1, 2 and 4; `tests/socket_pool_conformance.rs` extends
//! the same grid to socket fleets, including fleets with injected
//! mid-batch faults ([`FaultPlan`](crate::wire::FaultPlan)).

use std::collections::VecDeque;
use std::io::{BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::engine::batch::{derive_seed, env_parallelism, ReplayPool};
use crate::engine::Outcome;
use crate::error::{Error, WorkerError};
use crate::spec::{AlgorithmSpec, JobSpec, ScenarioSpec, SpecResolver};
use crate::wire;
use crate::wire::socket::{ping, read_hello, Stream, WorkerAddr};

/// A structured event emitted while a [`Dispatcher`] runs a work-list —
/// what embedders (the replay service, progress UIs) observe instead of
/// scraping stderr. Events describe the *run*, never the outcomes:
/// results still come back only through the return value, in submission
/// order.
#[derive(Debug, Clone, PartialEq)]
pub enum DispatchEvent {
    /// A monotonic progress tick: `answered` of `total` jobs have a final
    /// result (an outcome or a per-job error). Backends emit this at
    /// their natural granularity — per lane for pools, per recovery round
    /// for socket fleets — so ticks are coarse, not per-job.
    Progress {
        /// Jobs with a final result so far.
        answered: usize,
        /// Jobs in the work-list.
        total: usize,
    },
    /// A fleet worker was excluded (its unanswered jobs re-dispatched to
    /// survivors). Carries the typed cause so embedders can tell a
    /// refused connect from a mid-batch death or a frame-order
    /// violation. Exclusion is no longer forever: the rejoin probe loop
    /// ([`RejoinPolicy`]) pings excluded lanes with capped exponential
    /// backoff and re-admits them on success.
    WorkerExcluded {
        /// The excluded worker's address.
        addr: String,
        /// Why it was excluded.
        error: WorkerError,
    },
    /// An excluded worker answered a rejoin probe and is back in the
    /// fleet — it takes chunks again from the next round on.
    WorkerRejoined {
        /// The re-admitted worker's address.
        addr: String,
    },
    /// A rejoin probe was sent to an excluded worker (one ping per due
    /// lane per round). `ok` tells whether it answered; a failed probe
    /// pushes the lane's next probe out by the capped exponential
    /// backoff of [`RejoinPolicy`].
    WorkerProbed {
        /// The probed worker's address.
        addr: String,
        /// Whether the probe succeeded (success also emits
        /// [`DispatchEvent::WorkerRejoined`]).
        ok: bool,
    },
}

/// Where a [`Dispatcher`] run reports its [`DispatchEvent`]s. `Sync`
/// because lanes run on scoped threads; implementations must tolerate
/// concurrent calls.
pub trait EventSink: Sync {
    /// Observes one event. Must not block for long — it runs on the
    /// dispatching thread between rounds.
    fn event(&self, event: DispatchEvent);
}

/// The default sink: worker exclusions go to stderr (the pre-hook
/// behavior, so plain `run_specs` callers keep their diagnostics),
/// progress ticks are dropped.
#[derive(Debug, Clone, Copy, Default)]
pub struct StderrSink;

impl EventSink for StderrSink {
    fn event(&self, event: DispatchEvent) {
        if let DispatchEvent::WorkerExcluded { addr, error } = event {
            eprintln!("osp: excluding worker {addr}: {error}");
        }
    }
}

/// A backend that replays [`JobSpec`] work-lists deterministically: same
/// jobs ⇒ same outcomes, in submission order, at any lane count.
pub trait Dispatcher {
    /// Replays every job and returns the outcomes in job order,
    /// reporting run events (progress ticks, fleet exclusions) to `sink`.
    fn run_specs_with_events(
        &self,
        jobs: &[JobSpec],
        sink: &dyn EventSink,
    ) -> Vec<Result<Outcome, Error>>;

    /// Replays every job and returns the outcomes in job order, with
    /// events going to the default [`StderrSink`].
    fn run_specs(&self, jobs: &[JobSpec]) -> Vec<Result<Outcome, Error>> {
        self.run_specs_with_events(jobs, &StderrSink)
    }

    /// Number of parallel lanes (thread shards or worker processes).
    fn lanes(&self) -> usize;

    /// A short backend tag for tables and logs (`"threads"`,
    /// `"processes"`).
    fn backend(&self) -> &'static str;

    /// A live handle onto this backend's supervised fleet, if it has
    /// one. Only the socket backend does — in-process and child-process
    /// pools have fixed lanes and return `None` (the default).
    fn fleet(&self) -> Option<FleetHandle> {
        None
    }
}

/// Builds the standard trial fan-out: `trials` jobs over one
/// `(scenario, algorithm)` pair with seeds
/// `derive_seed(root, 0..trials)` — the same SplitMix64 discipline the
/// in-process lanes use, so a spec'd sweep lands in the same seed
/// universe as a [`SeedSequence`](crate::derive_seed)-driven one.
pub fn derived_jobs(
    scenario: &ScenarioSpec,
    algorithm: &AlgorithmSpec,
    root: u64,
    trials: u64,
) -> Vec<JobSpec> {
    (0..trials)
        .map(|i| JobSpec {
            scenario: scenario.clone(),
            algorithm: algorithm.clone(),
            seed: derive_seed(root, i),
        })
        .collect()
}

/// The thread backend: a [`ReplayPool`] paired with the
/// [`SpecResolver`] its shards resolve specs through.
///
/// # Examples
///
/// ```
/// use osp_core::engine::dispatch::{derived_jobs, Dispatcher, SpecPool};
/// use osp_core::gen::RandomInstanceConfig;
/// use osp_core::prelude::*;
/// use osp_core::spec::{AlgorithmSpec, CoreResolver, ScenarioSpec};
///
/// let scenario = ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(20, 50, 3));
/// let jobs = derived_jobs(&scenario, &AlgorithmSpec::RandPr, 7, 6);
/// let pool = SpecPool::new(ReplayPool::new(2), CoreResolver);
/// let outcomes = pool.run_specs(&jobs);
/// assert_eq!(outcomes.len(), 6);
/// assert!(outcomes.iter().all(|o| o.is_ok()));
/// ```
#[derive(Debug, Clone)]
pub struct SpecPool<R> {
    pool: ReplayPool,
    resolver: R,
}

impl<R: SpecResolver + Sync> SpecPool<R> {
    /// Pairs a thread pool with a resolver.
    pub fn new(pool: ReplayPool, resolver: R) -> Self {
        SpecPool { pool, resolver }
    }
}

impl<R: SpecResolver + Sync> Dispatcher for SpecPool<R> {
    fn run_specs_with_events(
        &self,
        jobs: &[JobSpec],
        sink: &dyn EventSink,
    ) -> Vec<Result<Outcome, Error>> {
        let results = self.pool.run_specs(jobs, &self.resolver);
        // The thread pool blocks until every shard is done, so one final
        // tick is this backend's natural granularity.
        sink.event(DispatchEvent::Progress {
            answered: results.len(),
            total: jobs.len(),
        });
        results
    }

    fn lanes(&self) -> usize {
        self.pool.shards()
    }

    fn backend(&self) -> &'static str {
        "threads"
    }
}

/// The file name of the worker binary, per platform.
fn worker_bin_name() -> String {
    format!("osp-worker{}", std::env::consts::EXE_SUFFIX)
}

/// Locates the `osp-worker` binary: `OSP_WORKER_BIN` if set, otherwise a
/// sibling of the current executable (also checking one directory up,
/// because test binaries live in `target/<profile>/deps/`).
fn locate_worker() -> Result<PathBuf, Error> {
    if let Ok(path) = std::env::var("OSP_WORKER_BIN") {
        let path = PathBuf::from(path);
        if path.is_file() {
            return Ok(path);
        }
        return Err(Error::Worker(WorkerError::Spawn(format!(
            "OSP_WORKER_BIN points at {}, which is not a file",
            path.display()
        ))));
    }
    let exe = std::env::current_exe().map_err(|e| {
        Error::Worker(WorkerError::Spawn(format!(
            "cannot resolve current executable: {e}"
        )))
    })?;
    let name = worker_bin_name();
    let mut dir = exe.parent();
    while let Some(d) = dir {
        let candidate = d.join(&name);
        if candidate.is_file() {
            return Ok(candidate);
        }
        // Walk at most one level up (deps/ → the profile directory).
        if d.file_name().map(|n| n == "deps") != Some(true) {
            break;
        }
        dir = d.parent();
    }
    Err(Error::Worker(WorkerError::Spawn(format!(
        "cannot locate {name} next to {} — build it with `cargo build --bin osp-worker` \
         or set OSP_WORKER_BIN",
        exe.display()
    ))))
}

/// The located `osp-worker` binary — `OSP_WORKER_BIN` if set, otherwise a
/// sibling of the current executable. Public so fleet-hosting harnesses
/// (the bench socket section, CI bring-up scripts run through examples)
/// can spawn `osp-worker --listen` themselves.
///
/// # Errors
///
/// [`WorkerError::Spawn`] when no binary can be found.
pub fn worker_binary() -> Result<PathBuf, Error> {
    locate_worker()
}

/// The process backend: `N` `osp-worker` child processes, each fed a
/// contiguous chunk of the job list as framed [`JobSpec`]s on stdin and
/// answering framed outcomes on stdout ([`wire`]).
///
/// Determinism is inherited from the specs themselves: a worker rebuilds
/// each job's source and algorithm from `(spec, seed)` exactly as a
/// thread shard would, so outcomes are bit-identical to [`SpecPool`] and
/// to sequential [`run_spec`](crate::spec::run_spec) at any worker count
/// (pinned by `tests/process_pool_conformance.rs`). A worker that cannot
/// be spawned or dies mid-stream fails *its* jobs with
/// [`Error::Worker`]; the other workers' results are unaffected.
#[derive(Debug, Clone)]
pub struct ProcessPool {
    workers: usize,
    command: Vec<String>,
}

impl ProcessPool {
    /// A pool of `workers` processes running the located `osp-worker`
    /// binary (zero is treated as one).
    ///
    /// # Errors
    ///
    /// [`Error::Worker`] if the worker binary cannot be found (see
    /// the location rules: `OSP_WORKER_BIN` if set, then
    /// siblings of the current executable).
    pub fn new(workers: usize) -> Result<Self, Error> {
        let bin = locate_worker()?;
        Ok(ProcessPool::with_command(
            workers,
            vec![bin.to_string_lossy().into_owned()],
        ))
    }

    /// A pool running an explicit worker command (`argv[0]` plus
    /// arguments) — how embedded workers are wired up (e.g.
    /// `examples/distributed_replay.rs` re-executes itself with
    /// `--worker`). The command is spawned lazily at
    /// [`run_specs`](Dispatcher::run_specs) time.
    pub fn with_command(workers: usize, command: Vec<String>) -> Self {
        assert!(!command.is_empty(), "worker command must name a program");
        ProcessPool {
            workers: workers.max(1),
            command,
        }
    }

    /// A pool sized by the `OSP_WORKERS` environment variable (same
    /// hardened policy as
    /// [`ReplayPool::from_env`] — see
    /// [`env_parallelism`]), running the located worker binary.
    ///
    /// # Errors
    ///
    /// [`Error::Worker`] if the worker binary cannot be found.
    pub fn from_env() -> Result<Self, Error> {
        ProcessPool::new(env_parallelism("OSP_WORKERS"))
    }

    /// Number of worker processes this pool fans work across.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs one contiguous chunk through one worker process.
    fn run_chunk(&self, jobs: &[JobSpec]) -> Vec<Result<Outcome, Error>> {
        let spawned = Command::new(&self.command[0])
            .args(&self.command[1..])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn();
        let mut child: Child = match spawned {
            Ok(child) => child,
            Err(e) => {
                let err = WorkerError::Spawn(format!("spawning worker `{}`: {e}", self.command[0]));
                return jobs
                    .iter()
                    .map(|_| Err(Error::Worker(err.clone())))
                    .collect();
            }
        };
        let mut stdin = child.stdin.take().expect("stdin was piped");
        let mut stdout = BufReader::new(child.stdout.take().expect("stdout was piped"));

        let mut results: Vec<Result<Outcome, Error>> = Vec::with_capacity(jobs.len());
        std::thread::scope(|scope| {
            // Feed the jobs from a separate thread: the worker answers
            // while we are still writing, so neither pipe can fill up and
            // deadlock the pair. Dropping stdin at the end is the
            // shutdown signal (clean EOF between frames).
            let feeder = scope.spawn(move || {
                for job in jobs {
                    if wire::write_message(&mut stdin, job).is_err() {
                        // Worker died; the reader reports the damage.
                        break;
                    }
                }
                let _ = stdin.flush();
            });
            for _ in 0..jobs.len() {
                match wire::read_message::<_, wire::reply::Reply>(&mut stdout) {
                    Ok(Some(reply)) => results.push(wire::reply::decode(reply)),
                    Ok(None) => break, // worker exited early; pad below
                    Err(e) => {
                        results.push(Err(e));
                        break;
                    }
                }
            }
            if results.len() < jobs.len() {
                // The reader bailed early (protocol garbage or premature
                // EOF). A non-conforming worker may still be alive and
                // never reading its stdin, which would leave the feeder
                // blocked on a full pipe forever — kill the child so the
                // feeder's writes fail and the scope can join.
                let _ = child.kill();
            }
            feeder.join().expect("worker feeder thread panicked");
        });
        // Reap; a nonzero exit only matters if replies are also missing.
        let status = child.wait();
        while results.len() < jobs.len() {
            let cause = match &status {
                Ok(s) if !s.success() => format!("worker exited with {s} before answering"),
                Ok(_) => "worker closed its stream before answering".to_string(),
                Err(e) => format!("worker did not terminate cleanly: {e}"),
            };
            results.push(Err(Error::Worker(WorkerError::Disconnect {
                addr: self.command[0].clone(),
                cause,
            })));
        }
        results
    }
}

impl Dispatcher for ProcessPool {
    fn run_specs_with_events(
        &self,
        jobs: &[JobSpec],
        sink: &dyn EventSink,
    ) -> Vec<Result<Outcome, Error>> {
        if jobs.is_empty() {
            return Vec::new();
        }
        // Contiguous chunks, one per worker — the same split (and thus
        // the same ordering contract) as ReplayPool::shard_map.
        let lanes = self.workers.min(jobs.len());
        let chunk = jobs.len().div_ceil(lanes);
        if lanes == 1 {
            let results = self.run_chunk(jobs);
            sink.event(DispatchEvent::Progress {
                answered: results.len(),
                total: jobs.len(),
            });
            return results;
        }
        let mut results: Vec<Result<Outcome, Error>> = Vec::with_capacity(jobs.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = jobs
                .chunks(chunk)
                .map(|slice| scope.spawn(move || self.run_chunk(slice)))
                .collect();
            for handle in handles {
                results.extend(handle.join().expect("worker lane thread panicked"));
                sink.event(DispatchEvent::Progress {
                    answered: results.len(),
                    total: jobs.len(),
                });
            }
        });
        results
    }

    fn lanes(&self) -> usize {
        self.workers
    }

    fn backend(&self) -> &'static str {
        "processes"
    }
}

/// Bounded exponential backoff for worker connects — the pure schedule
/// behind [`SocketPool`]'s retry loop, testable without sockets or
/// clocks: attempt `i` (0-based) waits `base_delay × 2^i`, capped at
/// `max_delay`, and after `attempts` failures the worker is declared
/// unreachable ([`WorkerError::Connect`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total connect attempts before giving up (zero is treated as one).
    pub attempts: u32,
    /// Backoff before the second attempt.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// The backoff to sleep after failed attempt `attempt` (0-based):
    /// `base_delay × 2^attempt`, saturating, capped at `max_delay`.
    pub fn delay(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.base_delay.saturating_mul(factor).min(self.max_delay)
    }

    /// Whether a failure on `attempt` (0-based) leaves retries in budget.
    pub fn should_retry(&self, attempt: u32) -> bool {
        attempt + 1 < self.attempts.max(1)
    }
}

/// The rejoin-probe schedule for excluded fleet lanes: an excluded
/// worker is pinged again after `base_delay`, then with capped
/// exponential backoff (`base_delay × 2^failures`, at most `max_delay`)
/// until a probe succeeds and the lane rejoins — the healing half of the
/// exclusion discipline, so a restarted worker is re-admitted without
/// anyone touching the fleet by hand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RejoinPolicy {
    /// Wait before the first probe of a freshly excluded lane.
    pub base_delay: Duration,
    /// Backoff ceiling between probes.
    pub max_delay: Duration,
    /// Deadline for one probe (connect + handshake + ping round trip).
    pub probe_timeout: Duration,
}

impl Default for RejoinPolicy {
    fn default() -> Self {
        RejoinPolicy {
            base_delay: Duration::from_millis(500),
            max_delay: Duration::from_secs(10),
            probe_timeout: Duration::from_secs(1),
        }
    }
}

impl RejoinPolicy {
    /// The wait after `failures` consecutive failed probes (the first
    /// probe after exclusion uses `failures = 0`, i.e. `base_delay`):
    /// `base_delay × 2^failures`, saturating, capped at `max_delay`.
    pub fn delay(&self, failures: u32) -> Duration {
        let factor = 1u32.checked_shl(failures).unwrap_or(u32::MAX);
        self.base_delay.saturating_mul(factor).min(self.max_delay)
    }
}

/// Tuning knobs for [`SocketPool`]. The defaults suit a loopback or
/// rack-local fleet; raise the deadlines for anything slower.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SocketConfig {
    /// Deadline for one TCP connect attempt.
    pub connect_timeout: Duration,
    /// Read deadline per reply frame; expiry marks the worker
    /// [`WorkerError::Timeout`] and re-dispatches its unanswered jobs.
    pub read_timeout: Duration,
    /// Connect retry/backoff schedule.
    pub retry: RetryPolicy,
    /// Maximum unanswered requests in flight per connection. Keeps the
    /// send side ahead of the worker without try_clone or feeder threads:
    /// `window` job frames are far smaller than any socket buffer, so a
    /// single thread can alternate send/receive without deadlocking.
    pub window: usize,
    /// Send one in-band heartbeat ping every this many jobs (0 disables).
    /// A stalled worker then fails the batch within `read_timeout` even
    /// when the stall hits between replies.
    pub heartbeat_every: usize,
    /// Probe/backoff schedule for re-admitting excluded lanes.
    pub rejoin: RejoinPolicy,
}

impl Default for SocketConfig {
    fn default() -> Self {
        SocketConfig {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(30),
            retry: RetryPolicy::default(),
            window: 32,
            heartbeat_every: 16,
            rejoin: RejoinPolicy::default(),
        }
    }
}

/// What the next in-order reply frame on a connection must be — requests
/// are answered strictly in submission order, so the client tracks a
/// FIFO of expectations instead of tagging frames.
enum Expected {
    /// A [`wire::reply`] for the job at this index of the full work-list.
    Job(usize),
    /// A pong carrying this nonce.
    Ping(u64),
}

/// The socket backend: a fleet of `osp-worker --listen` endpoints
/// ([`WorkerAddr`]), each lane one framed connection. Jobs are chunked
/// contiguously across live workers like every other backend, and the
/// same bit-identity contract holds — outcomes are pure functions of the
/// specs, so *which* worker answers is invisible in the results.
///
/// What is new over [`ProcessPool`] is the failure model:
///
/// * connects retry with bounded exponential backoff ([`RetryPolicy`]);
///   a worker that never connects or fails its [`Hello`](crate::wire::Hello) handshake is
///   excluded before taking any jobs;
/// * each connection enforces a read deadline and sends in-band
///   heartbeat pings; expiry is a typed [`WorkerError::Timeout`];
/// * a worker dying mid-batch (EOF, reset, garbage) is a typed
///   [`WorkerError::Disconnect`], and its **unanswered jobs are
///   re-dispatched** to the surviving workers — rounds continue until
///   every job is answered or every worker is dead, in which case the
///   leftovers fail with [`WorkerError::AllWorkersDead`];
/// * per-job failures answered by a healthy worker
///   ([`WorkerError::Remote`]) are final and never re-dispatched.
///
/// `tests/socket_pool_conformance.rs` pins the full matrix, including
/// bit-identity under an injected mid-batch worker kill.
///
/// Since PR 8 the fleet is *supervised state*, not a static list:
/// exclusion persists across runs, a rejoin probe loop re-admits lanes
/// that answer pings again ([`RejoinPolicy`]), and membership can change
/// at runtime ([`add_worker`](Self::add_worker) /
/// [`remove_worker`](Self::remove_worker), also reachable through the
/// shareable [`FleetHandle`]). Clones of a pool share one fleet.
#[derive(Debug, Clone)]
pub struct SocketPool {
    fleet: Arc<Mutex<FleetState>>,
    config: SocketConfig,
}

/// The shared, supervised fleet behind a [`SocketPool`] and its
/// [`FleetHandle`]s.
#[derive(Debug)]
struct FleetState {
    lanes: Vec<Lane>,
    /// Lifetime count of lanes re-admitted by a successful probe.
    rejoined: u64,
    /// Lifetime count of rejoin probes sent (successful or not).
    probes: u64,
}

/// One fleet member and its supervision state.
#[derive(Debug)]
struct Lane {
    addr: WorkerAddr,
    status: LaneStatus,
}

#[derive(Debug)]
enum LaneStatus {
    /// Taking chunks.
    Up,
    /// Out of the rotation; probed on the [`RejoinPolicy`] schedule.
    Excluded {
        /// Consecutive failed probes since exclusion.
        failures: u32,
        /// When the next probe is due.
        next_probe: Instant,
        /// The exclusion cause (display of the [`WorkerError`]).
        cause: String,
    },
}

impl SocketPool {
    /// A pool over `addrs` with default [`SocketConfig`].
    ///
    /// # Panics
    ///
    /// If `addrs` is empty — a socket fleet needs at least one worker.
    pub fn new(addrs: Vec<WorkerAddr>) -> Self {
        SocketPool::with_config(addrs, SocketConfig::default())
    }

    /// A pool over `addrs` with explicit tuning.
    ///
    /// # Panics
    ///
    /// If `addrs` is empty.
    pub fn with_config(addrs: Vec<WorkerAddr>, config: SocketConfig) -> Self {
        assert!(
            !addrs.is_empty(),
            "socket fleet must name at least one worker"
        );
        let lanes = addrs
            .into_iter()
            .map(|addr| Lane {
                addr,
                status: LaneStatus::Up,
            })
            .collect();
        SocketPool {
            fleet: Arc::new(Mutex::new(FleetState {
                lanes,
                rejoined: 0,
                probes: 0,
            })),
            config,
        }
    }

    /// A cloneable handle onto this pool's fleet — membership, probe
    /// triggering and the [`FleetReport`] counters, without holding the
    /// pool itself.
    pub fn fleet_handle(&self) -> FleetHandle {
        FleetHandle {
            fleet: Arc::clone(&self.fleet),
            rejoin: self.config.rejoin,
        }
    }

    /// Adds a worker to the fleet (immediately `Up`). Returns `false`
    /// (and changes nothing) if the address is already a member.
    pub fn add_worker(&self, addr: WorkerAddr) -> bool {
        self.fleet_handle().add(addr)
    }

    /// Removes a worker from the fleet.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidSpec`] if the address is not a member or is the
    /// last remaining lane (a fleet must keep at least one).
    pub fn remove_worker(&self, addr: &WorkerAddr) -> Result<(), Error> {
        self.fleet_handle().remove(addr)
    }

    /// A pool over the fleet named by `OSP_WORKER_ADDRS` (comma-separated
    /// [`WorkerAddr`]s).
    ///
    /// # Errors
    ///
    /// [`WorkerError::Spawn`] when the variable is unset, empty, or
    /// unparseable — there is no sensible default fleet.
    pub fn from_env() -> Result<Self, Error> {
        let raw = std::env::var("OSP_WORKER_ADDRS").map_err(|_| {
            WorkerError::Spawn(
                "OSP_WORKER_ADDRS is not set (want comma-separated worker addresses)".into(),
            )
        })?;
        let addrs = WorkerAddr::parse_list(&raw)
            .map_err(|e| WorkerError::Spawn(format!("OSP_WORKER_ADDRS: {e}")))?;
        if addrs.is_empty() {
            return Err(WorkerError::Spawn("OSP_WORKER_ADDRS names no workers".into()).into());
        }
        Ok(SocketPool::new(addrs))
    }

    /// The fleet's current addresses, in lane order (a snapshot — the
    /// membership can change under a [`FleetHandle`]).
    pub fn addrs(&self) -> Vec<WorkerAddr> {
        let fleet = self.fleet.lock().expect("fleet lock");
        fleet.lanes.iter().map(|lane| lane.addr.clone()).collect()
    }

    /// Connects to `addr` under the retry schedule and completes the
    /// handshake.
    fn connect(&self, addr: &WorkerAddr) -> Result<Stream, WorkerError> {
        let retry = self.config.retry;
        let attempts = retry.attempts.max(1);
        let mut last = String::new();
        for attempt in 0..attempts {
            match Stream::connect(addr, self.config.connect_timeout) {
                Ok(stream) => return Ok(stream),
                Err(e) => {
                    last = e.to_string();
                    if retry.should_retry(attempt) {
                        std::thread::sleep(retry.delay(attempt));
                    }
                }
            }
        }
        Err(WorkerError::Connect {
            addr: addr.to_string(),
            attempts,
            cause: last,
        })
    }

    /// Classifies a failed/EOF'd read: a full-deadline wait is a timeout,
    /// anything quicker is the stream dying under us. (The io error kind
    /// is gone by the time [`wire::read_frame`] has wrapped it, so the
    /// clock is the discriminator.)
    fn classify(&self, addr: &WorkerAddr, started: Instant, cause: String) -> WorkerError {
        if started.elapsed() >= self.config.read_timeout {
            WorkerError::Timeout {
                addr: addr.to_string(),
                cause,
            }
        } else {
            WorkerError::Disconnect {
                addr: addr.to_string(),
                cause,
            }
        }
    }

    /// Runs the chunk `assigned` (indices into `jobs`) over one
    /// connection to `addr`. Returns every answer obtained plus the
    /// connection's fate; on an `Err` fate the unanswered indices are the
    /// caller's to re-dispatch.
    #[allow(clippy::type_complexity)]
    fn run_chunk(
        &self,
        addr: &WorkerAddr,
        assigned: &[usize],
        jobs: &[JobSpec],
    ) -> (
        Vec<(usize, Result<Outcome, Error>)>,
        Result<(), WorkerError>,
    ) {
        let mut answered = Vec::with_capacity(assigned.len());
        let stream = match self.connect(addr) {
            Ok(stream) => stream,
            Err(e) => return (answered, Err(e)),
        };
        if let Err(e) = stream.set_read_timeout(Some(self.config.read_timeout)) {
            return (
                answered,
                Err(WorkerError::Connect {
                    addr: addr.to_string(),
                    attempts: 1,
                    cause: format!("setting read deadline: {e}"),
                }),
            );
        }
        let mut reader = BufReader::new(&stream);
        let mut writer = &stream;
        if let Err(e) = read_hello(&mut reader, &addr.to_string()) {
            return (answered, Err(e));
        }

        let window = self.config.window.max(1);
        let mut expected: VecDeque<Expected> = VecDeque::with_capacity(window);
        let mut to_send = assigned.iter().copied();
        let mut sent_all = false;
        let mut jobs_since_ping = 0usize;
        let mut ping_nonce = 0u64;
        loop {
            // Keep the window full, interleaving a heartbeat every
            // `heartbeat_every` jobs.
            while !sent_all && expected.len() < window {
                if self.config.heartbeat_every > 0 && jobs_since_ping >= self.config.heartbeat_every
                {
                    ping_nonce += 1;
                    if let Err(e) =
                        wire::write_message(&mut writer, &wire::Request::Ping(ping_nonce))
                    {
                        return (
                            answered,
                            Err(WorkerError::Disconnect {
                                addr: addr.to_string(),
                                cause: e.to_string(),
                            }),
                        );
                    }
                    expected.push_back(Expected::Ping(ping_nonce));
                    jobs_since_ping = 0;
                    continue;
                }
                match to_send.next() {
                    Some(index) => {
                        if let Err(e) = wire::write_message(
                            &mut writer,
                            &wire::Request::Job(jobs[index].clone()),
                        ) {
                            return (
                                answered,
                                Err(WorkerError::Disconnect {
                                    addr: addr.to_string(),
                                    cause: e.to_string(),
                                }),
                            );
                        }
                        expected.push_back(Expected::Job(index));
                        jobs_since_ping += 1;
                    }
                    None => {
                        sent_all = true;
                        let _ = writer.flush();
                        // Clean EOF between frames is the shutdown signal.
                        stream.shutdown_write();
                    }
                }
            }
            if !sent_all {
                let _ = writer.flush();
            }
            let Some(next) = expected.pop_front() else {
                return (answered, Ok(()));
            };
            let started = Instant::now();
            // Read whichever frame the worker sent, then check it against
            // the order: a frame that *decodes* but is the wrong type is a
            // typed FrameOrder violation, not a generic decode failure —
            // the worker is answering out of order, the stream is fine.
            let frame = match wire::read_message::<_, wire::ServerFrame>(&mut reader) {
                Ok(Some(frame)) => frame,
                Ok(None) => {
                    let cause = match next {
                        Expected::Job(_) => "stream closed with replies outstanding",
                        Expected::Ping(_) => "stream closed at a heartbeat",
                    };
                    return (
                        answered,
                        Err(self.classify(addr, started, cause.to_string())),
                    );
                }
                Err(e) => return (answered, Err(self.classify(addr, started, e.to_string()))),
            };
            match (next, frame) {
                (Expected::Job(index), wire::ServerFrame::Reply(reply)) => {
                    answered.push((index, wire::reply::decode(reply)));
                }
                (Expected::Ping(nonce), wire::ServerFrame::Pong(wire::Pong { pong })) => {
                    if pong != nonce {
                        return (
                            answered,
                            Err(WorkerError::Disconnect {
                                addr: addr.to_string(),
                                cause: format!(
                                    "heartbeat answered out of order: sent {nonce}, got {pong}"
                                ),
                            }),
                        );
                    }
                }
                (expected, got) => {
                    let expected = match expected {
                        Expected::Job(_) => "job reply",
                        Expected::Ping(_) => "pong",
                    };
                    return (
                        answered,
                        Err(WorkerError::FrameOrder {
                            addr: addr.to_string(),
                            expected,
                            got: got.kind(),
                        }),
                    );
                }
            }
        }
    }
}

impl Dispatcher for SocketPool {
    fn run_specs_with_events(
        &self,
        jobs: &[JobSpec],
        sink: &dyn EventSink,
    ) -> Vec<Result<Outcome, Error>> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let mut results: Vec<Option<Result<Outcome, Error>>> = vec![None; jobs.len()];
        loop {
            let pending: Vec<usize> = (0..jobs.len()).filter(|&i| results[i].is_none()).collect();
            if pending.is_empty() {
                break;
            }
            // Heal first: probe any excluded lane whose backoff has
            // elapsed, so a restarted worker takes chunks this round.
            probe_excluded(&self.fleet, self.config.rejoin, false, Some(sink));
            let lanes: Vec<WorkerAddr> = {
                let fleet = self.fleet.lock().expect("fleet lock");
                fleet
                    .lanes
                    .iter()
                    .filter(|lane| matches!(lane.status, LaneStatus::Up))
                    .map(|lane| lane.addr.clone())
                    .collect()
            };
            if lanes.is_empty() {
                // Last chance before failing the leftovers: force-probe
                // every excluded lane right now, backoff or not. A
                // restarted worker rejoins here; a dead loopback refuses
                // instantly, so the unreachable path stays fast.
                if probe_excluded(&self.fleet, self.config.rejoin, true, Some(sink)) > 0 {
                    continue;
                }
                let err = Error::Worker(WorkerError::AllWorkersDead {
                    pending: pending.len(),
                });
                for index in pending {
                    results[index] = Some(Err(err.clone()));
                }
                break;
            }
            // Contiguous chunks over the live lanes — the same split
            // discipline as every other backend, re-applied each round so
            // recovery keeps the submission order intact positionally.
            let lanes_used = lanes.len().min(pending.len());
            let chunk = pending.len().div_ceil(lanes_used);
            // One lane's round: (lane address, answered jobs, lane fate).
            type LaneRound = (
                WorkerAddr,
                Vec<(usize, Result<Outcome, Error>)>,
                Result<(), WorkerError>,
            );
            let round: Vec<LaneRound> = std::thread::scope(|scope| {
                let handles: Vec<_> = pending
                    .chunks(chunk)
                    .zip(&lanes)
                    .map(|(slice, addr)| {
                        let handle = scope.spawn(move || self.run_chunk(addr, slice, jobs));
                        (addr, handle)
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|(addr, h)| {
                        let (answers, fate) = h.join().expect("socket lane thread panicked");
                        (addr.clone(), answers, fate)
                    })
                    .collect()
            });
            for (addr, answers, fate) in round {
                for (index, result) in answers {
                    results[index] = Some(result);
                }
                if let Err(e) = fate {
                    exclude_lane(&self.fleet, &addr, &e, self.config.rejoin);
                    sink.event(DispatchEvent::WorkerExcluded {
                        addr: addr.to_string(),
                        error: e,
                    });
                }
            }
            sink.event(DispatchEvent::Progress {
                answered: results.iter().filter(|r| r.is_some()).count(),
                total: jobs.len(),
            });
        }
        results
            .into_iter()
            .map(|r| r.expect("every job answered or failed"))
            .collect()
    }

    fn lanes(&self) -> usize {
        let fleet = self.fleet.lock().expect("fleet lock");
        fleet.lanes.len()
    }

    fn backend(&self) -> &'static str {
        "sockets"
    }

    fn fleet(&self) -> Option<FleetHandle> {
        Some(self.fleet_handle())
    }
}

/// Marks the lane at `addr` excluded (if still a member and `Up`), with
/// its first probe due after the policy's base delay.
fn exclude_lane(
    fleet: &Mutex<FleetState>,
    addr: &WorkerAddr,
    error: &WorkerError,
    rejoin: RejoinPolicy,
) {
    let mut fleet = fleet.lock().expect("fleet lock");
    if let Some(lane) = fleet
        .lanes
        .iter_mut()
        .find(|lane| &lane.addr == addr && matches!(lane.status, LaneStatus::Up))
    {
        lane.status = LaneStatus::Excluded {
            failures: 0,
            next_probe: Instant::now() + rejoin.delay(0),
            cause: error.to_string(),
        };
    }
}

/// One pass of the rejoin probe loop: ping every excluded lane whose
/// backoff has elapsed (every excluded lane when `force`), re-admitting
/// the ones that answer. Pings happen outside the fleet lock so a slow
/// probe cannot stall membership queries. Returns how many rejoined.
fn probe_excluded(
    fleet: &Mutex<FleetState>,
    rejoin: RejoinPolicy,
    force: bool,
    sink: Option<&dyn EventSink>,
) -> usize {
    let now = Instant::now();
    let due: Vec<WorkerAddr> = {
        let fleet = fleet.lock().expect("fleet lock");
        fleet
            .lanes
            .iter()
            .filter(|lane| match &lane.status {
                LaneStatus::Up => false,
                LaneStatus::Excluded { next_probe, .. } => force || *next_probe <= now,
            })
            .map(|lane| lane.addr.clone())
            .collect()
    };
    if due.is_empty() {
        return 0;
    }
    let verdicts: Vec<(WorkerAddr, bool)> = due
        .into_iter()
        .map(|addr| {
            let ok = ping(&addr, rejoin.probe_timeout).is_ok();
            (addr, ok)
        })
        .collect();
    let mut rejoined = 0;
    // Events are collected under the lock and emitted after it drops: a
    // sink may take its own locks (the replay service's state lock, which
    // is also held *around* fleet queries in status calls), so emitting
    // under the fleet lock would invert the lock order.
    let mut events = Vec::new();
    {
        let mut guard = fleet.lock().expect("fleet lock");
        for (addr, ok) in verdicts {
            guard.probes += 1;
            events.push(DispatchEvent::WorkerProbed {
                addr: addr.to_string(),
                ok,
            });
            let Some(lane) = guard.lanes.iter_mut().find(|lane| lane.addr == addr) else {
                continue; // removed while we probed
            };
            match (&mut lane.status, ok) {
                (LaneStatus::Up, _) => {}
                (LaneStatus::Excluded { .. }, true) => {
                    lane.status = LaneStatus::Up;
                    guard.rejoined += 1;
                    rejoined += 1;
                    events.push(DispatchEvent::WorkerRejoined {
                        addr: addr.to_string(),
                    });
                }
                (
                    LaneStatus::Excluded {
                        failures,
                        next_probe,
                        ..
                    },
                    false,
                ) => {
                    *failures = failures.saturating_add(1);
                    *next_probe = Instant::now() + rejoin.delay(*failures);
                }
            }
        }
    }
    if let Some(sink) = sink {
        for event in events {
            sink.event(event);
        }
    }
    rejoined
}

/// A cloneable handle onto a [`SocketPool`]'s supervised fleet —
/// membership changes, probe triggering and the counters, detached from
/// the pool so the serve layer can keep one after the dispatcher is
/// boxed away ([`Dispatcher::fleet`]).
#[derive(Debug, Clone)]
pub struct FleetHandle {
    fleet: Arc<Mutex<FleetState>>,
    rejoin: RejoinPolicy,
}

impl FleetHandle {
    /// A snapshot of every lane plus the lifetime counters.
    pub fn report(&self) -> FleetReport {
        let fleet = self.fleet.lock().expect("fleet lock");
        FleetReport {
            lanes: fleet
                .lanes
                .iter()
                .map(|lane| match &lane.status {
                    LaneStatus::Up => LaneReport {
                        addr: lane.addr.to_string(),
                        state: "up".to_string(),
                        failures: 0,
                        cause: String::new(),
                    },
                    LaneStatus::Excluded {
                        failures, cause, ..
                    } => LaneReport {
                        addr: lane.addr.to_string(),
                        state: "excluded".to_string(),
                        failures: *failures,
                        cause: cause.clone(),
                    },
                })
                .collect(),
            rejoined: fleet.rejoined,
            probes: fleet.probes,
        }
    }

    /// Adds a worker (immediately `Up`); `false` if already a member.
    pub fn add(&self, addr: WorkerAddr) -> bool {
        let mut fleet = self.fleet.lock().expect("fleet lock");
        if fleet.lanes.iter().any(|lane| lane.addr == addr) {
            return false;
        }
        fleet.lanes.push(Lane {
            addr,
            status: LaneStatus::Up,
        });
        true
    }

    /// Removes a worker.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidSpec`] if `addr` is not a member or is the last
    /// remaining lane.
    pub fn remove(&self, addr: &WorkerAddr) -> Result<(), Error> {
        let mut fleet = self.fleet.lock().expect("fleet lock");
        let Some(index) = fleet.lanes.iter().position(|lane| &lane.addr == addr) else {
            return Err(Error::InvalidSpec(format!("{addr} is not a fleet member")));
        };
        if fleet.lanes.len() == 1 {
            return Err(Error::InvalidSpec(format!(
                "{addr} is the last lane — a fleet must keep at least one"
            )));
        }
        fleet.lanes.remove(index);
        Ok(())
    }

    /// Force-probes every excluded lane right now (ignoring backoff) and
    /// returns how many rejoined. The synchronous form of the probe loop,
    /// for admin verbs and tests.
    pub fn probe(&self) -> usize {
        probe_excluded(&self.fleet, self.rejoin, true, None)
    }
}

/// Snapshot of a supervised fleet: one [`LaneReport`] per member plus
/// the lifetime rejoin/probe counters. Serializable — this is the
/// payload of `osp-serve`'s `fleet` admin verb.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Every fleet member, in lane order.
    pub lanes: Vec<LaneReport>,
    /// Lanes re-admitted by a successful probe, over the fleet's life.
    pub rejoined: u64,
    /// Rejoin probes sent (successful or not), over the fleet's life.
    pub probes: u64,
}

impl FleetReport {
    /// Lanes currently taking chunks.
    pub fn up(&self) -> usize {
        self.lanes.iter().filter(|lane| lane.state == "up").count()
    }
}

/// One lane of a [`FleetReport`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaneReport {
    /// The worker's address.
    pub addr: String,
    /// `"up"` or `"excluded"`.
    pub state: String,
    /// Consecutive failed rejoin probes since exclusion (0 when up).
    pub failures: u32,
    /// Why the lane was excluded (empty when up).
    pub cause: String,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::RandomInstanceConfig;
    use crate::spec::{run_spec, CoreResolver};

    fn jobs(n: u64) -> Vec<JobSpec> {
        derived_jobs(
            &ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(20, 50, 3)),
            &AlgorithmSpec::RandPr,
            5,
            n,
        )
    }

    #[test]
    fn derived_jobs_follow_the_splitmix_stream() {
        let jobs = jobs(4);
        for (i, job) in jobs.iter().enumerate() {
            assert_eq!(job.seed, derive_seed(5, i as u64));
        }
    }

    #[test]
    fn spec_pool_matches_sequential_and_reports_backend() {
        let jobs = jobs(7);
        let sequential: Vec<Outcome> = jobs
            .iter()
            .map(|j| run_spec(j, &CoreResolver).unwrap())
            .collect();
        let pool = SpecPool::new(ReplayPool::new(3), CoreResolver);
        assert_eq!(pool.backend(), "threads");
        assert_eq!(pool.lanes(), 3);
        let got: Vec<Outcome> = pool
            .run_specs(&jobs)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(got, sequential);
    }

    #[test]
    fn process_pool_spawn_failure_fails_every_job_cleanly() {
        let pool =
            ProcessPool::with_command(2, vec!["osp-worker-binary-that-does-not-exist".into()]);
        assert_eq!(pool.backend(), "processes");
        assert_eq!(pool.lanes(), 2);
        let out = pool.run_specs(&jobs(5));
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|r| matches!(r, Err(Error::Worker(_)))));
    }

    #[test]
    fn process_pool_empty_jobs_and_zero_workers() {
        let pool = ProcessPool::with_command(0, vec!["unused".into()]);
        assert_eq!(pool.workers(), 1);
        assert!(pool.run_specs(&[]).is_empty());
    }

    #[test]
    fn chatty_worker_that_never_reads_stdin_cannot_hang_the_pool() {
        // `yes` spews bytes forever and never reads its stdin. The reader
        // fails fast (the garbage length prefix blows the frame cap), and
        // the pool must then kill the child — otherwise the feeder thread
        // would block forever on the full stdin pipe once the job stream
        // exceeds the pipe buffer. 3000 jobs ≈ several hundred KiB of
        // frames, comfortably past any default pipe size.
        let pool = ProcessPool::with_command(1, vec!["yes".into()]);
        let out = pool.run_specs(&jobs(3000));
        assert_eq!(out.len(), 3000);
        assert!(out.iter().all(|r| r.is_err()));
    }

    #[test]
    fn retry_policy_backs_off_exponentially_and_caps() {
        let policy = RetryPolicy {
            attempts: 5,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_millis(300),
        };
        assert_eq!(policy.delay(0), Duration::from_millis(50));
        assert_eq!(policy.delay(1), Duration::from_millis(100));
        assert_eq!(policy.delay(2), Duration::from_millis(200));
        // Capped from here on — including shift amounts that would
        // overflow the factor.
        assert_eq!(policy.delay(3), Duration::from_millis(300));
        assert_eq!(policy.delay(31), Duration::from_millis(300));
        assert_eq!(policy.delay(64), Duration::from_millis(300));
        assert!(policy.should_retry(0));
        assert!(policy.should_retry(3));
        assert!(!policy.should_retry(4));
        // Zero attempts behaves as one: no retries.
        let one = RetryPolicy {
            attempts: 0,
            ..policy
        };
        assert!(!one.should_retry(0));
    }

    #[test]
    fn socket_pool_reports_backend_and_lanes() {
        let pool = SocketPool::new(vec![
            WorkerAddr::Tcp("127.0.0.1:7401".into()),
            WorkerAddr::Tcp("127.0.0.1:7402".into()),
        ]);
        assert_eq!(pool.backend(), "sockets");
        assert_eq!(pool.lanes(), 2);
        assert_eq!(pool.addrs().len(), 2);
        assert!(pool.run_specs(&[]).is_empty());
    }

    #[test]
    fn rejoin_policy_backs_off_exponentially_and_caps() {
        let policy = RejoinPolicy {
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_millis(600),
            probe_timeout: Duration::from_millis(50),
        };
        assert_eq!(policy.delay(0), Duration::from_millis(100));
        assert_eq!(policy.delay(1), Duration::from_millis(200));
        assert_eq!(policy.delay(2), Duration::from_millis(400));
        assert_eq!(policy.delay(3), Duration::from_millis(600));
        assert_eq!(policy.delay(31), Duration::from_millis(600));
        assert_eq!(policy.delay(64), Duration::from_millis(600));
    }

    #[test]
    fn fleet_membership_adds_removes_and_reports() {
        let a = WorkerAddr::Tcp("127.0.0.1:7401".into());
        let b = WorkerAddr::Tcp("127.0.0.1:7402".into());
        let pool = SocketPool::new(vec![a.clone()]);
        let handle = pool.fleet().expect("socket pools supervise a fleet");

        assert!(pool.add_worker(b.clone()), "new address joins");
        assert!(!pool.add_worker(b.clone()), "duplicate is refused");
        assert_eq!(pool.lanes(), 2);
        assert_eq!(pool.addrs(), vec![a.clone(), b.clone()]);

        let report = handle.report();
        assert_eq!(report.up(), 2);
        assert_eq!(report.rejoined, 0);
        assert_eq!(report.probes, 0);
        assert!(report
            .lanes
            .iter()
            .all(|lane| lane.state == "up" && lane.failures == 0 && lane.cause.is_empty()));

        handle.remove(&a).expect("removing a member");
        assert_eq!(pool.lanes(), 1);
        let err = handle.remove(&a).unwrap_err();
        assert!(err.to_string().contains("not a fleet member"), "{err}");
        let err = handle.remove(&b).unwrap_err();
        assert!(err.to_string().contains("last lane"), "{err}");
        assert_eq!(pool.lanes(), 1, "the last lane survives");
    }

    #[test]
    fn probe_of_unreachable_excluded_lane_backs_off_and_counts() {
        let dead = WorkerAddr::Tcp("127.0.0.1:1".into());
        let rejoin = RejoinPolicy {
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
            probe_timeout: Duration::from_millis(100),
        };
        let pool = SocketPool::with_config(
            vec![dead.clone()],
            SocketConfig {
                rejoin,
                ..SocketConfig::default()
            },
        );
        exclude_lane(
            &pool.fleet,
            &dead,
            &WorkerError::Disconnect {
                addr: dead.to_string(),
                cause: "test".into(),
            },
            rejoin,
        );
        let handle = pool.fleet_handle();
        let report = handle.report();
        assert_eq!(report.up(), 0);
        assert_eq!(report.lanes[0].state, "excluded");
        assert_eq!(handle.probe(), 0, "port 1 refuses, nothing rejoins");
        assert_eq!(handle.probe(), 0);
        let report = handle.report();
        assert_eq!(report.probes, 2);
        assert_eq!(report.rejoined, 0);
        assert_eq!(report.lanes[0].failures, 2, "failed probes accumulate");
    }

    #[test]
    fn non_socket_backends_have_no_fleet() {
        let pool = SpecPool::new(ReplayPool::new(2), CoreResolver);
        assert!(pool.fleet().is_none());
        let procs = ProcessPool::with_command(1, vec!["unused".into()]);
        assert!(procs.fleet().is_none());
    }

    #[test]
    fn unreachable_fleet_fails_every_job_with_all_workers_dead() {
        // Loopback port 1 refuses instantly; with a 1-attempt policy the
        // whole fleet dies in round one and every job gets the typed
        // exhaustion error.
        let config = SocketConfig {
            connect_timeout: Duration::from_millis(300),
            retry: RetryPolicy {
                attempts: 1,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(1),
            },
            ..SocketConfig::default()
        };
        let pool = SocketPool::with_config(vec![WorkerAddr::Tcp("127.0.0.1:1".into())], config);
        let out = pool.run_specs(&jobs(3));
        assert_eq!(out.len(), 3);
        for r in &out {
            assert!(
                matches!(
                    r,
                    Err(Error::Worker(WorkerError::AllWorkersDead { pending: 3 }))
                ),
                "got {r:?}"
            );
        }
    }

    #[test]
    fn worker_that_talks_garbage_is_a_clean_error() {
        // `echo` exits immediately after printing non-frame bytes: the
        // reader must surface a protocol/worker error, never hang or
        // panic. (POSIX-only, like the rest of the process tests.)
        let pool = ProcessPool::with_command(1, vec!["echo".into(), "not-a-frame".into()]);
        let out = pool.run_specs(&jobs(2));
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|r| r.is_err()));
    }
}
