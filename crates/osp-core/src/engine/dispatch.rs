//! Backend-agnostic dispatch of [`JobSpec`] work-lists: threads or
//! processes behind one contract.
//!
//! A [`Dispatcher`] takes a list of fully-specified jobs and returns their
//! outcomes **in submission order**, bit-identical to the sequential
//! reference ([`run_spec`](crate::spec::run_spec) job by job), whatever
//! the lane count. The contract has exactly two legs, both inherited from
//! the in-process pool:
//!
//! * **seeds are data** — every job's seed is fixed inside the spec
//!   before fan-out (typically via [`derive_seed`]/[`derived_jobs`]), so
//!   no job's randomness depends on which lane runs it;
//! * **order is submission order** — results are merged back
//!   positionally, never by completion time.
//!
//! Two backends implement it:
//!
//! * [`SpecPool`] — `std::thread` shards via
//!   [`ReplayPool::run_specs`](ReplayPool::run_specs), resolving specs
//!   in-process;
//! * [`ProcessPool`] — `osp-worker` child processes fed framed specs over
//!   stdin and answering framed outcomes over stdout
//!   ([`wire`]) — the same spec that crosses a pipe here
//!   crosses a socket to another machine unchanged.
//!
//! `tests/process_pool_conformance.rs` pins all three (sequential,
//! threads, processes) bit-identical across the algorithm × generator
//! grid at worker counts 1, 2 and 4.

use std::io::{BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

use crate::engine::batch::{derive_seed, env_parallelism, ReplayPool};
use crate::engine::Outcome;
use crate::error::Error;
use crate::spec::{AlgorithmSpec, JobSpec, ScenarioSpec, SpecResolver};
use crate::wire;

/// A backend that replays [`JobSpec`] work-lists deterministically: same
/// jobs ⇒ same outcomes, in submission order, at any lane count.
pub trait Dispatcher {
    /// Replays every job and returns the outcomes in job order.
    fn run_specs(&self, jobs: &[JobSpec]) -> Vec<Result<Outcome, Error>>;

    /// Number of parallel lanes (thread shards or worker processes).
    fn lanes(&self) -> usize;

    /// A short backend tag for tables and logs (`"threads"`,
    /// `"processes"`).
    fn backend(&self) -> &'static str;
}

/// Builds the standard trial fan-out: `trials` jobs over one
/// `(scenario, algorithm)` pair with seeds
/// `derive_seed(root, 0..trials)` — the same SplitMix64 discipline the
/// in-process lanes use, so a spec'd sweep lands in the same seed
/// universe as a [`SeedSequence`](crate::derive_seed)-driven one.
pub fn derived_jobs(
    scenario: &ScenarioSpec,
    algorithm: &AlgorithmSpec,
    root: u64,
    trials: u64,
) -> Vec<JobSpec> {
    (0..trials)
        .map(|i| JobSpec {
            scenario: scenario.clone(),
            algorithm: algorithm.clone(),
            seed: derive_seed(root, i),
        })
        .collect()
}

/// The thread backend: a [`ReplayPool`] paired with the
/// [`SpecResolver`] its shards resolve specs through.
///
/// # Examples
///
/// ```
/// use osp_core::engine::dispatch::{derived_jobs, Dispatcher, SpecPool};
/// use osp_core::gen::RandomInstanceConfig;
/// use osp_core::prelude::*;
/// use osp_core::spec::{AlgorithmSpec, CoreResolver, ScenarioSpec};
///
/// let scenario = ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(20, 50, 3));
/// let jobs = derived_jobs(&scenario, &AlgorithmSpec::RandPr, 7, 6);
/// let pool = SpecPool::new(ReplayPool::new(2), CoreResolver);
/// let outcomes = pool.run_specs(&jobs);
/// assert_eq!(outcomes.len(), 6);
/// assert!(outcomes.iter().all(|o| o.is_ok()));
/// ```
#[derive(Debug, Clone)]
pub struct SpecPool<R> {
    pool: ReplayPool,
    resolver: R,
}

impl<R: SpecResolver + Sync> SpecPool<R> {
    /// Pairs a thread pool with a resolver.
    pub fn new(pool: ReplayPool, resolver: R) -> Self {
        SpecPool { pool, resolver }
    }
}

impl<R: SpecResolver + Sync> Dispatcher for SpecPool<R> {
    fn run_specs(&self, jobs: &[JobSpec]) -> Vec<Result<Outcome, Error>> {
        self.pool.run_specs(jobs, &self.resolver)
    }

    fn lanes(&self) -> usize {
        self.pool.shards()
    }

    fn backend(&self) -> &'static str {
        "threads"
    }
}

/// The file name of the worker binary, per platform.
fn worker_bin_name() -> String {
    format!("osp-worker{}", std::env::consts::EXE_SUFFIX)
}

/// Locates the `osp-worker` binary: `OSP_WORKER_BIN` if set, otherwise a
/// sibling of the current executable (also checking one directory up,
/// because test binaries live in `target/<profile>/deps/`).
fn locate_worker() -> Result<PathBuf, Error> {
    if let Ok(path) = std::env::var("OSP_WORKER_BIN") {
        let path = PathBuf::from(path);
        if path.is_file() {
            return Ok(path);
        }
        return Err(Error::Worker(format!(
            "OSP_WORKER_BIN points at {}, which is not a file",
            path.display()
        )));
    }
    let exe = std::env::current_exe()
        .map_err(|e| Error::Worker(format!("cannot resolve current executable: {e}")))?;
    let name = worker_bin_name();
    let mut dir = exe.parent();
    while let Some(d) = dir {
        let candidate = d.join(&name);
        if candidate.is_file() {
            return Ok(candidate);
        }
        // Walk at most one level up (deps/ → the profile directory).
        if d.file_name().map(|n| n == "deps") != Some(true) {
            break;
        }
        dir = d.parent();
    }
    Err(Error::Worker(format!(
        "cannot locate {name} next to {} — build it with `cargo build --bin osp-worker` \
         or set OSP_WORKER_BIN",
        exe.display()
    )))
}

/// The process backend: `N` `osp-worker` child processes, each fed a
/// contiguous chunk of the job list as framed [`JobSpec`]s on stdin and
/// answering framed outcomes on stdout ([`wire`]).
///
/// Determinism is inherited from the specs themselves: a worker rebuilds
/// each job's source and algorithm from `(spec, seed)` exactly as a
/// thread shard would, so outcomes are bit-identical to [`SpecPool`] and
/// to sequential [`run_spec`](crate::spec::run_spec) at any worker count
/// (pinned by `tests/process_pool_conformance.rs`). A worker that cannot
/// be spawned or dies mid-stream fails *its* jobs with
/// [`Error::Worker`]; the other workers' results are unaffected.
#[derive(Debug, Clone)]
pub struct ProcessPool {
    workers: usize,
    command: Vec<String>,
}

impl ProcessPool {
    /// A pool of `workers` processes running the located `osp-worker`
    /// binary (zero is treated as one).
    ///
    /// # Errors
    ///
    /// [`Error::Worker`] if the worker binary cannot be found (see
    /// the location rules: `OSP_WORKER_BIN` if set, then
    /// siblings of the current executable).
    pub fn new(workers: usize) -> Result<Self, Error> {
        let bin = locate_worker()?;
        Ok(ProcessPool::with_command(
            workers,
            vec![bin.to_string_lossy().into_owned()],
        ))
    }

    /// A pool running an explicit worker command (`argv[0]` plus
    /// arguments) — how embedded workers are wired up (e.g.
    /// `examples/distributed_replay.rs` re-executes itself with
    /// `--worker`). The command is spawned lazily at
    /// [`run_specs`](Dispatcher::run_specs) time.
    pub fn with_command(workers: usize, command: Vec<String>) -> Self {
        assert!(!command.is_empty(), "worker command must name a program");
        ProcessPool {
            workers: workers.max(1),
            command,
        }
    }

    /// A pool sized by the `OSP_WORKERS` environment variable (same
    /// hardened policy as
    /// [`ReplayPool::from_env`] — see
    /// [`env_parallelism`]), running the located worker binary.
    ///
    /// # Errors
    ///
    /// [`Error::Worker`] if the worker binary cannot be found.
    pub fn from_env() -> Result<Self, Error> {
        ProcessPool::new(env_parallelism("OSP_WORKERS"))
    }

    /// Number of worker processes this pool fans work across.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs one contiguous chunk through one worker process.
    fn run_chunk(&self, jobs: &[JobSpec]) -> Vec<Result<Outcome, Error>> {
        let spawned = Command::new(&self.command[0])
            .args(&self.command[1..])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn();
        let mut child: Child = match spawned {
            Ok(child) => child,
            Err(e) => {
                let msg = format!("spawning worker `{}`: {e}", self.command[0]);
                return jobs
                    .iter()
                    .map(|_| Err(Error::Worker(msg.clone())))
                    .collect();
            }
        };
        let mut stdin = child.stdin.take().expect("stdin was piped");
        let mut stdout = BufReader::new(child.stdout.take().expect("stdout was piped"));

        let mut results: Vec<Result<Outcome, Error>> = Vec::with_capacity(jobs.len());
        std::thread::scope(|scope| {
            // Feed the jobs from a separate thread: the worker answers
            // while we are still writing, so neither pipe can fill up and
            // deadlock the pair. Dropping stdin at the end is the
            // shutdown signal (clean EOF between frames).
            let feeder = scope.spawn(move || {
                for job in jobs {
                    if wire::write_message(&mut stdin, job).is_err() {
                        // Worker died; the reader reports the damage.
                        break;
                    }
                }
                let _ = stdin.flush();
            });
            for _ in 0..jobs.len() {
                match wire::read_message::<_, wire::reply::Reply>(&mut stdout) {
                    Ok(Some(reply)) => results.push(wire::reply::decode(reply)),
                    Ok(None) => break, // worker exited early; pad below
                    Err(e) => {
                        results.push(Err(e));
                        break;
                    }
                }
            }
            if results.len() < jobs.len() {
                // The reader bailed early (protocol garbage or premature
                // EOF). A non-conforming worker may still be alive and
                // never reading its stdin, which would leave the feeder
                // blocked on a full pipe forever — kill the child so the
                // feeder's writes fail and the scope can join.
                let _ = child.kill();
            }
            feeder.join().expect("worker feeder thread panicked");
        });
        // Reap; a nonzero exit only matters if replies are also missing.
        let status = child.wait();
        while results.len() < jobs.len() {
            let why = match &status {
                Ok(s) if !s.success() => format!("worker exited with {s} before answering"),
                Ok(_) => "worker closed its stream before answering".to_string(),
                Err(e) => format!("worker did not terminate cleanly: {e}"),
            };
            results.push(Err(Error::Worker(why)));
        }
        results
    }
}

impl Dispatcher for ProcessPool {
    fn run_specs(&self, jobs: &[JobSpec]) -> Vec<Result<Outcome, Error>> {
        if jobs.is_empty() {
            return Vec::new();
        }
        // Contiguous chunks, one per worker — the same split (and thus
        // the same ordering contract) as ReplayPool::shard_map.
        let lanes = self.workers.min(jobs.len());
        let chunk = jobs.len().div_ceil(lanes);
        if lanes == 1 {
            return self.run_chunk(jobs);
        }
        let mut results: Vec<Result<Outcome, Error>> = Vec::with_capacity(jobs.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = jobs
                .chunks(chunk)
                .map(|slice| scope.spawn(move || self.run_chunk(slice)))
                .collect();
            for handle in handles {
                results.extend(handle.join().expect("worker lane thread panicked"));
            }
        });
        results
    }

    fn lanes(&self) -> usize {
        self.workers
    }

    fn backend(&self) -> &'static str {
        "processes"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::RandomInstanceConfig;
    use crate::spec::{run_spec, CoreResolver};

    fn jobs(n: u64) -> Vec<JobSpec> {
        derived_jobs(
            &ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(20, 50, 3)),
            &AlgorithmSpec::RandPr,
            5,
            n,
        )
    }

    #[test]
    fn derived_jobs_follow_the_splitmix_stream() {
        let jobs = jobs(4);
        for (i, job) in jobs.iter().enumerate() {
            assert_eq!(job.seed, derive_seed(5, i as u64));
        }
    }

    #[test]
    fn spec_pool_matches_sequential_and_reports_backend() {
        let jobs = jobs(7);
        let sequential: Vec<Outcome> = jobs
            .iter()
            .map(|j| run_spec(j, &CoreResolver).unwrap())
            .collect();
        let pool = SpecPool::new(ReplayPool::new(3), CoreResolver);
        assert_eq!(pool.backend(), "threads");
        assert_eq!(pool.lanes(), 3);
        let got: Vec<Outcome> = pool
            .run_specs(&jobs)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(got, sequential);
    }

    #[test]
    fn process_pool_spawn_failure_fails_every_job_cleanly() {
        let pool =
            ProcessPool::with_command(2, vec!["osp-worker-binary-that-does-not-exist".into()]);
        assert_eq!(pool.backend(), "processes");
        assert_eq!(pool.lanes(), 2);
        let out = pool.run_specs(&jobs(5));
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|r| matches!(r, Err(Error::Worker(_)))));
    }

    #[test]
    fn process_pool_empty_jobs_and_zero_workers() {
        let pool = ProcessPool::with_command(0, vec!["unused".into()]);
        assert_eq!(pool.workers(), 1);
        assert!(pool.run_specs(&[]).is_empty());
    }

    #[test]
    fn chatty_worker_that_never_reads_stdin_cannot_hang_the_pool() {
        // `yes` spews bytes forever and never reads its stdin. The reader
        // fails fast (the garbage length prefix blows the frame cap), and
        // the pool must then kill the child — otherwise the feeder thread
        // would block forever on the full stdin pipe once the job stream
        // exceeds the pipe buffer. 3000 jobs ≈ several hundred KiB of
        // frames, comfortably past any default pipe size.
        let pool = ProcessPool::with_command(1, vec!["yes".into()]);
        let out = pool.run_specs(&jobs(3000));
        assert_eq!(out.len(), 3000);
        assert!(out.iter().all(|r| r.is_err()));
    }

    #[test]
    fn worker_that_talks_garbage_is_a_clean_error() {
        // `echo` exits immediately after printing non-frame bytes: the
        // reader must surface a protocol/worker error, never hang or
        // panic. (POSIX-only, like the rest of the process tests.)
        let pool = ProcessPool::with_command(1, vec!["echo".into(), "not-a-frame".into()]);
        let out = pool.run_specs(&jobs(2));
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|r| r.is_err()));
    }
}
