//! The online execution engine.
//!
//! Nine entry points:
//!
//! * [`run_source`] drives an [`OnlineAlgorithm`] over any
//!   [`ArrivalSource`] — the primary ingestion path. Sources stream
//!   arrivals one at a time (a fused generator, a packet trace, a
//!   materialized instance), so scenario size is bounded by the source's
//!   resident state, not by RAM holding a hypergraph.
//! * [`run`] replays a frozen [`Instance`]'s arrival sequence — the
//!   standard evaluation path. It is a thin wrapper over [`run_source`]
//!   via [`Instance::source`]: a materialized instance is just one
//!   [`ArrivalSource`] whose arrivals are zero-copy views into its CSR
//!   arena, so there is exactly one engine loop for both worlds.
//! * [`Session`] drives an algorithm *one arrival at a time* without a
//!   pre-built instance, which is what adaptive adversaries (Theorem 3)
//!   need: they decide the next element only after seeing the algorithm's
//!   previous choice. [`Session::drain_source`] feeds it from a source.
//! * [`run_source_parallel`] (and its instance twin [`run_parallel`])
//!   replay **one** huge stream with intra-replay parallelism
//!   ([`parallel`]): a producer thread drains the source into a
//!   double-buffered chunk ring while the consumer runs the same
//!   [`Session::step`] loop, and arrivals whose candidate count crosses
//!   [`parallel::SHARDED_DECIDE_MIN`] shard their score fill across
//!   scoped threads ([`parallel::fill_sharded`]). Thread count from
//!   `OSP_REPLAY_THREADS` ([`batch::env_parallelism`] policy; 1 = the
//!   serial path), bit-identical to [`run_source`] at any count.
//! * [`batch`] fans a work-list across threads ([`batch::ReplayPool`])
//!   with per-shard reusable [`batch::ReplayScratch`] buffers — both the
//!   `(instance × seed × algorithm)` lane ([`batch::ReplayPool::run_jobs`])
//!   and the streamed `(source × seed × algorithm)` lane
//!   ([`batch::ReplayPool::run_sources`]); outcomes are bit-identical to
//!   sequential replay because every path executes this module's
//!   [`Session`] logic.
//! * [`dispatch`] runs **data-driven job specs**
//!   ([`JobSpec`](crate::spec::JobSpec)) behind the backend-agnostic
//!   [`dispatch::Dispatcher`] contract: [`dispatch::SpecPool`] resolves
//!   specs on thread shards, [`dispatch::ProcessPool`] ships them to
//!   `osp-worker` child processes over the framed wire protocol
//!   ([`wire`](crate::wire)) — the distribution axis, since a spec that
//!   crosses a process boundary crosses a socket unchanged. Outcomes stay
//!   bit-identical to sequential [`run_spec`](crate::spec::run_spec) at
//!   any lane count.
//! * [`dispatch::SocketPool`] extends the same contract **across the
//!   network**: a fleet of `osp-worker --listen` endpoints
//!   (TCP/Unix-domain) spoken to over the identical frames, with
//!   handshake, heartbeat, connect retry/backoff, read deadlines, and
//!   chunk re-dispatch to surviving workers when one dies mid-batch —
//!   the cluster entry point. Faults move jobs between workers but never
//!   change results, because outcomes are pure functions of the specs
//!   (pinned by `tests/socket_pool_conformance.rs`, including under
//!   injected [`FaultPlan`](crate::wire::FaultPlan) kills).
//! * [`serve`](crate::serve) hosts any [`dispatch::Dispatcher`] behind a
//!   long-running front door: [`ReplayService`](crate::serve::ReplayService)
//!   executes submitted batches from a bounded queue on a background
//!   executor with a content-addressed results cache, and
//!   [`ServeServer`](crate::serve::ServeServer) /
//!   [`ServeClient`](crate::serve::ServeClient) put the
//!   submit → status → fetch → cancel flow on the same framed wire the
//!   workers speak (`osp-serve --listen`) — the service entry point.
//!   Served outcomes stay bit-identical to sequential
//!   [`run_spec`](crate::spec::run_spec) whatever backend executes them
//!   (pinned by `tests/replay_service.rs`, including across a
//!   fault-injected fleet and cache resubmission).
//! * [`store`](crate::store) makes the service **crash-safe**: the
//!   results cache behind a [`ResultStore`](crate::store::ResultStore)
//!   seam — LRU-bounded in memory
//!   ([`MemStore`](crate::store::MemStore)), journaled to disk with
//!   checksummed records, torn-tail recovery, and snapshot compaction
//!   ([`JournalStore`](crate::store::JournalStore)). With
//!   `osp-serve --state-dir`, batch manifests checkpoint at every chunk
//!   boundary, so a `kill -9` mid-batch resumes on restart recomputing
//!   only unjournaled jobs; and the [`dispatch::SocketPool`] fleet is
//!   *supervised* — excluded workers are probed with capped exponential
//!   backoff ([`dispatch::RejoinPolicy`]) and re-admitted when they come
//!   back, with membership editable at runtime over the serve wire's
//!   `fleet` verb ([`dispatch::FleetHandle`]). Pinned by
//!   `tests/crash_recovery.rs` against the real binaries.
//!
//! Alongside the entry points sit two intra-replay seams. The
//! [`prologue`] seam parallelizes `begin()`: every built-in algorithm
//! builds an O(m) per-set table whose slot `i` is a pure function of
//! `(seed, i)` (§3.1's system-wide hash for `hashPr`; counter-based
//! SplitMix64 jump-ahead for `randPr`), so [`prologue::build_table`]
//! shards disjoint index ranges across scoped threads
//! (`OSP_PROLOGUE_THREADS`, same [`batch::env_parallelism`] policy;
//! 1 = the serial path) and any shard count writes exactly the same
//! bytes. The [`parallel`] seam extends the discipline to the replay
//! itself: the arrival loop stays sequential — decisions are
//! order-dependent — but arrival *generation* overlaps it (the
//! pipelined session) and wide decisions shard their score fill
//! ([`parallel::fill_sharded`]) while the selection keeps the exact
//! serial comparator sequence, so every golden outcome stays
//! bit-identical.
//!
//! All paths enforce the model's rules (§2): each decision must pick at
//! most `b(u)` distinct sets from `C(u)`. A set is **completed** iff it was
//! chosen for every one of its elements; the [`Outcome`] records the
//! completed sets, the benefit, every decision (as a flat [`DecisionLog`]),
//! and when each non-surviving set died.
//!
//! The per-arrival hot path is allocation-free: algorithms write decisions
//! into a recycled buffer ([`OnlineAlgorithm::decide_into`]), the engine
//! validates in another recycled buffer, and the decision log accumulates
//! in two flat CSR vectors — all handed from job to job via
//! [`batch::ReplayScratch`], so a warm shard performs zero heap
//! allocations per arrival.

pub mod batch;
pub mod dispatch;
pub mod parallel;
pub mod prologue;

use crate::algorithm::{EngineView, OnlineAlgorithm};
use crate::error::Error;
use crate::ids::{ElementId, SetId};
use crate::instance::{Arrival, Instance, SetMeta};
use crate::source::ArrivalSource;

pub use batch::{derive_seed, ReplayPool, ReplayScratch};
pub use parallel::{run_parallel, run_source_parallel, ParallelConfig};

/// A flat record of every decision of a run: one CSR arena (offsets +
/// data) instead of a `Vec<SetId>` per arrival, so logging a decision is
/// two appends into warm buffers and reading the log back walks one
/// contiguous allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionLog {
    /// `offsets.len() == len() + 1`; arrival `i`'s decision is
    /// `data[offsets[i]..offsets[i+1]]`.
    offsets: Vec<u32>,
    data: Vec<SetId>,
}

impl Default for DecisionLog {
    fn default() -> Self {
        DecisionLog {
            offsets: vec![0],
            data: Vec::new(),
        }
    }
}

impl DecisionLog {
    /// An empty log.
    pub fn new() -> Self {
        DecisionLog::default()
    }

    /// Number of decisions recorded (= arrivals replayed).
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether no decision has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The decision taken for arrival `i`, or `None` past the end.
    pub fn get(&self, i: usize) -> Option<&[SetId]> {
        if i >= self.len() {
            return None;
        }
        Some(&self.data[self.offsets[i] as usize..self.offsets[i + 1] as usize])
    }

    /// Total number of `(element, set)` assignments across all decisions.
    pub fn total_assignments(&self) -> usize {
        self.data.len()
    }

    /// Iterates the decisions in arrival order.
    pub fn iter(&self) -> DecisionLogIter<'_> {
        DecisionLogIter { log: self, next: 0 }
    }

    /// Appends one decision.
    fn push(&mut self, decision: &[SetId]) {
        self.data.extend_from_slice(decision);
        self.offsets.push(self.data.len() as u32);
    }

    /// Clears the log, keeping both buffers' capacity.
    fn clear(&mut self) {
        self.offsets.clear();
        self.offsets.push(0);
        self.data.clear();
    }

    /// A right-sized deep copy (fresh exact-capacity allocations), leaving
    /// `self` — and its warm capacity — in place for reuse.
    fn snapshot(&self) -> DecisionLog {
        DecisionLog {
            offsets: self.offsets.as_slice().to_vec(),
            data: self.data.as_slice().to_vec(),
        }
    }

    /// Reassembles a log from its raw CSR parts — the deserialization
    /// entry point for logs that crossed a process boundary
    /// ([`wire`](crate::wire)).
    ///
    /// # Errors
    ///
    /// [`Error::Protocol`] unless `offsets` is non-empty, starts at 0, is
    /// non-decreasing, and ends exactly at `data.len()` — the invariants
    /// every engine-produced log holds.
    pub fn from_parts(offsets: Vec<u32>, data: Vec<SetId>) -> Result<DecisionLog, Error> {
        if offsets.first() != Some(&0) {
            return Err(Error::Protocol(
                "decision log offsets must start at 0".into(),
            ));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(Error::Protocol(
                "decision log offsets must be non-decreasing".into(),
            ));
        }
        if offsets.last().copied() != Some(data.len() as u32) || data.len() > u32::MAX as usize {
            return Err(Error::Protocol(
                "decision log offsets must end at the data length".into(),
            ));
        }
        Ok(DecisionLog { offsets, data })
    }

    /// The raw CSR parts `(offsets, data)` — the serialization twin of
    /// [`from_parts`](Self::from_parts).
    pub fn as_parts(&self) -> (&[u32], &[SetId]) {
        (&self.offsets, &self.data)
    }
}

impl serde::Serialize for DecisionLog {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("offsets".to_string(), self.offsets.to_value()),
            ("data".to_string(), self.data.to_value()),
        ])
    }
}

impl serde::Deserialize for DecisionLog {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let offsets = Vec::<u32>::from_value(serde::get_field(value, "offsets")?)?;
        let data = Vec::<SetId>::from_value(serde::get_field(value, "data")?)?;
        DecisionLog::from_parts(offsets, data).map_err(|e| serde::Error::msg(e.to_string()))
    }
}

impl<'a> IntoIterator for &'a DecisionLog {
    type Item = &'a [SetId];
    type IntoIter = DecisionLogIter<'a>;

    fn into_iter(self) -> DecisionLogIter<'a> {
        self.iter()
    }
}

/// Iterator over a [`DecisionLog`]'s per-arrival decision slices.
#[derive(Debug, Clone)]
pub struct DecisionLogIter<'a> {
    log: &'a DecisionLog,
    next: usize,
}

impl<'a> Iterator for DecisionLogIter<'a> {
    type Item = &'a [SetId];

    fn next(&mut self) -> Option<&'a [SetId]> {
        let d = self.log.get(self.next)?;
        self.next += 1;
        Some(d)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.log.len() - self.next;
        (n, Some(n))
    }
}

impl ExactSizeIterator for DecisionLogIter<'_> {}
impl std::iter::FusedIterator for DecisionLogIter<'_> {}

/// The result of one online run.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    completed: Vec<SetId>,
    benefit: f64,
    decisions: DecisionLog,
    died_at: Vec<Option<ElementId>>,
}

impl Outcome {
    /// The sets the algorithm completed, ascending by id.
    pub fn completed(&self) -> &[SetId] {
        &self.completed
    }

    /// Total weight of completed sets — `w(alg)` in the paper.
    pub fn benefit(&self) -> f64 {
        self.benefit
    }

    /// The decision taken for each arrival, in arrival order, as a flat
    /// [`DecisionLog`].
    pub fn decisions(&self) -> &DecisionLog {
        &self.decisions
    }

    /// For each set, the element at which it died (its first element *not*
    /// assigned to it), or `None` if it never missed an element.
    ///
    /// Querying a [`SetId`] that does not belong to the replayed instance
    /// (e.g. an id minted for a different, larger instance) returns `None`
    /// rather than panicking.
    pub fn died_at(&self, set: SetId) -> Option<ElementId> {
        self.died_at.get(set.index()).copied().flatten()
    }

    /// Whether the given set was completed.
    pub fn is_completed(&self, set: SetId) -> bool {
        self.completed.binary_search(&set).is_ok()
    }

    /// Reassembles an outcome from its parts — the deserialization entry
    /// point for outcomes that crossed a process boundary
    /// ([`wire`](crate::wire)). `died_at` is indexed by set, in set-id
    /// order.
    ///
    /// # Errors
    ///
    /// [`Error::Protocol`] if `completed` is not strictly ascending or
    /// `benefit` is not finite (the structural invariants every
    /// engine-produced outcome holds; deeper consistency would need the
    /// instance, which by design is not on the wire).
    pub fn from_parts(
        completed: Vec<SetId>,
        benefit: f64,
        decisions: DecisionLog,
        died_at: Vec<Option<ElementId>>,
    ) -> Result<Outcome, Error> {
        if completed.windows(2).any(|w| w[0] >= w[1]) {
            return Err(Error::Protocol(
                "completed sets must be strictly ascending".into(),
            ));
        }
        if !benefit.is_finite() {
            return Err(Error::Protocol("benefit must be finite".into()));
        }
        Ok(Outcome {
            completed,
            benefit,
            decisions,
            died_at,
        })
    }
}

impl serde::Serialize for Outcome {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("completed".to_string(), self.completed.to_value()),
            ("benefit".to_string(), self.benefit.to_value()),
            ("decisions".to_string(), self.decisions.to_value()),
            ("died_at".to_string(), self.died_at.to_value()),
        ])
    }
}

impl serde::Deserialize for Outcome {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let completed = Vec::<SetId>::from_value(serde::get_field(value, "completed")?)?;
        let benefit = f64::from_value(serde::get_field(value, "benefit")?)?;
        let decisions = DecisionLog::from_value(serde::get_field(value, "decisions")?)?;
        let died_at = Vec::<Option<ElementId>>::from_value(serde::get_field(value, "died_at")?)?;
        Outcome::from_parts(completed, benefit, decisions, died_at)
            .map_err(|e| serde::Error::msg(e.to_string()))
    }
}

/// An incremental online run: feed arrivals one at a time, inspect the
/// algorithm's choices between them.
///
/// # Examples
///
/// ```
/// use osp_core::prelude::*;
/// use osp_core::engine::Session;
///
/// let sets = vec![];
/// let mut alg = RandPr::from_seed(0);
/// let session = Session::new(&sets, &mut alg);
/// let outcome = session.finish();
/// assert_eq!(outcome.benefit(), 0.0);
/// ```
#[derive(Debug)]
pub struct Session<'a> {
    sets: &'a [SetMeta],
    assigned: Vec<u32>,
    alive: Vec<bool>,
    died_at: Vec<Option<ElementId>>,
    decisions: DecisionLog,
    /// The algorithm's decision target, reused across arrivals.
    decision_buf: Vec<SetId>,
    /// Validation scratch reused across arrivals (sorted decision copy),
    /// so the per-arrival hot path allocates nothing of its own.
    sorted: Vec<SetId>,
}

impl<'a> Session<'a> {
    /// Starts a session over the declared sets and announces them to the
    /// algorithm (calls [`OnlineAlgorithm::begin`]).
    pub fn new<A: OnlineAlgorithm + ?Sized>(sets: &'a [SetMeta], algorithm: &mut A) -> Self {
        let mut scratch = ReplayScratch::new();
        Session::with_scratch(sets, algorithm, &mut scratch)
    }

    /// Like [`new`](Self::new), but recycles the buffers held by `scratch`
    /// instead of allocating fresh ones — the batch replay path calls this
    /// once per job so consecutive replays on a shard reuse one set of
    /// buffers. Return them with [`finish_into`](Self::finish_into).
    pub fn with_scratch<A: OnlineAlgorithm + ?Sized>(
        sets: &'a [SetMeta],
        algorithm: &mut A,
        scratch: &mut ReplayScratch,
    ) -> Self {
        algorithm.begin(sets);
        let m = sets.len();
        let mut assigned = std::mem::take(&mut scratch.assigned);
        assigned.clear();
        assigned.resize(m, 0);
        let mut alive = std::mem::take(&mut scratch.alive);
        alive.clear();
        alive.resize(m, true);
        let mut died_at = std::mem::take(&mut scratch.died_at);
        died_at.clear();
        died_at.resize(m, None);
        let mut decisions = std::mem::take(&mut scratch.decisions);
        decisions.clear();
        let mut decision_buf = std::mem::take(&mut scratch.decision_buf);
        decision_buf.clear();
        let mut sorted = std::mem::take(&mut scratch.sorted);
        sorted.clear();
        Session {
            sets,
            assigned,
            alive,
            died_at,
            decisions,
            decision_buf,
            sorted,
        }
    }

    /// Number of arrivals processed so far.
    pub fn arrivals_seen(&self) -> usize {
        self.decisions.len()
    }

    /// Whether `set` is still completable (chosen for every element so far).
    pub fn is_active(&self, set: SetId) -> bool {
        self.alive[set.index()]
    }

    /// How many elements have been assigned to `set`.
    pub fn assigned(&self, set: SetId) -> u32 {
        self.assigned[set.index()]
    }

    /// Number of currently active sets.
    pub fn active_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Iterates the ids of all currently active sets, ascending, without
    /// materializing them.
    pub fn active_sets_iter(&self) -> impl Iterator<Item = SetId> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter_map(|(i, &alive)| alive.then_some(SetId(i as u32)))
    }

    /// The ids of all currently active sets, ascending. Prefer
    /// [`active_sets_iter`](Self::active_sets_iter) (or
    /// [`active_count`](Self::active_count)) when a materialized vector is
    /// not actually needed.
    pub fn active_sets(&self) -> Vec<SetId> {
        self.active_sets_iter().collect()
    }

    /// A read-only [`EngineView`] of the current session state — what an
    /// algorithm would see if asked to decide right now. Useful when the
    /// decision is computed outside [`offer`](Self::offer) (e.g. by a
    /// remote replica in a distributed setup) and applied via
    /// [`apply_external`](Self::apply_external).
    pub fn view(&self) -> EngineView<'_> {
        EngineView::new(self.sets, &self.assigned, &self.alive)
    }

    /// Offers the next arrival to the algorithm, validates its decision,
    /// applies it, and returns a copy of the decision.
    ///
    /// # Errors
    ///
    /// Returns an error if the decision violates the model: a set not
    /// containing the element, a duplicated set, or more than `b(u)` sets.
    /// The session state is unchanged on error.
    pub fn offer<A: OnlineAlgorithm + ?Sized>(
        &mut self,
        arrival: &Arrival<'_>,
        algorithm: &mut A,
    ) -> Result<Vec<SetId>, Error> {
        self.step(arrival, algorithm)?;
        Ok(self
            .decisions
            .get(self.decisions.len() - 1)
            .expect("step just recorded a decision")
            .to_vec())
    }

    /// Like [`offer`](Self::offer), but does not echo a copy of the
    /// decision back — the replay paths ([`run`], [`batch`]) use this so
    /// a warm session performs zero heap allocations per arrival: the
    /// algorithm writes into the session's recycled decision buffer
    /// ([`OnlineAlgorithm::decide_into`]) and the decision is appended to
    /// the flat [`DecisionLog`].
    ///
    /// # Errors
    ///
    /// Same contract as [`offer`](Self::offer); the session state is
    /// unchanged on error.
    pub fn step<A: OnlineAlgorithm + ?Sized>(
        &mut self,
        arrival: &Arrival<'_>,
        algorithm: &mut A,
    ) -> Result<(), Error> {
        // Take the buffer so the algorithm can borrow a view of `self`
        // while writing into it (`mem::take` on a Vec never allocates).
        let mut buf = std::mem::take(&mut self.decision_buf);
        buf.clear();
        {
            let view = EngineView::new(self.sets, &self.assigned, &self.alive);
            algorithm.decide_into(arrival, &view, &mut buf);
        }
        let verdict = self.validate(arrival, &buf);
        if verdict.is_ok() {
            self.apply_validated(arrival, &buf);
        }
        self.decision_buf = buf;
        verdict
    }

    /// Feeds every remaining arrival of `source` through
    /// [`step`](Self::step) — the source-generic way to drive a session to
    /// the end of a stream. The session must have been created over the
    /// same set metadata the source declares.
    ///
    /// # Errors
    ///
    /// Returns the first invalid decision ([`step`](Self::step)'s
    /// contract); arrivals already applied stay applied, and the source is
    /// left positioned after the offending arrival.
    pub fn drain_source<S, A>(&mut self, source: &mut S, algorithm: &mut A) -> Result<(), Error>
    where
        S: ArrivalSource + ?Sized,
        A: OnlineAlgorithm + ?Sized,
    {
        while let Some(arrival) = source.next_arrival() {
            self.step(&arrival, algorithm)?;
        }
        Ok(())
    }

    /// Validates and applies a decision computed outside this session
    /// (e.g. by a per-hop replica in the distributed implementation).
    /// Returns the decision back on success.
    ///
    /// # Errors
    ///
    /// Same contract as [`offer`](Self::offer); the session state is
    /// unchanged on error.
    pub fn apply_external(
        &mut self,
        arrival: &Arrival<'_>,
        decision: Vec<SetId>,
    ) -> Result<Vec<SetId>, Error> {
        self.validate(arrival, &decision)?;
        self.apply_validated(arrival, &decision);
        Ok(decision)
    }

    /// Checks the model's rules without touching session state. On success
    /// `self.sorted` holds the decision sorted ascending.
    fn validate(&mut self, arrival: &Arrival<'_>, decision: &[SetId]) -> Result<(), Error> {
        if decision.len() > arrival.capacity() as usize {
            return Err(Error::DecisionOverCapacity {
                element: arrival.element(),
                capacity: arrival.capacity(),
                chosen: decision.len(),
            });
        }
        self.sorted.clear();
        self.sorted.extend_from_slice(decision);
        self.sorted.sort_unstable();
        for w in self.sorted.windows(2) {
            if w[0] == w[1] {
                return Err(Error::DecisionDuplicate {
                    element: arrival.element(),
                    set: w[0],
                });
            }
        }
        for &s in &self.sorted {
            if !arrival.contains(s) {
                return Err(Error::DecisionNotMember {
                    element: arrival.element(),
                    set: s,
                });
            }
        }
        Ok(())
    }

    /// Applies a decision that [`validate`](Self::validate) just accepted
    /// (`self.sorted` still holds its sorted copy).
    fn apply_validated(&mut self, arrival: &Arrival<'_>, decision: &[SetId]) {
        // Apply: chosen member sets advance; unchosen member sets die.
        for &s in arrival.members() {
            if self.sorted.binary_search(&s).is_ok() {
                self.assigned[s.index()] += 1;
            } else if self.alive[s.index()] {
                self.alive[s.index()] = false;
                self.died_at[s.index()] = Some(arrival.element());
            }
        }
        self.decisions.push(decision);
    }

    /// Ends the session: a set is completed iff it is alive *and* has
    /// received its full declared size.
    pub fn finish(self) -> Outcome {
        self.finish_impl(None)
    }

    /// Like [`finish`](Self::finish), but hands the session's reusable
    /// buffers back to `scratch` so the next
    /// [`with_scratch`](Self::with_scratch) session can recycle them. The
    /// returned [`Outcome`] owns right-sized copies of the decision log and
    /// death records (one exact-size allocation each, per job — never per
    /// arrival).
    pub fn finish_into(self, scratch: &mut ReplayScratch) -> Outcome {
        self.finish_impl(Some(scratch))
    }

    fn finish_impl(mut self, scratch: Option<&mut ReplayScratch>) -> Outcome {
        let completed: Vec<SetId> = (0..self.sets.len())
            .filter(|&i| self.alive[i] && self.assigned[i] == self.sets[i].size())
            .map(|i| SetId(i as u32))
            .collect();
        let benefit = completed
            .iter()
            .map(|&s| self.sets[s.index()].weight())
            .sum();
        let (decisions, died_at) = match scratch {
            Some(scratch) => {
                let decisions = self.decisions.snapshot();
                let died_at = self.died_at.as_slice().to_vec();
                scratch.assigned = std::mem::take(&mut self.assigned);
                scratch.alive = std::mem::take(&mut self.alive);
                scratch.died_at = std::mem::take(&mut self.died_at);
                scratch.decisions = std::mem::take(&mut self.decisions);
                scratch.decision_buf = std::mem::take(&mut self.decision_buf);
                scratch.sorted = std::mem::take(&mut self.sorted);
                (decisions, died_at)
            }
            None => (self.decisions, self.died_at),
        };
        Outcome {
            completed,
            benefit,
            decisions,
            died_at,
        }
    }
}

/// Runs `algorithm` over `instance` and returns the [`Outcome`].
///
/// # Errors
///
/// Returns an error if the algorithm emits an invalid decision: a set not
/// containing the element, a duplicated set, or more than `b(u)` sets.
///
/// # Examples
///
/// ```
/// use osp_core::prelude::*;
///
/// let mut b = InstanceBuilder::new();
/// let s = b.add_set(1.0, 1);
/// b.add_element(1, &[s]);
/// let inst = b.build()?;
/// let outcome = run(&inst, &mut GreedyOnline::new(TieBreak::ByWeight))?;
/// assert_eq!(outcome.benefit(), 1.0);
/// # Ok::<(), osp_core::Error>(())
/// ```
pub fn run<A: OnlineAlgorithm + ?Sized>(
    instance: &Instance,
    algorithm: &mut A,
) -> Result<Outcome, Error> {
    let mut scratch = ReplayScratch::new();
    run_with_scratch(instance, algorithm, &mut scratch)
}

/// [`run`] with caller-provided [`ReplayScratch`], so consecutive replays
/// reuse the engine's bookkeeping buffers. The batch shards call this in a
/// loop; the outcome is identical to [`run`]'s.
///
/// This is a thin wrapper over [`run_source_with_scratch`] on
/// [`Instance::source`] — the instance and streaming worlds share one
/// engine loop.
///
/// # Errors
///
/// Same contract as [`run`].
pub fn run_with_scratch<A: OnlineAlgorithm + ?Sized>(
    instance: &Instance,
    algorithm: &mut A,
    scratch: &mut ReplayScratch,
) -> Result<Outcome, Error> {
    run_source_with_scratch(&mut instance.source(), algorithm, scratch)
}

/// Runs `algorithm` over every arrival `source` yields and returns the
/// [`Outcome`] — the streaming twin of [`run`]. The source's set metadata
/// is announced to the algorithm up front; arrivals are pulled one at a
/// time and never retained, so memory is bounded by the source's resident
/// state (O(m) for the fused generator sources), not the stream length.
///
/// # Errors
///
/// Returns an error if the algorithm emits an invalid decision: a set not
/// containing the element, a duplicated set, or more than `b(u)` sets.
///
/// # Examples
///
/// ```
/// use osp_core::prelude::*;
///
/// let mut b = InstanceBuilder::new();
/// let s = b.add_set(1.0, 1);
/// b.add_element(1, &[s]);
/// let inst = b.build()?;
/// // A materialized instance is just one kind of source.
/// let outcome = run_source(&mut inst.source(), &mut GreedyOnline::new(TieBreak::ByWeight))?;
/// assert_eq!(outcome.benefit(), 1.0);
/// # Ok::<(), osp_core::Error>(())
/// ```
pub fn run_source<S, A>(source: &mut S, algorithm: &mut A) -> Result<Outcome, Error>
where
    S: ArrivalSource + ?Sized,
    A: OnlineAlgorithm + ?Sized,
{
    let mut scratch = ReplayScratch::new();
    run_source_with_scratch(source, algorithm, &mut scratch)
}

/// [`run_source`] with caller-provided [`ReplayScratch`]. The set metadata
/// is copied into a scratch-recycled buffer (one warm `memcpy` of `m`
/// entries per job — never per arrival) so the source stays free for
/// mutable pulls while the [`Session`] borrows the metas.
///
/// # Errors
///
/// Same contract as [`run_source`].
pub fn run_source_with_scratch<S, A>(
    source: &mut S,
    algorithm: &mut A,
    scratch: &mut ReplayScratch,
) -> Result<Outcome, Error>
where
    S: ArrivalSource + ?Sized,
    A: OnlineAlgorithm + ?Sized,
{
    let mut metas = std::mem::take(&mut scratch.set_metas);
    metas.clear();
    metas.extend_from_slice(source.sets());
    let mut session = Session::with_scratch(&metas, algorithm, scratch);
    let outcome = match session.drain_source(source, algorithm) {
        Ok(()) => Ok(session.finish_into(scratch)),
        Err(e) => Err(e),
    };
    scratch.set_metas = metas;
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{Arrival, InstanceBuilder, SetMeta};

    /// Scripted algorithm replaying canned decisions (tests only).
    struct Scripted {
        script: Vec<Vec<SetId>>,
        step: usize,
    }

    impl Scripted {
        fn new(script: Vec<Vec<SetId>>) -> Self {
            Scripted { script, step: 0 }
        }
    }

    impl OnlineAlgorithm for Scripted {
        fn name(&self) -> String {
            "scripted".into()
        }

        fn begin(&mut self, _sets: &[SetMeta]) {
            self.step = 0;
        }

        fn decide_into(
            &mut self,
            _arrival: &Arrival<'_>,
            _view: &EngineView<'_>,
            out: &mut Vec<SetId>,
        ) {
            out.extend_from_slice(&self.script[self.step]);
            self.step += 1;
        }
    }

    fn three_set_instance() -> (crate::Instance, [SetId; 3]) {
        // s0 = {e0, e1}, s1 = {e0, e2}, s2 = {e2}
        let mut b = InstanceBuilder::new();
        let s0 = b.add_set(1.0, 2);
        let s1 = b.add_set(5.0, 2);
        let s2 = b.add_set(2.0, 1);
        b.add_element(1, &[s0, s1]);
        b.add_element(1, &[s0]);
        b.add_element(1, &[s1, s2]);
        (b.build().unwrap(), [s0, s1, s2])
    }

    #[test]
    fn completion_requires_every_element() {
        let (inst, [s0, s1, s2]) = three_set_instance();
        // Give e0 to s0, e1 to s0, e2 to s2: s0 and s2 complete.
        let mut alg = Scripted::new(vec![vec![s0], vec![s0], vec![s2]]);
        let out = run(&inst, &mut alg).unwrap();
        assert_eq!(out.completed(), &[s0, s2]);
        assert_eq!(out.benefit(), 3.0);
        assert!(out.is_completed(s0));
        assert!(!out.is_completed(s1));
        assert_eq!(out.died_at(s1), Some(ElementId(0)));
        assert_eq!(out.died_at(s0), None);
    }

    #[test]
    fn losing_any_element_kills_the_set() {
        let (inst, [s0, s1, _s2]) = three_set_instance();
        // Give e0 to s1, then abandon it at e2.
        let mut alg = Scripted::new(vec![vec![s1], vec![s0], vec![]]);
        let out = run(&inst, &mut alg).unwrap();
        // s0 lost e0, s1 lost e2, s2 lost e2: nothing completes.
        assert!(out.completed().is_empty());
        assert_eq!(out.benefit(), 0.0);
        assert_eq!(out.died_at(s1), Some(ElementId(2)));
    }

    #[test]
    fn empty_decision_is_legal() {
        let (inst, _) = three_set_instance();
        let mut alg = Scripted::new(vec![vec![], vec![], vec![]]);
        let out = run(&inst, &mut alg).unwrap();
        assert!(out.completed().is_empty());
        assert_eq!(out.decisions().len(), 3);
        assert!(out.decisions().iter().all(|d| d.is_empty()));
    }

    #[test]
    fn decision_log_records_per_arrival_slices() {
        let (inst, [s0, _, s2]) = three_set_instance();
        let mut alg = Scripted::new(vec![vec![s0], vec![], vec![s2]]);
        let out = run(&inst, &mut alg).unwrap();
        let log = out.decisions();
        assert_eq!(log.len(), 3);
        assert!(!log.is_empty());
        assert_eq!(log.get(0), Some(&[s0][..]));
        assert_eq!(log.get(1), Some(&[][..]));
        assert_eq!(log.get(2), Some(&[s2][..]));
        assert_eq!(log.get(3), None);
        assert_eq!(log.total_assignments(), 2);
        let collected: Vec<&[SetId]> = log.iter().collect();
        assert_eq!(collected, vec![&[s0][..], &[][..], &[s2][..]]);
        // IntoIterator for &DecisionLog drives plain `for` loops.
        let mut count = 0;
        for d in log {
            count += d.len();
        }
        assert_eq!(count, 2);
    }

    #[test]
    fn capacity_two_allows_two_assignments() {
        let mut b = InstanceBuilder::new();
        let s0 = b.add_set(1.0, 1);
        let s1 = b.add_set(1.0, 1);
        b.add_element(2, &[s0, s1]);
        let inst = b.build().unwrap();
        let mut alg = Scripted::new(vec![vec![s0, s1]]);
        let out = run(&inst, &mut alg).unwrap();
        assert_eq!(out.completed(), &[s0, s1]);
        assert_eq!(out.benefit(), 2.0);
    }

    #[test]
    fn over_capacity_rejected() {
        let mut b = InstanceBuilder::new();
        let s0 = b.add_set(1.0, 1);
        let s1 = b.add_set(1.0, 1);
        b.add_element(1, &[s0, s1]);
        let inst = b.build().unwrap();
        let mut alg = Scripted::new(vec![vec![s0, s1]]);
        assert!(matches!(
            run(&inst, &mut alg).unwrap_err(),
            Error::DecisionOverCapacity { .. }
        ));
    }

    #[test]
    fn non_member_choice_rejected() {
        let (inst, [_, _, s2]) = three_set_instance();
        let mut alg = Scripted::new(vec![vec![s2], vec![], vec![]]);
        assert!(matches!(
            run(&inst, &mut alg).unwrap_err(),
            Error::DecisionNotMember { .. }
        ));
    }

    #[test]
    fn duplicate_choice_rejected() {
        let mut b = InstanceBuilder::new();
        let s0 = b.add_set(1.0, 1);
        let s1 = b.add_set(1.0, 1);
        b.add_element(2, &[s0, s1]);
        let inst = b.build().unwrap();
        let mut alg = Scripted::new(vec![vec![s0, s0]]);
        assert!(matches!(
            run(&inst, &mut alg).unwrap_err(),
            Error::DecisionDuplicate { .. }
        ));
    }

    #[test]
    fn view_reports_progress_and_death() {
        struct Checker {
            seen: Vec<(u32, bool)>,
        }
        impl OnlineAlgorithm for Checker {
            fn name(&self) -> String {
                "checker".into()
            }
            fn begin(&mut self, _s: &[SetMeta]) {}
            fn decide_into(&mut self, a: &Arrival<'_>, v: &EngineView<'_>, _out: &mut Vec<SetId>) {
                let s0 = SetId(0);
                self.seen.push((v.assigned(s0), v.is_active(s0)));
                // Always refuse everything.
                let _ = a;
            }
        }
        let mut b = InstanceBuilder::new();
        let s0 = b.add_set(1.0, 2);
        b.add_element(1, &[s0]);
        b.add_element(1, &[s0]);
        let inst = b.build().unwrap();
        let mut alg = Checker { seen: vec![] };
        let _ = run(&inst, &mut alg).unwrap();
        // Before e0: 0 assigned, active. Before e1: still 0 assigned, dead.
        assert_eq!(alg.seen, vec![(0, true), (0, false)]);
    }

    #[test]
    fn outcome_on_empty_instance() {
        let inst = InstanceBuilder::new().build().unwrap();
        let mut alg = Scripted::new(vec![]);
        let out = run(&inst, &mut alg).unwrap();
        assert!(out.completed().is_empty());
        assert_eq!(out.benefit(), 0.0);
    }

    #[test]
    fn session_supports_adaptive_use() {
        // Adversary watches the first decision and reacts.
        let metas: Vec<SetMeta> = {
            let mut b = InstanceBuilder::new();
            let s0 = b.add_set(1.0, 1);
            let s1 = b.add_set(1.0, 2);
            b.add_element(1, &[s0, s1]);
            b.add_element(1, &[s1]);
            b.build().unwrap().sets().to_vec()
        };
        let mut alg = Scripted::new(vec![vec![SetId(1)], vec![SetId(1)]]);
        let mut session = Session::new(&metas, &mut alg);
        let a0 = Arrival::new(ElementId(0), 1, &[SetId(0), SetId(1)]);
        let d0 = session.offer(&a0, &mut alg).unwrap();
        assert_eq!(d0, vec![SetId(1)]);
        assert!(!session.is_active(SetId(0)));
        assert_eq!(session.active_sets(), vec![SetId(1)]);
        assert_eq!(session.active_count(), 1);
        assert_eq!(
            session.active_sets_iter().collect::<Vec<_>>(),
            vec![SetId(1)]
        );
        let a1 = Arrival::new(ElementId(1), 1, &[SetId(1)]);
        session.offer(&a1, &mut alg).unwrap();
        assert_eq!(session.assigned(SetId(1)), 2);
        let out = session.finish();
        assert_eq!(out.completed(), &[SetId(1)]);
        assert_eq!(out.benefit(), 1.0);
    }

    #[test]
    fn died_at_foreign_set_id_is_none() {
        // An id minted for a different (larger) instance must not panic.
        let (inst, [s0, _, _]) = three_set_instance();
        let mut alg = Scripted::new(vec![vec![s0], vec![s0], vec![]]);
        let out = run(&inst, &mut alg).unwrap();
        assert_eq!(out.died_at(SetId(999)), None);
        assert_eq!(out.died_at(SetId(3)), None); // one past the end
        assert_eq!(out.died_at(s0), None); // in-range still works
    }

    #[test]
    fn scratch_reuse_is_outcome_identical() {
        let (inst, [s0, _, s2]) = three_set_instance();
        let script = vec![vec![s0], vec![s0], vec![s2]];
        let mut scratch = ReplayScratch::new();
        // Run twice through the same scratch, compare against fresh runs —
        // field by field, covering the recycled died_at and DecisionLog
        // buffers explicitly.
        for _ in 0..2 {
            let fresh = run(&inst, &mut Scripted::new(script.clone())).unwrap();
            let reused =
                run_with_scratch(&inst, &mut Scripted::new(script.clone()), &mut scratch).unwrap();
            assert_eq!(fresh.completed(), reused.completed());
            assert_eq!(fresh.benefit().to_bits(), reused.benefit().to_bits());
            assert_eq!(fresh.decisions(), reused.decisions());
            for i in 0..inst.num_sets() {
                let s = SetId(i as u32);
                assert_eq!(fresh.died_at(s), reused.died_at(s), "died_at({s:?})");
            }
            assert_eq!(fresh, reused);
        }
    }

    #[test]
    fn scratch_reuse_shrinks_to_smaller_followup_job() {
        // A big job then a small one through the same scratch: the recycled
        // died_at / decision-log buffers must resize down correctly and not
        // leak state from the previous job.
        let mut b = InstanceBuilder::new();
        let ids: Vec<SetId> = (0..8).map(|_| b.add_set(1.0, 1)).collect();
        for &s in &ids {
            b.add_element(1, &[s]);
        }
        let big = b.build().unwrap();
        let big_script: Vec<Vec<SetId>> = ids.iter().map(|&s| vec![s]).collect();

        let (small, [s0, _, s2]) = three_set_instance();
        let small_script = vec![vec![s0], vec![s0], vec![s2]];

        let mut scratch = ReplayScratch::new();
        run_with_scratch(&big, &mut Scripted::new(big_script), &mut scratch).unwrap();
        let fresh = run(&small, &mut Scripted::new(small_script.clone())).unwrap();
        let reused =
            run_with_scratch(&small, &mut Scripted::new(small_script), &mut scratch).unwrap();
        assert_eq!(fresh, reused);
        assert_eq!(reused.decisions().len(), 3);
    }

    #[test]
    fn session_incomplete_sets_do_not_count() {
        // A set that stays alive but never receives all elements must not
        // be counted as completed by finish().
        let metas: Vec<SetMeta> = {
            let mut b = InstanceBuilder::new();
            let s = b.add_set(1.0, 2);
            b.add_element(1, &[s]);
            b.add_element(1, &[s]);
            b.build().unwrap().sets().to_vec()
        };
        let mut alg = Scripted::new(vec![vec![SetId(0)]]);
        let mut session = Session::new(&metas, &mut alg);
        let a0 = Arrival::new(ElementId(0), 1, &[SetId(0)]);
        session.offer(&a0, &mut alg).unwrap();
        // Stop early: only 1 of 2 elements delivered.
        let out = session.finish();
        assert!(out.completed().is_empty());
    }
}
