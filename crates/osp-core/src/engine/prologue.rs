//! The parallel table-build prologue: shard an O(m) per-set table across
//! scoped threads before the (sequential) arrival loop starts.
//!
//! `begin()`-time state — `randPr`'s priority table, `hashPr`'s hashed
//! priorities — is one value per set, and every built-in algorithm
//! computes slot `i` as a **pure function of `(seed, i)`**: `hashPr`
//! evaluates a shared polynomial at the set id, and `randPr` draws from a
//! counter-based SplitMix64 stream whose position before set `i` is known
//! without generating (two draws per positive-weight set, none
//! otherwise, plus `StdRng::advance` jump-ahead). That makes the table
//! fill embarrassingly parallel *without* touching the bit-identity
//! contract: any shard count writes exactly the same bytes.
//!
//! [`build_table`] is the one seam both algorithms ride — disjoint
//! contiguous index ranges handed to `std::thread::scope` workers, the
//! same fan-out shape as [`ReplayPool`](super::batch::ReplayPool) uses
//! across jobs. Thread count comes from the `OSP_PROLOGUE_THREADS`
//! variable under the workspace-wide [`env_parallelism`] policy (unset →
//! machine default, `0` → 1, junk → machine default); one thread is
//! exactly the historical serial path (the fill closure runs on the
//! caller's thread over the full range). `tests/batch_equivalence.rs`
//! pins shard counts {1, 2, 8} bit-identical for both algorithms.

use super::batch::env_parallelism;

/// The environment variable sizing the prologue fan-out.
pub const PROLOGUE_THREADS_VAR: &str = "OSP_PROLOGUE_THREADS";

/// The prologue thread count from `OSP_PROLOGUE_THREADS` under the
/// [`env_parallelism`] policy.
pub fn threads_from_env() -> usize {
    env_parallelism(PROLOGUE_THREADS_VAR)
}

/// Builds an `m`-slot table by sharding disjoint contiguous index ranges
/// across `threads` scoped threads.
///
/// `fill(start, slots)` must write every slot of `slots`, where
/// `slots[j]` is table entry `start + j` — and must be a pure function of
/// the entry indices (no shared mutable state), which is what makes the
/// result independent of the shard count. The table is pre-filled with
/// `placeholder` only so the slices exist to hand out; every slot is
/// overwritten.
///
/// `threads <= 1` (or a table too small to split) degenerates to one
/// `fill(0, ..)` call on the caller's thread — the serial path.
pub fn build_table<T, F>(m: usize, placeholder: T, threads: usize, fill: &F) -> Vec<T>
where
    T: Copy + Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let mut table = vec![placeholder; m];
    let threads = threads.max(1).min(m.max(1));
    if threads == 1 {
        fill(0, &mut table);
        return table;
    }
    let chunk = m.div_ceil(threads);
    std::thread::scope(|scope| {
        for (shard, slots) in table.chunks_mut(chunk).enumerate() {
            scope.spawn(move || fill(shard * chunk, slots));
        }
    });
    table
}

/// [`build_table`] with the thread count taken from
/// `OSP_PROLOGUE_THREADS` — what the algorithms' `begin` uses.
pub fn build_table_env<T, F>(m: usize, placeholder: T, fill: &F) -> Vec<T>
where
    T: Copy + Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    build_table(m, placeholder, threads_from_env(), fill)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_slot_is_filled_at_any_thread_count() {
        let fill = |start: usize, slots: &mut [u64]| {
            for (j, slot) in slots.iter_mut().enumerate() {
                *slot = (start + j) as u64 * 3 + 1;
            }
        };
        let want: Vec<u64> = (0..97u64).map(|i| i * 3 + 1).collect();
        for threads in [0usize, 1, 2, 3, 8, 97, 200] {
            assert_eq!(
                build_table(97, 0u64, threads, &fill),
                want,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn empty_table_is_fine() {
        let fill = |_: usize, slots: &mut [u8]| assert!(slots.is_empty());
        assert!(build_table(0, 0u8, 4, &fill).is_empty());
    }

    #[test]
    fn fill_sees_disjoint_contiguous_ranges() {
        // Record the (start, len) of every range a 4-thread build hands
        // out; together they must tile 0..m exactly once.
        use std::sync::Mutex;
        let ranges = Mutex::new(Vec::new());
        let fill = |start: usize, slots: &mut [u32]| {
            ranges.lock().unwrap().push((start, slots.len()));
            slots.fill(1);
        };
        let table = build_table(10, 0u32, 4, &fill);
        assert_eq!(table, vec![1u32; 10]);
        let mut ranges = ranges.into_inner().unwrap();
        ranges.sort_unstable();
        let mut next = 0;
        for (start, len) in ranges {
            assert_eq!(start, next);
            next = start + len;
        }
        assert_eq!(next, 10);
    }
}
