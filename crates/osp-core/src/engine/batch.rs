//! Sharded batch replay: many `(instance × seed × algorithm)` jobs at once.
//!
//! The experiment harness replays the same frozen [`Instance`]s thousands
//! of times under different seeds and algorithms. [`ReplayPool`] fans such
//! a work-list across `std::thread` shards while keeping the results
//! **bit-identical to sequential replay**:
//!
//! * every job's seed is fixed *before* fan-out (either by the caller or
//!   via [`derive_seed`]'s O(1) SplitMix64 stream access), so no job's
//!   randomness depends on which shard runs it or in which order;
//! * every shard executes the one and only engine implementation
//!   ([`Session`](super::Session), via [`run_with_scratch`]) — there is
//!   no second "parallel" code path to drift;
//! * results are returned in job order regardless of shard interleaving.
//!
//! Each shard owns a [`ReplayScratch`], so consecutive jobs on a shard
//! reuse the engine's bookkeeping buffers and the per-arrival hot path
//! performs no allocations of its own.
//!
//! The `tests/batch_equivalence.rs` conformance suite in the workspace
//! root pins the bit-identical claim for every built-in algorithm at shard
//! counts 1, 2 and 8.

use crate::algorithm::OnlineAlgorithm;
use crate::error::Error;
use crate::ids::ElementId;
use crate::instance::{Instance, SetMeta};
use crate::source::ArrivalSource;
use crate::spec::{run_spec_with_scratch, JobSpec, SpecResolver};

use super::{run_source_with_scratch, run_with_scratch, DecisionLog, Outcome};

/// Reusable engine buffers for one replay shard.
///
/// Holds the per-set bookkeeping (`assigned`, `alive`, `died_at`), the
/// in-flight [`DecisionLog`] arena, the algorithm's decision buffer and the
/// decision validation scratch;
/// [`Session::with_scratch`](super::Session::with_scratch) borrows them for
/// a run and [`Session::finish_into`](super::Session::finish_into) hands
/// them back. With every per-arrival buffer recycled here, a warm shard
/// performs zero heap allocations per arrival.
#[derive(Debug, Default)]
pub struct ReplayScratch {
    pub(super) assigned: Vec<u32>,
    pub(super) alive: Vec<bool>,
    pub(super) died_at: Vec<Option<ElementId>>,
    pub(super) decisions: DecisionLog,
    pub(super) decision_buf: Vec<crate::SetId>,
    pub(super) sorted: Vec<crate::SetId>,
    /// Per-job copy of a source's set metadata
    /// ([`run_source_with_scratch`](super::run_source_with_scratch) fills
    /// it so the source stays free for mutable pulls).
    pub(super) set_metas: Vec<SetMeta>,
}

impl ReplayScratch {
    /// Creates empty scratch buffers (they grow to instance size on first
    /// use and are reused afterwards).
    pub fn new() -> Self {
        ReplayScratch::default()
    }
}

/// The SplitMix64 golden-gamma increment (also used by the vendored
/// `StdRng` seeding and `osp_stats::SeedSequence`).
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 finalizer: the same pre-mix `StdRng::seed_from_u64` applies.
#[inline]
fn splitmix_finalize(state: u64) -> u64 {
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The machine default: `std::thread::available_parallelism`, 1 if the
/// platform cannot say.
fn machine_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The one environment-sizing policy every thread-count variable in the
/// workspace routes through — `OSP_REPLAY_SHARDS`
/// ([`ReplayPool::from_env`]), `OSP_WORKERS` (the process pool's worker
/// count), `OSP_PROLOGUE_THREADS`
/// ([`prologue::threads_from_env`](super::prologue::threads_from_env))
/// and `OSP_REPLAY_THREADS`
/// ([`parallel::threads_from_env`](super::parallel::threads_from_env)).
/// Reads the named variable and applies, deterministically,
///
/// * unset / empty / non-numeric / out-of-range → the machine default
///   (`available_parallelism`, 1 if unknown) — malformed values are
///   *rejected*, never partially honored;
/// * `0` → clamped to 1 (a zero-lane pool cannot make progress);
/// * any other number → used as-is (whitespace tolerated).
///
/// The clamp/junk/zero policy is pinned by the `parse_parallelism` unit
/// tests below; call sites must not re-implement it.
pub fn env_parallelism(var: &str) -> usize {
    parse_parallelism(std::env::var(var).ok().as_deref(), machine_parallelism())
}

/// Pure core of [`env_parallelism`]: `value` is the raw variable content
/// (or `None` if unset), `fallback` the machine default.
fn parse_parallelism(value: Option<&str>, fallback: usize) -> usize {
    match value.map(str::trim).map(str::parse::<usize>) {
        Some(Ok(0)) => 1,
        Some(Ok(n)) => n,
        Some(Err(_)) | None => fallback.max(1),
    }
}

/// Derives the seed of job `index` from a `root` seed in O(1).
///
/// This is random access into the SplitMix64 stream rooted at `root`:
/// `derive_seed(root, i)` equals the `(i+1)`-th output of
/// `osp_stats::SeedSequence::new(root)` (the workspace's sequential seed
/// fan-out), so batch work-lists and sequential trial loops can share one
/// seed universe. Crucially the value depends only on `(root, index)` —
/// never on shard count or scheduling.
pub fn derive_seed(root: u64, index: u64) -> u64 {
    splitmix_finalize(root.wrapping_add(GOLDEN_GAMMA.wrapping_mul(index.wrapping_add(1))))
}

/// One replay job: which instance to replay, which algorithm family
/// (an index the caller's factory interprets), and the seed for the
/// algorithm's randomness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayJob<'a> {
    /// The frozen instance to replay.
    pub instance: &'a Instance,
    /// Caller-defined algorithm selector, passed through to the factory.
    pub algorithm: usize,
    /// Seed handed to the factory (ignore it for deterministic algorithms).
    pub seed: u64,
}

/// One streamed replay job: which arrival source to build (a selector the
/// caller's source factory interprets), which algorithm family, and the
/// seed handed to both factories.
///
/// Unlike [`ReplayJob`] there is no borrowed instance here: each shard
/// *rebuilds* its jobs' sources locally from `(source, seed)`, which is
/// what lets streamed jobs fan out without materializing anything — the
/// [`ArrivalSource`] determinism contract (same construction inputs ⇒ same
/// stream) guarantees the rebuilt stream is the one the caller meant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceJob {
    /// Caller-defined source selector, passed through to the source
    /// factory.
    pub source: usize,
    /// Caller-defined algorithm selector, passed through to the algorithm
    /// factory.
    pub algorithm: usize,
    /// Seed handed to both factories (derive per-job values with
    /// [`derive_seed`]; ignore it for deterministic jobs).
    pub seed: u64,
}

/// A sharded replay pool.
///
/// # Examples
///
/// ```
/// use osp_core::prelude::*;
/// use osp_core::engine::batch::{derive_seed, ReplayJob, ReplayPool};
///
/// let mut b = InstanceBuilder::new();
/// let s = b.add_set(1.0, 1);
/// b.add_element(1, &[s]);
/// let inst = b.build()?;
///
/// let pool = ReplayPool::new(2);
/// let jobs: Vec<ReplayJob> = (0..8)
///     .map(|i| ReplayJob { instance: &inst, algorithm: 0, seed: derive_seed(7, i) })
///     .collect();
/// let outcomes = pool.run_jobs(&jobs, &|_, seed| Box::new(RandPr::from_seed(seed)));
/// assert!(outcomes.iter().all(|o| o.as_ref().unwrap().benefit() == 1.0));
/// # Ok::<(), osp_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct ReplayPool {
    shards: usize,
}

impl ReplayPool {
    /// Creates a pool with the given shard (thread) count; zero is treated
    /// as one.
    pub fn new(shards: usize) -> Self {
        ReplayPool {
            shards: shards.max(1),
        }
    }

    /// A pool sized to the machine: the `OSP_REPLAY_SHARDS` environment
    /// variable if set, otherwise `std::thread::available_parallelism`,
    /// under the [`env_parallelism`] hardening policy (`0` clamps to 1,
    /// non-numeric values fall back to the machine default).
    pub fn from_env() -> Self {
        ReplayPool::new(env_parallelism("OSP_REPLAY_SHARDS"))
    }

    /// Number of shards this pool fans work across.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The one sharding kernel both public entry points ride: splits
    /// `items` into contiguous chunks (one per shard), gives every shard
    /// its own state from `init`, applies `f` to each item, and returns
    /// the results **in item order** regardless of which shard computed
    /// what. With one shard (or one item) it degenerates to a plain
    /// sequential loop on the caller's thread.
    fn shard_map<T, S, R, I, F>(&self, items: &[T], init: I, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &T) -> R + Sync,
    {
        if self.shards == 1 || items.len() <= 1 {
            let mut state = init();
            return items
                .iter()
                .enumerate()
                .map(|(i, t)| f(&mut state, i, t))
                .collect();
        }
        let chunk = items.len().div_ceil(self.shards);
        let mut results: Vec<Vec<R>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .enumerate()
                .map(|(shard, slice)| {
                    let f = &f;
                    let init = &init;
                    let base = shard * chunk;
                    scope.spawn(move || {
                        let mut state = init();
                        slice
                            .iter()
                            .enumerate()
                            .map(|(j, t)| f(&mut state, base + j, t))
                            .collect::<Vec<R>>()
                    })
                })
                .collect();
            results = handles
                .into_iter()
                .map(|h| h.join().expect("replay shard panicked"))
                .collect();
        });
        results.into_iter().flatten().collect()
    }

    /// Deterministic parallel map: applies `f` to every item and returns
    /// the results **in item order**, regardless of which shard computed
    /// what. `f` receives the item's index alongside the item, so callers
    /// can derive per-item seeds without any shared mutable state.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.shard_map(items, || (), |(), i, t| f(i, t))
    }

    /// Replays every job and returns the outcomes in job order.
    ///
    /// `factory(algorithm, seed)` constructs the job's algorithm *inside
    /// the shard that runs it*; each shard reuses one [`ReplayScratch`]
    /// across its jobs. A job whose algorithm emits an invalid decision
    /// yields that job's `Err` without disturbing the others.
    pub fn run_jobs<F>(&self, jobs: &[ReplayJob<'_>], factory: &F) -> Vec<Result<Outcome, Error>>
    where
        F: Fn(usize, u64) -> Box<dyn OnlineAlgorithm> + Sync,
    {
        self.shard_map(jobs, ReplayScratch::new, |scratch, _, job| {
            let mut alg = factory(job.algorithm, job.seed);
            run_with_scratch(job.instance, alg.as_mut(), scratch)
        })
    }

    /// The streamed lane: replays every [`SourceJob`] and returns the
    /// outcomes in job order, bit-identical to sequential
    /// [`run_source`](super::run_source) on the same jobs.
    ///
    /// `sources(selector, seed)` and `algorithms(selector, seed)` construct
    /// the job's arrival source and algorithm *inside the shard that runs
    /// it* — nothing about the stream depends on shard count or
    /// scheduling, because every job's seed is fixed before fan-out (the
    /// same [`derive_seed`] discipline as [`run_jobs`](Self::run_jobs))
    /// and sources are deterministic in their construction inputs. Each
    /// shard reuses one [`ReplayScratch`] across its jobs.
    ///
    /// # Examples
    ///
    /// ```
    /// use osp_core::gen::UniformSource;
    /// use osp_core::gen::RandomInstanceConfig;
    /// use osp_core::prelude::*;
    /// use osp_core::engine::batch::SourceJob;
    ///
    /// let cfg = RandomInstanceConfig::unweighted(20, 50, 3);
    /// let jobs: Vec<SourceJob> = (0..8)
    ///     .map(|i| SourceJob { source: 0, algorithm: 0, seed: derive_seed(7, i) })
    ///     .collect();
    /// let outcomes = ReplayPool::new(2).run_sources(
    ///     &jobs,
    ///     &|_, seed| Box::new(UniformSource::new(&cfg, seed).unwrap()),
    ///     &|_, seed| Box::new(RandPr::from_seed(seed)),
    /// );
    /// assert_eq!(outcomes.len(), 8);
    /// assert!(outcomes.iter().all(|o| o.is_ok()));
    /// ```
    pub fn run_sources<'a, SF, AF>(
        &self,
        jobs: &[SourceJob],
        sources: &SF,
        algorithms: &AF,
    ) -> Vec<Result<Outcome, Error>>
    where
        SF: Fn(usize, u64) -> Box<dyn ArrivalSource + 'a> + Sync,
        AF: Fn(usize, u64) -> Box<dyn OnlineAlgorithm> + Sync,
    {
        self.shard_map(jobs, ReplayScratch::new, |scratch, _, job| {
            let mut source = sources(job.source, job.seed);
            let mut alg = algorithms(job.algorithm, job.seed);
            run_source_with_scratch(&mut source, alg.as_mut(), scratch)
        })
    }

    /// The composed lane: batch fan-out × intra-replay parallelism. Every
    /// [`SourceJob`] replays through the pipelined session
    /// ([`run_source_parallel_with`](super::parallel::run_source_parallel_with))
    /// with `config` threads, while this pool still shards the *job list*
    /// — `OSP_REPLAY_SHARDS` jobs in flight, each overlapping its arrival
    /// generation with its decision loop on `OSP_REPLAY_THREADS` threads.
    /// Outcomes are bit-identical to [`run_sources`](Self::run_sources)
    /// (and therefore to sequential [`run_source`](super::run_source)) at
    /// every shard × thread combination, because both axes preserve the
    /// bit-identity contract independently.
    ///
    /// Sources must be `Send`: each job's source crosses into that job's
    /// producer thread.
    pub fn run_sources_pipelined<'a, SF, AF>(
        &self,
        jobs: &[SourceJob],
        sources: &SF,
        algorithms: &AF,
        config: &super::parallel::ParallelConfig,
    ) -> Vec<Result<Outcome, Error>>
    where
        SF: Fn(usize, u64) -> Box<dyn ArrivalSource + Send + 'a> + Sync,
        AF: Fn(usize, u64) -> Box<dyn OnlineAlgorithm> + Sync,
    {
        self.shard_map(jobs, ReplayScratch::new, |scratch, _, job| {
            let mut source = sources(job.source, job.seed);
            let mut alg = algorithms(job.algorithm, job.seed);
            super::parallel::run_source_parallel_with(&mut source, alg.as_mut(), config, scratch)
        })
    }

    /// The data-driven lane: replays every [`JobSpec`] through `resolver`
    /// and returns the outcomes in job order — the thread-backed twin of
    /// the process pool
    /// ([`ProcessPool`](super::dispatch::ProcessPool)), sharing the same
    /// seed and ordering contract: seeds are fixed in the specs before
    /// fan-out, shards resolve their jobs locally, results come back in
    /// submission order. `tests/process_pool_conformance.rs` pins all
    /// three lanes (sequential [`run_spec`](crate::spec::run_spec), this
    /// one, processes) bit-identical.
    pub fn run_specs<R>(&self, jobs: &[JobSpec], resolver: &R) -> Vec<Result<Outcome, Error>>
    where
        R: SpecResolver + Sync,
    {
        self.shard_map(jobs, ReplayScratch::new, |scratch, _, job| {
            run_spec_with_scratch(job, resolver, scratch)
        })
    }

    /// Convenience for the common one-source-family/one-algorithm case:
    /// builds one source per seed and replays each, returning the outcomes
    /// in seed order.
    ///
    /// # Panics
    ///
    /// Panics if the algorithm emits an invalid decision (the built-in
    /// algorithms never do); use [`run_sources`](Self::run_sources) to
    /// observe per-job errors instead.
    pub fn run_source_seeds<'a, SF, AF>(
        &self,
        seeds: &[u64],
        source: &SF,
        algorithm: &AF,
    ) -> Vec<Outcome>
    where
        SF: Fn(u64) -> Box<dyn ArrivalSource + 'a> + Sync,
        AF: Fn(u64) -> Box<dyn OnlineAlgorithm> + Sync,
    {
        let jobs: Vec<SourceJob> = seeds
            .iter()
            .map(|&seed| SourceJob {
                source: 0,
                algorithm: 0,
                seed,
            })
            .collect();
        self.run_sources(&jobs, &|_, seed| source(seed), &|_, seed| algorithm(seed))
            .into_iter()
            .map(|r| r.expect("batch algorithm emitted an invalid decision"))
            .collect()
    }

    /// Convenience for the common one-instance/one-algorithm case: replays
    /// `instance` once per seed and returns the outcomes in seed order.
    ///
    /// # Panics
    ///
    /// Panics if the algorithm emits an invalid decision (the built-in
    /// algorithms never do); use [`run_jobs`](Self::run_jobs) to observe
    /// per-job errors instead.
    pub fn run_seeds<F>(&self, instance: &Instance, seeds: &[u64], factory: &F) -> Vec<Outcome>
    where
        F: Fn(u64) -> Box<dyn OnlineAlgorithm> + Sync,
    {
        let jobs: Vec<ReplayJob<'_>> = seeds
            .iter()
            .map(|&seed| ReplayJob {
                instance,
                algorithm: 0,
                seed,
            })
            .collect();
        self.run_jobs(&jobs, &|_, seed| factory(seed))
            .into_iter()
            .map(|r| r.expect("batch algorithm emitted an invalid decision"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{GreedyOnline, RandPr, TieBreak};
    use crate::engine::run;
    use crate::gen::{random_instance, RandomInstanceConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workload() -> Instance {
        let mut rng = StdRng::seed_from_u64(5);
        random_instance(&RandomInstanceConfig::unweighted(30, 80, 4), &mut rng).unwrap()
    }

    #[test]
    fn derive_seed_matches_sequential_splitmix_stream() {
        // Reimplementation of SeedSequence's sequential walk.
        let root = 1234u64;
        let mut state = root;
        for i in 0..20u64 {
            state = state.wrapping_add(GOLDEN_GAMMA);
            assert_eq!(derive_seed(root, i), splitmix_finalize(state), "index {i}");
        }
    }

    #[test]
    fn derive_seed_is_index_stable() {
        assert_eq!(derive_seed(9, 3), derive_seed(9, 3));
        assert_ne!(derive_seed(9, 3), derive_seed(9, 4));
        assert_ne!(derive_seed(9, 3), derive_seed(10, 3));
    }

    #[test]
    fn pool_matches_sequential_for_every_shard_count() {
        let inst = workload();
        let seeds: Vec<u64> = (0..17).map(|i| derive_seed(42, i)).collect();
        let sequential: Vec<Outcome> = seeds
            .iter()
            .map(|&s| run(&inst, &mut RandPr::from_seed(s)).unwrap())
            .collect();
        for shards in [1usize, 2, 3, 8, 32] {
            let pool = ReplayPool::new(shards);
            let batch = pool.run_seeds(&inst, &seeds, &|s| Box::new(RandPr::from_seed(s)));
            assert_eq!(batch, sequential, "shards={shards}");
        }
    }

    #[test]
    fn jobs_can_mix_instances_and_algorithms() {
        let a = workload();
        let b = {
            let mut rng = StdRng::seed_from_u64(6);
            random_instance(&RandomInstanceConfig::unweighted(10, 25, 3), &mut rng).unwrap()
        };
        let jobs = vec![
            ReplayJob {
                instance: &a,
                algorithm: 0,
                seed: 1,
            },
            ReplayJob {
                instance: &b,
                algorithm: 1,
                seed: 0,
            },
            ReplayJob {
                instance: &a,
                algorithm: 1,
                seed: 0,
            },
            ReplayJob {
                instance: &b,
                algorithm: 0,
                seed: 2,
            },
        ];
        let factory = |alg: usize, seed: u64| -> Box<dyn OnlineAlgorithm> {
            match alg {
                0 => Box::new(RandPr::from_seed(seed)),
                _ => Box::new(GreedyOnline::new(TieBreak::ByWeight)),
            }
        };
        let pooled = ReplayPool::new(3).run_jobs(&jobs, &factory);
        for (job, got) in jobs.iter().zip(&pooled) {
            let mut alg = factory(job.algorithm, job.seed);
            let want = run(job.instance, alg.as_mut()).unwrap();
            assert_eq!(got.as_ref().unwrap(), &want);
        }
    }

    #[test]
    fn map_preserves_item_order() {
        let items: Vec<u64> = (0..100).collect();
        for shards in [1usize, 2, 7, 16] {
            let out = ReplayPool::new(shards).map(&items, |i, &x| (i as u64) * 1000 + x);
            let want: Vec<u64> = (0..100).map(|i| i * 1000 + i).collect();
            assert_eq!(out, want, "shards={shards}");
        }
    }

    #[test]
    fn zero_shards_is_one() {
        assert_eq!(ReplayPool::new(0).shards(), 1);
    }

    #[test]
    fn parallelism_policy_is_deterministic() {
        // Unset → machine default (clamped to at least 1).
        assert_eq!(parse_parallelism(None, 8), 8);
        assert_eq!(parse_parallelism(None, 0), 1);
        // Zero → clamped to one lane, not the machine default.
        assert_eq!(parse_parallelism(Some("0"), 8), 1);
        // Honest numbers pass through, whitespace tolerated.
        assert_eq!(parse_parallelism(Some("3"), 8), 3);
        assert_eq!(parse_parallelism(Some(" 4 "), 8), 4);
        // Non-numeric / empty / negative / overflowing → rejected,
        // deterministically back to the machine default.
        for junk in [
            "",
            "  ",
            "abc",
            "-1",
            "3.5",
            "1e3",
            "99999999999999999999999",
        ] {
            assert_eq!(parse_parallelism(Some(junk), 8), 8, "input {junk:?}");
        }
    }

    #[test]
    fn env_parallelism_of_an_unset_variable_is_the_machine_default() {
        // The full policy is pinned on the pure parse_parallelism above;
        // here only the unset lookup path is exercised. Tests must not
        // call set_var: libtest runs threads concurrently, and mutating
        // the process environment while another thread reads it is a
        // getenv/setenv data race.
        assert_eq!(
            env_parallelism("OSP_TEST_VARIABLE_THAT_IS_NEVER_SET"),
            machine_parallelism().max(1)
        );
    }

    #[test]
    fn run_specs_matches_sequential_run_spec() {
        use crate::gen::RandomInstanceConfig;
        use crate::spec::{run_spec, AlgorithmSpec, CoreResolver, JobSpec, ScenarioSpec};
        let jobs: Vec<JobSpec> = (0..9)
            .map(|i| JobSpec {
                scenario: ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(20, 50, 3)),
                algorithm: AlgorithmSpec::RandPr,
                seed: derive_seed(11, i),
            })
            .collect();
        let sequential: Vec<Outcome> = jobs
            .iter()
            .map(|j| run_spec(j, &CoreResolver).unwrap())
            .collect();
        for shards in [1usize, 2, 4] {
            let pooled = ReplayPool::new(shards).run_specs(&jobs, &CoreResolver);
            let pooled: Vec<Outcome> = pooled.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(pooled, sequential, "shards={shards}");
        }
    }

    #[test]
    fn empty_job_list_is_empty_result() {
        let pool = ReplayPool::new(4);
        assert!(pool
            .run_jobs(&[], &|_, s| Box::new(RandPr::from_seed(s)))
            .is_empty());
        let empty: [u8; 0] = [];
        assert!(pool.map(&empty, |_, &x| x).is_empty());
    }

    #[test]
    fn invalid_decisions_fail_only_their_job() {
        use crate::algorithms::OracleOnline;
        let mut b = crate::InstanceBuilder::new();
        let s0 = b.add_set(1.0, 1);
        let s1 = b.add_set(1.0, 1);
        b.add_element(1, &[s0, s1]);
        let inst = b.build().unwrap();
        let jobs = vec![
            ReplayJob {
                instance: &inst,
                algorithm: 0, // feasible: pick s0 only
                seed: 0,
            },
            ReplayJob {
                instance: &inst,
                algorithm: 1, // infeasible: oracle wants both, capacity 1
                seed: 0,
            },
        ];
        let out = ReplayPool::new(2).run_jobs(&jobs, &|alg, _| match alg {
            0 => Box::new(OracleOnline::new(vec![s0])),
            _ => Box::new(OracleOnline::new(vec![s0, s1])),
        });
        assert!(out[0].is_ok());
        assert!(matches!(out[1], Err(Error::DecisionOverCapacity { .. })));
    }
}
