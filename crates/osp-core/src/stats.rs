//! Instance statistics: every quantity the paper's bounds are expressed in.
//!
//! Notation recap (§2): for element `u`, the *load* `σ(u) = |C(u)|` and the
//! *weighted load* `σ$(u) = w(C(u))`; for variable capacities, the
//! *adjusted load* `ν(u) = σ(u)/b(u)` (Definition 1). Over-bars denote
//! averages over elements; `σ·σ$` is the average of the per-element
//! *product* `σ(u)·σ$(u)` — computing that correctly (not as a product of
//! averages) is what makes Theorem 1's refined bound tick.

use crate::instance::Instance;

/// All the aggregate quantities the theorems reference, computed in one
/// pass over an [`Instance`].
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceStats {
    /// Number of elements `n`.
    pub n: usize,
    /// Number of sets `m`.
    pub m: usize,
    /// Maximum set size `k_max`.
    pub k_max: u32,
    /// Average set size `k̄ = Σ|S| / m`.
    pub k_mean: f64,
    /// Maximum element load `σ_max`.
    pub sigma_max: u32,
    /// Average element load `σ̄`.
    pub sigma_mean: f64,
    /// Average squared load `σ²` (i.e. `Σσ(u)²/n`).
    pub sigma_sq_mean: f64,
    /// Average weighted load `σ$̄ = Σ_u w(C(u)) / n`.
    pub sigma_w_mean: f64,
    /// Average load-times-weighted-load `σ·σ$ = Σ_u σ(u)·σ$(u) / n`.
    pub sigma_sigma_w_mean: f64,
    /// Maximum adjusted load `ν_max = max_u σ(u)/b(u)`.
    pub nu_max: f64,
    /// Average adjusted-load-times-weighted-load `ν·σ$`.
    pub nu_sigma_w_mean: f64,
    /// Maximum element capacity `b_max`.
    pub b_max: u32,
    /// Total set weight `w(C)`.
    pub total_weight: f64,
    /// `Some(k)` iff every set has size exactly `k`.
    pub uniform_size: Option<u32>,
    /// `Some(σ)` iff every element has load exactly `σ`.
    pub uniform_load: Option<u32>,
    /// Whether every element has capacity 1.
    pub unit_capacity: bool,
    /// Whether every set has weight 1.
    pub unweighted: bool,
}

impl InstanceStats {
    /// Computes the statistics of `instance`.
    ///
    /// Empty instances yield zeros (and `None` uniformity witnesses);
    /// callers evaluating bounds should check [`InstanceStats::n`] first.
    pub fn compute(instance: &Instance) -> Self {
        let n = instance.num_elements();
        let m = instance.num_sets();

        let mut k_max = 0u32;
        let mut size_sum = 0u64;
        let mut uniform_size = None;
        let mut uniform_size_ok = true;
        for s in instance.sets() {
            k_max = k_max.max(s.size());
            size_sum += u64::from(s.size());
            match uniform_size {
                None => uniform_size = Some(s.size()),
                Some(k) if k != s.size() => uniform_size_ok = false,
                _ => {}
            }
        }
        if !uniform_size_ok {
            uniform_size = None;
        }

        let mut sigma_max = 0u32;
        let mut sigma_sum = 0f64;
        let mut sigma_sq_sum = 0f64;
        let mut sigma_w_sum = 0f64;
        let mut sigma_sigma_w_sum = 0f64;
        let mut nu_max = 0f64;
        let mut nu_sigma_w_sum = 0f64;
        let mut b_max = 0u32;
        let mut uniform_load = None;
        let mut uniform_load_ok = true;
        for a in instance.arrivals() {
            let sigma = a.load();
            let sigma_w: f64 = a.members().iter().map(|&s| instance.set(s).weight()).sum();
            let nu = f64::from(sigma) / f64::from(a.capacity());
            sigma_max = sigma_max.max(sigma);
            sigma_sum += f64::from(sigma);
            sigma_sq_sum += f64::from(sigma) * f64::from(sigma);
            sigma_w_sum += sigma_w;
            sigma_sigma_w_sum += f64::from(sigma) * sigma_w;
            nu_max = nu_max.max(nu);
            nu_sigma_w_sum += nu * sigma_w;
            b_max = b_max.max(a.capacity());
            match uniform_load {
                None => uniform_load = Some(sigma),
                Some(s) if s != sigma => uniform_load_ok = false,
                _ => {}
            }
        }
        if !uniform_load_ok {
            uniform_load = None;
        }

        let nf = if n == 0 { 1.0 } else { n as f64 };
        InstanceStats {
            n,
            m,
            k_max,
            k_mean: if m == 0 {
                0.0
            } else {
                size_sum as f64 / m as f64
            },
            sigma_max,
            sigma_mean: sigma_sum / nf,
            sigma_sq_mean: sigma_sq_sum / nf,
            sigma_w_mean: sigma_w_sum / nf,
            sigma_sigma_w_mean: sigma_sigma_w_sum / nf,
            nu_max,
            nu_sigma_w_mean: nu_sigma_w_sum / nf,
            b_max,
            total_weight: instance.total_weight(),
            uniform_size,
            uniform_load,
            unit_capacity: instance.is_unit_capacity(),
            unweighted: instance.is_unweighted(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;

    fn sample_instance() -> Instance {
        // s0: w=1, {e0,e1}; s1: w=2, {e0}; s2: w=4, {e1}
        let mut b = InstanceBuilder::new();
        let s0 = b.add_set(1.0, 2);
        let s1 = b.add_set(2.0, 1);
        let s2 = b.add_set(4.0, 1);
        b.add_element(1, &[s0, s1]);
        b.add_element(2, &[s0, s2]);
        b.build().unwrap()
    }

    #[test]
    fn basic_counts() {
        let st = InstanceStats::compute(&sample_instance());
        assert_eq!(st.n, 2);
        assert_eq!(st.m, 3);
        assert_eq!(st.k_max, 2);
        assert!((st.k_mean - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(st.sigma_max, 2);
        assert_eq!(st.sigma_mean, 2.0);
        assert_eq!(st.sigma_sq_mean, 4.0);
        assert_eq!(st.total_weight, 7.0);
        assert_eq!(st.b_max, 2);
        assert!(!st.unit_capacity);
        assert!(!st.unweighted);
    }

    #[test]
    fn weighted_loads() {
        let st = InstanceStats::compute(&sample_instance());
        // σ$(e0) = 1 + 2 = 3, σ$(e1) = 1 + 4 = 5
        assert_eq!(st.sigma_w_mean, 4.0);
        // σ·σ$: 2*3 = 6, 2*5 = 10 -> mean 8
        assert_eq!(st.sigma_sigma_w_mean, 8.0);
        // ν: e0 = 2/1 = 2, e1 = 2/2 = 1
        assert_eq!(st.nu_max, 2.0);
        // ν·σ$: 2*3 = 6, 1*5 = 5 -> mean 5.5
        assert_eq!(st.nu_sigma_w_mean, 5.5);
    }

    #[test]
    fn uniformity_witnesses() {
        let st = InstanceStats::compute(&sample_instance());
        assert_eq!(st.uniform_size, None); // sizes 2,1,1
        assert_eq!(st.uniform_load, Some(2));

        let mut b = InstanceBuilder::new();
        let s0 = b.add_set(1.0, 1);
        let s1 = b.add_set(1.0, 1);
        b.add_element(1, &[s0]);
        b.add_element(1, &[s1]);
        let st = InstanceStats::compute(&b.build().unwrap());
        assert_eq!(st.uniform_size, Some(1));
        assert_eq!(st.uniform_load, Some(1));
        assert!(st.unit_capacity);
        assert!(st.unweighted);
    }

    #[test]
    fn empty_instance() {
        let st = InstanceStats::compute(&InstanceBuilder::new().build().unwrap());
        assert_eq!(st.n, 0);
        assert_eq!(st.m, 0);
        assert_eq!(st.sigma_mean, 0.0);
        assert_eq!(st.uniform_size, None);
    }

    #[test]
    fn eq_4_identity_holds() {
        // n·σ$̄ = Σ_S |S|·w(S) (Eq. (4) of the paper, as an identity).
        let inst = sample_instance();
        let st = InstanceStats::compute(&inst);
        let rhs: f64 = inst
            .sets()
            .iter()
            .map(|s| f64::from(s.size()) * s.weight())
            .sum();
        assert!((st.n as f64 * st.sigma_w_mean - rhs).abs() < 1e-12);
    }

    #[test]
    fn mk_equals_n_sigma_identity() {
        // m·k̄ = n·σ̄ always (both count incidences).
        let inst = sample_instance();
        let st = InstanceStats::compute(&inst);
        assert!((st.m as f64 * st.k_mean - st.n as f64 * st.sigma_mean).abs() < 1e-9);
    }
}
