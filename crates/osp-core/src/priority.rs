//! The priority distribution `R_w` of Eq. (2) and a total-order priority
//! type.
//!
//! `randPr` draws for each set `S` a priority `r(S)` distributed according
//! to `R_{w(S)}`, where `Pr[X < x] = x^w` for `x ∈ [0, 1]`. `R_1` is the
//! uniform distribution on the unit interval and, for natural `w`, `R_w` is
//! the distribution of the maximum of `w` i.i.d. uniforms — so heavier sets
//! get stochastically larger priorities, which is exactly what makes
//! Lemma 1 (`Pr[S wins] = w(S)/w(N[S])`) come out.

use std::cmp::Ordering;

use rand::Rng;

/// The distribution `R_w` with CDF `F(x) = x^w` on `[0, 1]`.
///
/// # Examples
///
/// ```
/// use osp_core::priority::Rw;
///
/// let r = Rw::new(2.0)?;
/// assert!((r.cdf(0.5) - 0.25).abs() < 1e-12);
/// assert_eq!(r.quantile(0.25), 0.5);
/// # Ok::<(), osp_core::priority::RwError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rw {
    weight: f64,
}

/// Error constructing an [`Rw`] distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RwError;

impl std::fmt::Display for RwError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "R_w weight must be positive and finite")
    }
}

impl std::error::Error for RwError {}

impl Rw {
    /// Creates `R_w` for weight `w`.
    ///
    /// # Errors
    ///
    /// Returns [`RwError`] unless `w` is positive and finite. (Weight-zero
    /// sets are handled by the algorithms directly: they receive priority
    /// 0, the almost-sure limit of `R_w` as `w → 0`.)
    pub fn new(weight: f64) -> Result<Self, RwError> {
        if weight.is_finite() && weight > 0.0 {
            Ok(Rw { weight })
        } else {
            Err(RwError)
        }
    }

    /// The weight parameter `w`.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// CDF `Pr[X < x] = x^w`, clamped outside `[0, 1]`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else if x >= 1.0 {
            1.0
        } else {
            x.powf(self.weight)
        }
    }

    /// Quantile function (inverse CDF): `F^{-1}(u) = u^(1/w)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `u ∉ [0, 1]`.
    pub fn quantile(&self, u: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&u));
        u.powf(1.0 / self.weight)
    }

    /// Samples a priority by inverse transform of a uniform draw.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.quantile(rng.gen::<f64>())
    }

    /// Deterministically transforms an externally supplied uniform value
    /// (e.g. a hash output in `[0,1)`) into an `R_w` sample — the distributed
    /// implementation path of §3.1.
    pub fn from_uniform(&self, u: f64) -> f64 {
        self.quantile(u.clamp(0.0, 1.0))
    }
}

/// A totally ordered priority: the `R_w` value plus a tiebreak token.
///
/// Ties in the continuous value have probability zero in theory, but f64
/// rounding can produce them in practice; the tiebreak keeps comparisons
/// deterministic and total. Values are finite by construction, so the
/// `Ord` implementation never sees NaN.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Priority {
    value: f64,
    tiebreak: u64,
}

impl Priority {
    /// Creates a priority.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN or infinite.
    pub fn new(value: f64, tiebreak: u64) -> Self {
        assert!(value.is_finite(), "priority value must be finite");
        Priority { value, tiebreak }
    }

    /// The minimum possible priority (used for weight-zero sets).
    pub fn zero() -> Self {
        Priority {
            value: 0.0,
            tiebreak: 0,
        }
    }

    /// The underlying `R_w` sample.
    pub fn value(&self) -> f64 {
        self.value
    }
}

impl Eq for Priority {}

impl PartialOrd for Priority {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Priority {
    fn cmp(&self, other: &Self) -> Ordering {
        // value is finite, so partial_cmp never fails.
        self.value
            .partial_cmp(&other.value)
            .expect("priority values are finite")
            .then(self.tiebreak.cmp(&other.tiebreak))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_weights() {
        assert!(Rw::new(0.0).is_err());
        assert!(Rw::new(-1.0).is_err());
        assert!(Rw::new(f64::NAN).is_err());
        assert!(Rw::new(f64::INFINITY).is_err());
        assert!(Rw::new(1e-9).is_ok());
    }

    #[test]
    fn cdf_quantile_round_trip() {
        let r = Rw::new(3.7).unwrap();
        for u in [0.0, 0.1, 0.33, 0.5, 0.9, 1.0] {
            let x = r.quantile(u);
            assert!((r.cdf(x) - u).abs() < 1e-12, "u={u}");
        }
    }

    #[test]
    fn cdf_clamps() {
        let r = Rw::new(2.0).unwrap();
        assert_eq!(r.cdf(-0.5), 0.0);
        assert_eq!(r.cdf(1.5), 1.0);
    }

    #[test]
    fn r1_is_uniform() {
        let r = Rw::new(1.0).unwrap();
        for x in [0.2, 0.4, 0.8] {
            assert!((r.cdf(x) - x).abs() < 1e-15);
        }
    }

    #[test]
    fn samples_match_cdf_empirically() {
        // Kolmogorov–Smirnov-style check with a generous tolerance: the
        // empirical CDF of 100k samples should match x^w within ~1%.
        let r = Rw::new(4.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mut samples: Vec<f64> = (0..n).map(|_| r.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut max_dev: f64 = 0.0;
        for (i, &x) in samples.iter().enumerate() {
            let emp = i as f64 / n as f64;
            max_dev = max_dev.max((emp - r.cdf(x)).abs());
        }
        assert!(max_dev < 0.01, "KS deviation {max_dev}");
    }

    #[test]
    fn heavier_weight_stochastically_larger() {
        let light = Rw::new(1.0).unwrap();
        let heavy = Rw::new(10.0).unwrap();
        // First-order stochastic dominance: CDF of heavy is below light.
        for x in [0.1, 0.5, 0.9] {
            assert!(heavy.cdf(x) <= light.cdf(x));
        }
    }

    #[test]
    fn max_of_w_uniforms_matches_rw() {
        // For integer w, R_w is the law of the max of w uniforms; compare
        // means: E[max of w uniforms] = w/(w+1).
        let w = 5u32;
        let r = Rw::new(w as f64).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.sample(&mut rng)).sum::<f64>() / n as f64;
        let expect = w as f64 / (w as f64 + 1.0);
        assert!((mean - expect).abs() < 0.002, "mean {mean} vs {expect}");
    }

    #[test]
    fn priority_ordering() {
        let a = Priority::new(0.5, 0);
        let b = Priority::new(0.7, 0);
        let c = Priority::new(0.5, 1);
        assert!(a < b);
        assert!(a < c); // tiebreak
        assert_eq!(a.cmp(&a), Ordering::Equal);
        assert!(Priority::zero() <= a);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn priority_rejects_nan() {
        Priority::new(f64::NAN, 0);
    }

    #[test]
    fn from_uniform_clamps() {
        let r = Rw::new(2.0).unwrap();
        assert_eq!(r.from_uniform(-0.1), 0.0);
        assert_eq!(r.from_uniform(1.1), 1.0);
    }
}
