//! Length-prefixed frame protocol for job specs and outcomes.
//!
//! The distributed replay pool talks to its workers over byte streams —
//! pipes to `osp-worker` child processes, or TCP/UDS sockets to a worker
//! fleet ([`socket`]). Framing is deliberately minimal and
//! self-describing:
//!
//! ```text
//! frame   := length payload
//! length  := u32, little-endian, number of payload bytes (≤ 64 MiB)
//! payload := one JSON message (serde_json over the vendored stub)
//! ```
//!
//! Two session flavors share the framing:
//!
//! * **pipe sessions** ([`serve`], the original `osp-worker` stdin/stdout
//!   contract): parent → worker frames are bare [`JobSpec`]s; worker →
//!   parent frames are [`reply`] envelopes — `{"ok": Outcome}` or
//!   `{"err": "message"}` — in the same order the jobs arrived;
//! * **socket sessions** ([`serve_session`], spoken by
//!   `osp-worker --listen` and [`SocketPool`](crate::SocketPool)): on
//!   accept the worker first sends a [`Hello`] handshake frame (protocol
//!   version + resolver roster); the client then sends [`Request`] frames
//!   — `{"job": JobSpec}` answered by a [`reply`], or the heartbeat
//!   `{"ping": nonce}` answered by `{"pong": nonce}` — strictly in order.
//!
//! A clean end-of-stream *between* frames is the normal shutdown signal
//! ([`read_frame`] returns `None`); anything else — a truncated length or
//! payload, an oversized length, a payload that does not decode — is a
//! hard [`Error::Protocol`], never a panic (pinned by the
//! `wire_round_trip` proptest suite).
//!
//! [`serve`] is the worker side of the pipe contract: a loop that reads
//! job frames, replays each spec through a [`SpecResolver`] with scratch
//! reuse, and answers with outcome frames. The `osp-worker` binary is a
//! thin `main` around it (and around [`socket::SocketServer`] for
//! `--listen`), and `examples/distributed_replay.rs` embeds it behind a
//! `--worker` flag.
//!
//! Socket sessions additionally honor a deterministic [`FaultPlan`]
//! (`OSP_FAULT` in the binary): kill or stall the worker at a chosen job
//! index, so dispatcher recovery paths replay bit-for-bit in tests and CI.
//!
//! [`tap`] carries *arrival streams* (not job specs) over the same
//! framing: a [`tap::SourceHeader`] declaring the set system followed by
//! CSR [`tap::ArrivalBatch`] frames — the wire twin of the
//! [`ArrivalSource`](crate::source::ArrivalSource) contract, consumed by
//! [`FramedSource`](crate::source::FramedSource) /
//! [`SocketSource`](crate::source::SocketSource).

pub mod socket;

use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::engine::batch::ReplayScratch;
use crate::engine::Outcome;
use crate::error::Error;
use crate::spec::{run_spec_with_scratch, JobSpec, SpecResolver};

/// Version of the framed protocol this build speaks. `v2` added the
/// service front door ([`serve`](crate::serve): submit/status/fetch/
/// cancel frames); `v3` added the `fleet` admin verb (inspect/adjust the
/// supervised socket fleet at runtime). The worker job/ping session is
/// unchanged since `v1`, so clients accept any [`Hello`] version in
/// `MIN_WIRE_VERSION..=WIRE_VERSION` and fail the handshake
/// ([`WorkerError::Handshake`](crate::error::WorkerError::Handshake))
/// outside that range — mixed-build fleets must fail loudly at connect
/// time, never by misinterpreting frames mid-batch.
pub const WIRE_VERSION: u32 = 3;

/// Oldest protocol version this build still interoperates with (the
/// worker session has not changed since `v1`).
pub const MIN_WIRE_VERSION: u32 = 1;

/// Process exit status for a [`FaultPlan`]-injected death — both
/// `osp-worker` (`die:<n>`) and `osp-serve` (`die-after-chunk:<n>`) die
/// with this code, so harnesses can tell an injected crash from a real
/// one.
pub const FAULT_EXIT: u8 = 86;

/// Hard upper bound on a frame payload (64 MiB). Real messages are far
/// smaller; the cap is what turns a garbage length prefix into a clean
/// [`Error::Protocol`] instead of an absurd allocation.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Writes one frame: little-endian `u32` payload length, then the payload.
///
/// # Errors
///
/// [`Error::Protocol`] if the payload exceeds [`MAX_FRAME_LEN`] or the
/// underlying writer fails.
pub fn write_frame<W: Write + ?Sized>(writer: &mut W, payload: &[u8]) -> Result<(), Error> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(Error::Protocol(format!(
            "frame of {} bytes exceeds the {MAX_FRAME_LEN}-byte cap",
            payload.len()
        )));
    }
    let len = (payload.len() as u32).to_le_bytes();
    writer
        .write_all(&len)
        .and_then(|()| writer.write_all(payload))
        .map_err(|e| Error::Protocol(format!("writing frame: {e}")))
}

/// Reads one frame's payload; `Ok(None)` on a clean end-of-stream at a
/// frame boundary.
///
/// # Errors
///
/// [`Error::Protocol`] on a truncated length prefix, a length above
/// [`MAX_FRAME_LEN`], or a payload shorter than its declared length.
pub fn read_frame<R: Read + ?Sized>(reader: &mut R) -> Result<Option<Vec<u8>>, Error> {
    let mut len = [0u8; 4];
    // A clean EOF before any length byte ends the stream; EOF *inside*
    // the prefix is a truncation.
    let mut filled = 0usize;
    while filled < len.len() {
        match reader.read(&mut len[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(Error::Protocol(format!(
                    "truncated frame: {filled} of 4 length bytes"
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(Error::Protocol(format!("reading frame length: {e}"))),
        }
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_LEN {
        return Err(Error::Protocol(format!(
            "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap"
        )));
    }
    let mut payload = vec![0u8; len];
    reader
        .read_exact(&mut payload)
        .map_err(|e| Error::Protocol(format!("truncated frame payload ({len} bytes): {e}")))?;
    Ok(Some(payload))
}

/// Serializes a message and writes it as one frame.
///
/// # Errors
///
/// [`Error::Protocol`] on serialization or I/O failure.
pub fn write_message<W: Write + ?Sized, T: Serialize>(
    writer: &mut W,
    message: &T,
) -> Result<(), Error> {
    let json =
        serde_json::to_string(message).map_err(|e| Error::Protocol(format!("encoding: {e}")))?;
    write_frame(writer, json.as_bytes())
}

/// Reads one frame and deserializes it; `Ok(None)` on clean end-of-stream.
///
/// # Errors
///
/// [`Error::Protocol`] on framing, UTF-8 or decode failure.
pub fn read_message<R: Read + ?Sized, T: Deserialize>(reader: &mut R) -> Result<Option<T>, Error> {
    let Some(payload) = read_frame(reader)? else {
        return Ok(None);
    };
    let text = std::str::from_utf8(&payload)
        .map_err(|e| Error::Protocol(format!("frame payload is not UTF-8: {e}")))?;
    serde_json::from_str(text)
        .map(Some)
        .map_err(|e| Error::Protocol(format!("decoding frame: {e}")))
}

/// The worker→parent message: one job's result.
pub mod reply {
    use super::*;

    /// Wire envelope for `Result<Outcome, Error>` (errors cross the
    /// boundary as display text; see [`decode`]).
    #[derive(Debug, Clone, PartialEq)]
    pub struct Reply {
        /// The outcome, when the job succeeded.
        pub ok: Option<Outcome>,
        /// The error message, when it failed.
        pub err: Option<String>,
    }

    impl Serialize for Reply {
        fn to_value(&self) -> serde::Value {
            match (&self.ok, &self.err) {
                (Some(outcome), _) => {
                    serde::Value::Map(vec![("ok".to_string(), outcome.to_value())])
                }
                (None, Some(err)) => {
                    serde::Value::Map(vec![("err".to_string(), serde::Value::Str(err.clone()))])
                }
                (None, None) => serde::Value::Map(vec![(
                    "err".to_string(),
                    serde::Value::Str("empty reply".to_string()),
                )]),
            }
        }
    }

    impl Deserialize for Reply {
        fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
            if let Ok(ok) = serde::get_field(value, "ok") {
                return Ok(Reply {
                    ok: Some(Outcome::from_value(ok)?),
                    err: None,
                });
            }
            let err = String::from_value(serde::get_field(value, "err")?)?;
            Ok(Reply {
                ok: None,
                err: Some(err),
            })
        }
    }

    /// Wraps a job result for the wire.
    pub fn encode(result: &Result<Outcome, Error>) -> Reply {
        match result {
            Ok(outcome) => Reply {
                ok: Some(outcome.clone()),
                err: None,
            },
            Err(e) => Reply {
                ok: None,
                err: Some(e.to_string()),
            },
        }
    }

    /// Unwraps a wire reply. A structured engine error does not survive
    /// the boundary typed; it comes back as
    /// [`WorkerError::Remote`](crate::error::WorkerError::Remote)
    /// carrying the original display text.
    pub fn decode(reply: Reply) -> Result<Outcome, Error> {
        match reply {
            Reply { ok: Some(o), .. } => Ok(o),
            Reply { err: Some(e), .. } => Err(Error::Worker(crate::error::WorkerError::Remote(e))),
            Reply {
                ok: None,
                err: None,
            } => Err(Error::Protocol("empty reply".into())),
        }
    }
}

/// The worker loop: reads [`JobSpec`] frames from `reader` until clean
/// end-of-stream, replays each through `resolver` (reusing one
/// [`ReplayScratch`] across jobs, exactly like a thread shard), and
/// writes one [`reply`] frame per job to `writer`, flushed immediately so
/// the parent can consume results as they stream.
///
/// Per-job failures (unsupported spec, invalid decision) are *answered*,
/// not fatal: the worker stays up for the next job.
///
/// # Errors
///
/// [`Error::Protocol`] if the input stream itself is malformed or the
/// output pipe breaks — the conditions under which a worker cannot
/// meaningfully continue.
pub fn serve<R, In, Out>(resolver: &R, reader: &mut In, writer: &mut Out) -> Result<(), Error>
where
    R: SpecResolver + ?Sized,
    In: Read + ?Sized,
    Out: Write + ?Sized,
{
    let mut scratch = ReplayScratch::new();
    while let Some(job) = read_message::<_, JobSpec>(reader)? {
        let result = run_spec_with_scratch(&job, resolver, &mut scratch);
        write_message(writer, &reply::encode(&result))?;
        writer
            .flush()
            .map_err(|e| Error::Protocol(format!("flushing reply: {e}")))?;
    }
    Ok(())
}

/// The handshake frame a socket worker sends immediately after accepting
/// a connection: which protocol version it speaks and which spec variants
/// its resolver can build (the roster, see
/// [`SpecResolver::roster`]). Clients must verify the version falls in
/// [`MIN_WIRE_VERSION`]`..=`[`WIRE_VERSION`] before sending any request.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Hello {
    /// The worker's [`WIRE_VERSION`].
    pub version: u32,
    /// Spec tags the worker's resolver supports (informational; lets a
    /// dispatcher fail fast when a fleet cannot run a roster).
    pub roster: Vec<String>,
}

impl Hello {
    /// The handshake this build's workers send for `resolver`.
    pub fn for_resolver<R: SpecResolver + ?Sized>(resolver: &R) -> Hello {
        Hello {
            version: WIRE_VERSION,
            roster: resolver.roster(),
        }
    }
}

/// One client → worker message of a socket session.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Replay this job and answer with a [`reply`] frame.
    Job(JobSpec),
    /// Heartbeat: answer with `{"pong": nonce}` ([`Pong`]) immediately.
    Ping(u64),
}

impl Serialize for Request {
    fn to_value(&self) -> serde::Value {
        match self {
            Request::Job(job) => serde::Value::Map(vec![("job".to_string(), job.to_value())]),
            Request::Ping(nonce) => {
                serde::Value::Map(vec![("ping".to_string(), serde::Value::U64(*nonce))])
            }
        }
    }
}

impl Deserialize for Request {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        if let Ok(job) = serde::get_field(value, "job") {
            return Ok(Request::Job(JobSpec::from_value(job)?));
        }
        let nonce = u64::from_value(serde::get_field(value, "ping")?)?;
        Ok(Request::Ping(nonce))
    }
}

/// The worker's answer to a [`Request::Ping`]: the same nonce back.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Pong {
    /// The nonce of the ping being answered.
    pub pong: u64,
}

/// Any one worker → client frame of a socket session, decoded by key
/// shape: `{"pong": …}` is a [`Pong`], `{"ok": …}` / `{"err": …}` is a
/// job [`reply::Reply`]. Clients that expect a specific frame read this
/// first, so a worker answering out of order (a job reply where a pong
/// is due, or vice versa) surfaces as a typed
/// [`WorkerError::FrameOrder`](crate::error::WorkerError::FrameOrder)
/// naming both sides — not a generic decode failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerFrame {
    /// A job answer.
    Reply(reply::Reply),
    /// A heartbeat answer.
    Pong(Pong),
}

impl ServerFrame {
    /// Human label for the frame type, used in
    /// [`WorkerError::FrameOrder`](crate::error::WorkerError::FrameOrder)
    /// messages.
    pub fn kind(&self) -> &'static str {
        match self {
            ServerFrame::Reply(_) => "job reply",
            ServerFrame::Pong(_) => "pong",
        }
    }
}

impl Serialize for ServerFrame {
    fn to_value(&self) -> serde::Value {
        match self {
            ServerFrame::Reply(reply) => reply.to_value(),
            ServerFrame::Pong(pong) => pong.to_value(),
        }
    }
}

impl Deserialize for ServerFrame {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        if serde::get_field(value, "pong").is_ok() {
            return Ok(ServerFrame::Pong(Pong::from_value(value)?));
        }
        Ok(ServerFrame::Reply(reply::Reply::from_value(value)?))
    }
}

/// A deterministic fault-injection plan for a socket worker, so
/// dispatcher recovery paths (re-dispatch, timeout, all-dead) are
/// replayable bit-for-bit instead of depending on real crashes.
///
/// Faults are indexed by the worker's *lifetime job counter* (shared
/// across connections of one worker), making "kill worker W after it
/// answered N jobs" a pure function of the plan:
///
/// * `die_after: Some(n)` — the worker answers exactly `n` jobs, then
///   drops the connection without answering (and
///   [`serve_session`] reports [`SessionEnd::FaultKill`], which
///   `osp-worker --listen` turns into process death with exit code 86);
/// * `stall: Some(Stall { job, millis })` — before answering job index
///   `job` (0-based), sleep `millis` — long enough and the client's read
///   deadline expires, exercising the timeout path.
///
/// The `OSP_FAULT` environment variable carries the plan into the
/// `osp-worker` binary: a comma-separated list of `die:<n>` and
/// `stall:<job>:<millis>` clauses (e.g. `OSP_FAULT=die:5` or
/// `OSP_FAULT=stall:2:4000,die:7`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultPlan {
    /// Drop dead after answering this many jobs.
    pub die_after: Option<u64>,
    /// Sleep before answering one chosen job.
    pub stall: Option<Stall>,
    /// Serve-side only: `osp-serve` exits (hard, like `kill -9`) after
    /// its executor finishes this many dispatch chunks — the
    /// deterministic crash for `tests/crash_recovery.rs` and the CI
    /// `chaos-recovery` job. Workers reject plans carrying this clause.
    pub die_after_chunk: Option<u64>,
}

/// The stall clause of a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stall {
    /// 0-based lifetime job index to stall on.
    pub job: u64,
    /// How long to sleep before answering it.
    pub millis: u64,
}

impl FaultPlan {
    /// No injected faults — what production workers run.
    pub const NONE: FaultPlan = FaultPlan {
        die_after: None,
        stall: None,
        die_after_chunk: None,
    };

    /// Whether this plan injects anything.
    pub fn is_none(&self) -> bool {
        *self == FaultPlan::NONE
    }

    /// Parses a plan string: comma-separated `die:<n>` /
    /// `stall:<job>:<millis>` / `die-after-chunk:<n>` clauses. Empty
    /// input is [`FaultPlan::NONE`].
    ///
    /// # Errors
    ///
    /// A description of the first malformed clause — fault plans are test
    /// infrastructure, so junk must fail loudly rather than silently
    /// running faultless.
    pub fn parse(plan: &str) -> Result<FaultPlan, String> {
        let mut out = FaultPlan::NONE;
        for clause in plan.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            if let Some(n) = clause.strip_prefix("die-after-chunk:") {
                out.die_after_chunk = Some(
                    n.trim()
                        .parse()
                        .map_err(|e| format!("bad die-after-chunk clause `{clause}`: {e}"))?,
                );
            } else if let Some(n) = clause.strip_prefix("die:") {
                out.die_after = Some(
                    n.trim()
                        .parse()
                        .map_err(|e| format!("bad die clause `{clause}`: {e}"))?,
                );
            } else if let Some(rest) = clause.strip_prefix("stall:") {
                let (job, millis) = rest
                    .split_once(':')
                    .ok_or_else(|| format!("bad stall clause `{clause}`: want stall:<job>:<ms>"))?;
                out.stall = Some(Stall {
                    job: job
                        .trim()
                        .parse()
                        .map_err(|e| format!("bad stall job in `{clause}`: {e}"))?,
                    millis: millis
                        .trim()
                        .parse()
                        .map_err(|e| format!("bad stall millis in `{clause}`: {e}"))?,
                });
            } else {
                return Err(format!(
                    "unknown fault clause `{clause}` (want die:<n>, stall:<job>:<ms>, \
                     or die-after-chunk:<n>)"
                ));
            }
        }
        Ok(out)
    }

    /// Reads the plan from the `OSP_FAULT` environment variable. Unset is
    /// `Ok(FaultPlan::NONE)`; a malformed value is an error the caller
    /// must treat as fatal (`osp-worker` exits with a usage code) — a
    /// typo'd plan silently running a fault-*free* "fault test" is worse
    /// than a worker that refuses to start, because nothing downstream
    /// can tell the faults never happened.
    ///
    /// # Errors
    ///
    /// The [`FaultPlan::parse`] message for the first malformed clause.
    pub fn from_env() -> Result<FaultPlan, String> {
        match std::env::var("OSP_FAULT") {
            Err(_) => Ok(FaultPlan::NONE),
            Ok(raw) => {
                FaultPlan::parse(&raw).map_err(|e| format!("malformed OSP_FAULT value: {e}"))
            }
        }
    }
}

/// How a socket session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionEnd {
    /// The client closed the stream cleanly between frames.
    Eof,
    /// The session's [`FaultPlan`] killed the worker mid-conversation.
    /// `osp-worker --listen` exits with code 86 on this; in-process
    /// servers ([`socket::SocketServer`]) stop accepting.
    FaultKill,
}

/// The socket worker loop: sends the [`Hello`] handshake, then answers
/// [`Request`] frames — jobs through `resolver` (one reused
/// [`ReplayScratch`], like a pipe worker), pings with [`Pong`] — until
/// clean end-of-stream, honoring `fault` against the worker-lifetime
/// `jobs_answered` counter (shared across a worker's connections so a
/// multi-connection fleet kill stays a pure function of the plan).
///
/// Per-job failures are answered, not fatal; see [`serve`].
///
/// # Errors
///
/// [`Error::Protocol`] if the input stream is malformed or the output
/// stream breaks.
pub fn serve_session<R, In, Out>(
    resolver: &R,
    reader: &mut In,
    writer: &mut Out,
    fault: FaultPlan,
    jobs_answered: &AtomicU64,
) -> Result<SessionEnd, Error>
where
    R: SpecResolver + ?Sized,
    In: Read + ?Sized,
    Out: Write + ?Sized,
{
    write_message(writer, &Hello::for_resolver(resolver))?;
    flush(writer)?;
    let mut scratch = ReplayScratch::new();
    while let Some(request) = read_message::<_, Request>(reader)? {
        match request {
            Request::Ping(nonce) => {
                write_message(writer, &Pong { pong: nonce })?;
                flush(writer)?;
            }
            Request::Job(job) => {
                let index = jobs_answered.load(Ordering::SeqCst);
                if fault.die_after.is_some_and(|n| index >= n) {
                    return Ok(SessionEnd::FaultKill);
                }
                if let Some(stall) = fault.stall {
                    if stall.job == index {
                        std::thread::sleep(std::time::Duration::from_millis(stall.millis));
                    }
                }
                let result = run_spec_with_scratch(&job, resolver, &mut scratch);
                write_message(writer, &reply::encode(&result))?;
                flush(writer)?;
                jobs_answered.fetch_add(1, Ordering::SeqCst);
            }
        }
    }
    Ok(SessionEnd::Eof)
}

fn flush<W: Write + ?Sized>(writer: &mut W) -> Result<(), Error> {
    writer
        .flush()
        .map_err(|e| Error::Protocol(format!("flushing reply: {e}")))
}

/// Arrival streams over the frame protocol — the wire twin of
/// [`ArrivalSource`](crate::source::ArrivalSource), so a live tap can
/// feed a remote engine the same `(sets, arrivals…)` contract the fused
/// generators provide locally.
///
/// ```text
/// stream := SourceHeader ArrivalBatch* EOF
/// ```
///
/// The receiving end is [`FramedSource`](crate::source::FramedSource)
/// (any `Read`) / [`SocketSource`](crate::source::SocketSource) (a
/// connected socket); [`send_source`](tap::send_source) is the publishing
/// end. Batches are CSR-shaped (capacities + offsets + one flat member
/// pool) so a batch decodes into exactly the buffers the engine's
/// zero-copy [`Arrival`](crate::Arrival) views borrow.
pub mod tap {
    use super::*;
    use crate::source::ArrivalSource;

    /// The stream's opening frame: the declared set system.
    #[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
    pub struct SourceHeader {
        /// Set weights, by set id.
        pub weights: Vec<f64>,
        /// Set sizes, by set id (parallel to `weights`).
        pub sizes: Vec<u32>,
        /// Total arrivals to follow, when the publisher knows
        /// ([`ArrivalSource::remaining_hint`]); a live tap sends `None`.
        pub hint: Option<u64>,
    }

    /// One frame of consecutive arrivals in CSR form. Element ids are
    /// implicit: the `i`-th arrival of the stream is element `i`.
    #[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
    pub struct ArrivalBatch {
        /// Per-arrival capacities `b(u)`; the batch length.
        pub capacities: Vec<u32>,
        /// CSR offsets into `members`; `offsets.len() == capacities.len() + 1`,
        /// starting at 0.
        pub offsets: Vec<u32>,
        /// The flattened member lists (set ids, each list sorted
        /// ascending and duplicate-free).
        pub members: Vec<u32>,
    }

    /// Publishes `source` onto `writer`: one [`SourceHeader`], then
    /// [`ArrivalBatch`] frames of up to `batch` arrivals each (zero is
    /// treated as one). Returns the number of arrivals sent. The writer
    /// is flushed after every frame so a consuming engine replays while
    /// the tap is still producing.
    ///
    /// # Errors
    ///
    /// [`Error::Protocol`] on serialization or I/O failure.
    pub fn send_source<S, W>(source: &mut S, writer: &mut W, batch: usize) -> Result<u64, Error>
    where
        S: ArrivalSource + ?Sized,
        W: Write + ?Sized,
    {
        let batch = batch.max(1);
        let header = SourceHeader {
            weights: source.sets().iter().map(|s| s.weight()).collect(),
            sizes: source.sets().iter().map(|s| s.size()).collect(),
            hint: source.remaining_hint().map(|n| n as u64),
        };
        write_message(writer, &header)?;
        flush(writer)?;
        let mut sent = 0u64;
        let mut frame = ArrivalBatch {
            capacities: Vec::with_capacity(batch),
            offsets: vec![0],
            members: Vec::new(),
        };
        loop {
            frame.capacities.clear();
            frame.offsets.clear();
            frame.offsets.push(0);
            frame.members.clear();
            while frame.capacities.len() < batch {
                let Some(arrival) = source.next_arrival() else {
                    break;
                };
                frame.capacities.push(arrival.capacity());
                frame.members.extend(arrival.members().iter().map(|s| s.0));
                frame.offsets.push(frame.members.len() as u32);
            }
            if frame.capacities.is_empty() {
                return Ok(sent);
            }
            sent += frame.capacities.len() as u64;
            write_message(writer, &frame)?;
            flush(writer)?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::RandomInstanceConfig;
    use crate::spec::{AlgorithmSpec, CoreResolver, ScenarioSpec};
    use std::io::Cursor;

    fn job(seed: u64) -> JobSpec {
        JobSpec {
            scenario: ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(15, 40, 3)),
            algorithm: AlgorithmSpec::RandPr,
            seed,
        }
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"world").unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"world");
        assert!(read_frame(&mut cursor).unwrap().is_none());
        // Exhausted stays exhausted.
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn truncated_and_oversized_frames_error_cleanly() {
        // EOF inside the length prefix.
        let mut cursor = Cursor::new(vec![5u8, 0]);
        assert!(matches!(read_frame(&mut cursor), Err(Error::Protocol(_))));
        // EOF inside the payload.
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)),
            Err(Error::Protocol(_))
        ));
        // Garbage length prefix above the cap.
        let mut cursor = Cursor::new(0xFFFF_FFFFu32.to_le_bytes().to_vec());
        assert!(matches!(read_frame(&mut cursor), Err(Error::Protocol(_))));
        // Oversized write is refused before touching the stream.
        struct NoWrite;
        impl Write for NoWrite {
            fn write(&mut self, _b: &[u8]) -> std::io::Result<usize> {
                panic!("must not write")
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let huge = vec![0u8; MAX_FRAME_LEN + 1];
        assert!(matches!(
            write_frame(&mut NoWrite, &huge),
            Err(Error::Protocol(_))
        ));
    }

    #[test]
    fn non_json_payload_is_a_protocol_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"\x00\xFFnot json").unwrap();
        assert!(matches!(
            read_message::<_, JobSpec>(&mut Cursor::new(buf)),
            Err(Error::Protocol(_))
        ));
    }

    #[test]
    fn serve_answers_every_job_in_order() {
        let mut input = Vec::new();
        let jobs: Vec<JobSpec> = (0..4).map(job).collect();
        for j in &jobs {
            write_message(&mut input, j).unwrap();
        }
        let mut output = Vec::new();
        serve(&CoreResolver, &mut Cursor::new(input), &mut output).unwrap();
        let mut cursor = Cursor::new(output);
        for j in &jobs {
            let r: reply::Reply = read_message(&mut cursor)
                .unwrap()
                .expect("one reply per job");
            let got = reply::decode(r).unwrap();
            let want = crate::spec::run_spec(j, &CoreResolver).unwrap();
            assert_eq!(got, want, "seed {}", j.seed);
        }
        assert!(read_message::<_, reply::Reply>(&mut cursor)
            .unwrap()
            .is_none());
    }

    #[test]
    fn serve_reports_per_job_failures_and_continues() {
        let mut input = Vec::new();
        let bad = JobSpec {
            scenario: ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(2, 5, 4)),
            algorithm: AlgorithmSpec::RandPr,
            seed: 0,
        };
        write_message(&mut input, &bad).unwrap();
        write_message(&mut input, &job(1)).unwrap();
        let mut output = Vec::new();
        serve(&CoreResolver, &mut Cursor::new(input), &mut output).unwrap();
        let mut cursor = Cursor::new(output);
        let first = reply::decode(read_message(&mut cursor).unwrap().unwrap());
        assert!(matches!(first, Err(Error::Worker(_))));
        let second = reply::decode(read_message(&mut cursor).unwrap().unwrap());
        assert!(second.is_ok());
    }

    #[test]
    fn malformed_input_stream_stops_serve() {
        let mut input = Vec::new();
        write_frame(&mut input, b"{\"not\": \"a job\"}").unwrap();
        let mut output = Vec::new();
        assert!(matches!(
            serve(&CoreResolver, &mut Cursor::new(input), &mut output),
            Err(Error::Protocol(_))
        ));
    }

    #[test]
    fn outcome_survives_the_wire_bit_for_bit() {
        let want = crate::spec::run_spec(&job(9), &CoreResolver).unwrap();
        let mut buf = Vec::new();
        write_message(&mut buf, &reply::encode(&Ok(want.clone()))).unwrap();
        let got: reply::Reply = read_message(&mut Cursor::new(buf)).unwrap().unwrap();
        let got = reply::decode(got).unwrap();
        assert_eq!(got.completed(), want.completed());
        assert_eq!(got.benefit().to_bits(), want.benefit().to_bits());
        assert_eq!(got.decisions(), want.decisions());
        assert_eq!(got, want);
    }

    #[test]
    fn hello_and_requests_round_trip() {
        let hello = Hello::for_resolver(&CoreResolver);
        assert_eq!(hello.version, WIRE_VERSION);
        assert!(hello.roster.contains(&"uniform".to_string()));
        let mut buf = Vec::new();
        write_message(&mut buf, &hello).unwrap();
        write_message(&mut buf, &Request::Ping(42)).unwrap();
        write_message(&mut buf, &Request::Job(job(7))).unwrap();
        write_message(&mut buf, &Pong { pong: 42 }).unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(
            read_message::<_, Hello>(&mut cursor).unwrap().unwrap(),
            hello
        );
        assert_eq!(
            read_message::<_, Request>(&mut cursor).unwrap().unwrap(),
            Request::Ping(42)
        );
        assert_eq!(
            read_message::<_, Request>(&mut cursor).unwrap().unwrap(),
            Request::Job(job(7))
        );
        assert_eq!(
            read_message::<_, Pong>(&mut cursor).unwrap().unwrap(),
            Pong { pong: 42 }
        );
    }

    #[test]
    fn fault_plan_parses_and_rejects() {
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::NONE);
        assert!(FaultPlan::parse("").unwrap().is_none());
        assert_eq!(
            FaultPlan::parse("die:5").unwrap(),
            FaultPlan {
                die_after: Some(5),
                ..FaultPlan::NONE
            }
        );
        assert_eq!(
            FaultPlan::parse(" stall:2:750 , die:7 ").unwrap(),
            FaultPlan {
                die_after: Some(7),
                stall: Some(Stall {
                    job: 2,
                    millis: 750
                }),
                ..FaultPlan::NONE
            }
        );
        assert_eq!(
            FaultPlan::parse("die-after-chunk:3").unwrap(),
            FaultPlan {
                die_after_chunk: Some(3),
                ..FaultPlan::NONE
            }
        );
        assert!(FaultPlan::parse("die:lots").is_err());
        assert!(FaultPlan::parse("stall:2").is_err());
        assert!(FaultPlan::parse("die-after-chunk:soon").is_err());
        assert!(FaultPlan::parse("explode:now").is_err());
    }

    #[test]
    fn session_speaks_hello_then_answers_jobs_and_pings() {
        let mut input = Vec::new();
        write_message(&mut input, &Request::Ping(11)).unwrap();
        write_message(&mut input, &Request::Job(job(3))).unwrap();
        write_message(&mut input, &Request::Ping(12)).unwrap();
        let mut output = Vec::new();
        let answered = AtomicU64::new(0);
        let end = serve_session(
            &CoreResolver,
            &mut Cursor::new(input),
            &mut output,
            FaultPlan::NONE,
            &answered,
        )
        .unwrap();
        assert_eq!(end, SessionEnd::Eof);
        assert_eq!(answered.load(Ordering::SeqCst), 1);
        let mut cursor = Cursor::new(output);
        let hello: Hello = read_message(&mut cursor).unwrap().unwrap();
        assert_eq!(hello.version, WIRE_VERSION);
        let pong: Pong = read_message(&mut cursor).unwrap().unwrap();
        assert_eq!(pong.pong, 11);
        let r: reply::Reply = read_message(&mut cursor).unwrap().unwrap();
        let want = crate::spec::run_spec(&job(3), &CoreResolver).unwrap();
        assert_eq!(reply::decode(r).unwrap(), want);
        let pong: Pong = read_message(&mut cursor).unwrap().unwrap();
        assert_eq!(pong.pong, 12);
        assert!(read_message::<_, Pong>(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn fault_kill_stops_the_session_before_the_answer() {
        // die:2 — two answers, then the third job gets no reply.
        let mut input = Vec::new();
        for seed in 0..3 {
            write_message(&mut input, &Request::Job(job(seed))).unwrap();
        }
        let mut output = Vec::new();
        let answered = AtomicU64::new(0);
        let end = serve_session(
            &CoreResolver,
            &mut Cursor::new(input),
            &mut output,
            FaultPlan::parse("die:2").unwrap(),
            &answered,
        )
        .unwrap();
        assert_eq!(end, SessionEnd::FaultKill);
        assert_eq!(answered.load(Ordering::SeqCst), 2);
        let mut cursor = Cursor::new(output);
        let _hello: Hello = read_message(&mut cursor).unwrap().unwrap();
        for seed in 0..2 {
            let r: reply::Reply = read_message(&mut cursor).unwrap().unwrap();
            let want = crate::spec::run_spec(&job(seed), &CoreResolver).unwrap();
            assert_eq!(reply::decode(r).unwrap(), want, "answer {seed}");
        }
        assert!(
            read_message::<_, reply::Reply>(&mut cursor)
                .unwrap()
                .is_none(),
            "the killed job must not be answered"
        );
    }

    #[test]
    fn tap_stream_round_trips_through_framed_source() {
        use crate::gen::UniformSource;
        use crate::source::{ArrivalSource, FramedSource};
        let config = RandomInstanceConfig::unweighted(12, 30, 3);
        let mut tap = UniformSource::new(&config, 501).unwrap();
        let mut buf = Vec::new();
        let sent = tap::send_source(&mut tap, &mut buf, 7).unwrap();
        assert_eq!(sent, 30);
        let mut replay = UniformSource::new(&config, 501).unwrap();
        let mut framed = FramedSource::new(Cursor::new(buf)).unwrap();
        assert_eq!(framed.sets().len(), replay.sets().len());
        assert_eq!(framed.remaining_hint(), Some(30));
        loop {
            match (replay.next_arrival(), framed.next_arrival()) {
                (None, None) => break,
                (Some(want), Some(got)) => {
                    assert_eq!(want.element(), got.element());
                    assert_eq!(want.capacity(), got.capacity());
                    assert_eq!(want.members(), got.members());
                }
                (want, got) => panic!(
                    "stream lengths diverge: want {:?}, got {:?}",
                    want.is_some(),
                    got.is_some()
                ),
            }
        }
        assert!(framed.error().is_none());
    }
}
