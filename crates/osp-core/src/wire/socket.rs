//! TCP / Unix-domain-socket transport for the frame protocol.
//!
//! Everything above the byte stream — framing, [`Hello`] handshake,
//! [`Request`]/[`reply`](super::reply) ordering, [`FaultPlan`] semantics —
//! lives in [`wire`](super); this module only supplies the streams:
//!
//! * [`WorkerAddr`] — a parsed worker address, `host:port` TCP or
//!   `uds:/path` Unix-domain, as written in `OSP_WORKER_ADDRS` and on the
//!   `osp-worker --listen` command line;
//! * [`Stream`] — one connected byte stream over either transport, with
//!   connect/read deadlines;
//! * [`SocketServer`] — an in-process worker fleet member: an accept loop
//!   serving [`serve_session`] per connection, used by tests and examples
//!   (the `osp-worker --listen` binary wraps the same loop around a real
//!   process);
//! * [`ping`] — one full handshake + heartbeat round trip, the readiness
//!   probe behind `osp-worker --ping` and CI fleet bring-up.

use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use super::{
    read_message, serve_session, write_message, FaultPlan, Hello, Pong, Request, SessionEnd,
    MIN_WIRE_VERSION, WIRE_VERSION,
};
use crate::error::{Error, WorkerError};
use crate::spec::SpecResolver;

/// The nonce [`ping`] sends; any fixed value works because a session's
/// requests are answered strictly in order.
const PING_NONCE: u64 = 0x6F73_7050; // "ospP"

/// One worker's address, as written in `OSP_WORKER_ADDRS` and accepted by
/// `osp-worker --listen`:
///
/// * `host:port` — TCP (e.g. `127.0.0.1:7401`; port `0` asks the OS for
///   an ephemeral port, resolved by [`SocketServer::local_addr`]);
/// * `[ipv6]:port` — TCP with a bracketed IPv6 host (e.g. `[::1]:7401`).
///   The brackets are required: a bare-colon form like `::1:7401` cannot
///   be split into host and port unambiguously and is rejected;
/// * `uds:/path` (or `unix:/path`) — a Unix-domain socket path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerAddr {
    /// A TCP `host:port` endpoint.
    Tcp(String),
    /// A Unix-domain socket path.
    Uds(PathBuf),
}

impl WorkerAddr {
    /// Parses one address; see the type docs for the accepted forms.
    ///
    /// # Errors
    ///
    /// A description of why the text is not an address.
    pub fn parse(text: &str) -> Result<WorkerAddr, String> {
        let text = text.trim();
        if let Some(path) = text
            .strip_prefix("uds:")
            .or_else(|| text.strip_prefix("unix:"))
        {
            if path.is_empty() {
                return Err(format!("`{text}`: empty socket path"));
            }
            return Ok(WorkerAddr::Uds(PathBuf::from(path)));
        }
        if let Some(bracketed) = text.strip_prefix('[') {
            // Bracketed IPv6: `[host]:port`, the form `to_socket_addrs`
            // resolves directly.
            let Some((host, port)) = bracketed.split_once("]:") else {
                return Err(format!(
                    "`{text}`: want [ipv6]:port (e.g. [::1]:7401) — missing `]:`"
                ));
            };
            if host.is_empty() {
                return Err(format!("`{text}`: empty IPv6 host inside the brackets"));
            }
            if port.parse::<u16>().is_err() {
                return Err(format!("`{text}`: `{port}` is not a port number"));
            }
            return Ok(WorkerAddr::Tcp(text.to_string()));
        }
        match text.matches(':').count() {
            0 => Err(format!(
                "`{text}`: want host:port (TCP) or uds:/path (Unix-domain)"
            )),
            1 => {
                let (host, port) = text.split_once(':').expect("exactly one colon");
                if host.is_empty() {
                    return Err(format!(
                        "`{text}`: want host:port (TCP) or uds:/path (Unix-domain)"
                    ));
                }
                if port.parse::<u16>().is_err() {
                    return Err(format!("`{text}`: `{port}` is not a port number"));
                }
                Ok(WorkerAddr::Tcp(text.to_string()))
            }
            // More than one colon without brackets: a bare IPv6 address
            // like `::1:7401`, where "host `::1`, port `7401`" and
            // "host `::1:7401`, no port" are both readable. Guessing one
            // (the old rsplit behavior) produced an address that parsed
            // but failed at connect time with a resolver error.
            _ => Err(format!(
                "`{text}`: ambiguous bare-colon IPv6 address — bracket the host, e.g. `[::1]:7401`"
            )),
        }
    }

    /// Parses a comma-separated fleet list (`OSP_WORKER_ADDRS` syntax);
    /// empty entries are skipped.
    ///
    /// # Errors
    ///
    /// The first unparseable entry's description.
    pub fn parse_list(text: &str) -> Result<Vec<WorkerAddr>, String> {
        text.split(',')
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .map(WorkerAddr::parse)
            .collect()
    }
}

impl std::fmt::Display for WorkerAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerAddr::Tcp(hostport) => write!(f, "{hostport}"),
            WorkerAddr::Uds(path) => write!(f, "uds:{}", path.display()),
        }
    }
}

/// One connected byte stream to a worker, over either transport. Created
/// by [`Stream::connect`]; both halves of the frame conversation run over
/// the one object (`&Stream` implements `Read` and `Write`, like the
/// underlying `std` streams).
#[derive(Debug)]
pub enum Stream {
    /// A connected TCP stream.
    Tcp(TcpStream),
    /// A connected Unix-domain stream.
    Uds(UnixStream),
}

impl Stream {
    /// Connects to `addr` within `timeout` (TCP; Unix-domain connects are
    /// local rendezvous and use the plain blocking connect).
    ///
    /// # Errors
    ///
    /// The underlying I/O error — resolution failure, refusal, or the
    /// deadline expiring.
    pub fn connect(addr: &WorkerAddr, timeout: Duration) -> std::io::Result<Stream> {
        match addr {
            WorkerAddr::Tcp(hostport) => {
                let resolved = hostport.to_socket_addrs()?.next().ok_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::AddrNotAvailable,
                        format!("{hostport} resolved to no address"),
                    )
                })?;
                TcpStream::connect_timeout(&resolved, timeout).map(Stream::Tcp)
            }
            WorkerAddr::Uds(path) => UnixStream::connect(path).map(Stream::Uds),
        }
    }

    /// Sets the read deadline for subsequent frame reads (`None` blocks
    /// forever).
    ///
    /// # Errors
    ///
    /// The underlying `setsockopt` failure.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(timeout),
            Stream::Uds(s) => s.set_read_timeout(timeout),
        }
    }

    /// Half-closes the write side, signalling clean end-of-stream to the
    /// worker (its [`serve_session`] returns [`SessionEnd::Eof`]).
    pub fn shutdown_write(&self) {
        let _ = match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Write),
            Stream::Uds(s) => s.shutdown(std::net::Shutdown::Write),
        };
    }
}

macro_rules! delegate_io {
    ($ty:ty) => {
        impl Read for $ty {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                match self {
                    Stream::Tcp(s) => s.read(buf),
                    Stream::Uds(s) => s.read(buf),
                }
            }
        }

        impl Write for $ty {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                match self {
                    Stream::Tcp(s) => s.write(buf),
                    Stream::Uds(s) => s.write(buf),
                }
            }

            fn flush(&mut self) -> std::io::Result<()> {
                match self {
                    Stream::Tcp(s) => s.flush(),
                    Stream::Uds(s) => s.flush(),
                }
            }
        }
    };
}

delegate_io!(Stream);

impl Read for &Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => (&*s).read(buf),
            Stream::Uds(s) => (&*s).read(buf),
        }
    }
}

impl Write for &Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => (&*s).write(buf),
            Stream::Uds(s) => (&*s).write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => (&*s).flush(),
            Stream::Uds(s) => (&*s).flush(),
        }
    }
}

/// Client side of the handshake: reads the worker's [`Hello`] and checks
/// the protocol version.
///
/// # Errors
///
/// [`WorkerError::Handshake`] if the stream closes or garbles before a
/// hello arrives, or the worker speaks a version outside the compatible
/// range [`MIN_WIRE_VERSION`]`..=`[`WIRE_VERSION`] (older versions whose
/// session frames are unchanged stay dialable after a bump).
pub fn read_hello<R: Read + ?Sized>(reader: &mut R, addr: &str) -> Result<Hello, WorkerError> {
    let hello = match read_message::<_, Hello>(reader) {
        Ok(Some(hello)) => hello,
        Ok(None) => {
            return Err(WorkerError::Handshake {
                addr: addr.to_string(),
                cause: "stream closed before the hello frame".to_string(),
            })
        }
        Err(e) => {
            return Err(WorkerError::Handshake {
                addr: addr.to_string(),
                cause: e.to_string(),
            })
        }
    };
    if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&hello.version) {
        return Err(WorkerError::Handshake {
            addr: addr.to_string(),
            cause: format!(
                "protocol version mismatch: worker speaks {}, this build speaks \
                 {MIN_WIRE_VERSION}..={WIRE_VERSION}",
                hello.version
            ),
        });
    }
    Ok(hello)
}

/// One full liveness probe: connect, handshake, one ping/pong. Returns
/// the worker's [`Hello`] — what `osp-worker --ping` prints and what CI
/// polls during fleet bring-up.
///
/// # Errors
///
/// [`Error::Worker`] with the typed connect/handshake/disconnect cause.
pub fn ping(addr: &WorkerAddr, timeout: Duration) -> Result<Hello, Error> {
    let stream = Stream::connect(addr, timeout).map_err(|e| WorkerError::Connect {
        addr: addr.to_string(),
        attempts: 1,
        cause: e.to_string(),
    })?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| WorkerError::Connect {
            addr: addr.to_string(),
            attempts: 1,
            cause: format!("setting read deadline: {e}"),
        })?;
    let mut reader = BufReader::new(&stream);
    let hello = read_hello(&mut reader, &addr.to_string())?;
    let mut writer = &stream;
    write_message(&mut writer, &Request::Ping(PING_NONCE))?;
    match read_message::<_, Pong>(&mut reader) {
        Ok(Some(Pong { pong })) if pong == PING_NONCE => Ok(hello),
        Ok(Some(Pong { pong })) => Err(WorkerError::Handshake {
            addr: addr.to_string(),
            cause: format!("pong nonce mismatch: sent {PING_NONCE}, got {pong}"),
        }
        .into()),
        Ok(None) => Err(WorkerError::Disconnect {
            addr: addr.to_string(),
            cause: "stream closed before the pong".to_string(),
        }
        .into()),
        Err(e) => Err(WorkerError::Disconnect {
            addr: addr.to_string(),
            cause: e.to_string(),
        }
        .into()),
    }
}

/// Either flavor of listener behind one accept call — shared by the
/// worker-side [`SocketServer`] and the service front door
/// ([`serve`](crate::serve)).
pub(crate) enum Listener {
    Tcp(TcpListener),
    Uds(UnixListener),
}

impl Listener {
    /// Binds `addr` and returns the listener plus the actually-bound
    /// address (the OS-resolved port, for TCP `:0`).
    pub(crate) fn bind(addr: &WorkerAddr) -> Result<(Listener, WorkerAddr), Error> {
        match addr {
            WorkerAddr::Tcp(hostport) => {
                let listener = TcpListener::bind(hostport)
                    .map_err(|e| WorkerError::Spawn(format!("binding {hostport}: {e}")))?;
                let local = listener.local_addr().map_err(|e| {
                    WorkerError::Spawn(format!("resolving bound address of {hostport}: {e}"))
                })?;
                Ok((Listener::Tcp(listener), WorkerAddr::Tcp(local.to_string())))
            }
            WorkerAddr::Uds(path) => {
                // A crashed server (SIGKILL, fault-kill) leaves its
                // socket file behind, and a Unix bind on an existing
                // path fails — so a crash-restart cycle on the same
                // address would wedge. If the path holds a *dead* socket
                // (nothing accepts a probe connect), clear it; a live
                // listener still refuses the double-bind.
                if path.exists() && UnixStream::connect(path).is_err() {
                    let _ = std::fs::remove_file(path);
                }
                let listener = UnixListener::bind(path).map_err(|e| {
                    WorkerError::Spawn(format!("binding uds:{}: {e}", path.display()))
                })?;
                Ok((Listener::Uds(listener), WorkerAddr::Uds(path.clone())))
            }
        }
    }

    pub(crate) fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            Listener::Uds(l) => l.accept().map(|(s, _)| Stream::Uds(s)),
        }
    }
}

/// An in-process socket worker: a bound listener plus an accept loop
/// serving [`serve_session`] on every connection, sharing one
/// worker-lifetime job counter (so a [`FaultPlan`] kill is a pure
/// function of the plan even across reconnects).
///
/// This is the same worker loop `osp-worker --listen` runs in a real
/// process; the in-process form lets tests and examples stand up a whole
/// fleet without spawning binaries. After a fault kill the server stops
/// accepting — from the dispatcher's point of view the worker is dead,
/// exactly like the process exiting with code 86.
///
/// Call [`stop`](SocketServer::stop) to shut the listener down; dropping
/// without `stop` leaks the accept thread until process exit (harmless,
/// but noisy under thread-leak tooling).
pub struct SocketServer {
    addr: WorkerAddr,
    stop: Arc<AtomicBool>,
    fault_killed: Arc<AtomicBool>,
    jobs_answered: Arc<AtomicU64>,
    accept_thread: Option<JoinHandle<()>>,
}

impl SocketServer {
    /// Binds `addr` and starts accepting. TCP port `0` binds an ephemeral
    /// port; the resolved address is [`local_addr`](Self::local_addr).
    ///
    /// # Errors
    ///
    /// [`WorkerError::Spawn`] if the address cannot be bound.
    pub fn bind<R>(addr: &WorkerAddr, resolver: R, fault: FaultPlan) -> Result<SocketServer, Error>
    where
        R: SpecResolver + Send + Sync + 'static,
    {
        let (listener, local) = Listener::bind(addr)?;
        let stop = Arc::new(AtomicBool::new(false));
        let fault_killed = Arc::new(AtomicBool::new(false));
        let jobs_answered = Arc::new(AtomicU64::new(0));
        let accept_thread = {
            let stop = Arc::clone(&stop);
            let fault_killed = Arc::clone(&fault_killed);
            let jobs_answered = Arc::clone(&jobs_answered);
            let local = local.clone();
            let resolver = Arc::new(resolver);
            std::thread::spawn(move || {
                accept_loop(
                    &listener,
                    &local,
                    &resolver,
                    fault,
                    &stop,
                    &fault_killed,
                    &jobs_answered,
                );
            })
        };
        Ok(SocketServer {
            addr: local,
            stop,
            fault_killed,
            jobs_answered,
            accept_thread: Some(accept_thread),
        })
    }

    /// The actually-bound address (the resolved port, for TCP `:0`) —
    /// what clients dial.
    pub fn local_addr(&self) -> &WorkerAddr {
        &self.addr
    }

    /// Whether this worker's [`FaultPlan`] has killed it (it no longer
    /// accepts connections).
    pub fn fault_killed(&self) -> bool {
        self.fault_killed.load(Ordering::SeqCst)
    }

    /// Jobs this worker has answered across all its connections.
    pub fn jobs_answered(&self) -> u64 {
        self.jobs_answered.load(Ordering::SeqCst)
    }

    /// Stops accepting and joins the accept loop. Connections already
    /// being served run to their client-driven end.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // A blocked accept only wakes on a connection: poke ourselves.
        let _ = Stream::connect(&self.addr, Duration::from_millis(200));
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        if let WorkerAddr::Uds(path) = &self.addr {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_loop<R>(
    listener: &Listener,
    local: &WorkerAddr,
    resolver: &Arc<R>,
    fault: FaultPlan,
    stop: &Arc<AtomicBool>,
    fault_killed: &Arc<AtomicBool>,
    jobs_answered: &Arc<AtomicU64>,
) where
    R: SpecResolver + Send + Sync + 'static,
{
    loop {
        let stream = match listener.accept() {
            Ok(stream) => stream,
            Err(_) => break,
        };
        if stop.load(Ordering::SeqCst) || fault_killed.load(Ordering::SeqCst) {
            break;
        }
        let resolver = Arc::clone(resolver);
        let stop = Arc::clone(stop);
        let fault_killed = Arc::clone(fault_killed);
        let jobs_answered = Arc::clone(jobs_answered);
        let local = local.clone();
        std::thread::spawn(move || {
            let mut reader = BufReader::new(&stream);
            let mut writer = BufWriter::new(&stream);
            let end = serve_session(&*resolver, &mut reader, &mut writer, fault, &jobs_answered);
            if matches!(end, Ok(SessionEnd::FaultKill)) && !stop.load(Ordering::SeqCst) {
                fault_killed.store(true, Ordering::SeqCst);
                // Unblock the accept loop so the listener drops and
                // further connects are refused — the worker is "dead".
                let _ = Stream::connect(&local, Duration::from_millis(200));
            }
            // Dropping the stream closes the connection; a client mid-read
            // sees EOF where a reply was expected (a Disconnect).
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CoreResolver;

    #[test]
    fn addresses_parse_and_display() {
        assert_eq!(
            WorkerAddr::parse("127.0.0.1:7401").unwrap(),
            WorkerAddr::Tcp("127.0.0.1:7401".into())
        );
        assert_eq!(
            WorkerAddr::parse(" uds:/tmp/w.sock ").unwrap(),
            WorkerAddr::Uds(PathBuf::from("/tmp/w.sock"))
        );
        assert_eq!(
            WorkerAddr::parse("unix:/tmp/w.sock").unwrap(),
            WorkerAddr::Uds(PathBuf::from("/tmp/w.sock"))
        );
        assert!(WorkerAddr::parse("no-port").is_err());
        assert!(WorkerAddr::parse(":7401").is_err());
        assert!(WorkerAddr::parse("host:notaport").is_err());
        assert!(WorkerAddr::parse("uds:").is_err());
        let fleet =
            WorkerAddr::parse_list("127.0.0.1:7401, 127.0.0.1:7402 ,, uds:/tmp/w.sock").unwrap();
        assert_eq!(fleet.len(), 3);
        assert_eq!(fleet[0].to_string(), "127.0.0.1:7401");
        assert_eq!(fleet[2].to_string(), "uds:/tmp/w.sock");
        assert!(WorkerAddr::parse_list("127.0.0.1:7401,garbage").is_err());
        assert!(WorkerAddr::parse_list("").unwrap().is_empty());
    }

    #[test]
    fn ipv6_addresses_need_brackets() {
        assert_eq!(
            WorkerAddr::parse("[::1]:7401").unwrap(),
            WorkerAddr::Tcp("[::1]:7401".into())
        );
        assert_eq!(
            WorkerAddr::parse("[2001:db8::7]:80").unwrap(),
            WorkerAddr::Tcp("[2001:db8::7]:80".into())
        );
        // The bare-colon form used to parse (host `::1`) and then fail at
        // connect time with a resolver error; now it is rejected up front
        // with the fix in the message.
        let err = WorkerAddr::parse("::1:7401").unwrap_err();
        assert!(err.contains("[::1]:7401"), "got: {err}");
        assert!(err.contains("ambiguous"), "got: {err}");
        assert!(WorkerAddr::parse("2001:db8::7:80").is_err());
        // Bracketed but still malformed.
        assert!(WorkerAddr::parse("[::1]").is_err());
        assert!(WorkerAddr::parse("[::1]:notaport").is_err());
        assert!(WorkerAddr::parse("[]:7401").is_err());
        // Fleet lists accept bracketed entries and reject bare-colon ones.
        let fleet = WorkerAddr::parse_list("[::1]:7401, 127.0.0.1:7402").unwrap();
        assert_eq!(fleet.len(), 2);
        assert_eq!(fleet[0].to_string(), "[::1]:7401");
        assert!(WorkerAddr::parse_list("[::1]:7401, ::1:7402").is_err());
    }

    #[test]
    fn server_answers_ping_and_stops_cleanly() {
        let server = SocketServer::bind(
            &WorkerAddr::Tcp("127.0.0.1:0".into()),
            CoreResolver,
            FaultPlan::NONE,
        )
        .unwrap();
        let addr = server.local_addr().clone();
        let hello = ping(&addr, Duration::from_secs(5)).unwrap();
        assert_eq!(hello.version, WIRE_VERSION);
        assert!(hello.roster.contains(&"rand_pr".to_string()));
        assert!(!server.fault_killed());
        assert_eq!(server.jobs_answered(), 0);
        server.stop();
        assert!(ping(&addr, Duration::from_millis(500)).is_err());
    }

    #[test]
    fn uds_server_round_trips() {
        let dir = std::env::temp_dir().join(format!("osp-uds-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("worker.sock");
        let _ = std::fs::remove_file(&path);
        let addr = WorkerAddr::Uds(path.clone());
        let server = SocketServer::bind(&addr, CoreResolver, FaultPlan::NONE).unwrap();
        assert!(ping(&addr, Duration::from_secs(5)).is_ok());
        server.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_uds_path_left_by_a_crash_is_cleared_on_rebind() {
        let dir = std::env::temp_dir().join(format!("osp-uds-stale-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("worker.sock");
        let _ = std::fs::remove_file(&path);
        // A listener that "crashes": dropped without unlinking its path,
        // exactly what SIGKILL leaves behind.
        drop(UnixListener::bind(&path).unwrap());
        assert!(path.exists(), "the stale socket file survives the crash");
        // The restart must bind over it instead of failing.
        let addr = WorkerAddr::Uds(path.clone());
        let server = SocketServer::bind(&addr, CoreResolver, FaultPlan::NONE)
            .expect("rebinding over a stale socket path");
        assert!(ping(&addr, Duration::from_secs(5)).is_ok());
        server.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ping_against_nothing_is_a_connect_error() {
        // A host:port that is not listening (port 1 on loopback).
        let err = ping(
            &WorkerAddr::Tcp("127.0.0.1:1".into()),
            Duration::from_millis(500),
        )
        .unwrap_err();
        assert!(
            matches!(err, Error::Worker(WorkerError::Connect { .. })),
            "got {err:?}"
        );
    }
}
