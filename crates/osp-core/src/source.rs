//! Streaming arrival sources — the engine's ingestion abstraction.
//!
//! The paper's model (§2) is inherently *online*: elements arrive one at a
//! time, and neither the algorithm nor the engine ever needs the whole
//! hypergraph in memory. An [`ArrivalSource`] captures exactly that: the
//! up-front [`SetMeta`] registration the model grants algorithms, plus a
//! pull-based stream of `(element, b(u), C(u))` arrivals. The engine's
//! source-generic entry points ([`run_source`](crate::engine::run_source),
//! [`Session::drain_source`](crate::engine::Session::drain_source),
//! [`ReplayPool::run_sources`](crate::engine::batch::ReplayPool::run_sources))
//! consume any source, so scenario size is bounded by the *source's*
//! resident state — O(m) for the fused generators in
//! [`gen::stream`](crate::gen) — not by RAM holding a materialized
//! [`Instance`].
//!
//! A materialized [`Instance`] is just one source among many:
//! [`InstanceSource`] (via [`Instance::source`]) streams its CSR arena
//! back out as the same borrowed-slice [`Arrival`] views the indexed
//! replay path uses, so nothing is copied and the hot path stays
//! allocation-free.
//!
//! # Determinism contract
//!
//! A source must be a *pure function of its construction inputs*: two
//! sources built with the same parameters (and, for randomized sources,
//! the same seed) must yield identical streams — same set metadata, same
//! arrivals, in the same order. This is what makes streamed replay
//! reproducible and lets
//! [`ReplayPool::run_sources`](crate::engine::batch::ReplayPool::run_sources)
//! shard streamed jobs with the same SplitMix64 seed derivation and
//! bit-identical outcomes as sequential replay: each shard rebuilds its
//! jobs' sources from `(selector, seed)` locally, so no stream ever
//! depends on shard count or scheduling. The conformance suite
//! (`tests/source_conformance.rs`) pins the contract's strongest form for
//! the built-in generator sources: streaming and materialize-then-replay
//! produce bit-identical [`Outcome`](crate::Outcome)s.

use crate::instance::{Arrival, Instance, SetMeta};

/// A pull-based stream of online arrivals over a declared set system.
///
/// The engine consumes a source in two phases, mirroring §2 of the paper:
///
/// 1. [`sets`](Self::sets) — every set's weight and size, announced to the
///    algorithm before the first arrival;
/// 2. repeated [`next_arrival`](Self::next_arrival) calls until the stream
///    ends. Each yielded [`Arrival`] borrows from the source's internal
///    buffers, so implementations can (and should) reuse one member buffer
///    across arrivals — the engine is done with the view before it pulls
///    the next one, keeping the per-arrival hot path allocation-free.
///
/// Implementations must uphold the module-level determinism contract
/// (same construction inputs ⇒ same stream) and the same member-list
/// invariant [`Arrival::new`] asserts: sorted ascending by set id,
/// duplicate-free, referencing declared sets only. Element ids must be
/// consecutive from zero in arrival order.
pub trait ArrivalSource {
    /// The declared sets' metadata, known up front. Must not change while
    /// the stream is being consumed.
    fn sets(&self) -> &[SetMeta];

    /// Pulls the next arrival, or `None` once the stream is exhausted.
    /// The view borrows the source; it is consumed before the next pull.
    fn next_arrival(&mut self) -> Option<Arrival<'_>>;

    /// How many arrivals remain, if the source knows (generators over a
    /// fixed `n` do; a live network tap would not).
    fn remaining_hint(&self) -> Option<usize> {
        None
    }
}

impl<S: ArrivalSource + ?Sized> ArrivalSource for Box<S> {
    fn sets(&self) -> &[SetMeta] {
        (**self).sets()
    }

    fn next_arrival(&mut self) -> Option<Arrival<'_>> {
        (**self).next_arrival()
    }

    fn remaining_hint(&self) -> Option<usize> {
        (**self).remaining_hint()
    }
}

impl<S: ArrivalSource + ?Sized> ArrivalSource for &mut S {
    fn sets(&self) -> &[SetMeta] {
        (**self).sets()
    }

    fn next_arrival(&mut self) -> Option<Arrival<'_>> {
        (**self).next_arrival()
    }

    fn remaining_hint(&self) -> Option<usize> {
        (**self).remaining_hint()
    }
}

/// A materialized [`Instance`] replayed as a stream, from the beginning.
///
/// Yields the same zero-copy [`Arrival`] views into the instance's CSR
/// membership arena that [`Instance::arrivals`] provides — streaming an
/// instance costs nothing over indexing it.
///
/// # Examples
///
/// ```
/// use osp_core::prelude::*;
/// use osp_core::source::ArrivalSource;
///
/// let mut b = InstanceBuilder::new();
/// let s = b.add_set(1.0, 1);
/// b.add_element(1, &[s]);
/// let inst = b.build()?;
/// let mut src = inst.source();
/// assert_eq!(src.remaining_hint(), Some(1));
/// let outcome = run_source(&mut src, &mut GreedyOnline::new(TieBreak::ByWeight))?;
/// assert_eq!(outcome.benefit(), 1.0);
/// # Ok::<(), osp_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct InstanceSource<'a> {
    instance: &'a Instance,
    next: usize,
}

impl<'a> InstanceSource<'a> {
    /// Starts a stream over `instance`'s arrival sequence.
    pub fn new(instance: &'a Instance) -> Self {
        InstanceSource { instance, next: 0 }
    }
}

impl ArrivalSource for InstanceSource<'_> {
    fn sets(&self) -> &[SetMeta] {
        self.instance.sets()
    }

    fn next_arrival(&mut self) -> Option<Arrival<'_>> {
        let arrival = self.instance.arrivals().get(self.next)?;
        self.next += 1;
        Some(arrival)
    }

    fn remaining_hint(&self) -> Option<usize> {
        Some(self.instance.num_elements() - self.next)
    }
}

/// An **owned** [`Instance`] replayed as a stream — [`InstanceSource`]'s
/// `'static` twin for when the stream must outlive the place the instance
/// was built (e.g. a spec resolver returning `Box<dyn ArrivalSource>`,
/// see [`spec`](crate::spec)). Same zero-copy CSR arrival views, same
/// order.
///
/// # Examples
///
/// ```
/// use osp_core::prelude::*;
/// use osp_core::source::ArrivalSource;
///
/// let mut b = InstanceBuilder::new();
/// let s = b.add_set(1.0, 1);
/// b.add_element(1, &[s]);
/// let mut src = b.build()?.into_source(); // the instance moves in
/// let outcome = run_source(&mut src, &mut GreedyOnline::new(TieBreak::ByWeight))?;
/// assert_eq!(outcome.benefit(), 1.0);
/// # Ok::<(), osp_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct OwnedInstanceSource {
    instance: Instance,
    next: usize,
}

impl OwnedInstanceSource {
    /// Starts a stream owning `instance`; see also
    /// [`Instance::into_source`].
    pub fn new(instance: Instance) -> Self {
        OwnedInstanceSource { instance, next: 0 }
    }
}

impl ArrivalSource for OwnedInstanceSource {
    fn sets(&self) -> &[SetMeta] {
        self.instance.sets()
    }

    fn next_arrival(&mut self) -> Option<Arrival<'_>> {
        let arrival = self.instance.arrivals().get(self.next)?;
        self.next += 1;
        Some(arrival)
    }

    fn remaining_hint(&self) -> Option<usize> {
        Some(self.instance.num_elements() - self.next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ElementId, SetId};
    use crate::instance::InstanceBuilder;

    fn small_instance() -> Instance {
        let mut b = InstanceBuilder::new();
        let s0 = b.add_set(1.0, 2);
        let s1 = b.add_set(2.0, 1);
        b.add_element(1, &[s0, s1]);
        b.add_element(2, &[s0]);
        b.build().unwrap()
    }

    #[test]
    fn instance_source_streams_every_arrival_in_order() {
        let inst = small_instance();
        let mut src = inst.source();
        assert_eq!(src.sets(), inst.sets());
        assert_eq!(src.remaining_hint(), Some(2));
        let a0 = src.next_arrival().unwrap();
        assert_eq!(a0.element(), ElementId(0));
        assert_eq!(a0.members(), &[SetId(0), SetId(1)]);
        assert_eq!(src.remaining_hint(), Some(1));
        let a1 = src.next_arrival().unwrap();
        assert_eq!(a1.element(), ElementId(1));
        assert_eq!(a1.capacity(), 2);
        assert!(src.next_arrival().is_none());
        assert_eq!(src.remaining_hint(), Some(0));
        // Exhausted stays exhausted.
        assert!(src.next_arrival().is_none());
    }

    #[test]
    fn boxed_and_borrowed_sources_delegate() {
        // Generic driver, so the blanket `Box<S>` / `&mut S` impls are the
        // ones exercised.
        fn consume<S: ArrivalSource>(mut source: S) -> usize {
            assert_eq!(source.sets().len(), 2);
            let mut count = 0;
            while source.next_arrival().is_some() {
                count += 1;
            }
            assert_eq!(source.remaining_hint(), Some(0));
            count
        }
        let inst = small_instance();
        let boxed: Box<dyn ArrivalSource + '_> = Box::new(inst.source());
        assert_eq!(consume(boxed), 2);
        let mut src = inst.source();
        assert_eq!(consume(&mut src), 2);
    }

    #[test]
    fn owned_source_streams_like_the_borrowed_one() {
        let inst = small_instance();
        let mut borrowed = inst.source();
        let mut owned = inst.clone().into_source();
        assert_eq!(owned.sets(), inst.sets());
        assert_eq!(owned.remaining_hint(), Some(2));
        while let Some(want) = borrowed.next_arrival() {
            let got = owned.next_arrival().expect("same stream length");
            assert_eq!(got.element(), want.element());
            assert_eq!(got.capacity(), want.capacity());
            assert_eq!(got.members(), want.members());
        }
        assert!(owned.next_arrival().is_none());
        assert_eq!(owned.remaining_hint(), Some(0));
    }
}
