//! Streaming arrival sources — the engine's ingestion abstraction.
//!
//! The paper's model (§2) is inherently *online*: elements arrive one at a
//! time, and neither the algorithm nor the engine ever needs the whole
//! hypergraph in memory. An [`ArrivalSource`] captures exactly that: the
//! up-front [`SetMeta`] registration the model grants algorithms, plus a
//! pull-based stream of `(element, b(u), C(u))` arrivals. The engine's
//! source-generic entry points ([`run_source`](crate::engine::run_source),
//! [`Session::drain_source`](crate::engine::Session::drain_source),
//! [`ReplayPool::run_sources`](crate::engine::batch::ReplayPool::run_sources))
//! consume any source, so scenario size is bounded by the *source's*
//! resident state — O(m) for the fused generators in
//! [`gen::stream`](crate::gen) — not by RAM holding a materialized
//! [`Instance`].
//!
//! A materialized [`Instance`] is just one source among many:
//! [`InstanceSource`] (via [`Instance::source`]) streams its CSR arena
//! back out as the same borrowed-slice [`Arrival`] views the indexed
//! replay path uses, so nothing is copied and the hot path stays
//! allocation-free.
//!
//! # Determinism contract
//!
//! A source must be a *pure function of its construction inputs*: two
//! sources built with the same parameters (and, for randomized sources,
//! the same seed) must yield identical streams — same set metadata, same
//! arrivals, in the same order. This is what makes streamed replay
//! reproducible and lets
//! [`ReplayPool::run_sources`](crate::engine::batch::ReplayPool::run_sources)
//! shard streamed jobs with the same SplitMix64 seed derivation and
//! bit-identical outcomes as sequential replay: each shard rebuilds its
//! jobs' sources from `(selector, seed)` locally, so no stream ever
//! depends on shard count or scheduling. The conformance suite
//! (`tests/source_conformance.rs`) pins the contract's strongest form for
//! the built-in generator sources: streaming and materialize-then-replay
//! produce bit-identical [`Outcome`](crate::Outcome)s.

use std::io::{BufReader, Read};
use std::time::Duration;

use crate::error::{Error, WorkerError};
use crate::ids::{ElementId, SetId};
use crate::instance::{Arrival, Instance, SetMeta};
use crate::wire::read_message;
use crate::wire::socket::{Stream, WorkerAddr};
use crate::wire::tap::{ArrivalBatch, SourceHeader};

/// A pull-based stream of online arrivals over a declared set system.
///
/// The engine consumes a source in two phases, mirroring §2 of the paper:
///
/// 1. [`sets`](Self::sets) — every set's weight and size, announced to the
///    algorithm before the first arrival;
/// 2. repeated [`next_arrival`](Self::next_arrival) calls until the stream
///    ends. Each yielded [`Arrival`] borrows from the source's internal
///    buffers, so implementations can (and should) reuse one member buffer
///    across arrivals — the engine is done with the view before it pulls
///    the next one, keeping the per-arrival hot path allocation-free.
///
/// Implementations must uphold the module-level determinism contract
/// (same construction inputs ⇒ same stream) and the same member-list
/// invariant [`Arrival::new`] asserts: sorted ascending by set id,
/// duplicate-free, referencing declared sets only. Element ids must be
/// consecutive from zero in arrival order.
pub trait ArrivalSource {
    /// The declared sets' metadata, known up front. Must not change while
    /// the stream is being consumed.
    fn sets(&self) -> &[SetMeta];

    /// Pulls the next arrival, or `None` once the stream is exhausted.
    /// The view borrows the source; it is consumed before the next pull.
    fn next_arrival(&mut self) -> Option<Arrival<'_>>;

    /// How many arrivals remain, if the source knows (generators over a
    /// fixed `n` do; a live network tap would not).
    fn remaining_hint(&self) -> Option<usize> {
        None
    }
}

impl<S: ArrivalSource + ?Sized> ArrivalSource for Box<S> {
    fn sets(&self) -> &[SetMeta] {
        (**self).sets()
    }

    fn next_arrival(&mut self) -> Option<Arrival<'_>> {
        (**self).next_arrival()
    }

    fn remaining_hint(&self) -> Option<usize> {
        (**self).remaining_hint()
    }
}

impl<S: ArrivalSource + ?Sized> ArrivalSource for &mut S {
    fn sets(&self) -> &[SetMeta] {
        (**self).sets()
    }

    fn next_arrival(&mut self) -> Option<Arrival<'_>> {
        (**self).next_arrival()
    }

    fn remaining_hint(&self) -> Option<usize> {
        (**self).remaining_hint()
    }
}

/// A materialized [`Instance`] replayed as a stream, from the beginning.
///
/// Yields the same zero-copy [`Arrival`] views into the instance's CSR
/// membership arena that [`Instance::arrivals`] provides — streaming an
/// instance costs nothing over indexing it.
///
/// # Examples
///
/// ```
/// use osp_core::prelude::*;
/// use osp_core::source::ArrivalSource;
///
/// let mut b = InstanceBuilder::new();
/// let s = b.add_set(1.0, 1);
/// b.add_element(1, &[s]);
/// let inst = b.build()?;
/// let mut src = inst.source();
/// assert_eq!(src.remaining_hint(), Some(1));
/// let outcome = run_source(&mut src, &mut GreedyOnline::new(TieBreak::ByWeight))?;
/// assert_eq!(outcome.benefit(), 1.0);
/// # Ok::<(), osp_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct InstanceSource<'a> {
    instance: &'a Instance,
    next: usize,
}

impl<'a> InstanceSource<'a> {
    /// Starts a stream over `instance`'s arrival sequence.
    pub fn new(instance: &'a Instance) -> Self {
        InstanceSource { instance, next: 0 }
    }
}

impl ArrivalSource for InstanceSource<'_> {
    fn sets(&self) -> &[SetMeta] {
        self.instance.sets()
    }

    fn next_arrival(&mut self) -> Option<Arrival<'_>> {
        let arrival = self.instance.arrivals().get(self.next)?;
        self.next += 1;
        Some(arrival)
    }

    fn remaining_hint(&self) -> Option<usize> {
        Some(self.instance.num_elements() - self.next)
    }
}

/// An **owned** [`Instance`] replayed as a stream — [`InstanceSource`]'s
/// `'static` twin for when the stream must outlive the place the instance
/// was built (e.g. a spec resolver returning `Box<dyn ArrivalSource>`,
/// see [`spec`](crate::spec)). Same zero-copy CSR arrival views, same
/// order.
///
/// # Examples
///
/// ```
/// use osp_core::prelude::*;
/// use osp_core::source::ArrivalSource;
///
/// let mut b = InstanceBuilder::new();
/// let s = b.add_set(1.0, 1);
/// b.add_element(1, &[s]);
/// let mut src = b.build()?.into_source(); // the instance moves in
/// let outcome = run_source(&mut src, &mut GreedyOnline::new(TieBreak::ByWeight))?;
/// assert_eq!(outcome.benefit(), 1.0);
/// # Ok::<(), osp_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct OwnedInstanceSource {
    instance: Instance,
    next: usize,
}

impl OwnedInstanceSource {
    /// Starts a stream owning `instance`; see also
    /// [`Instance::into_source`].
    pub fn new(instance: Instance) -> Self {
        OwnedInstanceSource { instance, next: 0 }
    }
}

impl ArrivalSource for OwnedInstanceSource {
    fn sets(&self) -> &[SetMeta] {
        self.instance.sets()
    }

    fn next_arrival(&mut self) -> Option<Arrival<'_>> {
        let arrival = self.instance.arrivals().get(self.next)?;
        self.next += 1;
        Some(arrival)
    }

    fn remaining_hint(&self) -> Option<usize> {
        Some(self.instance.num_elements() - self.next)
    }
}

/// An [`ArrivalSource`] decoding the [`wire::tap`](crate::wire::tap) stream from any byte
/// reader: one [`SourceHeader`] declaring the set system (validated at
/// construction), then CSR [`ArrivalBatch`] frames pulled lazily as the
/// engine consumes arrivals — resident state is one batch, not the
/// stream.
///
/// The [`ArrivalSource`] trait has no error channel mid-stream (by
/// design: the hot path stays a bare `Option`), so a malformed frame or
/// invalid arrival **ends the stream** and parks the failure in
/// [`error`](Self::error) — callers replaying untrusted streams check it
/// after the drain. Construction errors (bad header) are surfaced
/// normally.
///
/// Determinism is inherited from the bytes: the same framed stream
/// yields the same arrivals, so a recorded tap replays bit-identically
/// anywhere.
#[derive(Debug)]
pub struct FramedSource<R> {
    reader: R,
    sets: Vec<SetMeta>,
    hint: Option<u64>,
    /// Current batch, CSR: capacities + offsets into `members`.
    capacities: Vec<u32>,
    offsets: Vec<u32>,
    members: Vec<SetId>,
    /// Next arrival within the current batch.
    cursor: usize,
    /// Element ids are implicit: arrival number in stream order.
    next_element: u32,
    error: Option<Error>,
    done: bool,
}

impl<R: Read> FramedSource<R> {
    /// Reads and validates the stream's [`SourceHeader`].
    ///
    /// # Errors
    ///
    /// [`Error::Protocol`] on framing garbage or a truncated stream;
    /// [`Error::BadWeight`] / [`Error::EmptySet`] when the declared set
    /// system is invalid.
    pub fn new(reader: R) -> Result<Self, Error> {
        let mut reader = reader;
        let header: SourceHeader = read_message(&mut reader)?
            .ok_or_else(|| Error::Protocol("stream ended before the source header".into()))?;
        if header.sizes.len() != header.weights.len() {
            return Err(Error::Protocol(format!(
                "source header declares {} weights but {} sizes",
                header.weights.len(),
                header.sizes.len()
            )));
        }
        let mut sets = Vec::with_capacity(header.weights.len());
        for (i, (&weight, &size)) in header.weights.iter().zip(&header.sizes).enumerate() {
            let set = SetId(i as u32);
            if !weight.is_finite() || weight < 0.0 {
                return Err(Error::BadWeight { set, weight });
            }
            if size == 0 {
                return Err(Error::EmptySet(set));
            }
            sets.push(SetMeta::new(weight, size));
        }
        Ok(FramedSource {
            reader,
            sets,
            hint: header.hint,
            capacities: Vec::new(),
            offsets: vec![0],
            members: Vec::new(),
            cursor: 0,
            next_element: 0,
            error: None,
            done: false,
        })
    }

    /// The failure that ended the stream early, if any. `None` after a
    /// clean end-of-stream.
    pub fn error(&self) -> Option<&Error> {
        self.error.as_ref()
    }

    /// Ends the stream, recording why.
    fn fail(&mut self, error: Error) {
        self.error = Some(error);
        self.done = true;
    }

    /// Decodes the next batch frame into the CSR buffers. Returns whether
    /// a batch is now loaded.
    fn pull_batch(&mut self) -> bool {
        let batch: ArrivalBatch = match read_message(&mut self.reader) {
            Ok(Some(batch)) => batch,
            Ok(None) => {
                self.done = true;
                return false;
            }
            Err(e) => {
                self.fail(e);
                return false;
            }
        };
        if batch.offsets.len() != batch.capacities.len() + 1
            || batch.offsets.first() != Some(&0)
            || batch.offsets.windows(2).any(|w| w[0] > w[1])
            || batch.offsets.last().copied().unwrap_or(0) as usize != batch.members.len()
        {
            self.fail(Error::Protocol(format!(
                "malformed arrival batch: {} capacities, {} offsets, {} members",
                batch.capacities.len(),
                batch.offsets.len(),
                batch.members.len()
            )));
            return false;
        }
        if batch.capacities.is_empty() {
            // An empty frame is pointless but harmless; try the next.
            return self.pull_batch();
        }
        let num_sets = self.sets.len() as u32;
        if let Some(&bad) = batch.members.iter().find(|&&m| m >= num_sets) {
            self.fail(Error::UnknownSet {
                element: ElementId(self.next_element),
                set: SetId(bad),
            });
            return false;
        }
        self.capacities = batch.capacities;
        self.offsets = batch.offsets;
        self.members = batch.members.into_iter().map(SetId).collect();
        self.cursor = 0;
        true
    }
}

impl<R: Read> ArrivalSource for FramedSource<R> {
    fn sets(&self) -> &[SetMeta] {
        &self.sets
    }

    fn next_arrival(&mut self) -> Option<Arrival<'_>> {
        if self.done {
            return None;
        }
        if self.cursor >= self.capacities.len() && !self.pull_batch() {
            return None;
        }
        let i = self.cursor;
        let element = ElementId(self.next_element);
        let capacity = self.capacities[i];
        let members = &self.members[self.offsets[i] as usize..self.offsets[i + 1] as usize];
        // Untrusted input: the checked constructor, with failures parked
        // in `error()` rather than panicking the engine.
        match Arrival::try_new(element, capacity, members) {
            Ok(_) => {
                self.cursor += 1;
                self.next_element += 1;
                let members = &self.members[self.offsets[i] as usize..self.offsets[i + 1] as usize];
                Some(Arrival::new(element, capacity, members))
            }
            Err(e) => {
                self.fail(e);
                None
            }
        }
    }

    fn remaining_hint(&self) -> Option<usize> {
        self.hint
            .map(|total| (total.saturating_sub(u64::from(self.next_element))) as usize)
    }
}

/// A [`FramedSource`] over a connected worker socket: dial a
/// [`WorkerAddr`] publishing a [`wire::tap`](crate::wire::tap) stream and replay it live —
/// the networked twin of the fused generator sources.
///
/// # Examples
///
/// See `examples/socket_fleet.rs`, which publishes a generator stream
/// through a loopback socket and drains it with the engine.
#[derive(Debug)]
pub struct SocketSource {
    inner: FramedSource<BufReader<Stream>>,
}

impl SocketSource {
    /// Connects to `addr` (deadline `timeout` for the connect and every
    /// subsequent read) and consumes the stream header.
    ///
    /// # Errors
    ///
    /// [`WorkerError::Connect`] when the dial fails; otherwise
    /// [`FramedSource::new`]'s header errors.
    pub fn connect(addr: &WorkerAddr, timeout: Duration) -> Result<Self, Error> {
        let stream = Stream::connect(addr, timeout).map_err(|e| WorkerError::Connect {
            addr: addr.to_string(),
            attempts: 1,
            cause: e.to_string(),
        })?;
        stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| WorkerError::Connect {
                addr: addr.to_string(),
                attempts: 1,
                cause: format!("setting read deadline: {e}"),
            })?;
        Ok(SocketSource {
            inner: FramedSource::new(BufReader::new(stream))?,
        })
    }

    /// The failure that ended the stream early, if any.
    pub fn error(&self) -> Option<&Error> {
        self.inner.error()
    }
}

impl ArrivalSource for SocketSource {
    fn sets(&self) -> &[SetMeta] {
        self.inner.sets()
    }

    fn next_arrival(&mut self) -> Option<Arrival<'_>> {
        self.inner.next_arrival()
    }

    fn remaining_hint(&self) -> Option<usize> {
        self.inner.remaining_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ElementId, SetId};
    use crate::instance::InstanceBuilder;

    fn small_instance() -> Instance {
        let mut b = InstanceBuilder::new();
        let s0 = b.add_set(1.0, 2);
        let s1 = b.add_set(2.0, 1);
        b.add_element(1, &[s0, s1]);
        b.add_element(2, &[s0]);
        b.build().unwrap()
    }

    #[test]
    fn instance_source_streams_every_arrival_in_order() {
        let inst = small_instance();
        let mut src = inst.source();
        assert_eq!(src.sets(), inst.sets());
        assert_eq!(src.remaining_hint(), Some(2));
        let a0 = src.next_arrival().unwrap();
        assert_eq!(a0.element(), ElementId(0));
        assert_eq!(a0.members(), &[SetId(0), SetId(1)]);
        assert_eq!(src.remaining_hint(), Some(1));
        let a1 = src.next_arrival().unwrap();
        assert_eq!(a1.element(), ElementId(1));
        assert_eq!(a1.capacity(), 2);
        assert!(src.next_arrival().is_none());
        assert_eq!(src.remaining_hint(), Some(0));
        // Exhausted stays exhausted.
        assert!(src.next_arrival().is_none());
    }

    #[test]
    fn boxed_and_borrowed_sources_delegate() {
        // Generic driver, so the blanket `Box<S>` / `&mut S` impls are the
        // ones exercised.
        fn consume<S: ArrivalSource>(mut source: S) -> usize {
            assert_eq!(source.sets().len(), 2);
            let mut count = 0;
            while source.next_arrival().is_some() {
                count += 1;
            }
            assert_eq!(source.remaining_hint(), Some(0));
            count
        }
        let inst = small_instance();
        let boxed: Box<dyn ArrivalSource + '_> = Box::new(inst.source());
        assert_eq!(consume(boxed), 2);
        let mut src = inst.source();
        assert_eq!(consume(&mut src), 2);
    }

    #[test]
    fn owned_source_streams_like_the_borrowed_one() {
        let inst = small_instance();
        let mut borrowed = inst.source();
        let mut owned = inst.clone().into_source();
        assert_eq!(owned.sets(), inst.sets());
        assert_eq!(owned.remaining_hint(), Some(2));
        while let Some(want) = borrowed.next_arrival() {
            let got = owned.next_arrival().expect("same stream length");
            assert_eq!(got.element(), want.element());
            assert_eq!(got.capacity(), want.capacity());
            assert_eq!(got.members(), want.members());
        }
        assert!(owned.next_arrival().is_none());
        assert_eq!(owned.remaining_hint(), Some(0));
    }
}
