//! Exactly bi-regular instances (uniform set size `k`, uniform element load
//! `σ`) via a configuration model with conflict repair.
//!
//! Corollary 7 of the paper says that on these instances the competitive
//! ratio of `randPr` drops all the way to `k`, independent of `σ` — the
//! only load-independent bound in the paper — so the experiment harness
//! needs a generator that hits the degree constraints *exactly*, not just
//! in expectation.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::instance::{Instance, InstanceBuilder};
use crate::SetId;

use super::GenError;

/// Generates an unweighted unit-capacity instance with `m` sets of size
/// exactly `k` and `n = m·k/σ` elements of load exactly `σ`.
///
/// Uses the configuration model: `m·k` set-stubs are shuffled and dealt to
/// elements `σ` at a time; duplicate incidences inside an element are then
/// repaired by random stub swaps. Arrival order is the (shuffled) element
/// order.
///
/// # Errors
///
/// * [`GenError::Infeasible`] if `σ ∤ m·k`, `σ > m`, or a parameter is 0.
/// * [`GenError::RepairFailed`] if repair cannot reach a simple structure
///   (only happens for extremely dense parameters, e.g. `σ` close to `m`).
pub fn biregular_instance<R: Rng + ?Sized>(
    m: usize,
    k: u32,
    sigma: u32,
    rng: &mut R,
) -> Result<Instance, GenError> {
    let stubs = biregular_stubs(m, k, sigma, rng)?;
    let sigma = sigma as usize;
    let n = stubs.len() / sigma;

    let mut builder = InstanceBuilder::new();
    for _ in 0..m {
        builder.add_set(1.0, k);
    }
    for j in 0..n {
        let members: Vec<SetId> = stubs[j * sigma..(j + 1) * sigma]
            .iter()
            .map(|&s| SetId(s))
            .collect();
        builder.add_element(1, &members);
    }
    Ok(builder
        .build()
        .expect("configuration model satisfies builder invariants"))
}

/// The configuration-model core shared by [`biregular_instance`] and the
/// streaming [`BiregularSource`](super::BiregularSource): validates the
/// parameters and returns the repaired flat stub array — element `j`'s
/// member sets are `stubs[j*σ..(j+1)*σ]` (unsorted), guaranteed distinct
/// within each window. One implementation means the two paths cannot
/// drift in their RNG draw sequence.
pub(super) fn biregular_stubs<R: Rng + ?Sized>(
    m: usize,
    k: u32,
    sigma: u32,
    rng: &mut R,
) -> Result<Vec<u32>, GenError> {
    if m == 0 || k == 0 || sigma == 0 {
        return Err(GenError::Infeasible("m, k, σ must all be positive".into()));
    }
    let incidences = m * k as usize;
    if !incidences.is_multiple_of(sigma as usize) {
        return Err(GenError::Infeasible(format!(
            "σ={sigma} must divide m·k={incidences}"
        )));
    }
    if sigma as usize > m {
        return Err(GenError::Infeasible(format!(
            "load σ={sigma} exceeds set count m={m}"
        )));
    }
    let n = incidences / sigma as usize;
    let sigma = sigma as usize;

    // Deal shuffled set-stubs; element j owns stubs[j*σ .. (j+1)*σ].
    let mut stubs: Vec<u32> = (0..m as u32)
        .flat_map(|s| std::iter::repeat_n(s, k as usize))
        .collect();

    const MAX_RESTARTS: usize = 50;
    'restart: for _ in 0..MAX_RESTARTS {
        stubs.shuffle(rng);
        // Repair duplicates: for each element window, ensure distinct sets.
        let mut attempts = 0usize;
        let budget = 50 * incidences;
        loop {
            let mut conflict = None;
            'scan: for j in 0..n {
                let win = &stubs[j * sigma..(j + 1) * sigma];
                for a in 0..sigma {
                    for b in a + 1..sigma {
                        if win[a] == win[b] {
                            conflict = Some(j * sigma + b);
                            break 'scan;
                        }
                    }
                }
            }
            let Some(pos) = conflict else {
                // Simple: hand the repaired pairing back.
                return Ok(stubs);
            };
            if attempts >= budget {
                continue 'restart;
            }
            attempts += 1;
            // Swap the conflicting stub with a random other stub, provided
            // the swap does not create a duplicate in either window.
            let other = rng.gen_range(0..incidences);
            let (je, jo) = (pos / sigma, other / sigma);
            if je == jo {
                continue;
            }
            let (a, b) = (stubs[pos], stubs[other]);
            let win_e = &stubs[je * sigma..(je + 1) * sigma];
            let win_o = &stubs[jo * sigma..(jo + 1) * sigma];
            if win_e.contains(&b) || win_o.contains(&a) {
                continue;
            }
            stubs.swap(pos, other);
        }
    }
    Err(GenError::RepairFailed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::InstanceStats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn degrees_are_exact() {
        let mut rng = StdRng::seed_from_u64(0);
        let inst = biregular_instance(12, 4, 3, &mut rng).unwrap();
        assert_eq!(inst.num_sets(), 12);
        assert_eq!(inst.num_elements(), 16); // 12*4/3
        let st = InstanceStats::compute(&inst);
        assert_eq!(st.uniform_size, Some(4));
        assert_eq!(st.uniform_load, Some(3));
        assert!(st.unweighted);
        assert!(st.unit_capacity);
    }

    #[test]
    fn no_duplicate_incidences() {
        let mut rng = StdRng::seed_from_u64(1);
        let inst = biregular_instance(20, 5, 4, &mut rng).unwrap();
        for a in inst.arrivals() {
            let mut sorted = a.members().to_vec();
            sorted.dedup();
            assert_eq!(sorted.len(), a.members().len());
        }
    }

    #[test]
    fn divisibility_enforced() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(matches!(
            biregular_instance(5, 3, 2, &mut rng), // 15 stubs, σ=2
            Err(GenError::Infeasible(_))
        ));
    }

    #[test]
    fn load_cannot_exceed_sets() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(matches!(
            biregular_instance(3, 4, 4, &mut rng),
            Err(GenError::Infeasible(_))
        ));
    }

    #[test]
    fn zero_parameters_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(biregular_instance(0, 1, 1, &mut rng).is_err());
        assert!(biregular_instance(1, 0, 1, &mut rng).is_err());
        assert!(biregular_instance(1, 1, 0, &mut rng).is_err());
    }

    #[test]
    fn dense_but_feasible_case_works() {
        // σ = m: every element contains every set (complete incidence).
        let mut rng = StdRng::seed_from_u64(5);
        let inst = biregular_instance(4, 6, 4, &mut rng).unwrap();
        let st = InstanceStats::compute(&inst);
        assert_eq!(st.uniform_load, Some(4));
        assert_eq!(st.uniform_size, Some(6));
    }

    #[test]
    fn deterministic_under_seed() {
        let a = biregular_instance(10, 3, 2, &mut StdRng::seed_from_u64(7)).unwrap();
        let b = biregular_instance(10, 3, 2, &mut StdRng::seed_from_u64(7)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn many_seeds_all_succeed() {
        for seed in 0..30 {
            let mut rng = StdRng::seed_from_u64(seed);
            assert!(
                biregular_instance(24, 6, 4, &mut rng).is_ok(),
                "seed {seed}"
            );
        }
    }
}
