//! Distribution knobs shared by the generators.

use rand::Rng;

/// How element loads `σ(u)` are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadModel {
    /// Every element has exactly this load.
    Fixed(u32),
    /// Loads uniform on `lo..=hi`.
    Uniform {
        /// Smallest load.
        lo: u32,
        /// Largest load.
        hi: u32,
    },
}

impl LoadModel {
    /// Draws one load.
    ///
    /// # Panics
    ///
    /// Panics if the model is degenerate (`lo > hi` or a zero load).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let v = match *self {
            LoadModel::Fixed(k) => k,
            LoadModel::Uniform { lo, hi } => {
                assert!(lo <= hi, "LoadModel::Uniform requires lo <= hi");
                rng.gen_range(lo..=hi)
            }
        };
        assert!(v >= 1, "element loads must be at least 1");
        v
    }

    /// The largest load the model can produce.
    pub fn max(&self) -> u32 {
        match *self {
            LoadModel::Fixed(k) => k,
            LoadModel::Uniform { hi, .. } => hi,
        }
    }
}

/// How set weights are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightModel {
    /// All weights 1 (the paper's unweighted case).
    Unit,
    /// Weights uniform on `[lo, hi]`.
    Uniform {
        /// Smallest weight.
        lo: f64,
        /// Largest weight.
        hi: f64,
    },
    /// Zipf-like weights: weight `∝ rank^(−exponent)` with ranks assigned
    /// uniformly at random — a handful of very heavy "I-frames" among many
    /// light ones, mirroring the video motivation.
    Zipf {
        /// Decay exponent `s > 0`.
        exponent: f64,
    },
}

impl WeightModel {
    /// Draws the weight for the set with index `rank` out of `total`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, total: usize) -> f64 {
        match *self {
            WeightModel::Unit => 1.0,
            WeightModel::Uniform { lo, hi } => {
                assert!(lo <= hi && lo >= 0.0, "weight range must be 0 <= lo <= hi");
                rng.gen_range(lo..=hi)
            }
            WeightModel::Zipf { exponent } => {
                assert!(exponent > 0.0, "Zipf exponent must be positive");
                let rank = rng.gen_range(1..=total.max(1)) as f64;
                rank.powf(-exponent) * total.max(1) as f64
            }
        }
    }
}

/// How element capacities `b(u)` are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapacityModel {
    /// Every element has capacity 1 (the paper's unit-capacity case).
    Unit,
    /// Every element has this fixed capacity.
    Fixed(u32),
    /// Capacities uniform on `lo..=hi`.
    Uniform {
        /// Smallest capacity.
        lo: u32,
        /// Largest capacity.
        hi: u32,
    },
}

impl CapacityModel {
    /// Draws one capacity.
    ///
    /// # Panics
    ///
    /// Panics on degenerate ranges or zero capacities.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let v = match *self {
            CapacityModel::Unit => 1,
            CapacityModel::Fixed(b) => b,
            CapacityModel::Uniform { lo, hi } => {
                assert!(lo <= hi, "CapacityModel::Uniform requires lo <= hi");
                rng.gen_range(lo..=hi)
            }
        };
        assert!(v >= 1, "capacities must be at least 1");
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn load_model_ranges() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(LoadModel::Fixed(3).sample(&mut rng), 3);
        for _ in 0..100 {
            let v = LoadModel::Uniform { lo: 2, hi: 5 }.sample(&mut rng);
            assert!((2..=5).contains(&v));
        }
        assert_eq!(LoadModel::Uniform { lo: 2, hi: 5 }.max(), 5);
    }

    #[test]
    fn weight_models_positive() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(WeightModel::Unit.sample(&mut rng, 10), 1.0);
        for _ in 0..100 {
            let w = WeightModel::Uniform { lo: 0.5, hi: 2.0 }.sample(&mut rng, 10);
            assert!((0.5..=2.0).contains(&w));
            let z = WeightModel::Zipf { exponent: 1.0 }.sample(&mut rng, 10);
            assert!(z > 0.0 && z <= 10.0);
        }
    }

    #[test]
    fn capacity_models() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(CapacityModel::Unit.sample(&mut rng), 1);
        assert_eq!(CapacityModel::Fixed(4).sample(&mut rng), 4);
        for _ in 0..50 {
            let b = CapacityModel::Uniform { lo: 1, hi: 8 }.sample(&mut rng);
            assert!((1..=8).contains(&b));
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_load_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        LoadModel::Fixed(0).sample(&mut rng);
    }
}
