//! Fused generate-as-you-replay sources: every generator family as an
//! [`ArrivalSource`], with the **same RNG draw sequence** as its
//! materializing twin.
//!
//! The materializing generators ([`random_instance`](super::random_instance),
//! [`biregular_instance`](super::biregular_instance),
//! [`fixed_size_instance`](super::fixed_size_instance)) build a full CSR
//! [`Instance`](crate::Instance) and hand it to the engine — which caps
//! scenario size at the RAM holding `O(n·σ)` memberships. The sources here
//! feed the engine *while generating*, so `engine::run` on the
//! materialized instance and [`run_source`](crate::engine::run_source) on
//! the fused source produce **bit-identical outcomes** (pinned by
//! `tests/source_conformance.rs`) at very different memory costs:
//!
//! * [`UniformSource`] never holds more than `O(m)` state regardless of
//!   `n`: element draws are independent, so the source replays the
//!   membership stream twice from a cloned RNG — once at construction to
//!   learn which sets survive and their realized sizes (a counter per
//!   set, no membership stored), once while streaming — with weights and
//!   capacities drawn at exactly the positions the materializing path
//!   draws them. A 10⁸-arrival scenario streams in the footprint of its
//!   set count (see `examples/streaming_replay.rs`).
//! * [`BiregularSource`] and [`FixedSizeSource`] must hold their
//!   incidence structure (the configuration-model pairing / the per-set
//!   draws are global, not per-element — that is inherent to their RNG
//!   draw order), but they share the exact drawing core with their
//!   materializing twins and stream straight out of the raw structure:
//!   no [`InstanceBuilder`](crate::InstanceBuilder) pass, no validation
//!   walk, no second CSR copy.
//!
//! All three yield arrivals from internal reused buffers, so the
//! per-arrival streaming path performs **zero heap allocations** (pinned
//! by `tests/alloc_free_streaming.rs`).

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::ids::{ElementId, SetId};
use crate::instance::{Arrival, SetMeta};
use crate::source::ArrivalSource;

use super::biregular::biregular_stubs;
use super::fixed_size::fixed_size_memberships;
use super::uniform::validate_config;
use super::{GenError, RandomInstanceConfig};

/// Partial Fisher–Yates over a persistent identity pool, consuming exactly
/// the RNG stream of the vendored `rand::seq::index::sample` — and then
/// *undoing* the swaps (in reverse) so the pool is the identity again for
/// the next arrival. This is what lets [`UniformSource`] replay
/// `index_sample(rng, m, σ)` bit-for-bit without allocating a fresh
/// `0..m` pool per element.
fn draw_picks_undo(
    pool: &mut [u32],
    swaps: &mut Vec<u32>,
    rng: &mut StdRng,
    sigma: usize,
    mut visit: impl FnMut(u32),
) {
    let len = pool.len();
    swaps.clear();
    for i in 0..sigma {
        let j = i + (rng.next_u64() % (len - i) as u64) as usize;
        pool.swap(i, j);
        swaps.push(j as u32);
        visit(pool[i]);
    }
    for i in (0..sigma).rev() {
        pool.swap(i, swaps[i] as usize);
    }
}

/// [`random_instance`](super::random_instance) as a constant-memory
/// stream: `O(m)` resident state however large `n` is.
///
/// Same seed ⇒ the exact instance `random_instance` would materialize
/// from `StdRng::seed_from_u64(seed)` — same surviving sets, weights,
/// member lists, capacities, in the same arrival order.
///
/// # Examples
///
/// ```
/// use osp_core::gen::{random_instance, RandomInstanceConfig, UniformSource};
/// use osp_core::prelude::*;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let cfg = RandomInstanceConfig::unweighted(20, 60, 3);
/// let mut rng = StdRng::seed_from_u64(5);
/// let materialized = random_instance(&cfg, &mut rng)?;
/// let mut streamed = UniformSource::new(&cfg, 5)?;
///
/// let a = run(&materialized, &mut RandPr::from_seed(9))?;
/// let b = run_source(&mut streamed, &mut RandPr::from_seed(9))?;
/// assert_eq!(a, b); // bit-identical, without ever building the CSR arena
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct UniformSource {
    config: RandomInstanceConfig,
    sets: Vec<SetMeta>,
    /// Configured set index → dense surviving [`SetId`].
    remap: Vec<u32>,
    /// Identity permutation of `0..m`, restored after every arrival.
    pool: Vec<u32>,
    /// Swap targets of the current partial Fisher–Yates, for the undo.
    swaps: Vec<u32>,
    /// The yielded arrival's member buffer, reused across arrivals.
    members: Vec<SetId>,
    /// Replays the membership draws (clone of the construction RNG).
    member_rng: StdRng,
    /// Positioned after the weight draws; yields the capacity stream.
    cap_rng: StdRng,
    next: u32,
    n: u32,
}

impl UniformSource {
    /// Builds the source: one pass over the membership draws (counting
    /// only — `O(m)` memory) fixes the surviving sets and their realized
    /// sizes, then the weights are drawn. Streaming replays the membership
    /// draws from a cloned RNG.
    ///
    /// # Errors
    ///
    /// Same feasibility conditions as
    /// [`random_instance`](super::random_instance).
    pub fn new(config: &RandomInstanceConfig, seed: u64) -> Result<Self, GenError> {
        validate_config(config)?;
        let m = config.num_sets;
        let mut rng = StdRng::seed_from_u64(seed);
        let member_rng = rng.clone();

        // Pass A: learn which sets survive and how many elements each
        // receives, without storing a single membership list.
        let mut counts = vec![0u32; m];
        let mut pool: Vec<u32> = (0..m as u32).collect();
        let mut swaps: Vec<u32> = Vec::with_capacity(config.load.max() as usize);
        for _ in 0..config.num_elements {
            let sigma = config.load.sample(&mut rng) as usize;
            draw_picks_undo(&mut pool, &mut swaps, &mut rng, sigma, |pick| {
                counts[pick as usize] += 1;
            });
        }

        // Dense remap of surviving sets, ascending by configured id —
        // exactly `random_instance`'s re-packing.
        let mut remap = vec![u32::MAX; m];
        let mut survivors = 0u32;
        for (s, &c) in counts.iter().enumerate() {
            if c > 0 {
                remap[s] = survivors;
                survivors += 1;
            }
        }
        let mut sets = Vec::with_capacity(survivors as usize);
        let mut sizes = counts.iter().filter(|&&c| c > 0).copied();
        for _ in 0..survivors {
            let w = config.weights.sample(&mut rng, survivors as usize);
            let size = sizes.next().expect("one realized size per survivor");
            sets.push(SetMeta::new(w, size));
        }

        Ok(UniformSource {
            config: *config,
            sets,
            remap,
            pool,
            swaps,
            members: Vec::with_capacity(config.load.max() as usize),
            member_rng,
            cap_rng: rng,
            next: 0,
            n: config.num_elements as u32,
        })
    }

    /// Resident heap bytes of the source's state — `O(m)`, independent of
    /// how many arrivals remain. Compare with
    /// [`Instance::heap_bytes`](crate::Instance::heap_bytes).
    pub fn state_bytes(&self) -> usize {
        let u32s = self.remap.len() + self.pool.len() + 2 * self.config.load.max() as usize;
        self.sets.len() * std::mem::size_of::<SetMeta>()
            + u32s * std::mem::size_of::<u32>()
            + 2 * std::mem::size_of::<StdRng>()
    }
}

impl ArrivalSource for UniformSource {
    fn sets(&self) -> &[SetMeta] {
        &self.sets
    }

    fn next_arrival(&mut self) -> Option<Arrival<'_>> {
        if self.next == self.n {
            return None;
        }
        let sigma = self.config.load.sample(&mut self.member_rng) as usize;
        self.members.clear();
        let members = &mut self.members;
        let remap = &self.remap;
        draw_picks_undo(
            &mut self.pool,
            &mut self.swaps,
            &mut self.member_rng,
            sigma,
            |pick| members.push(SetId(remap[pick as usize])),
        );
        self.members.sort_unstable();
        let capacity = self.config.capacities.sample(&mut self.cap_rng);
        let element = ElementId(self.next);
        self.next += 1;
        Some(Arrival::new(element, capacity, &self.members))
    }

    fn remaining_hint(&self) -> Option<usize> {
        Some((self.n - self.next) as usize)
    }
}

/// [`biregular_instance`](super::biregular_instance) as a stream: the
/// repaired configuration-model pairing is drawn once (same RNG sequence
/// as the materializing path), then arrivals stream straight out of the
/// flat stub array — no [`Instance`](crate::Instance) is ever built.
#[derive(Debug, Clone)]
pub struct BiregularSource {
    sets: Vec<SetMeta>,
    /// Element `j`'s member sets are `stubs[j*σ..(j+1)*σ]`, unsorted.
    stubs: Vec<u32>,
    sigma: usize,
    /// Sorted copy of the current window, reused across arrivals.
    members: Vec<SetId>,
    next: u32,
    n: u32,
}

impl BiregularSource {
    /// Draws the pairing; parameters and errors as
    /// [`biregular_instance`](super::biregular_instance), seeded from
    /// `StdRng::seed_from_u64(seed)`.
    ///
    /// # Errors
    ///
    /// [`GenError::Infeasible`] or [`GenError::RepairFailed`], exactly as
    /// the materializing path.
    pub fn new(m: usize, k: u32, sigma: u32, seed: u64) -> Result<Self, GenError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let stubs = biregular_stubs(m, k, sigma, &mut rng)?;
        let sigma = sigma as usize;
        let n = (stubs.len() / sigma) as u32;
        Ok(BiregularSource {
            sets: (0..m).map(|_| SetMeta::new(1.0, k)).collect(),
            stubs,
            sigma,
            members: Vec::with_capacity(sigma),
            next: 0,
            n,
        })
    }

    /// Resident heap bytes of the source's state.
    pub fn state_bytes(&self) -> usize {
        self.sets.len() * std::mem::size_of::<SetMeta>()
            + (self.stubs.len() + self.sigma) * std::mem::size_of::<u32>()
    }
}

impl ArrivalSource for BiregularSource {
    fn sets(&self) -> &[SetMeta] {
        &self.sets
    }

    fn next_arrival(&mut self) -> Option<Arrival<'_>> {
        if self.next == self.n {
            return None;
        }
        let j = self.next as usize;
        self.members.clear();
        self.members.extend(
            self.stubs[j * self.sigma..(j + 1) * self.sigma]
                .iter()
                .map(|&s| SetId(s)),
        );
        self.members.sort_unstable();
        let element = ElementId(self.next);
        self.next += 1;
        Some(Arrival::new(element, 1, &self.members))
    }

    fn remaining_hint(&self) -> Option<usize> {
        Some((self.n - self.next) as usize)
    }
}

/// [`fixed_size_instance`](super::fixed_size_instance) as a stream: the
/// per-set Zipf draws happen once through the shared core (same RNG
/// sequence as the materializing path), then the surviving elements
/// stream as zero-copy slices of one flat membership array — no
/// [`Instance`](crate::Instance) is ever built.
#[derive(Debug, Clone)]
pub struct FixedSizeSource {
    sets: Vec<SetMeta>,
    /// CSR over the non-empty elements: element `i`'s members are
    /// `members[offsets[i]..offsets[i+1]]`, sorted (sets draw in id
    /// order).
    offsets: Vec<u32>,
    members: Vec<SetId>,
    next: u32,
}

impl FixedSizeSource {
    /// Draws the memberships; parameters and errors as
    /// [`fixed_size_instance`](super::fixed_size_instance), seeded from
    /// `StdRng::seed_from_u64(seed)`.
    ///
    /// # Errors
    ///
    /// [`GenError::Infeasible`], exactly as the materializing path.
    pub fn new(m: usize, k: u32, n: usize, skew: f64, seed: u64) -> Result<Self, GenError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let memberships = fixed_size_memberships(m, k, n, skew, &mut rng)?;
        let mut offsets = vec![0u32];
        let mut members: Vec<SetId> = Vec::with_capacity(m * k as usize);
        for sets in memberships.iter().filter(|s| !s.is_empty()) {
            members.extend(sets.iter().map(|&s| SetId(s)));
            offsets.push(members.len() as u32);
        }
        Ok(FixedSizeSource {
            sets: (0..m).map(|_| SetMeta::new(1.0, k)).collect(),
            offsets,
            members,
            next: 0,
        })
    }

    /// Resident heap bytes of the source's state.
    pub fn state_bytes(&self) -> usize {
        self.sets.len() * std::mem::size_of::<SetMeta>()
            + self.offsets.len() * std::mem::size_of::<u32>()
            + self.members.len() * std::mem::size_of::<SetId>()
    }
}

impl ArrivalSource for FixedSizeSource {
    fn sets(&self) -> &[SetMeta] {
        &self.sets
    }

    fn next_arrival(&mut self) -> Option<Arrival<'_>> {
        let i = self.next as usize;
        if i + 1 >= self.offsets.len() {
            return None;
        }
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        let element = ElementId(self.next);
        self.next += 1;
        Some(Arrival::new(element, 1, &self.members[lo..hi]))
    }

    fn remaining_hint(&self) -> Option<usize> {
        Some(self.offsets.len() - 1 - self.next as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::super::{
        biregular_instance, fixed_size_instance, random_instance, CapacityModel, LoadModel,
        WeightModel,
    };
    use super::*;
    use crate::instance::Instance;

    /// Drains a source into owned `(capacity, members)` rows plus the set
    /// metadata, for comparison against a materialized instance.
    fn drain(source: &mut impl ArrivalSource) -> (Vec<SetMeta>, Vec<(u32, Vec<SetId>)>) {
        let sets = source.sets().to_vec();
        let mut rows = Vec::new();
        let mut next_element = 0u32;
        while let Some(a) = source.next_arrival() {
            assert_eq!(a.element(), ElementId(next_element), "ids consecutive");
            next_element += 1;
            rows.push((a.capacity(), a.members().to_vec()));
        }
        (sets, rows)
    }

    fn assert_stream_equals_instance(source: &mut impl ArrivalSource, instance: &Instance) {
        let (sets, rows) = drain(source);
        assert_eq!(sets.as_slice(), instance.sets(), "set metadata diverged");
        assert_eq!(rows.len(), instance.num_elements(), "length diverged");
        for (i, (capacity, members)) in rows.iter().enumerate() {
            let a = instance.arrival(i);
            assert_eq!(*capacity, a.capacity(), "capacity of element {i}");
            assert_eq!(members.as_slice(), a.members(), "members of element {i}");
        }
    }

    #[test]
    fn uniform_source_streams_the_materialized_instance() {
        let configs = [
            RandomInstanceConfig::unweighted(30, 80, 4),
            RandomInstanceConfig {
                num_sets: 40,
                num_elements: 120,
                load: LoadModel::Uniform { lo: 1, hi: 6 },
                weights: WeightModel::Uniform { lo: 0.5, hi: 4.0 },
                capacities: CapacityModel::Uniform { lo: 1, hi: 3 },
            },
            RandomInstanceConfig {
                num_sets: 25,
                num_elements: 60,
                load: LoadModel::Fixed(3),
                weights: WeightModel::Zipf { exponent: 1.0 },
                capacities: CapacityModel::Fixed(2),
            },
        ];
        for (ci, cfg) in configs.iter().enumerate() {
            for seed in [0u64, 7, 99] {
                let mut rng = StdRng::seed_from_u64(seed);
                let materialized = random_instance(cfg, &mut rng).unwrap();
                let mut source = UniformSource::new(cfg, seed).unwrap();
                assert_eq!(source.remaining_hint(), Some(cfg.num_elements));
                assert_stream_equals_instance(&mut source, &materialized);
                assert!(
                    source.state_bytes() < materialized.heap_bytes()
                        || cfg.num_elements < cfg.num_sets,
                    "config {ci}: streaming should be smaller than the arena"
                );
            }
        }
    }

    #[test]
    fn uniform_source_drops_unused_sets_like_the_generator() {
        // Few elements, many sets: most sets go unused and must be
        // re-packed identically on both paths.
        let cfg = RandomInstanceConfig::unweighted(100, 3, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let materialized = random_instance(&cfg, &mut rng).unwrap();
        let mut source = UniformSource::new(&cfg, 1).unwrap();
        assert!(source.sets().len() <= 6);
        assert_stream_equals_instance(&mut source, &materialized);
    }

    #[test]
    fn biregular_source_streams_the_materialized_instance() {
        for seed in [0u64, 5, 21] {
            let mut rng = StdRng::seed_from_u64(seed);
            let materialized = biregular_instance(24, 6, 4, &mut rng).unwrap();
            let mut source = BiregularSource::new(24, 6, 4, seed).unwrap();
            assert_eq!(source.remaining_hint(), Some(36)); // 24*6/4
            assert_stream_equals_instance(&mut source, &materialized);
        }
    }

    #[test]
    fn fixed_size_source_streams_the_materialized_instance() {
        for seed in [0u64, 3, 17] {
            let mut rng = StdRng::seed_from_u64(seed);
            let materialized = fixed_size_instance(50, 4, 100, 1.2, &mut rng).unwrap();
            let mut source = FixedSizeSource::new(50, 4, 100, 1.2, seed).unwrap();
            assert_eq!(source.remaining_hint(), Some(materialized.num_elements()));
            assert_stream_equals_instance(&mut source, &materialized);
        }
    }

    #[test]
    fn sources_are_deterministic_in_their_seed() {
        let cfg = RandomInstanceConfig::unweighted(20, 50, 3);
        let a = drain(&mut UniformSource::new(&cfg, 9).unwrap());
        let b = drain(&mut UniformSource::new(&cfg, 9).unwrap());
        assert_eq!(a, b);
        let c = drain(&mut UniformSource::new(&cfg, 10).unwrap());
        assert_ne!(a.1, c.1);

        let a = drain(&mut BiregularSource::new(12, 4, 3, 7).unwrap());
        let b = drain(&mut BiregularSource::new(12, 4, 3, 7).unwrap());
        assert_eq!(a, b);

        let a = drain(&mut FixedSizeSource::new(20, 3, 40, 1.0, 9).unwrap());
        let b = drain(&mut FixedSizeSource::new(20, 3, 40, 1.0, 9).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn infeasible_parameters_propagate() {
        let cfg = RandomInstanceConfig::unweighted(3, 10, 5);
        assert!(matches!(
            UniformSource::new(&cfg, 0),
            Err(GenError::Infeasible(_))
        ));
        assert!(matches!(
            BiregularSource::new(5, 3, 2, 0),
            Err(GenError::Infeasible(_))
        ));
        assert!(matches!(
            FixedSizeSource::new(1, 5, 3, 0.0, 0),
            Err(GenError::Infeasible(_))
        ));
    }

    #[test]
    fn exhausted_sources_stay_exhausted() {
        let cfg = RandomInstanceConfig::unweighted(5, 4, 2);
        let mut src = UniformSource::new(&cfg, 0).unwrap();
        while src.next_arrival().is_some() {}
        assert!(src.next_arrival().is_none());
        assert_eq!(src.remaining_hint(), Some(0));
    }
}
