//! The general-purpose random instance family.

use rand::seq::index::sample as index_sample;
use rand::Rng;

use crate::instance::{Instance, InstanceBuilder};
use crate::SetId;

use super::models::{CapacityModel, LoadModel, WeightModel};
use super::GenError;

/// Parameters for [`random_instance`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RandomInstanceConfig {
    /// Number of candidate sets `m` (sets never picked by any element are
    /// dropped, so the realized count may be smaller).
    pub num_sets: usize,
    /// Number of elements `n`.
    pub num_elements: usize,
    /// Per-element load distribution.
    pub load: LoadModel,
    /// Set weight distribution.
    pub weights: WeightModel,
    /// Per-element capacity distribution.
    pub capacities: CapacityModel,
}

impl RandomInstanceConfig {
    /// Unweighted unit-capacity family with fixed load — the workhorse of
    /// the Theorem 1 / Corollary 6 experiments.
    pub fn unweighted(num_sets: usize, num_elements: usize, load: u32) -> Self {
        RandomInstanceConfig {
            num_sets,
            num_elements,
            load: LoadModel::Fixed(load),
            weights: WeightModel::Unit,
            capacities: CapacityModel::Unit,
        }
    }
}

/// Generates a random instance: each element draws `σ(u)` from the load
/// model and picks that many distinct sets uniformly at random; weights and
/// capacities come from their respective models. Sets that end up with no
/// elements are dropped (ids are re-packed), so every set in the result is
/// completable.
///
/// # Errors
///
/// Returns [`GenError::Infeasible`] if a drawn load can exceed `num_sets`
/// or if `num_sets == 0` / `num_elements == 0`.
pub fn random_instance<R: Rng + ?Sized>(
    config: &RandomInstanceConfig,
    rng: &mut R,
) -> Result<Instance, GenError> {
    validate_config(config)?;

    // Draw memberships first so unused sets can be dropped.
    let mut memberships: Vec<Vec<usize>> = Vec::with_capacity(config.num_elements);
    let mut used = vec![false; config.num_sets];
    for _ in 0..config.num_elements {
        let sigma = config.load.sample(rng) as usize;
        let picks = index_sample(rng, config.num_sets, sigma).into_vec();
        for &s in &picks {
            used[s] = true;
        }
        memberships.push(picks);
    }

    // Re-pack surviving set ids densely.
    let mut remap = vec![usize::MAX; config.num_sets];
    let mut next = 0usize;
    for (s, &u) in used.iter().enumerate() {
        if u {
            remap[s] = next;
            next += 1;
        }
    }

    let mut b = InstanceBuilder::new();
    for _ in 0..next {
        let w = config.weights.sample(rng, next);
        b.add_set_unsized(w);
    }
    for picks in &memberships {
        let members: Vec<SetId> = picks.iter().map(|&s| SetId(remap[s] as u32)).collect();
        let capacity = config.capacities.sample(rng);
        b.add_element(capacity, &members);
    }
    Ok(b.build().expect("generator invariants guarantee validity"))
}

/// Parameter validation shared by [`random_instance`] and the streaming
/// [`UniformSource`](super::UniformSource).
pub(super) fn validate_config(config: &RandomInstanceConfig) -> Result<(), GenError> {
    if config.num_sets == 0 || config.num_elements == 0 {
        return Err(GenError::Infeasible(
            "need at least one set and one element".into(),
        ));
    }
    if config.load.max() as usize > config.num_sets {
        return Err(GenError::Infeasible(format!(
            "max load {} exceeds set count {}",
            config.load.max(),
            config.num_sets
        )));
    }
    if config.num_elements > u32::MAX as usize {
        return Err(GenError::Infeasible(format!(
            "element count {} exceeds the u32 id space",
            config.num_elements
        )));
    }
    if config.num_sets > u32::MAX as usize {
        return Err(GenError::Infeasible(format!(
            "set count {} exceeds the u32 id space",
            config.num_sets
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::InstanceStats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn basic_generation() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = RandomInstanceConfig::unweighted(50, 200, 4);
        let inst = random_instance(&cfg, &mut rng).unwrap();
        assert_eq!(inst.num_elements(), 200);
        assert!(inst.num_sets() <= 50);
        let st = InstanceStats::compute(&inst);
        assert_eq!(st.uniform_load, Some(4));
        assert!(st.unit_capacity);
        assert!(st.unweighted);
    }

    #[test]
    fn no_empty_sets_survive() {
        let mut rng = StdRng::seed_from_u64(1);
        // Few elements, many sets: most sets go unused and must be dropped.
        let cfg = RandomInstanceConfig::unweighted(100, 3, 2);
        let inst = random_instance(&cfg, &mut rng).unwrap();
        assert!(inst.num_sets() <= 6);
        for s in inst.sets() {
            assert!(s.size() >= 1);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = RandomInstanceConfig::unweighted(30, 60, 3);
        let a = random_instance(&cfg, &mut StdRng::seed_from_u64(9)).unwrap();
        let b = random_instance(&cfg, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn variable_loads_and_capacities() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = RandomInstanceConfig {
            num_sets: 40,
            num_elements: 150,
            load: LoadModel::Uniform { lo: 1, hi: 6 },
            weights: WeightModel::Uniform { lo: 0.5, hi: 4.0 },
            capacities: CapacityModel::Uniform { lo: 1, hi: 3 },
        };
        let inst = random_instance(&cfg, &mut rng).unwrap();
        let st = InstanceStats::compute(&inst);
        assert!(st.sigma_max <= 6);
        assert!(st.b_max <= 3);
        assert!(!st.unweighted);
        // Adjusted load never exceeds raw load.
        assert!(st.nu_max <= f64::from(st.sigma_max));
    }

    #[test]
    fn infeasible_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = RandomInstanceConfig::unweighted(3, 10, 5);
        assert!(matches!(
            random_instance(&cfg, &mut rng),
            Err(GenError::Infeasible(_))
        ));
        let cfg = RandomInstanceConfig::unweighted(0, 10, 1);
        assert!(random_instance(&cfg, &mut rng).is_err());
    }

    #[test]
    fn members_are_distinct_within_element() {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = RandomInstanceConfig::unweighted(10, 100, 7);
        let inst = random_instance(&cfg, &mut rng).unwrap();
        for a in inst.arrivals() {
            let mut seen = std::collections::HashSet::new();
            for &s in a.members() {
                assert!(seen.insert(s), "duplicate member in {:?}", a.element());
            }
        }
    }
}
