//! Seeded random instance generators for the upper-bound experiments.
//!
//! Two families:
//!
//! * [`random_instance`] — every element independently draws a load
//!   `σ(u)` and picks that many distinct sets; set sizes emerge from the
//!   draws. Knobs for weights and capacities cover the weighted
//!   (Theorem 1) and variable-capacity (Theorem 4) experiments.
//! * [`biregular_instance`] — *exactly* size-`k` sets and *exactly*
//!   load-`σ` elements via a configuration model with conflict repair;
//!   this is the instance class of Theorem 5 / Corollary 7, where the
//!   competitive ratio drops to `k`.
//!
//! Every family also exists as a *fused streaming source* ([`stream`]:
//! [`UniformSource`], [`BiregularSource`], [`FixedSizeSource`]) that feeds
//! the engine while generating — same RNG draw sequence, bit-identical
//! outcomes, without materializing an `Instance`.

mod biregular;
mod fixed_size;
mod models;
pub mod stream;
mod uniform;

pub use biregular::biregular_instance;
pub use fixed_size::fixed_size_instance;
pub use models::{CapacityModel, LoadModel, WeightModel};
pub use stream::{BiregularSource, FixedSizeSource, UniformSource};
pub use uniform::{random_instance, RandomInstanceConfig};

use std::fmt;

/// Errors from instance generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenError {
    /// Requested parameters are structurally impossible
    /// (e.g. `m·k` not divisible by `σ`, or load exceeding the set count).
    Infeasible(String),
    /// The configuration-model repair loop failed to produce a simple
    /// incidence structure within its retry budget (raise `m`/`n` or lower
    /// `σ`; near-complete bipartite graphs cannot be repaired).
    RepairFailed,
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::Infeasible(msg) => write!(f, "infeasible generator parameters: {msg}"),
            GenError::RepairFailed => write!(f, "conflict repair failed; parameters too dense"),
        }
    }
}

impl std::error::Error for GenError {}
