//! Uniform-set-size instances with *skewed* element loads.
//!
//! Theorem 5 bounds the ratio by `k·σ²/σ̄²` when all sets have size `k`
//! but loads vary — the interesting regime is precisely `σ² ≫ σ̄²`, which
//! the bi-regular generator cannot produce. Here every set picks `k`
//! distinct elements with popularity ∝ `(j+1)^(−skew)`, so a few hot
//! elements absorb most of the load.

use osp_stats::AliasTable;
use rand::Rng;

use crate::instance::{Instance, InstanceBuilder};
use crate::SetId;

use super::GenError;

/// Generates an unweighted unit-capacity instance with `m` sets of size
/// exactly `k` over at most `n` elements whose popularity follows a Zipf
/// law with exponent `skew ≥ 0` (`skew = 0` is uniform). Elements that end
/// up in no set are dropped.
///
/// # Errors
///
/// Returns [`GenError::Infeasible`] if `k > n` or any parameter is zero
/// or `skew` is negative/non-finite.
pub fn fixed_size_instance<R: Rng + ?Sized>(
    m: usize,
    k: u32,
    n: usize,
    skew: f64,
    rng: &mut R,
) -> Result<Instance, GenError> {
    let memberships = fixed_size_memberships(m, k, n, skew, rng)?;

    let mut b = InstanceBuilder::new();
    for _ in 0..m {
        b.add_set(1.0, k);
    }
    for sets in memberships.iter().filter(|s| !s.is_empty()) {
        let members: Vec<SetId> = sets.iter().map(|&s| SetId(s)).collect();
        b.add_element(1, &members);
    }
    Ok(b.build().expect("membership bookkeeping is consistent"))
}

/// The drawing core shared by [`fixed_size_instance`] and the streaming
/// [`FixedSizeSource`](super::FixedSizeSource): validates the parameters
/// and returns `memberships[e]` = the sets containing element `e`,
/// ascending (sets draw in id order), for all `n` raw elements — including
/// the empty ones both consumers drop. One implementation means the two
/// paths cannot drift in their RNG draw sequence.
pub(super) fn fixed_size_memberships<R: Rng + ?Sized>(
    m: usize,
    k: u32,
    n: usize,
    skew: f64,
    rng: &mut R,
) -> Result<Vec<Vec<u32>>, GenError> {
    if m == 0 || k == 0 || n == 0 {
        return Err(GenError::Infeasible("m, k, n must be positive".into()));
    }
    if k as usize > n {
        return Err(GenError::Infeasible(format!(
            "set size {k} exceeds element count {n}"
        )));
    }
    if !skew.is_finite() || skew < 0.0 {
        return Err(GenError::Infeasible("skew must be finite and ≥ 0".into()));
    }

    // Zipf popularity sampled in O(1) per draw via an alias table (the
    // old cumulative-sum binary search cost O(log n) per draw and showed
    // up in generator-bound experiment profiles).
    let popularity: Vec<f64> = (0..n).map(|j| ((j + 1) as f64).powf(-skew)).collect();
    let table = AliasTable::new(&popularity).expect("Zipf popularities are positive and finite");

    // memberships[e] = sets containing element e.
    let mut memberships: Vec<Vec<u32>> = vec![Vec::new(); n];
    for set in 0..m {
        let mut picked: Vec<usize> = Vec::with_capacity(k as usize);
        while picked.len() < k as usize {
            let j = table.sample(rng);
            if !picked.contains(&j) {
                picked.push(j);
            }
        }
        for &j in &picked {
            memberships[j].push(set as u32);
        }
    }
    Ok(memberships)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::InstanceStats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sizes_exact_loads_vary() {
        let mut rng = StdRng::seed_from_u64(0);
        let inst = fixed_size_instance(50, 4, 100, 1.2, &mut rng).unwrap();
        let st = InstanceStats::compute(&inst);
        assert_eq!(st.m, 50);
        assert_eq!(st.uniform_size, Some(4));
        // Strong skew should produce non-uniform loads.
        assert_eq!(st.uniform_load, None);
        // And a second moment strictly above the squared mean.
        assert!(st.sigma_sq_mean > st.sigma_mean * st.sigma_mean * 1.05);
    }

    #[test]
    fn skew_zero_is_roughly_balanced() {
        let mut rng = StdRng::seed_from_u64(1);
        let inst = fixed_size_instance(100, 3, 60, 0.0, &mut rng).unwrap();
        let st = InstanceStats::compute(&inst);
        assert_eq!(st.uniform_size, Some(3));
        // Variance exists but stays moderate for uniform popularity.
        let ratio = st.sigma_sq_mean / (st.sigma_mean * st.sigma_mean);
        assert!(ratio < 1.6, "dispersion ratio {ratio}");
    }

    #[test]
    fn higher_skew_means_higher_dispersion() {
        let flat = fixed_size_instance(80, 4, 100, 0.0, &mut StdRng::seed_from_u64(2)).unwrap();
        let skewed = fixed_size_instance(80, 4, 100, 1.5, &mut StdRng::seed_from_u64(2)).unwrap();
        let d = |i: &Instance| {
            let st = InstanceStats::compute(i);
            st.sigma_sq_mean / (st.sigma_mean * st.sigma_mean)
        };
        assert!(d(&skewed) > d(&flat));
    }

    #[test]
    fn parameters_validated() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(fixed_size_instance(0, 1, 1, 0.0, &mut rng).is_err());
        assert!(fixed_size_instance(1, 5, 3, 0.0, &mut rng).is_err());
        assert!(fixed_size_instance(1, 1, 1, -1.0, &mut rng).is_err());
        assert!(fixed_size_instance(1, 1, 1, f64::NAN, &mut rng).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let a = fixed_size_instance(20, 3, 40, 1.0, &mut StdRng::seed_from_u64(9)).unwrap();
        let b = fixed_size_instance(20, 3, 40, 1.0, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
    }
}
