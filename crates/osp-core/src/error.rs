//! Error type shared across the crate.

use std::fmt;

use crate::{ElementId, SetId};

/// Errors raised while building instances or running the online engine.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A set weight was negative, NaN or infinite.
    BadWeight {
        /// The offending set.
        set: SetId,
        /// The rejected weight value.
        weight: f64,
    },
    /// A declared set size was zero.
    EmptySet(SetId),
    /// An element referenced a set id that was never declared.
    UnknownSet {
        /// The element whose member list is invalid.
        element: ElementId,
        /// The undeclared set id.
        set: SetId,
    },
    /// An element listed the same set twice.
    DuplicateMember {
        /// The element whose member list is invalid.
        element: ElementId,
        /// The repeated set id.
        set: SetId,
    },
    /// An element arrived with capacity zero.
    ZeroCapacity(ElementId),
    /// An arrival's member list was not sorted ascending by set id.
    ///
    /// Raised by [`Arrival::try_new`](crate::Arrival::try_new), the checked
    /// constructor for untrusted input (e.g. the osp-net trace boundary).
    UnsortedMembers {
        /// The element whose member list is out of order.
        element: ElementId,
        /// The first set id found out of ascending order.
        set: SetId,
    },
    /// A set's declared size disagrees with the number of elements that
    /// actually listed it.
    SizeMismatch {
        /// The inconsistent set.
        set: SetId,
        /// Size given to [`InstanceBuilder::add_set`](crate::InstanceBuilder::add_set).
        declared: u32,
        /// Number of arrivals listing the set.
        realized: u32,
    },
    /// An algorithm decision included a set that does not contain the
    /// current element.
    DecisionNotMember {
        /// The element being decided.
        element: ElementId,
        /// The invalid set choice.
        set: SetId,
    },
    /// An algorithm decision repeated a set.
    DecisionDuplicate {
        /// The element being decided.
        element: ElementId,
        /// The repeated set choice.
        set: SetId,
    },
    /// An algorithm decision exceeded the element's capacity.
    DecisionOverCapacity {
        /// The element being decided.
        element: ElementId,
        /// The element's capacity `b(u)`.
        capacity: u32,
        /// How many sets the algorithm tried to assign.
        chosen: usize,
    },
    /// A [`JobSpec`](crate::spec::JobSpec) named a variant the resolver in
    /// use cannot build (e.g. an osp-net algorithm handed to the core-only
    /// [`CoreResolver`](crate::spec::CoreResolver)).
    UnsupportedSpec(String),
    /// A spec's parameters are structurally invalid (e.g. an infeasible
    /// generator configuration).
    InvalidSpec(String),
    /// A wire-protocol violation: truncated/oversized frame, or a payload
    /// that does not decode as the expected message.
    Protocol(String),
    /// The service cannot take the work right now: the replay server's
    /// submission queue is full or it is shutting down. Callers should
    /// back off and resubmit — nothing was enqueued.
    Unavailable(String),
    /// A persisted journal record failed its checksum or did not decode.
    ///
    /// Raised (and recorded, never panicked on) by
    /// [`JournalStore`](crate::store::JournalStore) while replaying a
    /// results journal: the offending record is skipped and recovery
    /// continues with the records that survive.
    Corrupt {
        /// Byte offset of the bad record within the journal or snapshot.
        offset: u64,
        /// What failed: checksum mismatch, undecodable payload, …
        cause: String,
    },
    /// A worker failed out-of-band — see [`WorkerError`] for the typed
    /// failure modes (spawn, connect, handshake, timeout, disconnect,
    /// fleet exhaustion, or a remote failure that crossed the boundary as
    /// text).
    Worker(WorkerError),
}

/// Typed out-of-band worker failures, shared by the process and socket
/// dispatch backends.
///
/// The distinction matters operationally: a [`Connect`](Self::Connect) or
/// [`Handshake`](Self::Handshake) failure means the worker never took any
/// jobs (safe to exclude from the fleet immediately), a
/// [`Timeout`](Self::Timeout) or [`Disconnect`](Self::Disconnect) means it
/// died *mid-batch* (its unanswered jobs are re-dispatched to surviving
/// workers by [`SocketPool`](crate::SocketPool)), and a
/// [`Remote`](Self::Remote) is a *per-job* answer — the worker is healthy,
/// that one job failed on it — which is final and never re-dispatched.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerError {
    /// The worker binary could not be located or its process not spawned.
    Spawn(String),
    /// A worker address could not be connected within the configured
    /// timeout and retry budget.
    Connect {
        /// The address dialed.
        addr: String,
        /// Connection attempts made before giving up.
        attempts: u32,
        /// The last I/O failure.
        cause: String,
    },
    /// The connection opened but the hello exchange failed: missing or
    /// malformed hello frame, or a protocol-version mismatch.
    Handshake {
        /// The address dialed.
        addr: String,
        /// What went wrong.
        cause: String,
    },
    /// A read deadline expired mid-conversation — the worker stalled.
    Timeout {
        /// The worker's address (or command, for pipe workers).
        addr: String,
        /// The expired deadline's description.
        cause: String,
    },
    /// The byte stream died mid-batch: premature EOF, a broken pipe, or
    /// undecodable frames where replies were expected.
    Disconnect {
        /// The worker's address (or command, for pipe workers).
        addr: String,
        /// What the stream did.
        cause: String,
    },
    /// The worker answered with the wrong frame type for the strict
    /// request/reply order — a job reply where a pong was due, or vice
    /// versa. Distinct from [`Disconnect`](Self::Disconnect): the frame
    /// *decoded*, it just was not the one owed next, which points at a
    /// worker answering out of order rather than a corrupted stream.
    FrameOrder {
        /// The worker's address.
        addr: String,
        /// The frame type the protocol owed next (e.g. `"pong"`).
        expected: &'static str,
        /// The frame type actually received (e.g. `"job reply"`).
        got: &'static str,
    },
    /// Every worker of the fleet is dead and jobs remain unanswered.
    AllWorkersDead {
        /// How many jobs were left undispatched.
        pending: usize,
    },
    /// The job failed *on* the worker; the structured engine error only
    /// survives the boundary as display text.
    Remote(String),
}

impl fmt::Display for WorkerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkerError::Spawn(why) => write!(f, "cannot start worker: {why}"),
            WorkerError::Connect {
                addr,
                attempts,
                cause,
            } => write!(
                f,
                "cannot connect to {addr} after {attempts} attempt(s): {cause}"
            ),
            WorkerError::Handshake { addr, cause } => {
                write!(f, "handshake with {addr} failed: {cause}")
            }
            WorkerError::Timeout { addr, cause } => write!(f, "worker {addr} timed out: {cause}"),
            WorkerError::Disconnect { addr, cause } => {
                write!(f, "worker {addr} disconnected: {cause}")
            }
            WorkerError::FrameOrder {
                addr,
                expected,
                got,
            } => write!(
                f,
                "worker {addr} answered out of order: expected a {expected}, got a {got}"
            ),
            WorkerError::AllWorkersDead { pending } => {
                write!(f, "every worker is dead with {pending} job(s) unanswered")
            }
            WorkerError::Remote(why) => write!(f, "{why}"),
        }
    }
}

impl From<WorkerError> for Error {
    fn from(e: WorkerError) -> Error {
        Error::Worker(e)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::BadWeight { set, weight } => {
                write!(f, "set {set} has invalid weight {weight}")
            }
            Error::EmptySet(set) => write!(f, "set {set} has size zero"),
            Error::UnknownSet { element, set } => {
                write!(f, "element {element} references undeclared set {set}")
            }
            Error::DuplicateMember { element, set } => {
                write!(f, "element {element} lists set {set} twice")
            }
            Error::ZeroCapacity(element) => {
                write!(f, "element {element} has capacity zero")
            }
            Error::UnsortedMembers { element, set } => {
                write!(
                    f,
                    "member list of element {element} is not sorted ascending at set {set}"
                )
            }
            Error::SizeMismatch {
                set,
                declared,
                realized,
            } => write!(
                f,
                "set {set} declared size {declared} but {realized} elements list it"
            ),
            Error::DecisionNotMember { element, set } => {
                write!(f, "decision for {element} includes non-member set {set}")
            }
            Error::DecisionDuplicate { element, set } => {
                write!(f, "decision for {element} repeats set {set}")
            }
            Error::DecisionOverCapacity {
                element,
                capacity,
                chosen,
            } => write!(
                f,
                "decision for {element} assigns {chosen} sets, capacity is {capacity}"
            ),
            Error::UnsupportedSpec(what) => {
                write!(f, "spec not supported by this resolver: {what}")
            }
            Error::InvalidSpec(why) => write!(f, "invalid spec: {why}"),
            Error::Protocol(why) => write!(f, "wire protocol error: {why}"),
            Error::Unavailable(why) => write!(f, "service unavailable: {why}"),
            Error::Corrupt { offset, cause } => {
                write!(f, "corrupt journal record at byte {offset}: {cause}")
            }
            Error::Worker(why) => write!(f, "worker error: {why}"),
        }
    }
}

impl std::error::Error for Error {}
