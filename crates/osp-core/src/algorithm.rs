//! The online algorithm interface.
//!
//! An [`OnlineAlgorithm`] sees exactly what the paper's model allows: the
//! weight and size of every set up front ([`begin`](OnlineAlgorithm::begin)),
//! then one arrival at a time, deciding immediately and irrevocably which of
//! the element's sets receive it. The [`EngineView`] additionally exposes
//! per-set progress (how many elements each set has received, and whether it
//! is still completable) — information any implementation could derive from
//! its own decision history, offered centrally so baselines don't each
//! re-implement the bookkeeping.
//!
//! The required decision method is [`decide_into`](OnlineAlgorithm::decide_into):
//! the algorithm writes its choice into a caller-provided buffer, so a warm
//! replay loop performs **zero heap allocations per arrival** — the engine
//! recycles one decision buffer across all arrivals (and, via
//! [`ReplayScratch`](crate::engine::batch::ReplayScratch), across all jobs
//! of a shard). The allocating [`decide`](OnlineAlgorithm::decide) is a
//! default-implemented convenience shim for external callers.

use crate::instance::{Arrival, SetMeta};
use crate::SetId;

/// Read-only view of the engine's bookkeeping, available at decision time.
#[derive(Debug, Clone, Copy)]
pub struct EngineView<'a> {
    sets: &'a [SetMeta],
    assigned: &'a [u32],
    alive: &'a [bool],
}

impl<'a> EngineView<'a> {
    pub(crate) fn new(sets: &'a [SetMeta], assigned: &'a [u32], alive: &'a [bool]) -> Self {
        EngineView {
            sets,
            assigned,
            alive,
        }
    }

    /// Metadata of a set.
    pub fn set(&self, id: SetId) -> &SetMeta {
        &self.sets[id.index()]
    }

    /// How many of its elements have been assigned to `id` so far.
    pub fn assigned(&self, id: SetId) -> u32 {
        self.assigned[id.index()]
    }

    /// Whether `id` is still completable: every one of its elements so far
    /// was assigned to it ("active" in the paper's terminology).
    pub fn is_active(&self, id: SetId) -> bool {
        self.alive[id.index()]
    }

    /// Elements of `id` still to arrive (size minus assigned); meaningful
    /// only while the set is active.
    pub fn remaining(&self, id: SetId) -> u32 {
        self.sets[id.index()].size() - self.assigned[id.index()]
    }
}

/// An online algorithm for OSP.
///
/// The engine calls [`begin`](Self::begin) once, then
/// [`decide_into`](Self::decide_into) for every arrival in order. Decisions
/// must pick at most `arrival.capacity()` distinct sets from
/// `arrival.members()`; the engine validates this and fails the run
/// otherwise.
pub trait OnlineAlgorithm {
    /// Human-readable name used in experiment reports.
    fn name(&self) -> String;

    /// Called once before the first arrival with every set's weight and
    /// size — the information the paper grants algorithms up front.
    fn begin(&mut self, sets: &[SetMeta]);

    /// Decides which sets receive the arriving element, appending them to
    /// `out` (handed over empty by the engine, with warm capacity). This is
    /// the allocation-free hot path: implementations must not assume `out`
    /// has any particular capacity, but should write into it rather than
    /// allocating buffers of their own.
    fn decide_into(&mut self, arrival: &Arrival<'_>, view: &EngineView<'_>, out: &mut Vec<SetId>);

    /// Allocating convenience wrapper around
    /// [`decide_into`](Self::decide_into) for external callers (tests,
    /// adversaries inspecting single decisions). The replay engine never
    /// calls this.
    fn decide(&mut self, arrival: &Arrival<'_>, view: &EngineView<'_>) -> Vec<SetId> {
        let mut out = Vec::new();
        self.decide_into(arrival, view, &mut out);
        out
    }

    /// Announces how many threads the algorithm may fan candidate
    /// *scoring* across inside one decision (the sharded decision kernel
    /// of [`engine::parallel`](crate::engine::parallel)). Implementations
    /// that honor it must keep decisions bit-identical at every thread
    /// count — the built-ins do so by sharding only the score *fill* and
    /// running the selection over the full scored buffer with the exact
    /// serial comparator sequence. The default ignores the hint (serial
    /// decisions), so existing implementations are unaffected.
    fn set_decision_threads(&mut self, _threads: usize) {}
}

impl<T: OnlineAlgorithm + ?Sized> OnlineAlgorithm for Box<T> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn begin(&mut self, sets: &[SetMeta]) {
        (**self).begin(sets);
    }

    fn decide_into(&mut self, arrival: &Arrival<'_>, view: &EngineView<'_>, out: &mut Vec<SetId>) {
        (**self).decide_into(arrival, view, out);
    }

    fn decide(&mut self, arrival: &Arrival<'_>, view: &EngineView<'_>) -> Vec<SetId> {
        (**self).decide(arrival, view)
    }

    fn set_decision_threads(&mut self, threads: usize) {
        (**self).set_decision_threads(threads);
    }
}
