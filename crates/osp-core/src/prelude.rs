//! Convenience re-exports of the most frequently used items.
//!
//! ```
//! use osp_core::prelude::*;
//! let _ = InstanceBuilder::new();
//! ```

pub use crate::algorithm::{EngineView, OnlineAlgorithm};
pub use crate::algorithms::{
    GreedyOnline, HashRandPr, OracleOnline, RandPr, RandomAssign, TieBreak,
};
pub use crate::engine::batch::{derive_seed, ReplayJob, ReplayPool, SourceJob};
pub use crate::engine::dispatch::{derived_jobs, Dispatcher, ProcessPool, SpecPool};
pub use crate::engine::{
    run, run_parallel, run_source, run_source_parallel, run_source_with_scratch, run_with_scratch,
    DecisionLog, Outcome, ParallelConfig, Session,
};
pub use crate::error::Error;
pub use crate::ids::{ElementId, SetId};
pub use crate::instance::{Arrival, Arrivals, Instance, InstanceBuilder, SetMeta};
pub use crate::source::{ArrivalSource, InstanceSource};
pub use crate::spec::{run_spec, AlgorithmSpec, CoreResolver, JobSpec, ScenarioSpec, SpecResolver};
pub use crate::stats::InstanceStats;
