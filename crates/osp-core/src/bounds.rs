//! The theoretical bounds of every theorem, as executable formulas.
//!
//! Each function takes the [`InstanceStats`] of an instance and returns the
//! corresponding bound on the competitive ratio (or on the completion-count
//! ratio for the unweighted specializations). The experiment harness
//! evaluates these next to measured ratios; the measured value must never
//! exceed the bound (up to sampling noise), and the trends must track.

use crate::stats::InstanceStats;

/// Theorem 1: competitive ratio of `randPr` is at most
/// `k_max · sqrt(σ·σ$ / σ$)` on unit-capacity instances.
///
/// Returns `f64::INFINITY` when `σ$̄ = 0` (all weights zero), where the
/// ratio is vacuous.
pub fn theorem_1(stats: &InstanceStats) -> f64 {
    if stats.sigma_w_mean <= 0.0 {
        return f64::INFINITY;
    }
    f64::from(stats.k_max) * (stats.sigma_sigma_w_mean / stats.sigma_w_mean).sqrt()
}

/// Corollary 6: competitive ratio of `randPr` is at most
/// `k_max · sqrt(σ_max)` — the headline bound.
pub fn corollary_6(stats: &InstanceStats) -> f64 {
    f64::from(stats.k_max) * f64::from(stats.sigma_max).sqrt()
}

/// Theorem 4: with variable capacities, the competitive ratio of `randPr`
/// is at most `16e · k_max · sqrt(ν·σ$ / σ$)` (adjusted load `ν = σ/b`).
pub fn theorem_4(stats: &InstanceStats) -> f64 {
    if stats.sigma_w_mean <= 0.0 {
        return f64::INFINITY;
    }
    16.0 * std::f64::consts::E
        * f64::from(stats.k_max)
        * (stats.nu_sigma_w_mean / stats.sigma_w_mean).sqrt()
}

/// Theorem 5 (uniform set size `k`, unweighted):
/// `E[|alg|] ≥ |opt| · σ̄²/(k·σ²)`, i.e. the ratio `|opt|/E[|alg|]` is at
/// most `k · σ² / σ̄²`. Returns `None` unless all sets share one size.
pub fn theorem_5(stats: &InstanceStats) -> Option<f64> {
    let k = stats.uniform_size?;
    if stats.sigma_mean <= 0.0 {
        return Some(f64::INFINITY);
    }
    Some(f64::from(k) * stats.sigma_sq_mean / (stats.sigma_mean * stats.sigma_mean))
}

/// Corollary 7 (uniform size *and* uniform load, unweighted): ratio at most
/// `k` — the paper's only load-independent bound. Returns `None` unless
/// both uniformities hold.
pub fn corollary_7(stats: &InstanceStats) -> Option<f64> {
    let k = stats.uniform_size?;
    stats.uniform_load?;
    Some(f64::from(k))
}

/// Theorem 6 (uniform load `σ`, unweighted): ratio at most `k̄ · sqrt(σ)`.
/// Returns `None` unless all elements share one load.
pub fn theorem_6(stats: &InstanceStats) -> Option<f64> {
    let sigma = stats.uniform_load?;
    Some(stats.k_mean * f64::from(sigma).sqrt())
}

/// Theorem 3: every *deterministic* online algorithm has competitive ratio
/// at least `σ_max^(k_max − 1)` (on the adversarial instance family with
/// parameters `σ`, `k`). Computed directly from the parameters.
pub fn theorem_3_lower(sigma: u32, k: u32) -> f64 {
    f64::from(sigma).powi(k as i32 - 1)
}

/// Theorem 2: every randomized online algorithm has competitive ratio
/// `Ω(k_max · (log log k_max / log k_max)² · sqrt(σ_max))`. This evaluates
/// the expression inside the Ω (constant 1) for trend comparison.
pub fn theorem_2_lower(k_max: u32, sigma_max: u32) -> f64 {
    if k_max < 3 {
        // log log k is degenerate below e^e; the bound is vacuous there.
        return 0.0;
    }
    let k = f64::from(k_max);
    let polylog = (k.ln().ln() / k.ln()).powi(2);
    k * polylog * f64::from(sigma_max).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use crate::stats::InstanceStats;

    fn uniform_instance(k: u32, sigma: u32) -> InstanceStats {
        // σ sets of size k, all clashing at every element: k elements,
        // each containing all σ sets.
        let mut b = InstanceBuilder::new();
        let ids: Vec<_> = (0..sigma).map(|_| b.add_set(1.0, k)).collect();
        for _ in 0..k {
            b.add_element(1, &ids);
        }
        InstanceStats::compute(&b.build().unwrap())
    }

    #[test]
    fn corollary_6_dominates_theorem_1() {
        // Theorem 1's refined bound is never larger than Corollary 6.
        for (k, sigma) in [(2, 3), (4, 4), (3, 7)] {
            let st = uniform_instance(k, sigma);
            assert!(
                theorem_1(&st) <= corollary_6(&st) + 1e-9,
                "k={k} sigma={sigma}"
            );
        }
    }

    #[test]
    fn uniform_case_theorem_1_equals_k_sqrt_sigma() {
        // With uniform load σ and unit weights: σ$ = σ, σ·σ$ = σ², so
        // Theorem 1 gives exactly k·sqrt(σ).
        let st = uniform_instance(3, 4);
        assert!((theorem_1(&st) - 3.0 * 2.0).abs() < 1e-9);
        assert_eq!(corollary_6(&st), 6.0);
    }

    #[test]
    fn specializations_require_uniformity() {
        let st = uniform_instance(2, 3);
        assert_eq!(theorem_5(&st), Some(2.0 * 9.0 / 9.0));
        assert_eq!(corollary_7(&st), Some(2.0));
        assert!((theorem_6(&st).unwrap() - 2.0 * 3f64.sqrt()).abs() < 1e-12);

        // Mixed sizes: Theorem 5 / Corollary 7 unavailable.
        let mut b = InstanceBuilder::new();
        let s0 = b.add_set(1.0, 1);
        let s1 = b.add_set(1.0, 2);
        b.add_element(1, &[s0, s1]);
        b.add_element(1, &[s1]);
        let st = InstanceStats::compute(&b.build().unwrap());
        assert_eq!(theorem_5(&st), None);
        assert_eq!(corollary_7(&st), None);
        assert_eq!(theorem_6(&st), None); // loads 2 and 1
    }

    #[test]
    fn theorem_4_reduces_toward_unit_capacity() {
        // On unit capacity, ν = σ, so Theorem 4 = 16e · Theorem 1.
        let st = uniform_instance(3, 5);
        let ratio = theorem_4(&st) / theorem_1(&st);
        assert!((ratio - 16.0 * std::f64::consts::E).abs() < 1e-9);
    }

    #[test]
    fn deterministic_lower_bound_values() {
        assert_eq!(theorem_3_lower(2, 2), 2.0);
        assert_eq!(theorem_3_lower(3, 4), 27.0);
        assert_eq!(theorem_3_lower(4, 1), 1.0);
    }

    #[test]
    fn theorem_2_trend_grows() {
        // The Ω-expression should grow along the paper's k ~ sqrt(m),
        // σ_max ~ k scaling.
        let small = theorem_2_lower(16, 16);
        let large = theorem_2_lower(256, 256);
        assert!(large > small);
        assert_eq!(theorem_2_lower(2, 100), 0.0);
    }

    #[test]
    fn degenerate_weights_give_infinity() {
        let mut b = InstanceBuilder::new();
        let s = b.add_set(0.0, 1);
        b.add_element(1, &[s]);
        let st = InstanceStats::compute(&b.build().unwrap());
        assert_eq!(theorem_1(&st), f64::INFINITY);
        assert_eq!(theorem_4(&st), f64::INFINITY);
    }
}
